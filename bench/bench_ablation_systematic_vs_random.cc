// Ablation: systematic (Gremlin) vs randomized (Chaos-Monkey-style) fault
// injection.
//
// Setup: a binary-tree application (7 services) where every dependency
// call has a fallback EXCEPT one edge (svc0 -> svc2). Only a failure
// of svc2 produces user-visible errors — the kind of latent bug Table 1's
// postmortems describe.
//
// Gremlin's systematic sweep crashes one service at a time with scoped
// test traffic and checks user-visible health after each, finding the bug
// in at most #services targeted experiments, deterministically. The
// randomized baseline kills random services under background load until a
// user-visible failure happens to coincide; we report the distribution of
// kills needed over many seeds.
//
// This quantifies the paper's qualitative argument (Section 8.1): faults
// that cannot be constrained to a subset of requests or services make it
// expensive to zero in on implementation bugs.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/chaos.h"
#include "control/recipe.h"

namespace {

using namespace gremlin;  // NOLINT

// Builds the tree app with exactly one missing fallback (svc0 -> svc2).
topology::AppGraph build_buggy_tree(sim::Simulation* sim) {
  topology::AppGraph graph = topology::AppGraph::binary_tree(3);
  sim->add_services_from_graph(graph, [](const std::string& name) {
    sim::ServiceConfig cfg;
    cfg.processing_time = msec(1);
    resilience::CallPolicy safe;
    safe.timeout = msec(200);
    safe.fallback = resilience::Fallback{200, "cached"};
    cfg.default_policy = safe;
    if (name == "svc0") {
      resilience::CallPolicy buggy;  // no fallback, no timeout
      cfg.policies["svc2"] = buggy;
    }
    return cfg;
  });
  topology::AppGraph with_user = graph;
  with_user.add_edge("user", "svc0");
  return with_user;
}

// One systematic experiment: crash `victim`, send scoped test load, check
// user-visible failures. Returns true when the bug surfaced.
bool systematic_probe(const std::string& victim, uint64_t seed) {
  sim::SimulationConfig cfg;
  cfg.seed = seed;
  sim::Simulation sim(cfg);
  auto graph = build_buggy_tree(&sim);
  control::TestSession session(&sim, graph);
  if (!session.apply(control::FailureSpec::crash(victim)).ok()) return false;
  control::LoadOptions load;
  load.count = 20;
  load.gap = msec(10);
  const auto result = session.run_load("user", "svc0", load);
  return result.failures > 0;
}

struct RandomOutcome {
  size_t kills = 0;
  bool found = false;
};

RandomOutcome random_probe(uint64_t seed) {
  sim::SimulationConfig cfg;
  cfg.seed = seed;
  sim::Simulation sim(cfg);
  auto graph = build_buggy_tree(&sim);

  baseline::ChaosOptions options;
  options.seed = seed * 7919 + 17;
  options.mean_interval = msec(500);
  options.outage_duration = msec(300);
  // Chaos may kill any of the 7 services (it does not know where the bug
  // is); leaf and internal kills are equally likely.
  // Neither tester may kill the user-facing root itself (any root kill is
  // trivially user-visible and says nothing about failure handling).
  options.candidates = graph.services();
  for (const char* excluded : {"user", "svc0"}) {
    options.candidates.erase(
        std::remove(options.candidates.begin(), options.candidates.end(),
                    excluded),
        options.candidates.end());
  }
  baseline::ChaosMonkey chaos(&sim, graph, options);
  chaos.unleash(sec(60));

  // Background traffic throughout the chaos run.
  auto first_failure_at = std::make_shared<TimePoint>(TimePoint::min());
  for (int i = 0; i < 1200; ++i) {
    sim.schedule(msec(50) * i, [&sim, i, first_failure_at] {
      sim.inject("user", "svc0",
                 sim::SimRequest{.request_id = "bg-" + std::to_string(i)},
                 [&sim, first_failure_at](const sim::SimResponse& resp) {
                   if (resp.failed() &&
                       *first_failure_at == TimePoint::min()) {
                     *first_failure_at = sim.now();
                   }
                 });
    });
  }
  sim.run();

  RandomOutcome outcome;
  if (*first_failure_at == TimePoint::min()) {
    outcome.kills = chaos.events().size();
    return outcome;  // never surfaced within the horizon
  }
  outcome.found = true;
  for (const auto& event : chaos.events()) {
    if (event.at <= *first_failure_at) ++outcome.kills;
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation — systematic Gremlin sweep vs randomized chaos\n"
      "# bug: svc0 has no failure handling for svc2 (7-service tree)\n\n");

  // --- systematic sweep ---
  sim::Simulation probe_sim;
  auto graph = build_buggy_tree(&probe_sim);
  std::vector<std::string> targets = graph.services();
  for (const char* excluded : {"user", "svc0"}) {
    targets.erase(std::remove(targets.begin(), targets.end(), excluded),
                  targets.end());
  }
  size_t experiments = 0;
  std::string culprit;
  for (const auto& victim : targets) {
    ++experiments;
    if (systematic_probe(victim, 42)) {
      culprit = victim;
      break;
    }
  }
  std::printf("systematic: bug exposed by crash(%s) after %zu targeted "
              "experiments (deterministic)\n",
              culprit.c_str(), experiments);

  // --- randomized baseline over many seeds ---
  std::vector<size_t> kills_needed;
  size_t misses = 0;
  const int kSeeds = 30;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const auto outcome = random_probe(static_cast<uint64_t>(seed));
    if (outcome.found) {
      kills_needed.push_back(outcome.kills);
    } else {
      ++misses;
    }
  }
  if (!kills_needed.empty()) {
    std::sort(kills_needed.begin(), kills_needed.end());
    size_t total = 0;
    for (const size_t k : kills_needed) total += k;
    std::printf(
        "randomized: bug surfaced in %zu/%d seeds; kills needed: "
        "mean=%.1f median=%zu max=%zu (plus %zu seeds never surfaced it "
        "in 60s)\n",
        kills_needed.size(), kSeeds,
        static_cast<double>(total) / kills_needed.size(),
        kills_needed[kills_needed.size() / 2], kills_needed.back(), misses);
  } else {
    std::printf("randomized: bug never surfaced in %d seeds\n", kSeeds);
  }
  std::printf(
      "\nshape-check: systematic localizes the bug (names the culprit "
      "service); random only reports that *something* failed, after more "
      "fault actions on average.\n");
  return 0;
}
