// Ablation: systematic (Gremlin) vs randomized (Chaos-Monkey-style) fault
// injection.
//
// Setup: a binary-tree application (7 services) where every dependency
// call has a fallback EXCEPT one edge (svc0 -> svc2). Only a failure
// of svc2 produces user-visible errors — the kind of latent bug Table 1's
// postmortems describe.
//
// Gremlin's systematic sweep crashes one service at a time with scoped
// test traffic and checks user-visible health after each, finding the bug
// in at most #services targeted experiments, deterministically. The
// randomized baseline kills random services under background load until a
// user-visible failure happens to coincide; we report the distribution of
// kills needed over many seeds.
//
// This quantifies the paper's qualitative argument (Section 8.1): faults
// that cannot be constrained to a subset of requests or services make it
// expensive to zero in on implementation bugs.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/chaos.h"
#include "bench_json.h"
#include "campaign/runner.h"

namespace {

using namespace gremlin;  // NOLINT

// The buggy app (one missing fallback, svc0 -> svc2) as a campaign spec:
// every probe instantiates it into a private Simulation.
const campaign::AppSpec& buggy_app() {
  static const campaign::AppSpec app = campaign::AppSpec::buggy_tree();
  return app;
}

struct RandomOutcome {
  size_t kills = 0;
  bool found = false;
};

RandomOutcome random_probe(uint64_t seed) {
  sim::SimulationConfig cfg;
  cfg.seed = seed;
  sim::Simulation sim(cfg);
  auto graph = buggy_app().instantiate(&sim);

  baseline::ChaosOptions options;
  options.seed = seed * 7919 + 17;
  options.mean_interval = msec(500);
  options.outage_duration = msec(300);
  // Chaos may kill any of the 7 services (it does not know where the bug
  // is); leaf and internal kills are equally likely.
  // Neither tester may kill the user-facing root itself (any root kill is
  // trivially user-visible and says nothing about failure handling).
  options.candidates = graph.services();
  for (const char* excluded : {"user", "svc0"}) {
    options.candidates.erase(
        std::remove(options.candidates.begin(), options.candidates.end(),
                    excluded),
        options.candidates.end());
  }
  baseline::ChaosMonkey chaos(&sim, graph, options);
  chaos.unleash(sec(60));

  // Background traffic throughout the chaos run.
  auto first_failure_at = std::make_shared<TimePoint>(TimePoint::min());
  for (int i = 0; i < 1200; ++i) {
    sim.schedule(msec(50) * i, [&sim, i, first_failure_at] {
      sim.inject("user", "svc0",
                 sim::SimRequest{.request_id = "bg-" + std::to_string(i)},
                 [&sim, first_failure_at](const sim::SimResponse& resp) {
                   if (resp.failed() &&
                       *first_failure_at == TimePoint::min()) {
                     *first_failure_at = sim.now();
                   }
                 });
    });
  }
  sim.run();

  RandomOutcome outcome;
  if (*first_failure_at == TimePoint::min()) {
    outcome.kills = chaos.events().size();
    return outcome;  // never surfaced within the horizon
  }
  outcome.found = true;
  for (const auto& event : chaos.events()) {
    if (event.at <= *first_failure_at) ++outcome.kills;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf(
      "# Ablation — systematic Gremlin sweep vs randomized chaos\n"
      "# bug: svc0 has no failure handling for svc2 (7-service tree)\n\n");

  // --- systematic sweep (campaign engine) ---
  // generate_sweep enumerates one crash experiment per service, excluding
  // the user-facing front door (the same exclusion the hand-rolled loop
  // applied); the runner executes them on all cores, deterministically.
  campaign::SweepOptions sweep;
  sweep.kinds = {control::FailureSpec::Kind::kCrash};
  sweep.load.count = 20;
  sweep.load.gap = msec(10);
  sweep.seed = 42;
  const auto experiments =
      campaign::generate_sweep(buggy_app(), buggy_app().probe_graph(), sweep);
  const auto result = campaign::CampaignRunner().run(experiments);

  std::string culprit;
  size_t first_hit = experiments.size();
  for (size_t i = 0; i < result.experiments.size(); ++i) {
    if (!result.experiments[i].passed()) {
      culprit = result.experiments[i].id;
      first_hit = i + 1;
      break;
    }
  }
  std::printf(
      "systematic: bug exposed by %s — experiment %zu of %zu targeted "
      "experiments (deterministic; whole sweep ran in %.0fms on %d "
      "threads)\n",
      culprit.c_str(), first_hit, experiments.size(),
      to_seconds(result.wall_clock) * 1e3, result.threads);
  rows.add("ablation/systematic", "experiments_to_find_bug",
           static_cast<double>(first_hit), "count");
  rows.add("ablation/systematic", "sweep_wall",
           to_seconds(result.wall_clock) * 1e3, "ms");

  // --- randomized baseline over many seeds ---
  std::vector<size_t> kills_needed;
  size_t misses = 0;
  const int kSeeds = 30;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const auto outcome = random_probe(static_cast<uint64_t>(seed));
    if (outcome.found) {
      kills_needed.push_back(outcome.kills);
    } else {
      ++misses;
    }
  }
  if (!kills_needed.empty()) {
    std::sort(kills_needed.begin(), kills_needed.end());
    size_t total = 0;
    for (const size_t k : kills_needed) total += k;
    std::printf(
        "randomized: bug surfaced in %zu/%d seeds; kills needed: "
        "mean=%.1f median=%zu max=%zu (plus %zu seeds never surfaced it "
        "in 60s)\n",
        kills_needed.size(), kSeeds,
        static_cast<double>(total) / kills_needed.size(),
        kills_needed[kills_needed.size() / 2], kills_needed.back(), misses);
    rows.add("ablation/randomized", "mean_kills_to_find_bug",
             static_cast<double>(total) / kills_needed.size(), "count");
    rows.add("ablation/randomized", "seeds_missed",
             static_cast<double>(misses), "count");
  } else {
    std::printf("randomized: bug never surfaced in %d seeds\n", kSeeds);
  }
  std::printf(
      "\nshape-check: systematic localizes the bug (names the culprit "
      "service); random only reports that *something* failed, after more "
      "fault actions on average.\n");
  return rows.write() ? 0 : 1;
}
