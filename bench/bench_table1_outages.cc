// Table 1: recreations of five real-world outages as Gremlin recipes.
//
// Each outage is modelled twice: with the failure-handling bug the
// postmortem identified (naive) and with the recommended resiliency
// patterns applied (resilient). A Gremlin recipe — failure scenario, test
// load, assertions — runs against both. The paper's claim: systematic
// recipes diagnose the missing pattern *before* the outage; so the naive
// variant must fail at least one assertion and the resilient variant must
// pass all of them.
#include <cstdio>

#include "apps/outages.h"
#include "bench_json.h"

int main(int argc, char** argv) {
  using namespace gremlin;  // NOLINT

  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf(
      "# Table 1 — real outages recreated as Gremlin recipes\n"
      "# naive = as the postmortem describes; resilient = patterns "
      "applied\n\n");

  bool all_expected = true;
  for (const auto& outage : apps::table1_cases()) {
    std::printf("=== %s — %s ===\n", outage.id.c_str(),
                outage.summary.c_str());
    for (const bool resilient : {false, true}) {
      const auto results = apps::run_outage_case(outage, resilient);
      size_t passed = 0;
      for (const auto& r : results) {
        if (r.passed) ++passed;
      }
      std::printf("  [%s] %zu/%zu assertions passed\n",
                  resilient ? "resilient" : "naive    ", passed,
                  results.size());
      for (const auto& r : results) {
        std::printf("    %s %s — %s\n", r.passed ? "[PASS]" : "[FAIL]",
                    r.name.c_str(), r.detail.c_str());
      }
      const bool expected =
          resilient ? passed == results.size() : passed < results.size();
      if (!expected) {
        all_expected = false;
        std::printf("    !! unexpected outcome for this variant\n");
      }
      rows.add("table1/" + outage.id +
                   (resilient ? "/resilient" : "/naive"),
               "assertions_passed", static_cast<double>(passed), "count");
    }
    std::printf("\n");
  }
  std::printf(
      "shape-check: every naive variant diagnosed, every resilient "
      "variant clean: %s\n",
      all_expected ? "OK" : "VIOLATED");
  rows.add("table1", "all_expected", all_expected ? 1.0 : 0.0, "bool");
  if (!rows.write()) return 1;
  return all_expected ? 0 : 1;
}
