// Fault-space search: how much simulation time does dependency-aware
// pruning buy?
//
// Setup: the redundant seeded-bug app (docs/SEARCH.md) whose baseline
// workload exercises only 3 of 5 call edges — the audit subtree is dead
// code on the hot path. We run the full k <= 2 search twice, with and
// without the observed-call-graph pruner, and report wall clock, the
// fraction of the generated space pruned, and the per-stage funnel. The
// verdict sets must agree: pruning may only remove combinations that could
// not have failed.
//
// Shape expectations: the pruner replaces ~74% of the generated space with
// one baseline replay, so wall clock drops roughly proportionally (the
// surviving combinations dominate; shrinking is disabled to keep the
// comparison clean). Micro-benchmarks isolate the non-simulating pieces:
// enumeration, pruning decisions, and call-graph extraction.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>
#include <string>

#include "bench_json.h"
#include "campaign/app_spec.h"
#include "search/pruner.h"
#include "search/search.h"

namespace {

using namespace gremlin;  // NOLINT

search::SearchOptions bench_options(bool prune) {
  search::SearchOptions options;
  options.load.count = 40;
  options.load.gap = msec(5);
  options.threads = 4;
  options.prune = prune;
  options.shrink = false;  // measure the pruning win, not ddmin runs
  return options;
}

std::set<std::string> failing_labels(const search::SearchOutcome& outcome) {
  std::set<std::string> labels;
  for (const auto& c : outcome.combos) {
    if (c.ran && !c.passed && !c.error) labels.insert(c.label);
  }
  return labels;
}

void pruning_section() {
  const campaign::AppSpec app = campaign::AppSpec::redundant();
  std::printf("## Search funnel with vs without pruning (app=redundant)\n");

  auto& rows = benchjson::Rows::instance();
  search::SearchOutcome pruned;
  search::SearchOutcome exhaustive;
  for (const bool prune : {true, false}) {
    const search::SearchOutcome outcome =
        search::run_search(app, bench_options(prune));
    if (!outcome.ok) {
      std::printf("search error: %s\n", outcome.error.c_str());
      std::exit(1);
    }
    const double wall_s = to_seconds(outcome.wall_clock);
    std::printf(
        "prune=%-3s  generated=%zu  pruned=%zu (%.1f%%)  ran=%zu  "
        "failed=%zu  wall=%.3fs\n",
        prune ? "yes" : "no", outcome.generated, outcome.pruned,
        outcome.generated
            ? 100.0 * static_cast<double>(outcome.pruned) /
                  static_cast<double>(outcome.generated)
            : 0.0,
        outcome.ran, outcome.failed, wall_s);
    const std::string name =
        std::string("search_pruning/prune=") + (prune ? "on" : "off");
    rows.add(name, "wall", wall_s, "s");
    rows.add(name, "combinations_run", static_cast<double>(outcome.ran),
             "1");
    (prune ? pruned : exhaustive) = outcome;
  }

  const bool same_verdicts =
      failing_labels(pruned) == failing_labels(exhaustive);
  const double pruned_s = to_seconds(pruned.wall_clock);
  const double full_s = to_seconds(exhaustive.wall_clock);
  std::printf("verdicts-identical=%s  speedup=%.2fx\n\n",
              same_verdicts ? "yes" : "NO (PRUNER BUG)",
              pruned_s > 0 ? full_s / pruned_s : 0.0);
  if (!same_verdicts) std::exit(1);
  rows.add("search_pruning", "speedup",
           pruned_s > 0 ? full_s / pruned_s : 0.0, "x");
  rows.add("search_pruning", "pruned_fraction",
           pruned.generated
               ? static_cast<double>(pruned.pruned) /
                     static_cast<double>(pruned.generated)
               : 0.0,
           "1");
}

void BM_EnumerateAndGenerate(benchmark::State& state) {
  const campaign::AppSpec app = campaign::AppSpec::redundant();
  const topology::AppGraph graph = app.probe_graph();
  search::GeneratorOptions options;
  options.max_k = static_cast<int>(state.range(0));
  options.max_combinations = 0;
  for (auto _ : state) {
    const auto points =
        search::enumerate_fault_points(graph, options, {"user", "frontend"});
    auto combos = search::generate_combinations(points, options);
    benchmark::DoNotOptimize(combos);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnumerateAndGenerate)->Arg(2)->Arg(3);

void BM_PruneDecisions(benchmark::State& state) {
  // Decision throughput over the full k<=2 space against a real baseline
  // call graph (pure set intersections, no simulation).
  const campaign::AppSpec app = campaign::AppSpec::redundant();
  const topology::AppGraph graph = app.probe_graph();
  search::GeneratorOptions options;
  const auto points =
      search::enumerate_fault_points(graph, options, {"user", "frontend"});
  const auto combos = search::generate_combinations(points, options);

  campaign::Experiment baseline_exp;
  baseline_exp.id = "baseline";
  baseline_exp.app = app;
  baseline_exp.target = "frontend";
  baseline_exp.load.count = 40;
  baseline_exp.load.gap = msec(5);
  const search::Baseline baseline = search::run_baseline(baseline_exp);

  for (auto _ : state) {
    size_t kept = 0;
    for (const auto& combo : combos) {
      if (search::decide(points, combo, baseline.call_graph).keep()) ++kept;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(combos.size()));
}
BENCHMARK(BM_PruneDecisions);

void BM_CallGraphExtraction(benchmark::State& state) {
  // Cost of one LogStore::call_graph() over a baseline run's records.
  const campaign::AppSpec app = campaign::AppSpec::redundant();
  campaign::Experiment baseline_exp;
  baseline_exp.id = "baseline";
  baseline_exp.app = app;
  baseline_exp.target = "frontend";
  baseline_exp.load.count = 200;
  baseline_exp.load.gap = msec(5);
  sim::SimulationConfig cfg;
  cfg.seed = baseline_exp.seed;
  sim::Simulation sim(cfg);
  auto result = campaign::CampaignRunner::run_in(baseline_exp, &sim, false);
  benchmark::DoNotOptimize(result);

  for (auto _ : state) {
    auto graph = sim.log_store().call_graph();
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CallGraphExtraction);

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf("# Fault-space search — dependency-aware pruning\n\n");
  pruning_section();
  benchjson::run_registered_benchmarks(&argc, argv);
  return rows.write() ? 0 : 1;
}
