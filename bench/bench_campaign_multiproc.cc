// Multi-process campaign sharding: wall-clock scaling of forked worker
// pools against the single-process runner, under the byte-identical
// determinism contract (docs/PERFORMANCE.md).
//
// Setup: the depth-4 buggy-tree sweep (68 experiments) runs once in a
// single process (the reference fingerprint), then at increasing
// procs × threads combinations. Every row verifies both fingerprint() and
// verdict_fingerprint() against the reference — a mismatch is a
// determinism bug and fails the bench unconditionally. The crash-recovery
// section SIGKILLs a worker mid-campaign and checks that the merged result
// is still byte-identical (wall-clock cost only).
//
// Shape expectations: on a multi-core host, sharding approaches the
// physical core count like the in-process thread pool does, with fork +
// pipe overhead amortized over the batch; on a single-core host every row
// still verifies the protocol end to end. The throughput gate only binds
// when the host has >= 4 hardware threads (>= 1.0x vs single-process);
// byte identity is gated on every host.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "campaign/process_pool.h"
#include "campaign/runner.h"

namespace {

using namespace gremlin;  // NOLINT

std::vector<campaign::Experiment> depth4_sweep() {
  const campaign::AppSpec app = campaign::AppSpec::buggy_tree(4);
  campaign::SweepOptions options;
  options.load.count = 40;
  options.load.gap = msec(5);
  return campaign::generate_sweep(app, app.probe_graph(), options);
}

campaign::RunnerOptions runner_opts(int procs, int threads) {
  campaign::RunnerOptions o;
  o.procs = procs;
  o.threads = threads;
  o.keep_latencies = false;
  return o;
}

int run_sections() {
  const auto experiments = depth4_sweep();
  const unsigned hw = std::thread::hardware_concurrency();
  auto& rows = benchjson::Rows::instance();

  std::printf("## Multi-process sharding (%zu experiments, depth-4 buggy "
              "tree, hardware_concurrency=%u)\n",
              experiments.size(), hw);

  const campaign::CampaignResult reference =
      campaign::CampaignRunner(runner_opts(1, 1)).run(experiments);
  const std::string ref_fp = reference.fingerprint();
  const std::string ref_vfp = reference.verdict_fingerprint();
  const double base_s = to_seconds(reference.wall_clock);
  std::printf("procs=1 threads=1  wall=%.3fs  speedup=1.00x  (reference)\n",
              base_s);
  rows.add("campaign_multiproc/procs=1,threads=1", "wall", base_s, "s");
  rows.add("campaign_multiproc/procs=1,threads=1", "speedup", 1.0, "x");

  if (!campaign::multiproc_available()) {
    std::printf("fork unavailable on this platform; skipping sharded rows\n");
    rows.add("campaign_multiproc", "available", 0.0, "bool");
    return 0;
  }
  rows.add("campaign_multiproc", "available", 1.0, "bool");

  struct Combo {
    int procs;
    int threads;
  };
  double best_speedup = 0.0;
  bool all_identical = true;
  for (const Combo c : {Combo{2, 1}, Combo{4, 1}, Combo{2, 2}}) {
    const campaign::CampaignResult sharded =
        campaign::CampaignRunner(runner_opts(c.procs, c.threads))
            .run(experiments);
    const double wall_s = to_seconds(sharded.wall_clock);
    const double speedup = wall_s > 0 ? base_s / wall_s : 0.0;
    const bool identical = sharded.fingerprint() == ref_fp &&
                           sharded.verdict_fingerprint() == ref_vfp;
    all_identical = all_identical && identical;
    best_speedup = speedup > best_speedup ? speedup : best_speedup;
    std::printf(
        "procs=%d threads=%d  wall=%.3fs  speedup=%.2fx  "
        "byte-identical=%s\n",
        c.procs, c.threads, wall_s, speedup,
        identical ? "yes" : "NO (DETERMINISM BUG)");
    const std::string name = "campaign_multiproc/procs=" +
                             std::to_string(c.procs) +
                             ",threads=" + std::to_string(c.threads);
    rows.add(name, "wall", wall_s, "s");
    rows.add(name, "experiments_per_second",
             wall_s > 0 ? experiments.size() / wall_s : 0.0, "1/s");
    rows.add(name, "speedup", speedup, "x");
    rows.add(name, "byte_identical", identical ? 1.0 : 0.0, "bool");
  }

  // Crash recovery: SIGKILL the first worker after 3 delivered results.
  // The surviving worker absorbs the dead shard's lease; identity must
  // hold, only wall clock may suffer.
  campaign::MultiprocHooks hooks;
  hooks.kill_first_worker_after_results = 3;
  const campaign::CampaignResult survived =
      campaign::run_multiproc(experiments, runner_opts(2, 1), &hooks);
  const double crash_wall_s = to_seconds(survived.wall_clock);
  const bool crash_identical = survived.fingerprint() == ref_fp;
  all_identical = all_identical && crash_identical;
  std::printf(
      "procs=2 threads=1 +SIGKILL(worker0)  wall=%.3fs  "
      "byte-identical=%s\n\n",
      crash_wall_s, crash_identical ? "yes" : "NO (RECOVERY BUG)");
  rows.add("campaign_multiproc/crash_recovery", "wall", crash_wall_s, "s");
  rows.add("campaign_multiproc/crash_recovery", "byte_identical",
           crash_identical ? 1.0 : 0.0, "bool");
  rows.add("campaign_multiproc/best", "speedup", best_speedup, "x");

  // Identity gate: unconditional. A sharded campaign that is not
  // byte-identical to the single-process run is broken on any hardware.
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: sharded campaign not byte-identical to the "
                         "single-process reference\n");
    return 1;
  }

  // Throughput gate: only binds where sharding can actually help. Workers
  // share nothing at runtime (separate processes), so with >= 4 hardware
  // threads the best sharded row losing to sequential means the fork/pipe
  // overhead regressed. Fewer cores cannot speed up by multiprogramming;
  // there the floor only bounds protocol overhead.
  const double floor = hw >= 4 ? 1.0 : 0.40;
  if (best_speedup < floor) {
    std::fprintf(stderr,
                 "FAIL: best sharded speedup %.2fx below %.2fx floor "
                 "(hardware_concurrency=%u)\n",
                 best_speedup, floor, hw);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf("# Campaign engine — multi-process sharding\n\n");
  const int rc = run_sections();
  if (!rows.write()) return 1;
  return rc;
}
