// Figure 5: CDFs of response times from WordPress, based on injected delay
// between WordPress and Elasticsearch.
//
// The paper injects Delay faults of 1s..4s on the WordPress→Elasticsearch
// edge and measures WordPress's end-user response time. Because
// ElasticPress implements no timeout pattern, the quickest response time is
// dictated by the injected delay — every CDF starts at its delay value.
//
// Output: one CDF series per injected delay, plus the paper-shape check
// (min response time ≈ injected delay), plus a counterfactual run with a
// 1s timeout enabled to show the CDFs collapsing.
#include <cstdio>
#include <vector>

#include "apps/wordpress.h"
#include "bench_json.h"
#include "control/recipe.h"
#include "workload/stats.h"

namespace {

using namespace gremlin;  // NOLINT

control::LoadResult run_wordpress_with_delay(Duration delay,
                                             bool with_timeout,
                                             size_t requests) {
  sim::SimulationConfig cfg;
  cfg.seed = 42;
  sim::Simulation sim(cfg);
  apps::WordPressOptions options;
  options.with_timeout = with_timeout;
  options.timeout = sec(1);
  auto graph = apps::build_wordpress_app(&sim, options);
  control::TestSession session(&sim, graph);

  auto applied = session.apply(control::FailureSpec::delay_edge(
      "wordpress", "elasticsearch", delay));
  if (!applied.ok()) {
    std::fprintf(stderr, "rule install failed: %s\n",
                 applied.error().message.c_str());
    std::exit(1);
  }
  control::LoadOptions load;
  load.count = requests;
  load.gap = msec(50);
  return session.run_load("user", "wordpress", load);
}

}  // namespace

int main(int argc, char** argv) {
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  constexpr size_t kRequests = 100;
  std::printf(
      "# Figure 5 — CDFs of WordPress response times under injected\n"
      "# WordPress->Elasticsearch delay (ElasticPress: no timeout pattern)\n"
      "# %zu requests per setting, seed 42\n\n",
      kRequests);

  for (const int delay_s : {1, 2, 3, 4}) {
    const auto result =
        run_wordpress_with_delay(sec(delay_s), false, kRequests);
    const auto summary = workload::summarize(result.latencies);
    std::printf("## injected delay = %ds\n", delay_s);
    std::printf("%s", workload::format_cdf(result.latencies, 10).c_str());
    std::printf("min=%.3fs p50=%.3fs max=%.3fs failures=%zu\n",
                to_seconds(summary.min), to_seconds(summary.p50),
                to_seconds(summary.max), result.failures);
    const bool offset_by_delay = summary.min >= sec(delay_s);
    std::printf("shape-check: min response >= injected delay: %s\n\n",
                offset_by_delay ? "OK (no timeout pattern)" : "VIOLATED");
    const std::string name = "fig5/delay=" + std::to_string(delay_s) + "s";
    rows.add(name, "min", to_seconds(summary.min), "s");
    rows.add(name, "p50", to_seconds(summary.p50), "s");
    rows.add(name, "max", to_seconds(summary.max), "s");
  }

  std::printf(
      "## counterfactual: ElasticPress with a 1s timeout, 3s injected "
      "delay\n");
  const auto fixed = run_wordpress_with_delay(sec(3), true, kRequests);
  const auto summary = workload::summarize(fixed.latencies);
  std::printf("%s", workload::format_cdf(fixed.latencies, 10).c_str());
  std::printf(
      "max=%.3fs — responses bounded by the timeout, CDF no longer offset\n",
      to_seconds(summary.max));
  rows.add("fig5/timeout=1s,delay=3s", "max", to_seconds(summary.max), "s");
  return rows.write() ? 0 : 1;
}
