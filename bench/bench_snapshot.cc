// Prefix-snapshot campaign execution: fork-and-restore on a windowed
// mega-topology sweep (docs/PERFORMANCE.md).
//
// Two sections:
//
// 1. Windowed-sweep speedup gate. A generated sweep over a mega app where
//    every fault activates at 80% of the load's natural length — the
//    activation-window shape prefix snapshots exist for. Baseline = the
//    warm-world path with snapshots disabled (--no-snapshot): every
//    experiment re-simulates the identical fault-free prefix. New = the
//    snapshot cache: the first experiment builds the prefix snapshot, every
//    sibling restores it and simulates only the post-activation tail.
//    Gate: >= 2x campaign wall clock, single-threaded so the ratio measures
//    the execution path and not the scheduler.
//
// 2. Byte-identity matrix (gated unconditionally, even if section 1
//    fails). Snapshots-on must equal snapshots-off, cold construction, and
//    the heap-only scheduler — fingerprint() AND verdict_fingerprint() —
//    with early exit on or off.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "campaign/experiment.h"
#include "campaign/runner.h"
#include "report/campaign_report.h"

namespace {

using namespace gremlin;  // NOLINT

// 3 tiers x 6 wide mega app (19 services, default fan-out): big enough
// that per-experiment cost is event processing, small enough that the
// sweep's experiment count — not one experiment's length — dominates.
campaign::AppSpec snapshot_app() { return campaign::AppSpec::mega(3, 6, 42); }

// Windowed sweep: open-loop load of 300 requests at 1ms spacing runs
// ~300ms of virtual time; every fault activates at 240ms (80%), so 80% of
// each experiment is the shared fault-free prefix.
std::vector<campaign::Experiment> windowed_sweep() {
  const campaign::AppSpec app = snapshot_app();
  campaign::SweepOptions sweep;
  sweep.load.count = 300;
  sweep.load.gap = msec(1);
  sweep.windows.push_back({msec(240), Duration{}});
  return campaign::generate_sweep(app, app.probe_graph(), sweep);
}

campaign::RunnerOptions options(bool snapshots, bool early_exit = false,
                                bool warm = true, bool wheel = true) {
  campaign::RunnerOptions o;
  o.threads = 1;
  o.early_exit = early_exit;
  o.warm_worlds = warm;
  o.use_snapshots = snapshots;
  o.use_timer_wheel = wheel;
  return o;
}

double wall_s(const campaign::CampaignResult& result) {
  return to_millis(result.wall_clock) / 1e3;
}

// Best-of-two (shortest wall clock): noise only ever slows a run down, so
// the faster repetition is the truer measurement.
campaign::CampaignResult run_best(
    const std::vector<campaign::Experiment>& experiments,
    const campaign::RunnerOptions& opts) {
  const campaign::CampaignRunner runner(opts);
  campaign::CampaignResult best = runner.run(experiments);
  campaign::CampaignResult second = runner.run(experiments);
  if (second.wall_clock < best.wall_clock) best = std::move(second);
  return best;
}

int run_speedup_gate(const std::vector<campaign::Experiment>& experiments,
                     std::string* baseline_fp, std::string* baseline_vfp) {
  auto& rows = benchjson::Rows::instance();
  std::printf("## Windowed mega-topology sweep (%zu experiments, faults "
              "activate at 80%% of the run)\n",
              experiments.size());

  const campaign::CampaignResult baseline =
      run_best(experiments, options(/*snapshots=*/false));
  const campaign::CampaignResult snap =
      run_best(experiments, options(/*snapshots=*/true));
  *baseline_fp = baseline.fingerprint();
  *baseline_vfp = baseline.verdict_fingerprint();

  const report::CampaignReport rep =
      report::build_campaign_report(snap, "bench_snapshot");
  const double base_s = wall_s(baseline);
  const double snap_s = wall_s(snap);
  const double speedup = snap_s > 0 ? base_s / snap_s : 0;
  const double base_eps = base_s > 0 ? experiments.size() / base_s : 0;
  const double snap_eps = snap_s > 0 ? experiments.size() / snap_s : 0;

  std::printf("  no-snapshot (warm): %.3fs (%.1f experiments/s)\n", base_s,
              base_eps);
  std::printf("  prefix snapshots:   %.3fs (%.1f experiments/s), "
              "%zu hits / %zu misses, %llu prefix events skipped\n",
              snap_s, snap_eps, rep.snapshot_hits, rep.snapshot_misses,
              static_cast<unsigned long long>(rep.prefix_events_skipped));
  std::printf("  speedup: %.2fx\n\n", speedup);

  rows.add("snapshot/windowed_sweep/no_snapshot", "wall", base_s, "s");
  rows.add("snapshot/windowed_sweep/no_snapshot", "experiments_per_second",
           base_eps, "1/s");
  rows.add("snapshot/windowed_sweep/snapshots", "wall", snap_s, "s");
  rows.add("snapshot/windowed_sweep/snapshots", "experiments_per_second",
           snap_eps, "1/s");
  rows.add("snapshot/windowed_sweep/snapshots", "snapshot_hits",
           static_cast<double>(rep.snapshot_hits), "count");
  rows.add("snapshot/windowed_sweep/snapshots", "prefix_events_skipped",
           static_cast<double>(rep.prefix_events_skipped), "count");
  rows.add("snapshot/gate", "speedup", speedup, "x");

  // The snapshot run must actually have taken the snapshot path: a silent
  // eligibility regression would "pass" the identity gate by running the
  // baseline twice.
  if (rep.snapshot_hits == 0) {
    std::fprintf(stderr, "FAIL: snapshot run recorded no cache hits — the "
                         "windowed sweep did not engage the snapshot path\n");
    return 1;
  }
  if (snap.fingerprint() != *baseline_fp ||
      snap.verdict_fingerprint() != *baseline_vfp) {
    std::fprintf(stderr, "FAIL: snapshot campaign not byte-identical to the "
                         "no-snapshot baseline\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: windowed-sweep speedup %.2fx below the 2.0x gate\n",
                 speedup);
    return 1;
  }
  return 0;
}

int run_identity_matrix(const std::vector<campaign::Experiment>& experiments,
                        const std::string& ref_fp,
                        const std::string& ref_vfp) {
  auto& rows = benchjson::Rows::instance();
  std::printf("## Byte-identity matrix\n");

  bool all_identical = true;
  auto check = [&](const std::string& label,
                   const campaign::CampaignResult& result) {
    const bool identical = result.fingerprint() == ref_fp &&
                           result.verdict_fingerprint() == ref_vfp;
    all_identical = all_identical && identical;
    std::printf("  %-32s byte-identical=%s\n", label.c_str(),
                identical ? "yes" : "NO (DETERMINISM BUG)");
    rows.add("snapshot/identity/" + label, "byte_identical",
             identical ? 1.0 : 0.0, "bool");
  };

  check("snapshots,wheel=off",
        campaign::CampaignRunner(options(true, false, true, false))
            .run(experiments));
  check("cold", campaign::CampaignRunner(options(false, false, false))
                    .run(experiments));

  // Early exit on: snapshots-on and snapshots-off must still agree with
  // each other (early-terminated counters differ from the full run, so the
  // reference here is the snapshots-off early-exit campaign).
  const campaign::CampaignResult early_off =
      campaign::CampaignRunner(options(false, true)).run(experiments);
  const campaign::CampaignResult early_on =
      campaign::CampaignRunner(options(true, true)).run(experiments);
  const bool early_identical =
      early_on.fingerprint() == early_off.fingerprint() &&
      early_on.verdict_fingerprint() == early_off.verdict_fingerprint();
  all_identical = all_identical && early_identical;
  std::printf("  %-32s byte-identical=%s\n", "early_exit pair",
              early_identical ? "yes" : "NO (DETERMINISM BUG)");
  rows.add("snapshot/identity/early_exit_pair", "byte_identical",
           early_identical ? 1.0 : 0.0, "bool");
  std::printf("\n");

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: snapshot campaign results not "
                         "byte-identical across the matrix\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf("# Prefix snapshots — fork-and-restore campaign execution\n\n");
  const auto experiments = windowed_sweep();
  std::string ref_fp;
  std::string ref_vfp;
  const int gate_rc = run_speedup_gate(experiments, &ref_fp, &ref_vfp);
  // Identity is gated unconditionally — a fast-but-wrong path must fail
  // loudly even when the speedup gate already failed.
  const int matrix_rc = run_identity_matrix(experiments, ref_fp, ref_vfp);
  const int rc = gate_rc != 0 ? gate_rc : matrix_rc;
  if (!rows.write()) return 1;
  return rc;
}
