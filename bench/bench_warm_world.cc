// Warm-world execution: cold (fresh Simulation per experiment) vs warm
// (one long-lived Simulation per AppSpec, deep-reset between experiments,
// fault translation memoized by control::RuleCache).
//
// The binary overrides global operator new to count heap allocations and
// measures two sections:
//   1. Throughput — the same experiment stream executed cold and warm;
//      reports experiments/second for both and the warm/cold speedup. Every
//      warm result is fingerprint-compared to its cold twin: a mismatch is
//      a determinism bug and the bench exits non-zero (this is the perf
//      gate AND a differential check).
//   2. Allocations — steady-state allocations per experiment, cold vs
//      warm. Cold pays the full deployment build (services, instances,
//      agents, dep caches); warm reuses all of it, so its count collapses
//      to the per-run residue (log records, result vectors) and must stay
//      well below cold.
//
// Shape expectations: warm >= 1.5x cold on the depth-4 tree (the ISSUE 5
// acceptance), warm allocations a small fraction of cold.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

static std::atomic<size_t> g_allocs{0};

void* operator new(size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

#include "bench_json.h"
#include "campaign/runner.h"
#include "campaign/warm_world.h"

namespace {

using namespace gremlin;  // NOLINT

size_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }

std::vector<campaign::Experiment> depth4_sweep() {
  const campaign::AppSpec app = campaign::AppSpec::buggy_tree(4);
  campaign::SweepOptions options;
  options.load.count = 40;
  options.load.gap = msec(5);
  return campaign::generate_sweep(app, app.probe_graph(), options);
}

void throughput_section(benchjson::Rows& rows) {
  std::printf("## Cold vs warm throughput (depth-4 buggy tree)\n");
  const auto experiments = depth4_sweep();
  const campaign::ExecOptions exec;
  constexpr int kRuns = 150;

  // Warm interning and both code paths before timing.
  campaign::WarmWorld world(experiments[0].app);
  (void)campaign::CampaignRunner::run_one(experiments[0], exec);
  (void)world.run(experiments[0], exec);

  std::vector<std::string> cold_fingerprints;
  cold_fingerprints.reserve(kRuns);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRuns; ++i) {
    const auto result = campaign::CampaignRunner::run_one(
        experiments[static_cast<size_t>(i) % experiments.size()], exec);
    cold_fingerprints.push_back(result.fingerprint());
  }
  const std::chrono::duration<double> cold_elapsed =
      std::chrono::steady_clock::now() - start;

  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRuns; ++i) {
    const auto result =
        world.run(experiments[static_cast<size_t>(i) % experiments.size()],
                  exec);
    if (result.fingerprint() != cold_fingerprints[static_cast<size_t>(i)]) {
      std::fprintf(stderr,
                   "DETERMINISM BUG: warm run of %s differs from cold\n",
                   result.id.c_str());
      std::exit(1);
    }
  }
  const std::chrono::duration<double> warm_elapsed =
      std::chrono::steady_clock::now() - start;

  const double cold_per_s = kRuns / cold_elapsed.count();
  const double warm_per_s = kRuns / warm_elapsed.count();
  const double speedup = warm_per_s / cold_per_s;
  std::printf(
      "%d experiments: cold %.1f/s, warm %.1f/s (%.2fx), all %d warm "
      "results byte-identical to cold\n\n",
      kRuns, cold_per_s, warm_per_s, speedup, kRuns);
  rows.add("warmworld/throughput/cold", "experiments_per_second", cold_per_s,
           "1/s");
  rows.add("warmworld/throughput/warm", "experiments_per_second", warm_per_s,
           "1/s");
  rows.add("warmworld/throughput", "speedup", speedup, "x");
}

void allocation_section(benchjson::Rows& rows) {
  std::printf("## Allocations per experiment, cold vs warm\n");
  const auto experiments = depth4_sweep();
  campaign::ExecOptions exec;
  exec.keep_latencies = false;
  constexpr int kRuns = 50;

  campaign::WarmWorld world(experiments[0].app);
  (void)campaign::CampaignRunner::run_one(experiments[0], exec);
  (void)world.run(experiments[0], exec);

  size_t before = allocs_now();
  for (int i = 0; i < kRuns; ++i) {
    auto result = campaign::CampaignRunner::run_one(
        experiments[static_cast<size_t>(i) % experiments.size()], exec);
    benchmark::DoNotOptimize(result);
  }
  const double cold_allocs =
      static_cast<double>(allocs_now() - before) / kRuns;

  before = allocs_now();
  for (int i = 0; i < kRuns; ++i) {
    auto result = world.run(
        experiments[static_cast<size_t>(i) % experiments.size()], exec);
    benchmark::DoNotOptimize(result);
  }
  const double warm_allocs =
      static_cast<double>(allocs_now() - before) / kRuns;

  std::printf(
      "cold %.0f allocations/experiment, warm %.0f (%.1f%% of cold)\n\n",
      cold_allocs, warm_allocs,
      cold_allocs > 0 ? 100.0 * warm_allocs / cold_allocs : 0.0);
  if (warm_allocs >= cold_allocs) {
    std::fprintf(stderr,
                 "warm path allocates as much as cold (%.0f vs %.0f); the "
                 "deployment is not being reused\n",
                 warm_allocs, cold_allocs);
    std::exit(1);
  }
  rows.add("warmworld/allocs/cold", "allocs_per_experiment", cold_allocs,
           "count");
  rows.add("warmworld/allocs/warm", "allocs_per_experiment", warm_allocs,
           "count");
}

}  // namespace

int main(int argc, char** argv) {
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf("# Warm-world execution — cold vs warm differential\n\n");
  throughput_section(rows);
  allocation_section(rows);
  return rows.write() ? 0 : 1;
}
