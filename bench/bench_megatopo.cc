// Mega-topology scale-out: timer-wheel scheduling + open-loop heavy
// traffic against a 500-service deployment (docs/PERFORMANCE.md).
//
// Three sections:
//
// 1. Open-loop throughput gate. A 501-service tiered deployment takes a
//    dense open-loop arrival stream. Baseline = the pre-wheel scheduler
//    (use_timer_wheel=false) with all arrivals prescheduled upfront, so
//    every event operation pays O(log n) against the pending arrival mass
//    sitting in the binary heap. New = timer wheel + chained arrivals
//    (O(1) pending, O(1) slot ops). Gate: >= 3x events/second over the
//    pre-PR engine — the live in-binary differential scaled by the
//    recorded heap-vs-pre-PR factor (see kPrePrEventsPerSec below).
//
// 2. Full mega traversal. The same deployment driven through its gateway,
//    so every request fans across all ten tiers. Reported for shape; the
//    wheel must at least not regress (>= 0.9x floor).
//
// 3. Byte-identity matrix. A generated sweep campaign over a mega app runs
//    at {1,4,8} threads x {1,2} procs x warm/cold, plus a heap-only
//    (wheel-off) run. Every fingerprint() and verdict_fingerprint() must
//    equal the single-threaded reference — the wheel reorders nothing.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "campaign/process_pool.h"
#include "campaign/runner.h"
#include "topology/graph.h"
#include "workload/generator.h"
#include "workload/stats.h"

namespace {

using namespace gremlin;  // NOLINT

// Recorded reference pair for the ">= 3x over the pre-PR engine" gate,
// both measured on the same machine and day with the section-1 workload
// (501 services, 20M requests, gap 1us into t9_w0, best-of-two):
//
//   - kPrePrEventsPerSec: the parent revision's engine (binary heap only,
//     prescheduled arrivals, map-based AoS dispatch, no Symbol inject
//     path), driven by an equivalent hand-built example at that revision.
//   - kRecordedHeapEventsPerSec: THIS revision's wheel-off prescheduled
//     side from the same bench section.
//
// Only their ratio enters the gate: it converts the live in-binary
// wheel-vs-heap differential into a speedup over the true pre-PR engine —
// the in-binary heap baseline is itself faster than pre-PR (armed-probe
// fault bypass, single-scan run loop, SoA dispatch), so gating on the live
// differential alone would under-credit the wheel, while gating on an
// absolute events/s would break on different hardware. (Same recording
// convention as BASELINE_EXPERIMENTS_PER_SEC in tools/bench.sh.)
constexpr double kPrePrEventsPerSec = 1932241.0;
constexpr double kRecordedHeapEventsPerSec = 2025368.0;
constexpr double kHeapVsPrePr = kRecordedHeapEventsPerSec / kPrePrEventsPerSec;

// 10 tiers x 50 wide + gateway = 501 services; fan_out=1 keeps one
// request's traversal linear in the tier count instead of exponential.
campaign::AppSpec mega_app_501() {
  sim::ServiceConfig prototype;
  prototype.processing_time = msec(1);
  // Jittered processing defeats the same-delay timer lanes (capped at 8),
  // so per-hop delays route through the scheduler under test — the wheel
  // when enabled, the binary heap otherwise — as varied-deadline events.
  prototype.processing_jitter = 0.5;
  resilience::CallPolicy policy;
  policy.timeout = msec(500);
  prototype.default_policy = policy;
  return campaign::AppSpec::from_graph(
      topology::AppGraph::tiered(10, 50, /*seed=*/42, /*fan_out=*/1),
      prototype);
}

struct RunStats {
  double wall_s = 0;
  double events = 0;
  double events_per_s = 0;
  size_t failures = 0;
};

RunStats drive_once(const campaign::AppSpec& app, const std::string& target,
                    size_t requests, Duration gap, bool wheel, bool chained) {
  sim::SimulationConfig cfg;
  cfg.seed = 42;
  cfg.use_timer_wheel = wheel;
  sim::Simulation sim(cfg);
  app.instantiate(&sim);
  // Log records are not under test here; recording off keeps the event
  // loop (scheduling + hops) as the measured quantity.
  sim.set_recording(false);

  workload::TrafficSpec spec;
  spec.count = requests;
  spec.gap = gap;
  spec.chained = chained;

  // Timing includes scheduling the traffic: prescheduling N arrivals is
  // real work the pre-wheel engine pays (N heap pushes + N pool nodes
  // resident for the whole run), and chained injection's O(1) pending set
  // is precisely the claim under test.
  const auto start = std::chrono::steady_clock::now();
  auto result = workload::schedule_traffic(&sim, target, spec);
  sim.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunStats stats;
  stats.wall_s = wall_s;
  stats.events = static_cast<double>(sim.events_processed());
  stats.events_per_s = wall_s > 0 ? stats.events / wall_s : 0;
  stats.failures = result->failures;
  return stats;
}

// Best-of-two (shortest wall clock): a hypervisor steal burst hitting one
// side of a pair skews the ratio by tens of percent; noise only ever slows
// a run down, so the faster repetition is the truer measurement.
RunStats drive(const campaign::AppSpec& app, const std::string& target,
               size_t requests, Duration gap, bool wheel, bool chained) {
  RunStats best = drive_once(app, target, requests, gap, wheel, chained);
  const RunStats second =
      drive_once(app, target, requests, gap, wheel, chained);
  if (second.events_per_s > best.events_per_s) best = second;
  return best;
}

void report_pair(const char* section, const RunStats& base,
                 const RunStats& wheel) {
  auto& rows = benchjson::Rows::instance();
  const double speedup =
      base.events_per_s > 0 ? wheel.events_per_s / base.events_per_s : 0;
  std::printf("  heap+prescheduled: %.0f events in %.3fs (%.2fM events/s)\n",
              base.events, base.wall_s, base.events_per_s / 1e6);
  std::printf("  wheel+chained:     %.0f events in %.3fs (%.2fM events/s)\n",
              wheel.events, wheel.wall_s, wheel.events_per_s / 1e6);
  std::printf("  speedup: %.2fx\n\n", speedup);
  rows.add(std::string(section) + "/heap_prescheduled", "events_per_second",
           base.events_per_s, "1/s");
  rows.add(std::string(section) + "/heap_prescheduled", "wall", base.wall_s,
           "s");
  rows.add(std::string(section) + "/wheel_chained", "events_per_second",
           wheel.events_per_s, "1/s");
  rows.add(std::string(section) + "/wheel_chained", "wall", wheel.wall_s,
           "s");
  rows.add(section, "speedup", speedup, "x");
}

int run_throughput_sections() {
  const campaign::AppSpec app = mega_app_501();
  auto& rows = benchjson::Rows::instance();

  // Section 1: dense arrivals into a terminal-tier service — the
  // million-user fan-in shape. Prescheduling parks 20M arrival events in
  // the baseline's binary heap (320MB of entries + ~2.8GB of resident pool
  // nodes, far past L3), so every event push/pop sifts through a
  // cache-hostile array; wheel + chained arrivals keep pending state O(1)
  // and every slot op O(1).
  std::printf("## Open-loop dense arrivals (501-service deployment, "
              "20000000 requests into t9_w0)\n");
  const RunStats base1 =
      drive(app, "t9_w0", 20000000, usec(1), /*wheel=*/false,
            /*chained=*/false);
  const RunStats wheel1 =
      drive(app, "t9_w0", 20000000, usec(1), /*wheel=*/true,
            /*chained=*/true);
  report_pair("megatopo/dense_arrivals", base1, wheel1);

  // Section 2: gateway traversal — every request touches all 501 services.
  std::printf("## Gateway traversal (every request crosses all ten "
              "tiers, 1000 requests into gw)\n");
  const RunStats base2 =
      drive(app, "gw", 1000, usec(200), /*wheel=*/false, /*chained=*/false);
  const RunStats wheel2 =
      drive(app, "gw", 1000, usec(200), /*wheel=*/true, /*chained=*/true);
  report_pair("megatopo/gateway_traversal", base2, wheel2);

  const double dense_speedup =
      base1.events_per_s > 0 ? wheel1.events_per_s / base1.events_per_s : 0;
  const double traversal_speedup =
      base2.events_per_s > 0 ? wheel2.events_per_s / base2.events_per_s : 0;
  // Live in-binary differential x recorded heap-vs-pre-PR factor = speedup
  // over the true pre-PR engine (see the constants at the top of the file).
  const double vs_prepr = dense_speedup * kHeapVsPrePr;
  std::printf("  dense arrivals vs the recorded pre-PR engine: %.2fx "
              "(in-binary %.2fx x recorded heap factor %.2fx)\n\n",
              vs_prepr, dense_speedup, kHeapVsPrePr);
  rows.add("megatopo/gate", "dense_speedup", dense_speedup, "x");
  rows.add("megatopo/gate", "speedup_vs_prepr", vs_prepr, "x");

  if (vs_prepr < 3.0) {
    std::fprintf(stderr,
                 "FAIL: dense-arrival speedup %.2fx over the pre-PR engine "
                 "(in-binary %.2fx x %.2fx) below the 3.0x gate\n",
                 vs_prepr, dense_speedup, kHeapVsPrePr);
    return 1;
  }
  if (traversal_speedup < 0.9) {
    std::fprintf(stderr,
                 "FAIL: gateway-traversal speedup %.2fx below the 0.9x "
                 "no-regression floor\n",
                 traversal_speedup);
    return 1;
  }
  return 0;
}

int run_identity_matrix() {
  // Small mega app (3 tiers x 6 wide, default fan-out 3) so the full sweep
  // stays fast; the matrix is about schedules, not scale.
  const campaign::AppSpec app = campaign::AppSpec::mega(3, 6, 42);
  campaign::SweepOptions sweep;
  sweep.load.count = 40;
  sweep.load.gap = msec(5);
  const auto experiments =
      campaign::generate_sweep(app, app.probe_graph(), sweep);

  std::printf("## Byte-identity matrix (%zu sweep experiments over %s)\n",
              experiments.size(), app.name.c_str());
  auto& rows = benchjson::Rows::instance();

  auto opts = [](int threads, int procs, bool warm, bool wheel) {
    campaign::RunnerOptions o;
    o.threads = threads;
    o.procs = procs;
    o.warm_worlds = warm;
    o.use_timer_wheel = wheel;
    o.keep_latencies = false;
    return o;
  };

  const campaign::CampaignResult reference =
      campaign::CampaignRunner(opts(1, 1, true, true)).run(experiments);
  const std::string ref_fp = reference.fingerprint();
  const std::string ref_vfp = reference.verdict_fingerprint();

  bool all_identical = true;
  auto check = [&](const std::string& label,
                   const campaign::CampaignResult& result) {
    const bool identical = result.fingerprint() == ref_fp &&
                           result.verdict_fingerprint() == ref_vfp;
    all_identical = all_identical && identical;
    std::printf("  %-34s byte-identical=%s\n", label.c_str(),
                identical ? "yes" : "NO (DETERMINISM BUG)");
    rows.add("megatopo/identity/" + label, "byte_identical",
             identical ? 1.0 : 0.0, "bool");
  };

  // Heap-only differential: the wheel must reproduce the pure-heap
  // schedule exactly.
  check("wheel=off",
        campaign::CampaignRunner(opts(1, 1, true, false)).run(experiments));

  const bool multiproc = campaign::multiproc_available();
  for (const int procs : {1, 2}) {
    if (procs > 1 && !multiproc) {
      std::printf("  (fork unavailable; skipping procs=2 rows)\n");
      break;
    }
    for (const int threads : {1, 4, 8}) {
      for (const bool warm : {true, false}) {
        if (procs == 1 && threads == 1 && warm) continue;  // the reference
        const std::string label = "threads=" + std::to_string(threads) +
                                  ",procs=" + std::to_string(procs) +
                                  (warm ? ",warm" : ",cold");
        check(label, campaign::CampaignRunner(opts(threads, procs, warm,
                                                   true))
                         .run(experiments));
      }
    }
  }
  std::printf("\n");

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: mega campaign results not byte-identical "
                         "across the scheduler/threads/procs matrix\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf("# Mega-topology scale-out — timer wheel + open-loop "
              "arrivals\n\n");
  int rc = run_throughput_sections();
  const int matrix_rc = run_identity_matrix();
  rc = rc != 0 ? rc : matrix_rc;
  if (!rows.write()) return 1;
  return rc;
}
