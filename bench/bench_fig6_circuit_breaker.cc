// Figure 6: CDFs of WordPress response times — first 100 requests aborted,
// next 100 delayed by 3s.
//
// The paper's Overload test: Gremlin aborts 100 consecutive
// WordPress→Elasticsearch requests, then delays the next 100 by three
// seconds. With a correct circuit breaker, a portion of the delayed
// requests would return immediately (breaker open after the abort storm);
// ElasticPress has none, so every delayed request completes only after 3s.
//
// Output: the aborted-phase CDF, the delayed-phase CDF, the paper-shape
// check (no delayed request under 3s), and the counterfactual with a
// breaker (threshold 50) where all delayed-phase requests are fast.
#include <cstdio>

#include "apps/wordpress.h"
#include "bench_json.h"
#include "control/recipe.h"
#include "workload/stats.h"

namespace {

using namespace gremlin;  // NOLINT

struct PhaseResult {
  std::vector<Duration> aborted_phase;
  std::vector<Duration> delayed_phase;
};

PhaseResult run_fig6(bool with_breaker) {
  sim::SimulationConfig cfg;
  cfg.seed = 42;
  sim::Simulation sim(cfg);
  apps::WordPressOptions options;
  options.with_circuit_breaker = with_breaker;
  options.breaker = resilience::CircuitBreakerConfig{50, sec(60), 1};
  auto graph = apps::build_wordpress_app(&sim, options);
  control::TestSession session(&sim, graph);

  control::FailureSpec abort_spec = control::FailureSpec::abort_edge(
      "wordpress", "elasticsearch", 503);
  abort_spec.max_matches = 100;
  control::FailureSpec delay_spec = control::FailureSpec::delay_edge(
      "wordpress", "elasticsearch", sec(3));
  delay_spec.max_matches = 100;
  if (!session.apply(abort_spec).ok() || !session.apply(delay_spec).ok()) {
    std::fprintf(stderr, "rule install failed\n");
    std::exit(1);
  }

  control::LoadOptions load;
  load.count = 200;
  load.closed_loop = true;  // sequential requests, like the paper's ab run
  const auto result = session.run_load("user", "wordpress", load);

  PhaseResult phases;
  for (size_t i = 0; i < 100; ++i) {
    phases.aborted_phase.push_back(result.latencies[i]);
  }
  for (size_t i = 100; i < 200; ++i) {
    phases.delayed_phase.push_back(result.latencies[i]);
  }
  return phases;
}

void print_phase(const char* label, const std::vector<Duration>& latencies,
                 const std::string& row_name) {
  const auto summary = workload::summarize(latencies);
  std::printf("## %s\n%s", label,
              workload::format_cdf(latencies, 10).c_str());
  std::printf("min=%.3fs p50=%.3fs max=%.3fs\n\n", to_seconds(summary.min),
              to_seconds(summary.p50), to_seconds(summary.max));
  auto& rows = benchjson::Rows::instance();
  rows.add(row_name, "p50", to_seconds(summary.p50), "s");
  rows.add(row_name, "max", to_seconds(summary.max), "s");
}

}  // namespace

int main(int argc, char** argv) {
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf(
      "# Figure 6 — WordPress response-time CDFs: 100 aborted then 100\n"
      "# delayed (3s) requests on the WordPress->Elasticsearch edge\n\n");

  std::printf("=== ElasticPress as shipped (no circuit breaker) ===\n");
  const auto shipped = run_fig6(false);
  print_phase("aborted phase (mysql fallback)", shipped.aborted_phase,
              "fig6_shipped/aborted_phase");
  print_phase("delayed phase", shipped.delayed_phase,
              "fig6_shipped/delayed_phase");
  size_t under_3s = 0;
  for (const Duration lat : shipped.delayed_phase) {
    if (lat < sec(3)) ++under_3s;
  }
  std::printf(
      "shape-check: delayed requests returning before 3s: %zu/100 %s\n\n",
      under_3s,
      under_3s == 0 ? "(none — no tripped circuit breaker, as in the paper)"
                    : "(breaker behaviour detected?)");
  rows.add("fig6_shipped/delayed_phase", "under_3s",
           static_cast<double>(under_3s), "count");

  std::printf("=== counterfactual: circuit breaker, threshold 50 ===\n");
  const auto fixed = run_fig6(true);
  print_phase("delayed phase with breaker", fixed.delayed_phase,
              "fig6_breaker/delayed_phase");
  size_t fast = 0;
  for (const Duration lat : fixed.delayed_phase) {
    if (lat < sec(1)) ++fast;
  }
  std::printf(
      "shape-check: delayed requests returning immediately: %zu/100 "
      "(breaker tripped during the abort phase)\n",
      fast);
  rows.add("fig6_breaker/delayed_phase", "fast_returns",
           static_cast<double>(fast), "count");
  return rows.write() ? 0 : 1;
}
