// Online assertion checking: how much wall clock does early-verdict
// termination buy on failure-heavy workloads?
//
// Setup: the buggy-tree app (a seeded bug makes many injected faults
// user-visible) measured two ways. First a campaign sweep run with the
// online checker deciding verdicts mid-flight (early-exit on) and again
// with every simulation drained to quiescence (early-exit off). Then the
// headline workload: a full k <= 2 fault-space search with shrinking —
// ddmin replays failing configurations over and over, and every one of
// those probes fails fast under online checking. In both comparisons the
// verdicts must be identical: early exit may only skip simulation that can
// no longer change the outcome.
//
// Micro-benchmarks isolate the per-record cost of the incremental check
// panel against the post-hoc checker's full-log queries.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_json.h"
#include "campaign/app_spec.h"
#include "campaign/experiment.h"
#include "campaign/runner.h"
#include "control/checker.h"
#include "control/online.h"
#include "logstore/store.h"
#include "search/search.h"
#include "topology/graph.h"

namespace {

using namespace gremlin;  // NOLINT

constexpr int kLoadCount = 250;

std::vector<campaign::Experiment> sweep_experiments() {
  const campaign::AppSpec app = campaign::AppSpec::buggy_tree();
  campaign::SweepOptions options;
  options.load.count = kLoadCount;
  options.load.gap = msec(5);
  return campaign::generate_sweep(app, app.probe_graph(), options);
}

// The canonical failing reproducer replayed across seeds: every run fails
// on an early request, so early exit skips almost the whole load.
std::vector<campaign::Experiment> failing_batch() {
  const campaign::AppSpec app = campaign::AppSpec::buggy_tree();
  std::vector<campaign::Experiment> out;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    campaign::Experiment e;
    e.id = "abort(svc0->svc2)/seed=" + std::to_string(seed);
    e.app = app;
    e.failures.push_back(control::FailureSpec::abort_edge("svc0", "svc2"));
    e.load.count = kLoadCount;
    e.load.gap = msec(5);
    e.seed = seed;
    e.checks.push_back(campaign::CheckSpec::max_user_failures(0));
    out.push_back(std::move(e));
  }
  return out;
}

// Runs the batch with early exit on and off, enforces identical verdict
// fingerprints, and returns the on-vs-off speedup.
double campaign_differential(const std::string& label,
                             const std::vector<campaign::Experiment>& batch) {
  auto& rows = benchjson::Rows::instance();
  std::string fingerprints[2];
  double wall[2] = {0, 0};
  for (const bool early : {true, false}) {
    campaign::RunnerOptions options;
    options.threads = 4;
    options.early_exit = early;
    const campaign::CampaignRunner runner(options);
    const campaign::CampaignResult result = runner.run(batch);
    size_t terminated = 0;
    for (const auto& e : result.experiments) {
      if (e.early_terminated) ++terminated;
    }
    wall[early] = to_seconds(result.wall_clock);
    fingerprints[early] = result.verdict_fingerprint();
    std::printf(
        "early_exit=%-3s  experiments=%zu  early_terminated=%zu  "
        "wall=%.3fs\n",
        early ? "yes" : "no", result.experiments.size(), terminated,
        wall[early]);
    rows.add("checker_online/" + label + "/early_exit=" +
                 (early ? "on" : "off"),
             "wall", wall[early], "s");
  }
  const bool same = fingerprints[0] == fingerprints[1];
  const double speedup = wall[1] > 0 ? wall[0] / wall[1] : 0.0;
  std::printf("verdicts-identical=%s  speedup=%.2fx\n\n",
              same ? "yes" : "NO (ONLINE CHECKER BUG)", speedup);
  if (!same) std::exit(1);
  rows.add("checker_online/" + label, "speedup", speedup, "x");
  return speedup;
}

void campaign_section() {
  // The mixed sweep is mostly passing runs, where early exit only trims the
  // post-load quiescence tail — expect roughly break-even. The failing
  // batch is where the win lives: each run stops at its first user-visible
  // failure instead of draining the remaining load.
  std::printf("## Campaign sweep, online vs post-hoc (app=buggy_tree)\n");
  campaign_differential("campaign_sweep", sweep_experiments());
  std::printf(
      "## Failing-reproducer batch, online vs post-hoc (app=buggy_tree)\n");
  campaign_differential("campaign_failing", failing_batch());
}

search::SearchOptions search_options(bool early) {
  search::SearchOptions options;
  options.load.count = kLoadCount;
  options.load.gap = msec(5);
  options.threads = 4;
  options.early_exit = early;
  return options;
}

std::set<std::string> failing_labels(const search::SearchOutcome& outcome) {
  std::set<std::string> labels;
  for (const auto& c : outcome.combos) {
    if (c.ran && !c.passed && !c.error) labels.insert(c.label);
  }
  return labels;
}

std::set<std::string> finding_signatures(
    const search::SearchOutcome& outcome) {
  std::set<std::string> signatures;
  for (const auto& f : outcome.findings) {
    signatures.insert(f.minimal + " => " + f.signature);
  }
  return signatures;
}

void search_section() {
  const campaign::AppSpec app = campaign::AppSpec::buggy_tree();
  std::printf(
      "## Search + shrink, online vs post-hoc (app=buggy_tree, k<=2)\n");

  auto& rows = benchjson::Rows::instance();
  search::SearchOutcome outcomes[2];
  for (const bool early : {true, false}) {
    const search::SearchOutcome outcome =
        search::run_search(app, search_options(early));
    if (!outcome.ok) {
      std::printf("search error: %s\n", outcome.error.c_str());
      std::exit(1);
    }
    std::printf(
        "early_exit=%-3s  ran=%zu  failed=%zu  shrink_runs=%zu  "
        "findings=%zu  wall=%.3fs\n",
        early ? "yes" : "no", outcome.ran, outcome.failed,
        outcome.shrink_runs, outcome.findings.size(),
        to_seconds(outcome.wall_clock));
    const std::string name =
        std::string("checker_online/search_shrink/early_exit=") +
        (early ? "on" : "off");
    rows.add(name, "wall", to_seconds(outcome.wall_clock), "s");
    rows.add(name, "shrink_runs", static_cast<double>(outcome.shrink_runs),
             "1");
    outcomes[early] = outcome;
  }

  const bool same_verdicts =
      failing_labels(outcomes[1]) == failing_labels(outcomes[0]) &&
      finding_signatures(outcomes[1]) == finding_signatures(outcomes[0]);
  const double on_s = to_seconds(outcomes[1].wall_clock);
  const double off_s = to_seconds(outcomes[0].wall_clock);
  const double speedup = on_s > 0 ? off_s / on_s : 0.0;
  std::printf("verdicts-identical=%s  speedup=%.2fx\n\n",
              same_verdicts ? "yes" : "NO (ONLINE CHECKER BUG)", speedup);
  if (!same_verdicts) std::exit(1);
  // The headline row: tools/bench.sh lifts this into BENCH_checker.json.
  rows.add("checker_online/search_shrink", "speedup", speedup, "x");
}

// --- micro: per-record cost of the incremental panel -------------------------

logstore::RecordList synthetic_records(size_t n) {
  logstore::RecordList records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    logstore::LogRecord r;
    r.timestamp = TimePoint{usec(static_cast<int64_t>(i) * 100)};
    r.request_id = "req-" + std::to_string(i / 4);
    r.src = (i % 4 < 2) ? "a" : "b";
    r.dst = (i % 4 < 2) ? "b" : "c";
    r.instance = "x-0";
    r.method = "GET";
    r.uri = "/";
    if (i % 2 == 1) {
      r.kind = logstore::MessageKind::kResponse;
      r.status = (i % 16 == 1) ? 503 : 200;
      r.latency = usec(static_cast<int64_t>(i % 50) * 1000);
    }
    records.push_back(std::move(r));
  }
  return records;
}

control::OnlineChecker make_panel(const topology::AppGraph* graph) {
  control::OnlineChecker panel;
  panel.add(control::make_incremental_timeouts("b", msec(40), "*"));
  panel.add(control::make_incremental_bounded_retries("a", "b", 3, "*"));
  panel.add(
      control::make_incremental_circuit_breaker("a", "b", 5, msec(50), 1, "*"));
  panel.add(control::make_incremental_bulkhead(graph, "a", "b", 0.0, "*"));
  panel.add(
      control::make_incremental_latency_slo("a", "b", 99.0, sec(1), true, "*"));
  panel.add(control::make_incremental_error_rate("a", "b", 0.9, "*"));
  return panel;
}

void BM_IncrementalPanelOffer(benchmark::State& state) {
  // Streaming cost: one offer() across a six-check panel per record.
  topology::AppGraph graph;
  graph.add_edge("a", "b");
  graph.add_edge("b", "c");
  const logstore::RecordList records =
      synthetic_records(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    control::OnlineChecker panel = make_panel(&graph);
    for (const auto& r : records) panel.offer(r);
    benchmark::DoNotOptimize(panel.all_decided());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_IncrementalPanelOffer)->Arg(1000)->Arg(10000);

void BM_PostHocPanelEvaluate(benchmark::State& state) {
  // The oracle's cost over the same stream: six full-log queries after the
  // fact (excludes the memory of retaining every record).
  topology::AppGraph graph;
  graph.add_edge("a", "b");
  graph.add_edge("b", "c");
  logstore::LogStore store;
  store.append_all(synthetic_records(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    const control::AssertionChecker checker(&store, &graph);
    bool all = true;
    all &= checker.has_timeouts("b", msec(40), "*").passed;
    all &= checker.has_bounded_retries("a", "b", 3, "*").passed;
    all &= checker.has_circuit_breaker("a", "b", 5, msec(50), 1, "*").passed;
    all &= checker.has_bulkhead("a", "b", 0.0, "*").passed;
    all &= checker.has_latency_slo("a", "b", 99.0, sec(1), true, "*").passed;
    all &= checker.error_rate_below("a", "b", 0.9, "*").passed;
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
}
BENCHMARK(BM_PostHocPanelEvaluate)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf("# Online assertion checking — early-verdict termination\n\n");
  campaign_section();
  search_section();
  benchjson::run_registered_benchmarks(&argc, argv);
  return rows.write() ? 0 : 1;
}
