// Figure 7: time to orchestrate an outage and run assertions as a function
// of the number of services in the application.
//
// The paper deploys binary trees of depth 1..5 (1, 3, 7, 15, 31 services),
// sets up a Delay outage impacting every service, injects 100 test
// requests, then executes one assertion per service, reporting the
// orchestration and assertion components separately. We measure the same
// two components of *our* control plane (wall-clock): rule translation +
// installation on every agent, and log collection + per-service assertion
// evaluation. Depth 6 (63 services) extends the sweep beyond the paper.
//
// Shape expectations: both components grow roughly linearly with service
// count and the whole test stays well under a second at 31 services.
#include <chrono>
#include <cstdio>

#include "apps/trees.h"
#include "bench_json.h"
#include "control/recipe.h"

namespace {

using namespace gremlin;  // NOLINT

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Fig7Row {
  int services = 0;
  double orchestration_ms = 0;
  double injection_ms = 0;   // simulating the 100 test requests
  double assertion_ms = 0;
  int assertions_run = 0;
  int assertions_passed = 0;
};

Fig7Row run_depth(int depth) {
  sim::SimulationConfig cfg;
  cfg.seed = 42;
  sim::Simulation sim(cfg);
  apps::TreeOptions options;
  options.depth = depth;
  options.processing_time = msec(1);
  auto graph = apps::build_tree_app(&sim, options);
  control::TestSession session(&sim, graph);

  Fig7Row row;
  row.services = (1 << depth) - 1;

  // --- orchestration: a Delay outage impacting every service ---
  std::vector<control::FailureSpec> specs;
  for (const auto& edge : graph.edges()) {
    if (edge.src == "user") continue;  // edge client is created on inject
    specs.push_back(
        control::FailureSpec::delay_edge(edge.src, edge.dst, msec(2)));
  }
  if (specs.empty()) {
    // Single-service tree: delay the user-facing edge itself so depth 1
    // still orchestrates a non-empty outage.
    sim.inject("user", "svc0", sim::SimRequest{.request_id = "warm"},
               [](const sim::SimResponse&) {});
    sim.run();
    specs.push_back(control::FailureSpec::delay_edge("user", "svc0",
                                                     msec(2)));
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto applied = session.apply_all(specs);
  row.orchestration_ms = elapsed_ms(t0);
  if (!applied.ok()) {
    std::fprintf(stderr, "orchestration failed: %s\n",
                 applied.error().message.c_str());
    std::exit(1);
  }

  // --- inject 100 test requests ---
  const auto t1 = std::chrono::steady_clock::now();
  control::LoadOptions load;
  load.count = 100;
  load.gap = msec(5);
  session.run_load("user", "svc0", load);
  row.injection_ms = elapsed_ms(t1);

  // --- assertions: one per service ---
  const auto t2 = std::chrono::steady_clock::now();
  if (!session.collect().ok()) {
    std::fprintf(stderr, "log collection failed\n");
    std::exit(1);
  }
  auto checker = session.checker();
  for (const auto& service : graph.services()) {
    if (service == "user") continue;
    // Delays of 2ms per hop: every service must still answer within 1s.
    const auto result = checker.has_timeouts(service, sec(1));
    ++row.assertions_run;
    if (result.passed) ++row.assertions_passed;
  }
  row.assertion_ms = elapsed_ms(t2);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf(
      "# Figure 7 — orchestration + assertion wall time vs application "
      "size\n# (binary trees; Delay outage on every edge; 100 test "
      "requests;\n#  one assertion per service)\n\n");
  std::printf("%9s %16s %13s %13s %8s\n", "services", "orchestrate_ms",
              "inject_ms", "assert_ms", "checks");
  double per_service_cost = 0;
  int depths = 0;
  for (int depth = 1; depth <= 6; ++depth) {
    const Fig7Row row = run_depth(depth);
    std::printf("%9d %16.3f %13.3f %13.3f %5d/%d\n", row.services,
                row.orchestration_ms, row.injection_ms, row.assertion_ms,
                row.assertions_passed, row.assertions_run);
    const std::string name =
        "fig7/services=" + std::to_string(row.services);
    rows.add(name, "orchestrate", row.orchestration_ms, "ms");
    rows.add(name, "inject", row.injection_ms, "ms");
    rows.add(name, "assert", row.assertion_ms, "ms");
    per_service_cost +=
        (row.orchestration_ms + row.assertion_ms) / row.services;
    ++depths;
  }
  std::printf(
      "\nshape-check: mean (orchestration+assertion) cost per service = "
      "%.3f ms\n(paper: both components stay low and the full test "
      "completes in well under a second at 31 services)\n",
      per_service_cost / depths);
  rows.add("fig7", "mean_cost_per_service", per_service_cost / depths, "ms");
  return rows.write() ? 0 : 1;
}
