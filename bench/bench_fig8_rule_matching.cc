// Figure 8: worst-case overhead of rule matching — a request compared
// against all installed rules without matching any, for increasing rule
// counts.
//
// Three sections:
//   1. A CDF of per-request matching latency over 10000 requests through
//      faults::RuleEngine (the exact code both data planes run), for
//      1/5/10/50/100/200 installed rules — the paper's CDF axes.
//   2. The same worst case through the *real* sidecar proxy on loopback
//      (200 requests per rule count), measuring end-to-end completion time
//      like the paper's Apache Benchmark runs.
//   3. google-benchmark microbenchmarks of RuleEngine::evaluate.
//
// Shape expectations: matching cost grows with rule count and stays in the
// microsecond range; proxy end-to-end times are dominated by the network
// path, with rule matching a small additive overhead.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "faults/rule_engine.h"
#include "httpserver/client.h"
#include "httpserver/server.h"
#include "logstore/store.h"
#include "proxy/agent.h"
#include "workload/stats.h"

namespace {

using namespace gremlin;  // NOLINT

// Rules that must be scanned but never match: the destination matches the
// evaluated edge while the request-ID pattern never does (worst case —
// every rule's glob is evaluated against the ID).
std::vector<faults::FaultRule> non_matching_rules(int count) {
  std::vector<faults::FaultRule> rules;
  rules.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    faults::FaultRule rule = faults::FaultRule::abort_rule(
        "client", "server", 503, "nomatch-" + std::to_string(i) + "-*");
    rule.id = "worstcase-" + std::to_string(i);
    rules.push_back(std::move(rule));
  }
  return rules;
}

faults::MessageView test_request(const std::string& id) {
  faults::MessageView view;
  view.kind = logstore::MessageKind::kRequest;
  view.src = "client";
  view.dst = "server";
  view.request_id = id;
  view.method = "GET";
  view.uri = "/";
  return view;
}

void engine_cdf_section() {
  std::printf(
      "## RuleEngine worst-case matching latency CDF (10000 requests)\n");
  for (const int rule_count : {1, 5, 10, 50, 100, 200}) {
    faults::RuleEngine engine;
    auto install = engine.add_rules(non_matching_rules(rule_count));
    if (!install.ok()) {
      std::fprintf(stderr, "install failed\n");
      std::exit(1);
    }
    std::vector<Duration> samples;
    samples.reserve(10000);
    const std::string id = "test-abcdef-0123456789";
    const auto view = test_request(id);
    for (int i = 0; i < 10000; ++i) {
      const auto start = std::chrono::steady_clock::now();
      auto decision = engine.evaluate(view);
      const auto end = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(decision);
      samples.push_back(
          std::chrono::duration_cast<Duration>(end - start));
    }
    const auto summary = workload::summarize(samples);
    std::printf(
        "rules=%3d  p50=%.2fus p90=%.2fus p99=%.2fus max=%.2fus\n",
        rule_count, to_seconds(summary.p50) * 1e6,
        to_seconds(summary.p90) * 1e6, to_seconds(summary.p99) * 1e6,
        to_seconds(summary.max) * 1e6);
    const std::string name = "fig8_engine/rules=" + std::to_string(rule_count);
    auto& rows = benchjson::Rows::instance();
    rows.add(name, "p50", to_seconds(summary.p50) * 1e6, "us");
    rows.add(name, "p99", to_seconds(summary.p99) * 1e6, "us");
  }
  std::printf("\n");
}

void proxy_section() {
  std::printf(
      "## Real proxy on loopback: request completion time, worst-case "
      "rules (200 requests each)\n");
  httpserver::HttpServer origin([](const httpmsg::Request&) {
    return httpmsg::make_response(200, "ok");
  });
  auto origin_port = origin.start();
  if (!origin_port.ok()) {
    std::fprintf(stderr, "origin start failed\n");
    std::exit(1);
  }
  for (const int rule_count : {0, 1, 5, 10, 50, 100}) {
    proxy::GremlinAgentProxy agent("client", "client/0");
    proxy::Route route;
    route.destination = "server";
    route.endpoints = {{"127.0.0.1", *origin_port}};
    agent.add_route(route);
    if (!agent.start().ok()) {
      std::fprintf(stderr, "proxy start failed\n");
      std::exit(1);
    }
    (void)agent.install_rules(non_matching_rules(rule_count));

    std::vector<Duration> samples;
    for (int i = 0; i < 200; ++i) {
      httpmsg::Request req;
      req.headers.set(httpmsg::kRequestIdHeader, "test-" + std::to_string(i));
      const auto start = std::chrono::steady_clock::now();
      auto result = httpserver::HttpClient::fetch(
          "127.0.0.1", agent.route_port("server"), std::move(req));
      const auto end = std::chrono::steady_clock::now();
      if (result.failed()) continue;
      samples.push_back(std::chrono::duration_cast<Duration>(end - start));
    }
    const auto summary = workload::summarize(samples);
    std::printf("rules=%3d  p50=%.1fus p90=%.1fus p99=%.1fus (n=%zu)\n",
                rule_count, to_seconds(summary.p50) * 1e6,
                to_seconds(summary.p90) * 1e6, to_seconds(summary.p99) * 1e6,
                summary.count);
    benchjson::Rows::instance().add(
        "fig8_proxy/rules=" + std::to_string(rule_count), "p50",
        to_seconds(summary.p50) * 1e6, "us");
    agent.stop();
  }
  origin.stop();
  std::printf("\n");
}

void BM_RuleEngineWorstCase(benchmark::State& state) {
  faults::RuleEngine engine;
  (void)engine.add_rules(
      non_matching_rules(static_cast<int>(state.range(0))));
  const auto view = test_request("test-abcdef-0123456789");
  for (auto _ : state) {
    auto decision = engine.evaluate(view);
    benchmark::DoNotOptimize(decision);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuleEngineWorstCase)->Arg(1)->Arg(5)->Arg(10)->Arg(50)->Arg(100)
    ->Arg(200);

void BM_RuleEngineFirstRuleMatches(benchmark::State& state) {
  faults::RuleEngine engine;
  (void)engine.add_rule(
      faults::FaultRule::delay_rule("client", "server", msec(1), "test-*"));
  const auto view = test_request("test-1");
  for (auto _ : state) {
    auto decision = engine.evaluate(view);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_RuleEngineFirstRuleMatches);

// --- LogStore query planning: request-ID index vs full scan ---
// The checker's Table 3 queries filter by request-ID glob. Literal IDs and
// "prefix-*" patterns are answered from the by-ID index; only irregular
// globs ("*-suffix") fall back to scanning every record.
void populate_store(logstore::LogStore* store, int records) {
  logstore::RecordList batch;
  batch.reserve(static_cast<size_t>(records));
  for (int i = 0; i < records; ++i) {
    logstore::LogRecord r;
    r.timestamp = Duration(i);
    // Half the IDs are test traffic, half background noise.
    r.request_id = (i % 2 == 0 ? "test-" : "bg-") + std::to_string(i);
    r.src = "client";
    r.dst = "server";
    r.kind = logstore::MessageKind::kRequest;
    r.status = 200;
    batch.push_back(std::move(r));
  }
  store->append_all(batch);
}

void BM_LogStoreExactIdQuery(benchmark::State& state) {
  logstore::LogStore store;
  populate_store(&store, static_cast<int>(state.range(0)));
  logstore::Query q;
  q.id_pattern = "test-" + std::to_string(state.range(0) - 2);  // literal
  for (auto _ : state) {
    auto hits = store.query(q);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogStoreExactIdQuery)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LogStorePrefixQuery(benchmark::State& state) {
  logstore::LogStore store;
  populate_store(&store, static_cast<int>(state.range(0)));
  logstore::Query q;
  q.id_pattern = "test-1*";  // literal prefix: ordered index range scan
  for (auto _ : state) {
    auto hits = store.query(q);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogStorePrefixQuery)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LogStoreScanQuery(benchmark::State& state) {
  logstore::LogStore store;
  populate_store(&store, static_cast<int>(state.range(0)));
  logstore::Query q;
  q.id_pattern = "*-17";  // suffix glob: no index applies, full scan
  for (auto _ : state) {
    auto hits = store.query(q);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogStoreScanQuery)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GlobMatch(benchmark::State& state) {
  const Glob glob("test-*-shard-[0-9]");
  const std::string id = "test-abcdef0123456789-shard-7";
  for (auto _ : state) {
    bool matched = glob.matches(id);
    benchmark::DoNotOptimize(matched);
  }
}
BENCHMARK(BM_GlobMatch);

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // stream rows as they land
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf("# Figure 8 — worst-case rule-matching overhead\n\n");
  engine_cdf_section();
  proxy_section();
  benchjson::run_registered_benchmarks(&argc, argv);
  return rows.write() ? 0 : 1;
}
