// Machine-readable output shared by every bench_* binary.
//
// Each benchmark accepts `--json out.json` (or `--json=out.json`). When the
// flag is given, the binary records {name, metric, value, unit} rows next to
// its human-readable printf output and writes them as a JSON array on exit;
// without the flag, add() is a no-op and the bench behaves exactly as
// before. tools/bench.sh runs the suite with this flag and assembles the
// rows into BENCH_hotpath.json at the repo root.
//
// Usage in a bench main():
//   benchjson::Rows& rows = benchjson::Rows::instance();
//   rows.parse_args(&argc, argv);          // before benchmark::Initialize
//   ...
//   rows.add("fig5/delay=1s", "p50", 1.02, "s");
//   ...
//   return rows.write() ? 0 : 1;
//
// Binaries with registered google-benchmark BM_* functions run them through
// RowReporter, which mirrors every run (real time + items/s) into the sink.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace gremlin::benchjson {

struct Row {
  std::string name;    // which measurement, e.g. "fig8/rules=200"
  std::string metric;  // which quantity, e.g. "p99"
  double value = 0;
  std::string unit;    // "s", "ms", "us", "1/s", "count", ...
};

// Compiler identification string baked in at build time, so a BENCH_*.json
// artifact records which toolchain produced the numbers.
inline const char* compiler_id() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

// Process-wide row sink: sections deep inside a bench add() rows next to
// their printf without threading a writer through every helper.
class Rows {
 public:
  static Rows& instance() {
    static Rows rows;
    return rows;
  }

  // Strips `--json PATH` / `--json=PATH` from (argc, argv) so whatever
  // remains can be handed to benchmark::Initialize. Without the flag the
  // sink stays disabled and add()/write() are no-ops.
  void parse_args(int* argc, char** argv) {
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == std::string_view("--json") && i + 1 < *argc) {
        path_ = argv[++i];
      } else if (arg.substr(0, 7) == std::string_view("--json=")) {
        path_ = std::string(arg.substr(7));
      } else {
        argv[kept++] = argv[i];
      }
    }
    *argc = kept;
  }

  bool enabled() const { return !path_.empty(); }

  void add(std::string name, std::string metric, double value,
           std::string unit) {
    if (!enabled()) return;
    rows_.push_back(
        Row{std::move(name), std::move(metric), value, std::move(unit)});
  }

  // Writes the collected rows as a JSON array. Returns true when disabled
  // (nothing to write) so mains can `return rows.write() ? rc : 1`.
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fputs("[\n", f);
    // Host metadata rows lead the array so every BENCH_*.json records the
    // machine and toolchain behind its numbers (the `text` field carries
    // non-numeric values; assemblers that only read `value` skip it).
    std::fprintf(f,
                 "  {\"name\": \"host\", \"metric\": \"hardware_threads\", "
                 "\"value\": %u, \"unit\": \"count\"},\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f,
                 "  {\"name\": \"host\", \"metric\": \"compiler\", "
                 "\"value\": 0, \"unit\": \"\", \"text\": \"%s\"}%s\n",
                 escaped(compiler_id()).c_str(),
                 rows_.empty() ? "" : ",");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"metric\": \"%s\", "
                   "\"value\": %.17g, \"unit\": \"%s\"}%s\n",
                   escaped(r.name).c_str(), escaped(r.metric).c_str(),
                   r.value, escaped(r.unit).c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Row> rows_;
};

// Console reporter that mirrors every google-benchmark run into the row
// sink: per-iteration real time plus the items/s counter when the bench
// sets one (SetItemsProcessed).
class RowReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Rows::instance().add(run.benchmark_name(), "real_time",
                           run.GetAdjustedRealTime(),
                           benchmark::GetTimeUnitString(run.time_unit));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        Rows::instance().add(run.benchmark_name(), "items_per_second",
                             static_cast<double>(items->second.value), "1/s");
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

// Initialize + RunSpecifiedBenchmarks with the row-mirroring reporter.
// Call Rows::parse_args first so --json never reaches benchmark's own
// flag parser.
inline void run_registered_benchmarks(int* argc, char** argv) {
  benchmark::Initialize(argc, argv);
  RowReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
}

}  // namespace gremlin::benchjson
