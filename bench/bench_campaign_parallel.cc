// Campaign parallelism: wall-clock scaling of CampaignRunner with worker
// count, under the byte-identical determinism contract.
//
// Setup: a depth-4 buggy binary tree (15 services) swept with the default
// failure kinds — 68 experiments, each on a private Simulation. We run the
// identical campaign at increasing thread counts and report wall clock,
// speedup over threads=1, and whether the concatenated result fingerprint
// is byte-identical to the sequential run (it must be: results depend only
// on the experiment seed, never on scheduling).
//
// Shape expectations: speedup approaches the physical core count for
// campaigns that are CPU-bound in simulation; on a single-core host every
// row still verifies the determinism contract. ISSUE 1's ">=4x on 8 cores"
// target is about this scaling curve.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "campaign/runner.h"
#include "campaign/warm_world.h"

namespace {

using namespace gremlin;  // NOLINT

std::vector<campaign::Experiment> depth4_sweep() {
  const campaign::AppSpec app = campaign::AppSpec::buggy_tree(4);
  campaign::SweepOptions options;
  options.load.count = 40;
  options.load.gap = msec(5);
  return campaign::generate_sweep(app, app.probe_graph(), options);
}

void scaling_section() {
  const auto experiments = depth4_sweep();
  std::printf("## Campaign scaling (%zu experiments, depth-4 buggy tree)\n",
              experiments.size());

  const campaign::CampaignResult sequential =
      campaign::CampaignRunner(campaign::RunnerOptions{.threads = 1})
          .run(experiments);
  const std::string reference = sequential.fingerprint();
  const double base_s = to_seconds(sequential.wall_clock);
  std::printf("threads= 1  wall=%.3fs  speedup=1.00x  (reference)\n",
              base_s);
  auto& rows = benchjson::Rows::instance();
  rows.add("campaign_scaling/threads=1", "wall", base_s, "s");
  rows.add("campaign_scaling/threads=1", "experiments_per_second",
           base_s > 0 ? experiments.size() / base_s : 0.0, "1/s");
  rows.add("campaign_scaling/threads=1", "speedup", 1.0, "x");

  const unsigned hw = std::thread::hardware_concurrency();
  double speedup4 = 1.0;
  for (const int threads : {2, 4, 8}) {
    const campaign::CampaignResult parallel =
        campaign::CampaignRunner(campaign::RunnerOptions{.threads = threads})
            .run(experiments);
    const double wall_s = to_seconds(parallel.wall_clock);
    const double speedup = wall_s > 0 ? base_s / wall_s : 0.0;
    const bool identical = parallel.fingerprint() == reference;
    std::printf("threads=%2d  wall=%.3fs  speedup=%.2fx  byte-identical=%s\n",
                threads, wall_s, speedup,
                identical ? "yes" : "NO (DETERMINISM BUG)");
    if (!identical) std::exit(1);
    if (threads == 4) speedup4 = speedup;
    const std::string name =
        "campaign_scaling/threads=" + std::to_string(threads);
    rows.add(name, "wall", wall_s, "s");
    rows.add(name, "experiments_per_second",
             wall_s > 0 ? experiments.size() / wall_s : 0.0, "1/s");
    rows.add(name, "speedup", speedup, "x");
  }
  std::printf("(hardware_concurrency=%u; speedup saturates at the physical "
              "core count)\n\n",
              hw);

  // Scaling gate. Workers share nothing but the experiment queue (each one
  // owns its symbols, pools, and warm worlds), so on a host with >= 4
  // hardware threads a threads=4 campaign that fails to beat sequential is
  // a contention regression — fail the bench. Hosts with fewer hardware
  // threads cannot speed up by oversubscribing; there the gate only bounds
  // the scheduling overhead of running 4 workers on too few cores.
  const double floor = hw >= 4 ? 1.0 : 0.70;
  if (speedup4 < floor) {
    std::fprintf(stderr,
                 "FAIL: threads=4 speedup %.2fx below %.2fx floor "
                 "(hardware_concurrency=%u)\n",
                 speedup4, floor, hw);
    std::exit(1);
  }
}

void BM_RunOneExperiment(benchmark::State& state) {
  // The headline throughput metric, on the default execution path: one
  // long-lived warm world, deep-reset between experiments (byte-identical
  // to cold construction; bench_warm_world and tests/warm_world_test.cc
  // enforce the differential).
  const auto experiments = depth4_sweep();
  campaign::WarmWorld world(experiments[0].app);
  const campaign::ExecOptions exec;
  size_t i = 0;
  for (auto _ : state) {
    auto result = world.run(experiments[i++ % experiments.size()], exec);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunOneExperiment);

void BM_RunOneExperimentCold(benchmark::State& state) {
  // Reference: fresh Simulation per experiment (pre-warm-world behaviour).
  const auto experiments = depth4_sweep();
  size_t i = 0;
  for (auto _ : state) {
    auto result = campaign::CampaignRunner::run_one(
        experiments[i++ % experiments.size()]);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunOneExperimentCold);

void BM_CampaignBatch(benchmark::State& state) {
  const auto experiments = depth4_sweep();
  const campaign::CampaignRunner runner(
      campaign::RunnerOptions{.threads = static_cast<int>(state.range(0)),
                              .keep_latencies = false});
  double elapsed_s = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto result = runner.run(experiments);
    benchmark::DoNotOptimize(result);
    elapsed_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  // Not SetItemsProcessed: rate counters are finalized against this
  // thread's CPU time, and at threads >= 2 this thread mostly sleeps in
  // join() while the workers burn the cycles — the reported rate inflates
  // by orders of magnitude. Report true experiments/second against the
  // measured wall clock instead (plain counter, already a rate).
  const double items = static_cast<double>(state.iterations()) *
                       static_cast<double>(experiments.size());
  state.counters["items_per_second"] =
      benchmark::Counter(elapsed_s > 0 ? items / elapsed_s : 0.0);
}
BENCHMARK(BM_CampaignBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf("# Campaign engine — parallel sweep scaling\n\n");
  scaling_section();
  benchjson::run_registered_benchmarks(&argc, argv);
  return rows.write() ? 0 : 1;
}
