// Allocation behaviour of the hot-path memory work: interned names, the
// pooled event queue, and zero-copy log queries.
//
// The binary overrides global operator new to count heap allocations, then
// measures three sections:
//   1. Event-queue churn — schedule/drain waves on a warmed queue. The slab
//      pool plus InlineFunction actions make the steady state allocation-
//      free.
//   2. Log queries — the same indexed query answered by the copying
//      query() and by the zero-copy for_each() visitor; the visitor path
//      performs no per-record copies.
//   3. End-to-end experiments — CampaignRunner::run_one throughput
//      (experiments/second) and allocations per experiment on a warmed
//      process, the number the 2x campaign-throughput target is built on.
//
// Shape expectations: section 1 reports zero steady-state allocations,
// section 2's for_each allocates (near) nothing while query() scales with
// the hit count, and section 3's per-experiment allocation count stays in
// the thousands (service/agent setup), far below the ~20k records+events a
// depth-4 experiment processes.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

static std::atomic<size_t> g_allocs{0};

#ifdef GREMLIN_ALLOC_TRACE
#include <execinfo.h>
static bool g_trace = false;
struct TraceEntry {
  void* frames[12];
  int depth;
  size_t bytes;
};
static TraceEntry g_traces[20000];
static std::atomic<size_t> g_trace_count{0};
#endif

void* operator new(size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
#ifdef GREMLIN_ALLOC_TRACE
  if (g_trace) {
    g_trace = false;  // backtrace() may allocate; no recursion
    const size_t i = g_trace_count.fetch_add(1, std::memory_order_relaxed);
    if (i < 20000) {
      g_traces[i].depth = backtrace(g_traces[i].frames, 12);
      g_traces[i].bytes = n;
    }
    g_trace = true;
  }
#endif
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

#include "bench_json.h"
#include "campaign/runner.h"
#include "campaign/warm_world.h"
#include "logstore/store.h"
#include "sim/event_queue.h"

namespace {

using namespace gremlin;  // NOLINT

size_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }

void event_queue_section(benchjson::Rows& rows) {
  std::printf("## Event-queue churn (pooled slab + inline actions)\n");
  sim::EventQueue queue;
  std::atomic<uint64_t> sink{0};

  const auto run_waves = [&queue, &sink](int waves) {
    TimePoint now{};
    for (int w = 0; w < waves; ++w) {
      // A burst bigger than one slab, with closures at the service-code
      // capture size, drained in timestamp order.
      for (int i = 0; i < 400; ++i) {
        now += usec(1);
        queue.schedule_at(now, [&sink, i] { sink += i; });
      }
      while (!queue.empty()) queue.pop_and_run();
    }
  };

  run_waves(1);  // grow the pool to the peak in-flight count
  const size_t before = allocs_now();
  run_waves(100);
  const size_t steady = allocs_now() - before;
  std::printf(
      "40000 events after warm-up: %zu allocations (pool capacity %zu)\n\n",
      steady, queue.pool_capacity());
  rows.add("hotpath/event_queue", "steady_state_allocs",
           static_cast<double>(steady), "count");
}

void query_section(benchjson::Rows& rows) {
  std::printf("## Log queries: copying query() vs zero-copy for_each()\n");
  logstore::LogStore store;
  logstore::RecordList batch;
  constexpr int kRecords = 50000;
  batch.reserve(kRecords);
  for (int i = 0; i < kRecords; ++i) {
    logstore::LogRecord r;
    r.timestamp = Duration(i);
    r.request_id = "req-" + std::to_string(i % 64);
    r.src = Symbol("client");
    r.dst = Symbol("server");
    r.kind = logstore::MessageKind::kRequest;
    r.status = 200;
    batch.push_back(std::move(r));
  }
  store.append_all(std::move(batch));

  logstore::Query q;
  q.src = "client";
  q.dst = "server";

  // Warm both paths (scratch index vector, glob state).
  (void)store.query(q);
  uint64_t checksum = 0;
  (void)store.for_each(q, [&checksum](const logstore::LogRecord& r) {
    checksum += static_cast<uint64_t>(r.status);
  });

  size_t before = allocs_now();
  const auto copied = store.query(q);
  const size_t query_allocs = allocs_now() - before;

  before = allocs_now();
  const size_t visited =
      store.for_each(q, [&checksum](const logstore::LogRecord& r) {
        checksum += static_cast<uint64_t>(r.status);
      });
  const size_t for_each_allocs = allocs_now() - before;

  std::printf(
      "%zu matching records: query()=%zu allocations, for_each()=%zu "
      "allocations (checksum %llu)\n\n",
      copied.size(), query_allocs, for_each_allocs,
      static_cast<unsigned long long>(checksum));
  if (visited != copied.size()) {
    std::fprintf(stderr, "visitor/count mismatch: %zu vs %zu\n", visited,
                 copied.size());
    std::exit(1);
  }
  rows.add("hotpath/log_query", "query_allocs",
           static_cast<double>(query_allocs), "count");
  rows.add("hotpath/log_query", "for_each_allocs",
           static_cast<double>(for_each_allocs), "count");
}

void experiment_section(benchjson::Rows& rows) {
  std::printf("## End-to-end experiment cost (depth-4 buggy tree)\n");
  const campaign::AppSpec app = campaign::AppSpec::buggy_tree(4);
  campaign::SweepOptions options;
  options.load.count = 40;
  options.load.gap = msec(5);
  const auto experiments =
      campaign::generate_sweep(app, app.probe_graph(), options);

  (void)campaign::CampaignRunner::run_one(experiments[0]);  // warm interning

  constexpr int kRuns = 50;
  const size_t before = allocs_now();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRuns; ++i) {
    auto result = campaign::CampaignRunner::run_one(
        experiments[static_cast<size_t>(i) % experiments.size()]);
    benchmark::DoNotOptimize(result);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const double allocs_per_exp =
      static_cast<double>(allocs_now() - before) / kRuns;
  const double per_second = kRuns / elapsed.count();

  std::printf(
      "%d experiments: %.1f experiments/s, %.0f allocations each\n\n", kRuns,
      per_second, allocs_per_exp);
  rows.add("hotpath/run_one", "experiments_per_second", per_second, "1/s");
  rows.add("hotpath/run_one", "allocs_per_experiment", allocs_per_exp,
           "count");
}

// Warm-world steady state: the number the per-worker ExecutionContext
// design is judged on. One long-lived world, deep-reset between
// experiments; every data-plane object (contexts, outbound calls, event
// nodes, log slots) comes from pools the world retains, so an experiment's
// marginal heap traffic is just its result materialization.
//
// The gate is a hard CI check: a regression that reintroduces per-request
// allocations shows up as hundreds per experiment, orders of magnitude over
// the limit.
constexpr double kWarmAllocLimit = 10.0;

void warm_world_section(benchjson::Rows& rows) {
  std::printf("## Warm-world steady state (depth-4 buggy tree)\n");
  const campaign::AppSpec app = campaign::AppSpec::buggy_tree(4);
  campaign::SweepOptions options;
  options.load.count = 40;
  options.load.gap = msec(5);
  const auto experiments =
      campaign::generate_sweep(app, app.probe_graph(), options);

  campaign::WarmWorld world(app);
  campaign::ExecOptions exec;
  exec.keep_latencies = false;  // the large-sweep configuration
  // Warm-up: visit every experiment once so pools, rule cache, interning,
  // and index buckets reach their peak footprint.
  for (const auto& e : experiments) {
    auto result = world.run(e, exec);
    benchmark::DoNotOptimize(result);
  }

  constexpr int kRuns = 100;
  const size_t before = allocs_now();
#ifdef GREMLIN_ALLOC_TRACE
  g_trace = true;
#endif
  for (int i = 0; i < kRuns; ++i) {
    auto result = world.run(experiments[static_cast<size_t>(i) %
                                        experiments.size()],
                            exec);
    benchmark::DoNotOptimize(result);
  }
#ifdef GREMLIN_ALLOC_TRACE
  g_trace = false;
  {
    const size_t n = std::min<size_t>(g_trace_count.load(), 20000);
    std::printf("=== %zu traced allocations ===\n", n);
    for (size_t i = 0; i < n; ++i) {
      char** syms = backtrace_symbols(g_traces[i].frames, g_traces[i].depth);
      std::printf("--- alloc %zu (%zu bytes)\n", i, g_traces[i].bytes);
      for (int f = 1; f < g_traces[i].depth && f < 8; ++f) {
        std::printf("  %s\n", syms[f]);
      }
      std::free(syms);
    }
  }
#endif
  const double allocs_per_exp =
      static_cast<double>(allocs_now() - before) / kRuns;

  std::printf("%d warm experiments: %.2f allocations each (limit %.0f)\n\n",
              kRuns, allocs_per_exp, kWarmAllocLimit);
  rows.add("hotpath/warm_world", "allocs_per_experiment", allocs_per_exp,
           "count");
  if (allocs_per_exp > kWarmAllocLimit) {
    std::fprintf(stderr,
                 "FAIL: warm-world steady state allocates %.2f per "
                 "experiment (limit %.0f)\n",
                 allocs_per_exp, kWarmAllocLimit);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto& rows = benchjson::Rows::instance();
  rows.parse_args(&argc, argv);
  std::printf("# Hot-path allocation behaviour\n\n");
  event_queue_section(rows);
  query_section(rows);
  experiment_section(rows);
  warm_world_section(rows);
  return rows.write() ? 0 : 1;
}
