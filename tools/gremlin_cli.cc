// gremlin — the command-line recipe runner.
//
// Usage:
//   gremlin run <recipe-file> [--seed N] [--trace] [--report out.json]
//   gremlin check <recipe-file>          # parse only, print structure
//   gremlin campaign <recipe-file> [--seed N] [--seeds K] [--threads N]
//                    [--procs N] [--sweep edge|service|both]
//                    [--report out.json]
//   gremlin search (<recipe-file> | --app <name>) [--max-k K] [--budget N]
//                  [--pairwise] [--no-prune] [--no-shrink] [...]
//
// `search` explores the combinatorial fault space (docs/SEARCH.md): it
// enumerates k-fault combinations, prunes those the observed call graph
// rules out, runs the survivors as a campaign, and shrinks every failure
// to a minimal reproducer. Exit code 0 = clean, 1 = reproducers found,
// 2 = usage or infrastructure error.
//
// `run` executes the recipe imperatively against one auto-built simulated
// deployment (services declared in the recipe's graph get the default
// handler; drive real deployments with the library API instead). With
// --trace, the flow trace of every failed test request is printed — the
// "why did it fail" feedback loop of Section 1.
//
// `campaign` lowers each scenario to a declarative Experiment and executes
// them in parallel on private simulations (docs/CAMPAIGNS.md). --seeds K
// replicates every experiment across K seeds; --sweep additionally
// generates per-edge/per-service failure experiments from the recipe's
// graph. --procs N forks N shard processes, each running --threads
// execution threads (docs/PERFORMANCE.md). Results are deterministic
// regardless of --threads and --procs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/app_spec.h"
#include "campaign/runner.h"
#include "dsl/interp.h"
#include "dsl/lowering.h"
#include "dsl/parser.h"
#include "report/campaign_report.h"
#include "report/report.h"
#include "report/search_report.h"
#include "search/search.h"
#include "trace/trace.h"

namespace {

using namespace gremlin;  // NOLINT

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  gremlin run <recipe-file> [--seed N] [--trace] "
               "[--report out.json]\n"
               "  gremlin check <recipe-file>\n"
               "  gremlin campaign <recipe-file> [--seed N] [--seeds K] "
               "[--threads N] [--procs N]\n"
               "                   [--sweep edge|service|both] "
               "[--no-early-exit] [--cold]\n"
               "                   [--report out.json]\n"
               "  gremlin search (<recipe-file> | --app <name>) [--seed N] "
               "[--threads N] [--procs N]\n"
               "                 [--max-k K] [--budget N] [--requests N] "
               "[--pairwise]\n"
               "                 [--no-prune] [--no-shrink] "
               "[--no-early-exit] [--cold]\n"
               "                 [--report out.json]\n");
  return 2;
}

std::string read_file(const char* path, bool* ok) {
  std::ifstream file(path);
  if (!file) {
    *ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *ok = true;
  return buffer.str();
}

int cmd_check(const std::string& source) {
  auto file = dsl::parse(source);
  if (!file.ok()) {
    std::fprintf(stderr, "parse error: %s\n", file.error().message.c_str());
    return 1;
  }
  std::printf("%s", file->summary().c_str());
  auto acyclic = file->graph.validate_acyclic();
  if (!acyclic.ok()) {
    std::printf("warning: %s\n", acyclic.error().message.c_str());
  }
  std::printf("recipe OK\n");
  return 0;
}

int cmd_run(const std::string& source, uint64_t seed, bool with_traces,
            const std::string& report_path) {
  auto file = dsl::parse(source);
  if (!file.ok()) {
    std::fprintf(stderr, "parse error: %s\n", file.error().message.c_str());
    return 1;
  }
  sim::SimulationConfig cfg;
  cfg.seed = seed;
  sim::Simulation sim(cfg);
  dsl::Interpreter interp(&sim);
  auto outcome = interp.run(file.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "recipe error: %s\n",
                 outcome.error().message.c_str());
    return 1;
  }
  std::printf("%s", outcome->report().c_str());

  if (with_traces) {
    std::printf("\n--- flow traces of failed requests ---\n");
    size_t shown = 0;
    for (const auto& t : trace::build_traces(sim.log_store().all())) {
      if (t.failed_spans() == 0) continue;
      std::printf("%s", t.format_tree().c_str());
      const auto chain = t.failure_chain();
      if (!chain.empty()) {
        std::printf("  origin of failure: %s -> %s\n",
                    t.spans[chain.back()].src.str().c_str(),
                    t.spans[chain.back()].dst.str().c_str());
      }
      if (++shown >= 5) {
        std::printf("  (further failed flows elided)\n");
        break;
      }
    }
    if (shown == 0) std::printf("(none)\n");
  }

  if (!report_path.empty()) {
    // Assemble a machine-readable report from the run.
    report::TestReport rep;
    rep.title = "recipe run";
    rep.seed = seed;
    for (const auto& scenario : outcome->scenarios) {
      for (const auto& check : scenario.checks) rep.checks.push_back(check);
    }
    for (const auto& check : rep.checks) {
      if (check.passed) ++rep.checks_passed;
    }
    for (const auto& t : trace::build_traces(sim.log_store().all())) {
      ++rep.flows_observed;
      if (t.failed_spans() == 0) continue;
      ++rep.flows_failed;
      if (rep.diagnoses.size() >= 5) continue;
      report::FailureDiagnosis d;
      d.request_id = t.request_id;
      const auto chain = t.failure_chain();
      if (!chain.empty()) {
        d.origin_edge = t.spans[chain.back()].src + " -> " +
                        t.spans[chain.back()].dst;
      }
      d.rendered = t.format_tree();
      rep.diagnoses.push_back(std::move(d));
    }
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   report_path.c_str());
      return 2;
    }
    out << rep.to_json().dump(2) << "\n";
    std::printf("report written to %s\n", report_path.c_str());
  }
  return outcome->all_passed() ? 0 : 1;
}

struct CampaignFlags {
  uint64_t seed = 42;
  int seeds = 1;          // multi-seed replication factor
  int threads = 0;        // 0 = hardware concurrency
  int procs = 1;          // worker processes (multi-process sharding)
  std::string sweep;      // "", "edge", "service", or "both"
  bool early_exit = true;  // --no-early-exit: run every sim to quiescence
  bool warm = true;        // --cold: fresh Simulation per experiment
  std::string report_path;
};

int cmd_campaign(const std::string& source, const CampaignFlags& flags) {
  auto file = dsl::parse(source);
  if (!file.ok()) {
    std::fprintf(stderr, "parse error: %s\n", file.error().message.c_str());
    return 1;
  }

  // Every scenario lowers onto the same app spec: the recipe's graph with
  // autocreated default-handler services (the `gremlin run` semantics).
  const campaign::AppSpec app = campaign::AppSpec::from_graph(file->graph);
  auto lowered = dsl::lower_recipe(file.value(), app, flags.seed);
  if (!lowered.ok()) {
    std::fprintf(stderr, "lowering error: %s\n",
                 lowered.error().message.c_str());
    return 1;
  }
  std::vector<campaign::Experiment> experiments =
      std::move(lowered.value());

  if (!flags.sweep.empty()) {
    campaign::SweepOptions sweep;
    sweep.seed = flags.seed;
    if (flags.sweep == "edge") {
      sweep.kinds = {control::FailureSpec::Kind::kAbort,
                     control::FailureSpec::Kind::kDelay,
                     control::FailureSpec::Kind::kDisconnect};
    } else if (flags.sweep == "service") {
      sweep.kinds = {control::FailureSpec::Kind::kCrash,
                     control::FailureSpec::Kind::kOverload};
    } else if (flags.sweep != "both") {
      std::fprintf(stderr, "--sweep must be edge, service, or both\n");
      return 2;
    }
    auto generated = campaign::generate_sweep(app, file->graph, sweep);
    experiments.insert(experiments.end(),
                       std::make_move_iterator(generated.begin()),
                       std::make_move_iterator(generated.end()));
  }

  if (flags.seeds > 1) {
    std::vector<uint64_t> seeds;
    seeds.reserve(static_cast<size_t>(flags.seeds));
    for (int i = 0; i < flags.seeds; ++i) {
      seeds.push_back(flags.seed + static_cast<uint64_t>(i));
    }
    experiments = campaign::replicate_seeds(experiments, seeds);
  }

  if (experiments.empty()) {
    std::fprintf(stderr, "recipe produced no experiments\n");
    return 1;
  }

  campaign::RunnerOptions options;
  options.threads = flags.threads;
  options.procs = flags.procs;
  options.early_exit = flags.early_exit;
  options.warm_worlds = flags.warm;
  const campaign::CampaignResult result =
      campaign::CampaignRunner(options).run(experiments);

  const report::CampaignReport rep =
      report::build_campaign_report(result, "campaign");
  std::printf("%s", rep.to_markdown().c_str());

  if (!flags.report_path.empty()) {
    std::ofstream out(flags.report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   flags.report_path.c_str());
      return 2;
    }
    out << rep.to_json().dump(2) << "\n";
    std::printf("report written to %s\n", flags.report_path.c_str());
  }
  return rep.all_passed() ? 0 : 1;
}

struct SearchFlags {
  std::string app;         // built-in app name; empty → recipe file
  std::string recipe_path;
  uint64_t seed = 42;
  int threads = 0;
  int procs = 1;
  size_t max_k = 2;
  size_t budget = 5000;
  size_t requests = 0;     // 0 = library default
  bool pairwise = false;
  bool prune = true;
  bool shrink = true;
  bool early_exit = true;  // --no-early-exit: run every sim to quiescence
  bool warm = true;        // --cold: fresh Simulation per experiment
  std::string report_path;
};

// Exit codes: 0 clean, 1 minimal reproducers found, 2 usage/infrastructure
// error (including a baseline that violates its own checks).
int cmd_search(const SearchFlags& flags) {
  campaign::AppSpec app;
  if (!flags.app.empty()) {
    auto named = campaign::AppSpec::named(flags.app);
    if (!named.ok()) {
      std::fprintf(stderr, "unknown app '%s': %s\n", flags.app.c_str(),
                   named.error().message.c_str());
      return 2;
    }
    app = std::move(named.value());
  } else {
    bool ok = false;
    const std::string source = read_file(flags.recipe_path.c_str(), &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot open '%s'\n", flags.recipe_path.c_str());
      return 2;
    }
    auto file = dsl::parse(source);
    if (!file.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   file.error().message.c_str());
      return 2;
    }
    app = campaign::AppSpec::from_graph(file->graph);
  }

  search::SearchOptions options;
  options.seed = flags.seed;
  options.threads = flags.threads;
  options.procs = flags.procs;
  options.generator.max_k = flags.max_k;
  options.generator.max_combinations = flags.budget;
  options.generator.pairwise = flags.pairwise;
  options.prune = flags.prune;
  options.shrink = flags.shrink;
  options.early_exit = flags.early_exit;
  options.warm = flags.warm;
  if (flags.requests > 0) options.load.count = flags.requests;

  const search::SearchOutcome outcome = search::run_search(app, options);
  const report::SearchReport rep =
      report::build_search_report(outcome, app.name);
  std::printf("%s", rep.to_markdown().c_str());

  if (!flags.report_path.empty()) {
    std::ofstream out(flags.report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   flags.report_path.c_str());
      return 2;
    }
    out << rep.to_json().dump(2) << "\n";
    std::printf("report written to %s\n", flags.report_path.c_str());
  }
  if (!outcome.ok) return 2;
  return outcome.found_failures() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];

  if (command == "search") {
    SearchFlags flags;
    int i = 2;
    if (argv[2][0] != '-') {
      flags.recipe_path = argv[2];
      i = 3;
    }
    for (; i < argc; ++i) {
      if (std::strcmp(argv[i], "--app") == 0 && i + 1 < argc) {
        flags.app = argv[++i];
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        flags.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        flags.threads =
            static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
        flags.procs =
            static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--max-k") == 0 && i + 1 < argc) {
        flags.max_k = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
        flags.budget = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
        flags.requests = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--pairwise") == 0) {
        flags.pairwise = true;
      } else if (std::strcmp(argv[i], "--no-prune") == 0) {
        flags.prune = false;
      } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
        flags.shrink = false;
      } else if (std::strcmp(argv[i], "--no-early-exit") == 0) {
        flags.early_exit = false;
      } else if (std::strcmp(argv[i], "--cold") == 0) {
        flags.warm = false;
      } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
        flags.report_path = argv[++i];
      } else {
        return usage();
      }
    }
    if (flags.app.empty() == flags.recipe_path.empty()) {
      std::fprintf(stderr,
                   "search needs exactly one of <recipe-file> or --app\n");
      return 2;
    }
    return cmd_search(flags);
  }

  bool ok = false;
  const std::string source = read_file(argv[2], &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[2]);
    return 2;
  }

  CampaignFlags flags;
  bool with_traces = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      flags.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      flags.seeds = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      flags.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
      flags.procs = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      flags.sweep = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      with_traces = true;
    } else if (std::strcmp(argv[i], "--no-early-exit") == 0) {
      flags.early_exit = false;
    } else if (std::strcmp(argv[i], "--cold") == 0) {
      flags.warm = false;
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      flags.report_path = argv[++i];
    } else {
      return usage();
    }
  }

  if (command == "check") return cmd_check(source);
  if (command == "run") {
    return cmd_run(source, flags.seed, with_traces, flags.report_path);
  }
  if (command == "campaign") return cmd_campaign(source, flags);
  return usage();
}
