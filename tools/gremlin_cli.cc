// gremlin — the command-line recipe runner.
//
// Usage:
//   gremlin run <recipe-file> [--seed N] [--trace] [--report out.json]
//   gremlin check <recipe-file>          # parse only, print structure
//
// `run` executes the recipe against an auto-built simulated deployment
// (services declared in the recipe's graph get the default handler; drive
// real deployments with the library API instead). With --trace, the flow
// trace of every failed test request is printed — the "why did it fail"
// feedback loop of Section 1.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "dsl/interp.h"
#include "dsl/parser.h"
#include "report/report.h"
#include "trace/trace.h"

namespace {

using namespace gremlin;  // NOLINT

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  gremlin run <recipe-file> [--seed N] [--trace]\n"
               "  gremlin check <recipe-file>\n");
  return 2;
}

std::string read_file(const char* path, bool* ok) {
  std::ifstream file(path);
  if (!file) {
    *ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *ok = true;
  return buffer.str();
}

int cmd_check(const std::string& source) {
  auto file = dsl::parse(source);
  if (!file.ok()) {
    std::fprintf(stderr, "parse error: %s\n", file.error().message.c_str());
    return 1;
  }
  std::printf("%s", file->summary().c_str());
  auto acyclic = file->graph.validate_acyclic();
  if (!acyclic.ok()) {
    std::printf("warning: %s\n", acyclic.error().message.c_str());
  }
  std::printf("recipe OK\n");
  return 0;
}

int cmd_run(const std::string& source, uint64_t seed, bool with_traces,
            const std::string& report_path) {
  auto file = dsl::parse(source);
  if (!file.ok()) {
    std::fprintf(stderr, "parse error: %s\n", file.error().message.c_str());
    return 1;
  }
  sim::SimulationConfig cfg;
  cfg.seed = seed;
  sim::Simulation sim(cfg);
  dsl::Interpreter interp(&sim);
  auto outcome = interp.run(file.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "recipe error: %s\n",
                 outcome.error().message.c_str());
    return 1;
  }
  std::printf("%s", outcome->report().c_str());

  if (with_traces) {
    std::printf("\n--- flow traces of failed requests ---\n");
    size_t shown = 0;
    for (const auto& t : trace::build_traces(sim.log_store().all())) {
      if (t.failed_spans() == 0) continue;
      std::printf("%s", t.format_tree().c_str());
      const auto chain = t.failure_chain();
      if (!chain.empty()) {
        std::printf("  origin of failure: %s -> %s\n",
                    t.spans[chain.back()].src.c_str(),
                    t.spans[chain.back()].dst.c_str());
      }
      if (++shown >= 5) {
        std::printf("  (further failed flows elided)\n");
        break;
      }
    }
    if (shown == 0) std::printf("(none)\n");
  }

  if (!report_path.empty()) {
    // Assemble a machine-readable report from the run.
    report::TestReport rep;
    rep.title = "recipe run";
    rep.seed = seed;
    for (const auto& scenario : outcome->scenarios) {
      for (const auto& check : scenario.checks) rep.checks.push_back(check);
    }
    for (const auto& check : rep.checks) {
      if (check.passed) ++rep.checks_passed;
    }
    for (const auto& t : trace::build_traces(sim.log_store().all())) {
      ++rep.flows_observed;
      if (t.failed_spans() == 0) continue;
      ++rep.flows_failed;
      if (rep.diagnoses.size() >= 5) continue;
      report::FailureDiagnosis d;
      d.request_id = t.request_id;
      const auto chain = t.failure_chain();
      if (!chain.empty()) {
        d.origin_edge = t.spans[chain.back()].src + " -> " +
                        t.spans[chain.back()].dst;
      }
      d.rendered = t.format_tree();
      rep.diagnoses.push_back(std::move(d));
    }
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   report_path.c_str());
      return 2;
    }
    out << rep.to_json().dump(2) << "\n";
    std::printf("report written to %s\n", report_path.c_str());
  }
  return outcome->all_passed() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  bool ok = false;
  const std::string source = read_file(argv[2], &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[2]);
    return 2;
  }

  uint64_t seed = 42;
  bool with_traces = false;
  std::string report_path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      with_traces = true;
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      return usage();
    }
  }

  if (command == "check") return cmd_check(source);
  if (command == "run") {
    return cmd_run(source, seed, with_traces, report_path);
  }
  return usage();
}
