// gremlin — the command-line recipe runner.
//
// Usage:
//   gremlin run <recipe-file> [--seed N] [--trace] [--report out.json]
//   gremlin check <recipe-file>          # parse only, print structure
//   gremlin campaign (<recipe-file> | --app <name>) [--seed N] [--seeds K]
//                    [--threads N] [--procs N] [--sweep edge|service|both]
//                    [--report out.json]
//   gremlin search (<recipe-file> | --app <name>) [--max-k K] [--budget N]
//                  [--pairwise] [--no-prune] [--no-shrink] [...]
//
// `search` explores the combinatorial fault space (docs/SEARCH.md): it
// enumerates k-fault combinations, prunes those the observed call graph
// rules out, runs the survivors as a campaign, and shrinks every failure
// to a minimal reproducer. Exit code 0 = clean, 1 = reproducers found,
// 2 = usage or infrastructure error.
//
// `run` executes the recipe imperatively against one auto-built simulated
// deployment (services declared in the recipe's graph get the default
// handler; drive real deployments with the library API instead). With
// --trace, the flow trace of every failed test request is printed — the
// "why did it fail" feedback loop of Section 1.
//
// `campaign` lowers each scenario to a declarative Experiment and executes
// them in parallel on private simulations (docs/CAMPAIGNS.md). --seeds K
// replicates every experiment across K seeds; --sweep additionally
// generates per-edge/per-service failure experiments from the recipe's
// graph. --procs N forks N shard processes, each running --threads
// execution threads (docs/PERFORMANCE.md). Results are deterministic
// regardless of --threads and --procs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/app_spec.h"
#include "campaign/runner.h"
#include "dsl/interp.h"
#include "dsl/lowering.h"
#include "dsl/parser.h"
#include "report/campaign_report.h"
#include "report/report.h"
#include "report/search_report.h"
#include "search/search.h"
#include "trace/trace.h"

namespace {

using namespace gremlin;  // NOLINT

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  gremlin run <recipe-file> [--seed N] [--trace] "
               "[--report out.json]\n"
               "  gremlin check <recipe-file>\n"
               "  gremlin campaign (<recipe-file> | --app <name>) [--seed N] "
               "[--seeds K] [--threads N] [--procs N]\n"
               "                   [--sweep edge|service|infra|both|all] "
               "[--no-early-exit] [--cold] [--no-snapshot]\n"
               "                   [--probabilities 0.1,0.5] "
               "[--windows 10ms+50ms,...]\n"
               "                   [--report out.json]\n"
               "  gremlin search (<recipe-file> | --app <name>) [--seed N] "
               "[--threads N] [--procs N]\n"
               "                 [--max-k K] [--budget N] [--requests N] "
               "[--pairwise]\n"
               "                 [--kinds abort,slow_node,...] "
               "[--probability P] [--after D] [--window D]\n"
               "                 [--no-prune] [--no-shrink] "
               "[--no-early-exit] [--cold]\n"
               "                 [--report out.json]\n");
  return 2;
}

std::string read_file(const char* path, bool* ok) {
  std::ifstream file(path);
  if (!file) {
    *ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *ok = true;
  return buffer.str();
}

int cmd_check(const std::string& source) {
  auto file = dsl::parse(source);
  if (!file.ok()) {
    std::fprintf(stderr, "parse error: %s\n", file.error().message.c_str());
    return 1;
  }
  std::printf("%s", file->summary().c_str());
  auto acyclic = file->graph.validate_acyclic();
  if (!acyclic.ok()) {
    std::printf("warning: %s\n", acyclic.error().message.c_str());
  }
  std::printf("recipe OK\n");
  return 0;
}

int cmd_run(const std::string& source, uint64_t seed, bool with_traces,
            const std::string& report_path) {
  auto file = dsl::parse(source);
  if (!file.ok()) {
    std::fprintf(stderr, "parse error: %s\n", file.error().message.c_str());
    return 1;
  }
  sim::SimulationConfig cfg;
  cfg.seed = seed;
  sim::Simulation sim(cfg);
  dsl::Interpreter interp(&sim);
  auto outcome = interp.run(file.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "recipe error: %s\n",
                 outcome.error().message.c_str());
    return 1;
  }
  std::printf("%s", outcome->report().c_str());

  if (with_traces) {
    std::printf("\n--- flow traces of failed requests ---\n");
    size_t shown = 0;
    for (const auto& t : trace::build_traces(sim.log_store().all())) {
      if (t.failed_spans() == 0) continue;
      std::printf("%s", t.format_tree().c_str());
      const auto chain = t.failure_chain();
      if (!chain.empty()) {
        std::printf("  origin of failure: %s -> %s\n",
                    t.spans[chain.back()].src.str().c_str(),
                    t.spans[chain.back()].dst.str().c_str());
      }
      if (++shown >= 5) {
        std::printf("  (further failed flows elided)\n");
        break;
      }
    }
    if (shown == 0) std::printf("(none)\n");
  }

  if (!report_path.empty()) {
    // Assemble a machine-readable report from the run.
    report::TestReport rep;
    rep.title = "recipe run";
    rep.seed = seed;
    for (const auto& scenario : outcome->scenarios) {
      for (const auto& check : scenario.checks) rep.checks.push_back(check);
    }
    for (const auto& check : rep.checks) {
      if (check.passed) ++rep.checks_passed;
    }
    for (const auto& t : trace::build_traces(sim.log_store().all())) {
      ++rep.flows_observed;
      if (t.failed_spans() == 0) continue;
      ++rep.flows_failed;
      if (rep.diagnoses.size() >= 5) continue;
      report::FailureDiagnosis d;
      d.request_id = t.request_id;
      const auto chain = t.failure_chain();
      if (!chain.empty()) {
        d.origin_edge = t.spans[chain.back()].src + " -> " +
                        t.spans[chain.back()].dst;
      }
      d.rendered = t.format_tree();
      rep.diagnoses.push_back(std::move(d));
    }
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   report_path.c_str());
      return 2;
    }
    out << rep.to_json().dump(2) << "\n";
    std::printf("report written to %s\n", report_path.c_str());
  }
  return outcome->all_passed() ? 0 : 1;
}

struct CampaignFlags {
  std::string app;        // built-in app name (campaign); empty → recipe
  uint64_t seed = 42;
  int seeds = 1;          // multi-seed replication factor
  int threads = 0;        // 0 = hardware concurrency
  int procs = 1;          // worker processes (multi-process sharding)
  std::string sweep;      // "", "edge", "service", "infra", "both", "all"
  bool early_exit = true;  // --no-early-exit: run every sim to quiescence
  bool warm = true;        // --cold: fresh Simulation per experiment
  bool snapshots = true;   // --no-snapshot: disable prefix-snapshot reuse
  std::string probabilities;  // --probabilities 0.1,0.5: sweep axis
  std::string windows;        // --windows 10ms+50ms,20ms+0s: sweep axis
  std::string report_path;
};

// Parses a comma-separated probability list ("0.1,0.5,1"); false on junk.
bool parse_probability_axis(const std::string& csv,
                            std::vector<double>* out) {
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const double p = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return false;
    }
    out->push_back(p);
  }
  return !out->empty();
}

// Parses a comma-separated window list; each entry is "<after>+<duration>"
// or a bare "<after>" (open-ended window).
bool parse_window_axis(const std::string& csv,
                       std::vector<campaign::SweepOptions::Window>* out) {
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    campaign::SweepOptions::Window w;
    const size_t plus = item.find('+');
    const std::string after_text = item.substr(0, plus);
    auto after = parse_duration(after_text);
    if (!after.ok()) return false;
    w.after = after.value();
    if (plus != std::string::npos) {
      auto duration = parse_duration(item.substr(plus + 1));
      if (!duration.ok()) return false;
      w.duration = duration.value();
    }
    out->push_back(w);
  }
  return !out->empty();
}

int cmd_campaign(const std::string& source, const CampaignFlags& flags) {
  campaign::AppSpec app;
  topology::AppGraph graph;
  std::vector<campaign::Experiment> experiments;

  if (!flags.app.empty()) {
    // Registry app (e.g. --app mega:10x50): no recipe to lower, so the
    // experiment list comes entirely from the sweep generator — default to
    // the full edge+service sweep when --sweep is omitted.
    auto named = campaign::AppSpec::named(flags.app);
    if (!named.ok()) {
      std::fprintf(stderr, "unknown app '%s': %s\n", flags.app.c_str(),
                   named.error().message.c_str());
      return 2;
    }
    app = std::move(named.value());
    graph = app.probe_graph();
  } else {
    auto file = dsl::parse(source);
    if (!file.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   file.error().message.c_str());
      return 1;
    }
    // Every scenario lowers onto the same app spec: the recipe's graph with
    // autocreated default-handler services (the `gremlin run` semantics).
    app = campaign::AppSpec::from_graph(file->graph);
    graph = file->graph;
    auto lowered = dsl::lower_recipe(file.value(), app, flags.seed);
    if (!lowered.ok()) {
      std::fprintf(stderr, "lowering error: %s\n",
                   lowered.error().message.c_str());
      return 1;
    }
    experiments = std::move(lowered.value());
  }

  const std::string sweep_mode =
      flags.sweep.empty() && !flags.app.empty() ? "both" : flags.sweep;
  if (!sweep_mode.empty()) {
    campaign::SweepOptions sweep;
    sweep.seed = flags.seed;
    if (sweep_mode == "edge") {
      sweep.kinds = {control::FailureSpec::Kind::kAbort,
                     control::FailureSpec::Kind::kDelay,
                     control::FailureSpec::Kind::kDisconnect};
    } else if (sweep_mode == "service") {
      sweep.kinds = {control::FailureSpec::Kind::kCrash,
                     control::FailureSpec::Kind::kOverload};
    } else if (sweep_mode == "infra") {
      sweep.kinds = {control::FailureSpec::Kind::kInstanceCrash,
                     control::FailureSpec::Kind::kRollingPartition,
                     control::FailureSpec::Kind::kSlowNode};
    } else if (sweep_mode == "all") {
      sweep.kinds = {control::FailureSpec::Kind::kAbort,
                     control::FailureSpec::Kind::kDelay,
                     control::FailureSpec::Kind::kOverload,
                     control::FailureSpec::Kind::kCrash,
                     control::FailureSpec::Kind::kDisconnect,
                     control::FailureSpec::Kind::kInstanceCrash,
                     control::FailureSpec::Kind::kRollingPartition,
                     control::FailureSpec::Kind::kSlowNode};
    } else if (sweep_mode != "both") {
      std::fprintf(stderr,
                   "--sweep must be edge, service, infra, both, or all\n");
      return 2;
    }
    if (!flags.probabilities.empty() &&
        !parse_probability_axis(flags.probabilities,
                                &sweep.probabilities)) {
      std::fprintf(stderr,
                   "--probabilities must be a comma-separated list of "
                   "values in [0, 1]\n");
      return 2;
    }
    if (!flags.windows.empty() &&
        !parse_window_axis(flags.windows, &sweep.windows)) {
      std::fprintf(stderr,
                   "--windows must be a comma-separated list of "
                   "<after>+<duration> (e.g. 10ms+50ms)\n");
      return 2;
    }
    auto generated = campaign::generate_sweep(app, graph, sweep);
    experiments.insert(experiments.end(),
                       std::make_move_iterator(generated.begin()),
                       std::make_move_iterator(generated.end()));
  } else if (!flags.probabilities.empty() || !flags.windows.empty()) {
    std::fprintf(stderr,
                 "--probabilities/--windows are sweep axes; pass --sweep\n");
    return 2;
  }

  if (flags.seeds > 1) {
    std::vector<uint64_t> seeds;
    seeds.reserve(static_cast<size_t>(flags.seeds));
    for (int i = 0; i < flags.seeds; ++i) {
      seeds.push_back(flags.seed + static_cast<uint64_t>(i));
    }
    experiments = campaign::replicate_seeds(experiments, seeds);
  }

  if (experiments.empty()) {
    std::fprintf(stderr, "recipe produced no experiments\n");
    return 1;
  }

  campaign::RunnerOptions options;
  options.threads = flags.threads;
  options.procs = flags.procs;
  options.early_exit = flags.early_exit;
  options.warm_worlds = flags.warm;
  options.use_snapshots = flags.snapshots;
  const campaign::CampaignResult result =
      campaign::CampaignRunner(options).run(experiments);

  const report::CampaignReport rep = report::build_campaign_report(
      result, flags.app.empty() ? "campaign" : "campaign over " + flags.app);
  std::printf("%s", rep.to_markdown().c_str());

  if (!flags.report_path.empty()) {
    std::ofstream out(flags.report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   flags.report_path.c_str());
      return 2;
    }
    out << rep.to_json().dump(2) << "\n";
    std::printf("report written to %s\n", flags.report_path.c_str());
  }
  return rep.all_passed() ? 0 : 1;
}

struct SearchFlags {
  std::string app;         // built-in app name; empty → recipe file
  std::string recipe_path;
  uint64_t seed = 42;
  int threads = 0;
  int procs = 1;
  size_t max_k = 2;
  size_t budget = 5000;
  size_t requests = 0;     // 0 = library default
  bool pairwise = false;
  bool prune = true;
  bool shrink = true;
  bool early_exit = true;  // --no-early-exit: run every sim to quiescence
  bool warm = true;        // --cold: fresh Simulation per experiment
  std::string kinds;       // --kinds abort,slow_node,...: fault-kind set
  double probability = 1.0;  // --probability: applied to every fault point
  std::string after;         // --after 10ms: activation-window start
  std::string window;        // --window 50ms: activation-window duration
  std::string report_path;
};

// Parses a comma-separated fault-kind list for --kinds.
bool parse_kind_set(const std::string& csv,
                    std::vector<control::FailureSpec::Kind>* out) {
  using Kind = control::FailureSpec::Kind;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "abort") out->push_back(Kind::kAbort);
    else if (item == "delay") out->push_back(Kind::kDelay);
    else if (item == "disconnect") out->push_back(Kind::kDisconnect);
    else if (item == "crash") out->push_back(Kind::kCrash);
    else if (item == "hang") out->push_back(Kind::kHang);
    else if (item == "overload") out->push_back(Kind::kOverload);
    else if (item == "instance_crash") out->push_back(Kind::kInstanceCrash);
    else if (item == "rolling_partition") {
      out->push_back(Kind::kRollingPartition);
    } else if (item == "slow_node") out->push_back(Kind::kSlowNode);
    else return false;
  }
  return !out->empty();
}

// Exit codes: 0 clean, 1 minimal reproducers found, 2 usage/infrastructure
// error (including a baseline that violates its own checks).
int cmd_search(const SearchFlags& flags) {
  campaign::AppSpec app;
  if (!flags.app.empty()) {
    auto named = campaign::AppSpec::named(flags.app);
    if (!named.ok()) {
      std::fprintf(stderr, "unknown app '%s': %s\n", flags.app.c_str(),
                   named.error().message.c_str());
      return 2;
    }
    app = std::move(named.value());
  } else {
    bool ok = false;
    const std::string source = read_file(flags.recipe_path.c_str(), &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot open '%s'\n", flags.recipe_path.c_str());
      return 2;
    }
    auto file = dsl::parse(source);
    if (!file.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   file.error().message.c_str());
      return 2;
    }
    app = campaign::AppSpec::from_graph(file->graph);
  }

  search::SearchOptions options;
  options.seed = flags.seed;
  options.threads = flags.threads;
  options.procs = flags.procs;
  options.generator.max_k = flags.max_k;
  options.generator.max_combinations = flags.budget;
  options.generator.pairwise = flags.pairwise;
  if (!flags.kinds.empty()) {
    options.generator.kinds.clear();
    if (!parse_kind_set(flags.kinds, &options.generator.kinds)) {
      std::fprintf(stderr,
                   "--kinds must be a comma-separated list of abort, delay, "
                   "disconnect, crash, hang, overload, instance_crash, "
                   "rolling_partition, slow_node\n");
      return 2;
    }
  }
  if (flags.probability < 0.0 || flags.probability > 1.0) {
    std::fprintf(stderr, "--probability must be in [0, 1]\n");
    return 2;
  }
  options.generator.probability = flags.probability;
  if (!flags.after.empty()) {
    auto after = parse_duration(flags.after);
    if (!after.ok()) {
      std::fprintf(stderr, "--after: %s\n", after.error().message.c_str());
      return 2;
    }
    options.generator.after = after.value();
  }
  if (!flags.window.empty()) {
    auto window = parse_duration(flags.window);
    if (!window.ok()) {
      std::fprintf(stderr, "--window: %s\n", window.error().message.c_str());
      return 2;
    }
    options.generator.window = window.value();
  }
  options.prune = flags.prune;
  options.shrink = flags.shrink;
  options.early_exit = flags.early_exit;
  options.warm = flags.warm;
  if (flags.requests > 0) options.load.count = flags.requests;

  const search::SearchOutcome outcome = search::run_search(app, options);
  const report::SearchReport rep =
      report::build_search_report(outcome, app.name);
  std::printf("%s", rep.to_markdown().c_str());

  if (!flags.report_path.empty()) {
    std::ofstream out(flags.report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write report to '%s'\n",
                   flags.report_path.c_str());
      return 2;
    }
    out << rep.to_json().dump(2) << "\n";
    std::printf("report written to %s\n", flags.report_path.c_str());
  }
  if (!outcome.ok) return 2;
  return outcome.found_failures() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];

  if (command == "search") {
    SearchFlags flags;
    int i = 2;
    if (argv[2][0] != '-') {
      flags.recipe_path = argv[2];
      i = 3;
    }
    for (; i < argc; ++i) {
      if (std::strcmp(argv[i], "--app") == 0 && i + 1 < argc) {
        flags.app = argv[++i];
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        flags.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        flags.threads =
            static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
        flags.procs =
            static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--max-k") == 0 && i + 1 < argc) {
        flags.max_k = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
        flags.budget = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
        flags.requests = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--pairwise") == 0) {
        flags.pairwise = true;
      } else if (std::strcmp(argv[i], "--kinds") == 0 && i + 1 < argc) {
        flags.kinds = argv[++i];
      } else if (std::strcmp(argv[i], "--probability") == 0 && i + 1 < argc) {
        flags.probability = std::strtod(argv[++i], nullptr);
      } else if (std::strcmp(argv[i], "--after") == 0 && i + 1 < argc) {
        flags.after = argv[++i];
      } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
        flags.window = argv[++i];
      } else if (std::strcmp(argv[i], "--no-prune") == 0) {
        flags.prune = false;
      } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
        flags.shrink = false;
      } else if (std::strcmp(argv[i], "--no-early-exit") == 0) {
        flags.early_exit = false;
      } else if (std::strcmp(argv[i], "--cold") == 0) {
        flags.warm = false;
      } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
        flags.report_path = argv[++i];
      } else {
        return usage();
      }
    }
    if (flags.app.empty() == flags.recipe_path.empty()) {
      std::fprintf(stderr,
                   "search needs exactly one of <recipe-file> or --app\n");
      return 2;
    }
    return cmd_search(flags);
  }

  // check/run always take a recipe file; campaign alternatively takes
  // --app <name> (registry apps, including the parameterized mega forms).
  const bool have_recipe = argv[2][0] != '-';
  std::string source;
  if (have_recipe) {
    bool ok = false;
    source = read_file(argv[2], &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[2]);
      return 2;
    }
  }

  CampaignFlags flags;
  bool with_traces = false;
  for (int i = have_recipe ? 3 : 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--app") == 0 && i + 1 < argc) {
      flags.app = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      flags.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      flags.seeds = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      flags.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
      flags.procs = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      flags.sweep = argv[++i];
    } else if (std::strcmp(argv[i], "--probabilities") == 0 && i + 1 < argc) {
      flags.probabilities = argv[++i];
    } else if (std::strcmp(argv[i], "--windows") == 0 && i + 1 < argc) {
      flags.windows = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      with_traces = true;
    } else if (std::strcmp(argv[i], "--no-early-exit") == 0) {
      flags.early_exit = false;
    } else if (std::strcmp(argv[i], "--cold") == 0) {
      flags.warm = false;
    } else if (std::strcmp(argv[i], "--no-snapshot") == 0) {
      flags.snapshots = false;
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      flags.report_path = argv[++i];
    } else {
      return usage();
    }
  }

  if (command == "check" || command == "run") {
    if (!have_recipe || !flags.app.empty()) return usage();
    if (command == "check") return cmd_check(source);
    return cmd_run(source, flags.seed, with_traces, flags.report_path);
  }
  if (command == "campaign") {
    if (have_recipe == !flags.app.empty()) {
      std::fprintf(stderr,
                   "campaign needs exactly one of <recipe-file> or --app\n");
      return 2;
    }
    return cmd_campaign(source, flags);
  }
  return usage();
}
