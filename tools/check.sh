#!/usr/bin/env bash
# Sanitizer gate: build the whole tree under a sanitizer and run the full
# test suite. The campaign runner's parallel workers are the main customer
# — ThreadSanitizer proves they share no unsynchronized state.
#
# Usage:
#   ./tools/check.sh                          # thread sanitizer (default)
#   GREMLIN_SANITIZE=address ./tools/check.sh
#   GREMLIN_SANITIZE=undefined ./tools/check.sh
#   GREMLIN_SANITIZE=address+undefined ./tools/check.sh   # the CI ASan+UBSan gate
set -euo pipefail

SANITIZER="${GREMLIN_SANITIZE:-thread}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${ROOT}/build-${SANITIZER}san"

cmake -B "${BUILD_DIR}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGREMLIN_SANITIZE="${SANITIZER}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "OK: full test suite clean under ${SANITIZER} sanitizer"
