// gremlin-agent — a standalone sidecar Gremlin agent.
//
// Runs the real-network data plane as its own process, configured by a
// JSON file matching the paper's sidecar deployment model (Section 6):
//
//   {
//     "service": "webapp",
//     "instance": "webapp/0",
//     "control_port": 9090,
//     "registry": {"host": "127.0.0.1", "port": 8500},   // optional
//     "routes": [
//       {"destination": "backend",
//        "listen_port": 7001,
//        "endpoints": [{"host": "127.0.0.1", "port": 8080}]},
//       {"destination": "search", "listen_port": 7002}   // via registry
//     ]
//   }
//
// The control plane programs the agent through its REST API
// (/gremlin/v1/rules, /gremlin/v1/records). Runs until SIGINT/SIGTERM.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "proxy/control_api.h"
#include "registry/registry.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop = true; }

using namespace gremlin;  // NOLINT

Result<Json> load_config(const char* path) {
  std::ifstream file(path);
  if (!file) return Error::io(std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Json::parse(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gremlin-agent <config.json>\n");
    return 2;
  }
  auto config = load_config(argv[1]);
  if (!config.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 config.error().message.c_str());
    return 2;
  }
  const Json& cfg = config.value();
  const std::string service = cfg["service"].as_string();
  if (service.empty()) {
    std::fprintf(stderr, "config error: 'service' is required\n");
    return 2;
  }
  const std::string instance =
      cfg.contains("instance") ? cfg["instance"].as_string() : service + "/0";

  proxy::GremlinAgentProxy agent(service, instance);

  std::unique_ptr<registry::RegistryClient> registry_client;
  if (cfg.contains("registry")) {
    registry_client = std::make_unique<registry::RegistryClient>(
        cfg["registry"]["host"].as_string(),
        static_cast<uint16_t>(cfg["registry"]["port"].as_int()));
    agent.set_endpoint_resolver(
        [&registry_client](
            const std::string& dst) -> std::vector<proxy::Upstream> {
          auto eps = registry_client->lookup(dst);
          std::vector<proxy::Upstream> out;
          if (eps.ok()) {
            for (const auto& ep : *eps) out.push_back({ep.host, ep.port});
          }
          return out;
        });
  }

  for (const Json& route_json : cfg["routes"].as_array()) {
    proxy::Route route;
    route.destination = route_json["destination"].as_string();
    route.listen_port =
        static_cast<uint16_t>(route_json["listen_port"].as_int());
    for (const Json& ep : route_json["endpoints"].as_array()) {
      route.endpoints.push_back(
          {ep["host"].as_string().empty() ? "127.0.0.1"
                                          : ep["host"].as_string(),
           static_cast<uint16_t>(ep["port"].as_int())});
    }
    agent.add_route(route);
  }

  auto started = agent.start();
  if (!started.ok()) {
    std::fprintf(stderr, "agent start failed: %s\n",
                 started.error().message.c_str());
    return 1;
  }
  proxy::ControlApiServer api(&agent);
  auto api_port = api.start(
      static_cast<uint16_t>(cfg["control_port"].as_int(0)));
  if (!api_port.ok()) {
    std::fprintf(stderr, "control API start failed: %s\n",
                 api_port.error().message.c_str());
    return 1;
  }

  std::printf("gremlin-agent %s (%s)\n", instance.c_str(), service.c_str());
  for (const Json& route_json : cfg["routes"].as_array()) {
    const std::string dst = route_json["destination"].as_string();
    std::printf("  route %-20s 127.0.0.1:%u\n", dst.c_str(),
                agent.route_port(dst));
  }
  std::printf("  control API          127.0.0.1:%u\n", *api_port);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  api.stop();
  agent.stop();
  return 0;
}
