#!/usr/bin/env bash
# Benchmark gate: build the bench suite, run every bench_* binary with
# --json, and assemble the rows into BENCH_hotpath.json at the repo root.
#
# The output also carries the recorded pre-overhaul baseline for the
# headline metric (BM_RunOneExperiment experiments/second in
# bench_campaign_parallel), so the 2x campaign-throughput claim of
# docs/PERFORMANCE.md can be re-checked against any build:
#
#   ./tools/bench.sh                 # full suite (several minutes)
#   GREMLIN_BENCH_QUICK=1 ./tools/bench.sh   # skip the slow BM_* sweeps
#
# GREMLIN_BUILD_DIR overrides the build tree (default: <repo>/build).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${GREMLIN_BUILD_DIR:-${ROOT}/build}"
OUT="${ROOT}/BENCH_hotpath.json"

# experiments/second measured on this container immediately before the
# hot-path memory overhaul (interned names, pooled events, zero-copy
# queries) landed; see docs/PERFORMANCE.md.
BASELINE_EXPERIMENTS_PER_SEC=545.637

BENCHES=(
  bench_hotpath_alloc
  bench_campaign_parallel
  bench_fig5_delay_cdf
  bench_fig6_circuit_breaker
  bench_fig7_orchestration
  bench_fig8_rule_matching
  bench_table1_outages
  bench_ablation_systematic_vs_random
)

cmake -B "${BUILD_DIR}" -S "${ROOT}" >/dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${BENCHES[@]}"

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

for bench in "${BENCHES[@]}"; do
  args=("--json" "${TMP}/${bench}.json")
  if [[ "${GREMLIN_BENCH_QUICK:-0}" != 0 ]]; then
    # Registered BM_* sweeps dominate the wall clock; keep only the
    # headline throughput benchmark in quick mode.
    case "${bench}" in
      bench_campaign_parallel) args+=("--benchmark_filter=BM_RunOneExperiment") ;;
      bench_fig8_rule_matching) args+=("--benchmark_filter=-.*") ;;
    esac
  fi
  echo "=== ${bench}"
  "${BUILD_DIR}/bench/${bench}" "${args[@]}"
done

python3 - "${OUT}" "${BASELINE_EXPERIMENTS_PER_SEC}" "${TMP}" <<'PY'
import json, pathlib, sys

out, baseline, tmp = sys.argv[1], float(sys.argv[2]), pathlib.Path(sys.argv[3])
rows = []
for path in sorted(tmp.glob("bench_*.json")):
    rows.extend(json.loads(path.read_text()))

post = next((r["value"] for r in rows
             if r["name"] == "BM_RunOneExperiment"
             and r["metric"] == "items_per_second"), None)
doc = {
    "suite": "gremlin hot-path benchmarks",
    "headline": {
        "metric": "experiments_per_second (BM_RunOneExperiment, "
                  "bench_campaign_parallel)",
        "baseline_pre_overhaul": baseline,
        "current": post,
        "speedup": round(post / baseline, 3) if post else None,
    },
    "rows": rows,
}
pathlib.Path(out).write_text(json.dumps(doc, indent=2) + "\n")
print(f"wrote {out}: {len(rows)} rows; "
      f"experiments/s {baseline} -> {post} "
      f"({doc['headline']['speedup']}x)" if post else f"wrote {out}")
PY
