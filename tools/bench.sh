#!/usr/bin/env bash
# Benchmark gate: build the bench suite, run every bench_* binary with
# --json, and assemble the rows into BENCH_hotpath.json at the repo root.
# bench_checker_online additionally feeds BENCH_checker.json (online
# assertion checking with early-verdict termination; headline is the
# search+shrink speedup with verdict-identical results), and
# bench_warm_world feeds BENCH_warmworld.json (warm-world experiment
# execution; headline is the warm/cold throughput speedup with
# byte-identical results), bench_campaign_multiproc feeds
# BENCH_multiproc.json (multi-process campaign sharding; headline is the
# best procs × threads speedup with byte-identical merged results), and
# bench_megatopo feeds BENCH_megatopo.json (timer-wheel scheduling +
# open-loop arrivals against a 501-service deployment; headline is the
# events/s speedup over the heap-only prescheduled baseline, gated >= 3x,
# with fingerprints byte-identical across the scheduler/threads/procs
# matrix), and bench_snapshot feeds BENCH_snapshot.json (prefix-snapshot
# campaign execution on a windowed mega-topology sweep; headline is the
# wall-clock speedup over the no-snapshot warm path, gated >= 2x, with
# byte-identity gated unconditionally).
#
# The output also carries the recorded pre-overhaul baseline for the
# headline metric (BM_RunOneExperiment experiments/second in
# bench_campaign_parallel), so the 2x campaign-throughput claim of
# docs/PERFORMANCE.md can be re-checked against any build:
#
#   ./tools/bench.sh                 # full suite (several minutes)
#   GREMLIN_BENCH_QUICK=1 ./tools/bench.sh   # skip the slow BM_* sweeps
#
# GREMLIN_BUILD_DIR overrides the build tree (default: <repo>/build).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${GREMLIN_BUILD_DIR:-${ROOT}/build}"
OUT="${ROOT}/BENCH_hotpath.json"
CHECKER_OUT="${ROOT}/BENCH_checker.json"
WARMWORLD_OUT="${ROOT}/BENCH_warmworld.json"
MULTIPROC_OUT="${ROOT}/BENCH_multiproc.json"
MEGATOPO_OUT="${ROOT}/BENCH_megatopo.json"
SNAPSHOT_OUT="${ROOT}/BENCH_snapshot.json"

# experiments/second measured on this container immediately before the
# hot-path memory overhaul (interned names, pooled events, zero-copy
# queries) landed; see docs/PERFORMANCE.md.
BASELINE_EXPERIMENTS_PER_SEC=545.637

BENCHES=(
  bench_hotpath_alloc
  bench_campaign_parallel
  bench_fig5_delay_cdf
  bench_fig6_circuit_breaker
  bench_fig7_orchestration
  bench_fig8_rule_matching
  bench_table1_outages
  bench_ablation_systematic_vs_random
)

cmake -B "${BUILD_DIR}" -S "${ROOT}" >/dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${BENCHES[@]}" \
  bench_checker_online bench_warm_world bench_campaign_multiproc \
  bench_megatopo bench_snapshot

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

for bench in "${BENCHES[@]}"; do
  args=("--json" "${TMP}/${bench}.json")
  if [[ "${GREMLIN_BENCH_QUICK:-0}" != 0 ]]; then
    # Registered BM_* sweeps dominate the wall clock; keep only the
    # headline throughput benchmark in quick mode.
    case "${bench}" in
      bench_campaign_parallel) args+=("--benchmark_filter=BM_RunOneExperiment") ;;
      bench_fig8_rule_matching) args+=("--benchmark_filter=-.*") ;;
    esac
  fi
  echo "=== ${bench}"
  "${BUILD_DIR}/bench/${bench}" "${args[@]}"
done

# The online-checker differential bench feeds its own gate file; its json
# deliberately avoids the bench_*.json glob so BENCH_hotpath.json keeps its
# historical row set. Quick mode skips only the BM_* micro-sweeps — the
# on/off differential sections (which enforce verdict identity) always run.
checker_args=("--json" "${TMP}/checker_online.json")
if [[ "${GREMLIN_BENCH_QUICK:-0}" != 0 ]]; then
  checker_args+=("--benchmark_filter=-.*")
fi
echo "=== bench_checker_online"
"${BUILD_DIR}/bench/bench_checker_online" "${checker_args[@]}"

# Warm-world differential bench: like checker_online, its json stays out of
# the bench_*.json glob. Both sections (throughput + allocations) double as
# correctness gates — warm results are fingerprint-compared to cold — so
# they always run, quick mode included.
echo "=== bench_warm_world"
"${BUILD_DIR}/bench/bench_warm_world" --json "${TMP}/warm_world.json"

# Multi-process sharding bench: its json also stays out of the glob. Every
# row doubles as a correctness gate (sharded fingerprints are compared to
# the single-process reference, including a SIGKILL crash-recovery run),
# so it always runs, quick mode included.
echo "=== bench_campaign_multiproc"
"${BUILD_DIR}/bench/bench_campaign_multiproc" --json "${TMP}/multiproc.json"

# Mega-topology scale-out bench: json out of the glob. The binary gates
# itself — >= 3x events/s for wheel+chained over heap+prescheduled, plus
# the byte-identity matrix — so it always runs, quick mode included.
echo "=== bench_megatopo"
"${BUILD_DIR}/bench/bench_megatopo" --json "${TMP}/megatopo.json"

# Prefix-snapshot bench: json out of the glob. The binary gates itself —
# >= 2x campaign wall clock for snapshots over the no-snapshot warm path,
# plus an unconditional byte-identity matrix — so it always runs, quick
# mode included.
echo "=== bench_snapshot"
"${BUILD_DIR}/bench/bench_snapshot" --json "${TMP}/snapshot.json"

python3 - "${OUT}" "${BASELINE_EXPERIMENTS_PER_SEC}" "${TMP}" <<'PY'
import json, pathlib, sys

out, baseline, tmp = sys.argv[1], float(sys.argv[2]), pathlib.Path(sys.argv[3])
rows = []
for path in sorted(tmp.glob("bench_*.json")):
    rows.extend(json.loads(path.read_text()))

post = next((r["value"] for r in rows
             if r["name"] == "BM_RunOneExperiment"
             and r["metric"] == "items_per_second"), None)
doc = {
    "suite": "gremlin hot-path benchmarks",
    "headline": {
        "metric": "experiments_per_second (BM_RunOneExperiment, "
                  "bench_campaign_parallel)",
        "baseline_pre_overhaul": baseline,
        "current": post,
        "speedup": round(post / baseline, 3) if post else None,
    },
    "rows": rows,
}
pathlib.Path(out).write_text(json.dumps(doc, indent=2) + "\n")
print(f"wrote {out}: {len(rows)} rows; "
      f"experiments/s {baseline} -> {post} "
      f"({doc['headline']['speedup']}x)" if post else f"wrote {out}")
PY

python3 - "${CHECKER_OUT}" "${TMP}/checker_online.json" <<'PY'
import json, pathlib, sys

out, src = sys.argv[1], pathlib.Path(sys.argv[2])
rows = json.loads(src.read_text())

def value(name, metric):
    return next((r["value"] for r in rows
                 if r["name"] == name and r["metric"] == metric), None)

speedup = value("checker_online/search_shrink", "speedup")
doc = {
    "suite": "gremlin online assertion checking",
    "headline": {
        "metric": "search+shrink wall-clock speedup, early-exit on vs off "
                  "(verdict-identical; bench_checker_online)",
        "wall_early_exit_on_s":
            value("checker_online/search_shrink/early_exit=on", "wall"),
        "wall_early_exit_off_s":
            value("checker_online/search_shrink/early_exit=off", "wall"),
        "speedup": speedup,
        "campaign_sweep_speedup":
            value("checker_online/campaign_sweep", "speedup"),
        "campaign_failing_batch_speedup":
            value("checker_online/campaign_failing", "speedup"),
    },
    "rows": rows,
}
pathlib.Path(out).write_text(json.dumps(doc, indent=2) + "\n")
print(f"wrote {out}: search+shrink speedup "
      f"{speedup if speedup is not None else 'MISSING'}x")
PY

python3 - "${WARMWORLD_OUT}" "${TMP}/warm_world.json" <<'PY'
import json, pathlib, sys

out, src = sys.argv[1], pathlib.Path(sys.argv[2])
rows = json.loads(src.read_text())

def value(name, metric):
    return next((r["value"] for r in rows
                 if r["name"] == name and r["metric"] == metric), None)

speedup = value("warmworld/throughput", "speedup")
doc = {
    "suite": "gremlin warm-world execution",
    "headline": {
        "metric": "single-thread experiments/second, warm (reused, "
                  "deep-reset simulations) vs cold (fresh simulation per "
                  "experiment; byte-identical results; bench_warm_world)",
        "cold_experiments_per_second":
            value("warmworld/throughput/cold", "experiments_per_second"),
        "warm_experiments_per_second":
            value("warmworld/throughput/warm", "experiments_per_second"),
        "speedup": speedup,
        "cold_allocs_per_experiment":
            value("warmworld/allocs/cold", "allocs_per_experiment"),
        "warm_allocs_per_experiment":
            value("warmworld/allocs/warm", "allocs_per_experiment"),
    },
    "rows": rows,
}
pathlib.Path(out).write_text(json.dumps(doc, indent=2) + "\n")
print(f"wrote {out}: warm/cold speedup "
      f"{speedup if speedup is not None else 'MISSING'}x")
PY

python3 - "${MULTIPROC_OUT}" "${TMP}/multiproc.json" <<'PY'
import json, pathlib, sys

out, src = sys.argv[1], pathlib.Path(sys.argv[2])
rows = json.loads(src.read_text())

def value(name, metric):
    return next((r["value"] for r in rows
                 if r["name"] == name and r["metric"] == metric), None)

best = value("campaign_multiproc/best", "speedup")
identical = all(r["value"] == 1.0 for r in rows
                if r["metric"] == "byte_identical") or None
doc = {
    "suite": "gremlin multi-process campaign sharding",
    "headline": {
        "metric": "best procs x threads wall-clock speedup vs the "
                  "single-process runner (byte-identical merged results; "
                  "bench_campaign_multiproc)",
        "wall_single_process_s":
            value("campaign_multiproc/procs=1,threads=1", "wall"),
        "best_speedup": best,
        "byte_identical": identical,
        "crash_recovery_byte_identical":
            value("campaign_multiproc/crash_recovery", "byte_identical")
            == 1.0,
    },
    "rows": rows,
}
pathlib.Path(out).write_text(json.dumps(doc, indent=2) + "\n")
print(f"wrote {out}: best sharded speedup "
      f"{best if best is not None else 'MISSING'}x, "
      f"byte_identical={identical}")
PY

python3 - "${MEGATOPO_OUT}" "${TMP}/megatopo.json" <<'PY'
import json, pathlib, sys

out, src = sys.argv[1], pathlib.Path(sys.argv[2])
rows = json.loads(src.read_text())

def value(name, metric):
    return next((r["value"] for r in rows
                 if r["name"] == name and r["metric"] == metric), None)

dense = value("megatopo/dense_arrivals", "speedup")
vs_prepr = value("megatopo/gate", "speedup_vs_prepr")
identical = all(r["value"] == 1.0 for r in rows
                if r["metric"] == "byte_identical") or None
doc = {
    "suite": "gremlin mega-topology scale-out",
    "headline": {
        "metric": "events/second, timer wheel + chained open-loop arrivals "
                  "vs heap-only prescheduled arrivals on a 501-service "
                  "deployment (bench_megatopo; gated >= 3x vs the recorded "
                  "pre-PR engine)",
        "heap_prescheduled_events_per_second":
            value("megatopo/dense_arrivals/heap_prescheduled",
                  "events_per_second"),
        "wheel_chained_events_per_second":
            value("megatopo/dense_arrivals/wheel_chained",
                  "events_per_second"),
        "dense_speedup": dense,
        "speedup_vs_prepr": vs_prepr,
        "gateway_traversal_speedup":
            value("megatopo/gateway_traversal", "speedup"),
        "byte_identical_matrix": identical,
        "hardware_threads": value("host", "hardware_threads"),
    },
    "rows": rows,
}
pathlib.Path(out).write_text(json.dumps(doc, indent=2) + "\n")
print(f"wrote {out}: dense-arrival speedup "
      f"{dense if dense is not None else 'MISSING'}x, "
      f"byte_identical={identical}")
PY

python3 - "${SNAPSHOT_OUT}" "${TMP}/snapshot.json" <<'PY'
import json, pathlib, sys

out, src = sys.argv[1], pathlib.Path(sys.argv[2])
rows = json.loads(src.read_text())

def value(name, metric):
    return next((r["value"] for r in rows
                 if r["name"] == name and r["metric"] == metric), None)

speedup = value("snapshot/gate", "speedup")
identical = all(r["value"] == 1.0 for r in rows
                if r["metric"] == "byte_identical") or None
doc = {
    "suite": "gremlin prefix-snapshot campaign execution",
    "headline": {
        "metric": "campaign wall-clock speedup, prefix snapshots vs the "
                  "no-snapshot warm path on a windowed mega-topology sweep "
                  "(byte-identical results; bench_snapshot; gated >= 2x)",
        "no_snapshot_wall_s":
            value("snapshot/windowed_sweep/no_snapshot", "wall"),
        "snapshots_wall_s":
            value("snapshot/windowed_sweep/snapshots", "wall"),
        "speedup": speedup,
        "snapshot_hits":
            value("snapshot/windowed_sweep/snapshots", "snapshot_hits"),
        "prefix_events_skipped":
            value("snapshot/windowed_sweep/snapshots",
                  "prefix_events_skipped"),
        "byte_identical_matrix": identical,
    },
    "rows": rows,
}
pathlib.Path(out).write_text(json.dumps(doc, indent=2) + "\n")
print(f"wrote {out}: snapshot speedup "
      f"{speedup if speedup is not None else 'MISSING'}x, "
      f"byte_identical={identical}")
PY
