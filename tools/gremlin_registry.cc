// gremlin-registry — a standalone service-registry server.
//
//   gremlin-registry [port] [ttl-seconds]
//
// Agents and services register/resolve over the REST API
// (/registry/v1/services). Runs until SIGINT/SIGTERM.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "registry/registry.h"

namespace {
std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop = true; }
}  // namespace

int main(int argc, char** argv) {
  using namespace gremlin;  // NOLINT
  uint16_t port = 8500;
  int64_t ttl_s = 30;
  if (argc > 1) port = static_cast<uint16_t>(std::atoi(argv[1]));
  if (argc > 2) ttl_s = std::atoll(argv[2]);

  registry::Registry reg(sec(ttl_s));
  registry::RegistryServer server(&reg);
  auto bound = server.start(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "start failed: %s\n", bound.error().message.c_str());
    return 1;
  }
  std::printf("gremlin-registry on 127.0.0.1:%u (ttl %llds)\n", *bound,
              static_cast<long long>(ttl_s));

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  return 0;
}
