// WordPress / ElasticPress case study (Section 7.1, Figures 5 & 6).
//
// Reproduces both findings of the paper's WordPress study on the simulated
// stack (WordPress + ElasticPress, Elasticsearch, MySQL):
//   1. Delay faults show ElasticPress implements no timeout — response
//      times are always offset by the injected delay.
//   2. The abort-then-delay Overload test shows no circuit breaker —
//      after 100 consecutive failures, delayed requests still wait out the
//      full 3s instead of short-circuiting to the MySQL fallback.
//
// Build & run:  ./build/examples/wordpress_elasticpress
#include <cstdio>

#include "campaign/app_spec.h"
#include "control/recipe.h"
#include "workload/stats.h"

using namespace gremlin;  // NOLINT

int main() {
  std::printf("ElasticPress resilience study\n\n");

  // ---- finding 1: no timeout pattern ----
  std::printf("1) Delay(wordpress -> elasticsearch, 2s):\n");
  {
    sim::Simulation sim;
    auto graph = campaign::AppSpec::wordpress().instantiate(&sim);
    control::TestSession session(&sim, graph);
    (void)session.apply(control::FailureSpec::delay_edge(
        "wordpress", "elasticsearch", sec(2)));
    auto load = session.run_load("user", "wordpress", 30);
    const auto summary = workload::summarize(load.latencies);
    std::printf("   response times: min=%.2fs p50=%.2fs max=%.2fs\n",
                to_seconds(summary.min), to_seconds(summary.p50),
                to_seconds(summary.max));
    (void)session.collect();
    const auto verdict = session.checker().has_timeouts("wordpress", sec(1));
    std::printf("   %s %s\n      %s\n",
                verdict.passed ? "[PASS]" : "[FAIL]", verdict.name.c_str(),
                verdict.detail.c_str());
    std::printf("   -> every response is offset by the injected delay: the "
                "plugin has no timeout.\n\n");
  }

  // ---- finding 2: graceful fallback, but no circuit breaker ----
  std::printf("2) Abort 100 consecutive requests, then delay 100 by 3s:\n");
  {
    sim::Simulation sim;
    auto graph = campaign::AppSpec::wordpress().instantiate(&sim);
    control::TestSession session(&sim, graph);
    control::FailureSpec abort_spec = control::FailureSpec::abort_edge(
        "wordpress", "elasticsearch", 503);
    abort_spec.max_matches = 100;
    control::FailureSpec delay_spec = control::FailureSpec::delay_edge(
        "wordpress", "elasticsearch", sec(3));
    delay_spec.max_matches = 100;
    (void)session.apply(abort_spec);
    (void)session.apply(delay_spec);

    control::LoadOptions load;
    load.count = 200;
    load.closed_loop = true;
    const auto result = session.run_load("user", "wordpress", load);

    size_t aborted_fast = 0, delayed_fast = 0;
    for (size_t i = 0; i < 100; ++i) {
      if (result.latencies[i] < sec(1)) ++aborted_fast;
    }
    for (size_t i = 100; i < 200; ++i) {
      if (result.latencies[i] < sec(3)) ++delayed_fast;
    }
    std::printf("   aborted phase: %zu/100 served quickly (MySQL search "
                "fallback works)\n", aborted_fast);
    std::printf("   delayed phase: %zu/100 returned before 3s\n",
                delayed_fast);
    std::printf("   -> none short-circuited: 100 consecutive failures never "
                "tripped a breaker.\n");
    std::printf("   -> user-visible failures during the whole test: %zu "
                "(fallback masks errors but not latency)\n\n",
                result.failures);
  }

  std::printf(
      "Both findings match Figures 5 and 6: ElasticPress degrades "
      "gracefully on\nerrors, but ships neither of the latency-protecting "
      "patterns.\n");
  return 0;
}
