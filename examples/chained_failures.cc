// Chained failure scenarios (Section 4.2).
//
// The paper's multi-step recipe:
//
//   Overload(ServiceB)
//   if not HasBoundedRetries(ServiceA, ServiceB, 5):
//       raise 'No bounded retries'
//   else:
//       Crash(ServiceB)
//       HasCircuitBreaker(ServiceA, ServiceB, ...)
//
// In C++ the chaining is ordinary control flow over a TestSession. The
// low-latency feedback (each step completes in milliseconds of wall time)
// is what makes conditional scenarios like this practical.
//
// Build & run:  ./build/examples/chained_failures
#include <cstdio>

#include "control/recipe.h"

using namespace gremlin;  // NOLINT

int main() {
  // serviceA implements all the patterns the chain probes for.
  sim::Simulation sim;
  sim::ServiceConfig service_b;
  service_b.name = "serviceB";
  service_b.processing_time = msec(2);
  sim.add_service(service_b);

  sim::ServiceConfig service_a;
  service_a.name = "serviceA";
  service_a.dependencies = {"serviceB"};
  resilience::CallPolicy policy;
  policy.timeout = msec(300);
  policy.retry.max_retries = 3;
  policy.retry.base_backoff = msec(5);
  policy.circuit_breaker = resilience::CircuitBreakerConfig{5, sec(10), 1};
  policy.fallback = resilience::Fallback{200, "cached"};
  service_a.default_policy = policy;
  sim.add_service(service_a);

  topology::AppGraph graph;
  graph.add_edge("user", "serviceA");
  graph.add_edge("serviceA", "serviceB");
  control::TestSession session(&sim, graph);

  std::printf("step 1: Overload(serviceB)\n");
  (void)session.apply(control::FailureSpec::overload("serviceB"));
  session.run_load("user", "serviceA", 30);
  (void)session.collect();

  const auto retries =
      session.checker().has_bounded_retries("serviceA", "serviceB", 5);
  std::printf("        %s %s\n", retries.passed ? "[PASS]" : "[FAIL]",
              retries.detail.c_str());
  if (!session.check(retries)) {
    std::printf("ABORT: no bounded retries — fix that before probing the "
                "circuit breaker.\n");
    return 1;
  }

  std::printf("step 2: retries are bounded; escalate to Crash(serviceB)\n");
  (void)session.clear_faults();
  sim.log_store().clear();
  (void)session.apply(control::FailureSpec::crash("serviceB"));
  control::LoadOptions load;
  load.count = 50;
  load.id_prefix = "test-crash-";
  session.run_load("user", "serviceA", load);
  (void)session.collect();

  const auto breaker = session.checker().has_circuit_breaker(
      "serviceA", "serviceB", 5, sec(1), 1);
  session.check(breaker);
  std::printf("        %s %s\n", breaker.passed ? "[PASS]" : "[FAIL]",
              breaker.detail.c_str());

  std::printf("\nsession report:\n%s", session.report().c_str());
  return session.all_passed() ? 0 : 1;
}
