// Recipe DSL runner.
//
// Runs a Gremlin recipe file against an auto-created simulated deployment:
//
//   ./build/examples/recipe_dsl path/to/test.recipe
//
// With no argument, runs a built-in recipe that exercises the full command
// set (graph declaration, failure scenarios, load, collection, assertions,
// and `require`-based chaining).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "dsl/interp.h"

using namespace gremlin;  // NOLINT

namespace {

constexpr const char* kBuiltinRecipe = R"(
# Built-in demo recipe: a three-tier app with a naive cache client.
graph {
  user -> frontend
  frontend -> cache
  frontend -> db
}

scenario "cache outage must not take the page down" {
  crash(cache)
  load(client=user, target=frontend, count=40, gap=10ms)
  collect
  assert has_timeouts(frontend, 1s)
  assert has_circuit_breaker(frontend, cache, threshold=5, tdelta=1s,
                             success_threshold=1)
}

scenario "db overload, chained" {
  overload(db, delay=200ms, abort_fraction=0.25)
  load(client=user, target=frontend, count=40, gap=10ms, prefix="test-db-")
  collect
  require has_bounded_retries(frontend, db, max_tries=5)
  # Only reached when the retry budget holds:
  clear
  crash(db)
  load(client=user, target=frontend, count=40, gap=10ms, prefix="test-x-")
  collect
  assert has_circuit_breaker(frontend, db, threshold=5, tdelta=1s)
}
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kBuiltinRecipe;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open recipe file '%s'\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
    std::printf("running recipe %s\n\n", argv[1]);
  } else {
    std::printf("running built-in demo recipe (pass a path to run your "
                "own)\n\n");
  }

  sim::Simulation sim;
  dsl::Interpreter interp(&sim);
  auto outcome = interp.run_source(source);
  if (!outcome.ok()) {
    std::fprintf(stderr, "recipe error: %s\n",
                 outcome.error().message.c_str());
    return 2;
  }
  std::printf("%s", outcome->report().c_str());
  std::printf("\noverall: %s\n",
              outcome->all_passed() ? "ALL PASSED" : "FAILURES DETECTED");
  // A demo on a naive auto-created app is *expected* to surface failures.
  return 0;
}
