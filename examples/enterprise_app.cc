// Enterprise application case study (Section 7.1, Figure 4).
//
// The IBM web-service-discovery app: webapp → {search-svc, activity-svc} →
// {github, stackoverflow}. The webapp team used a Unirest-like client
// library to abstract failure handling; emulating network instability with
// Gremlin revealed that the library's timeout pattern does not cover TCP
// connection failures — those exceptions percolate and fail the request.
//
// Build & run:  ./build/examples/enterprise_app
#include <cstdio>

#include "campaign/app_spec.h"
#include "control/recipe.h"

using namespace gremlin;  // NOLINT

namespace {

void probe(const char* label, const control::FailureSpec& spec,
           bool fixed_library) {
  sim::Simulation sim;
  apps::EnterpriseOptions options;
  options.fix_unirest_bug = fixed_library;
  auto graph = campaign::AppSpec::enterprise(options).instantiate(&sim);
  control::TestSession session(&sim, graph);
  (void)session.apply(spec);
  auto load = session.run_load("user", "webapp", 20);
  std::printf("  %-44s %2zu/20 requests failed\n", label, load.failures);
}

}  // namespace

int main() {
  std::printf("Enterprise app — emulating network instability between the "
              "Web App and its backends\n\n");

  std::printf("Unirest-like library as shipped:\n");
  probe("slow search backend (Hang 10s):",
        control::FailureSpec::hang("search-svc", sec(10)), false);
  probe("search backend 503s (Disconnect):",
        control::FailureSpec::disconnect("webapp", "search-svc"), false);
  probe("TCP resets on webapp->search (Abort -1):",
        control::FailureSpec::abort_edge("webapp", "search-svc",
                                         faults::kTcpReset),
        false);

  std::printf(
      "\n  -> the timeout path degrades gracefully, but connection-level "
      "failures escape\n     the library and the exception fails the whole "
      "page: the bug the developers\n     found with Gremlin.\n\n");

  std::printf("After fixing the library's connection-failure handling:\n");
  probe("TCP resets on webapp->search (Abort -1):",
        control::FailureSpec::abort_edge("webapp", "search-svc",
                                         faults::kTcpReset),
        true);

  std::printf("\nNo application code was modified to run these tests — "
              "faults were staged entirely\nin the sidecar agents.\n");
  return 0;
}
