// Real-network data plane demo.
//
// Runs the whole SDN picture on loopback with genuine TCP/HTTP:
//   * an origin microservice (HTTP server),
//   * a sidecar Gremlin agent proxying the caller's outbound edge,
//   * the agent's REST control API,
//   * a Failure Orchestrator programming the agent remotely
//     (RemoteAgentHandle), and
//   * the Assertion Checker evaluating the collected wire observations.
//
// Build & run:  ./build/examples/real_proxy_demo
#include <cstdio>

#include "control/checker.h"
#include "control/orchestrator.h"
#include "httpserver/client.h"
#include "httpserver/server.h"
#include "proxy/control_api.h"

using namespace gremlin;  // NOLINT

int main() {
  // Origin: the "backend" microservice.
  httpserver::HttpServer backend([](const httpmsg::Request& req) {
    return httpmsg::make_response(200, "inventory for " + req.target);
  });
  auto backend_port = backend.start();
  if (!backend_port.ok()) {
    std::fprintf(stderr, "backend start failed\n");
    return 1;
  }
  std::printf("backend listening on 127.0.0.1:%u\n", *backend_port);

  // Sidecar agent for the "webapp" service's outbound webapp->backend edge.
  proxy::GremlinAgentProxy agent("webapp", "webapp/0");
  proxy::Route route;
  route.destination = "backend";
  route.endpoints = {{"127.0.0.1", *backend_port}};
  agent.add_route(route);
  if (!agent.start().ok()) {
    std::fprintf(stderr, "agent start failed\n");
    return 1;
  }
  std::printf("gremlin agent proxying webapp->backend on 127.0.0.1:%u\n",
              agent.route_port("backend"));

  proxy::ControlApiServer api(&agent);
  auto api_port = api.start();
  if (!api_port.ok()) {
    std::fprintf(stderr, "control API start failed\n");
    return 1;
  }
  std::printf("control API on 127.0.0.1:%u\n\n", *api_port);

  // The control plane sees the agent like any other: via AgentHandle.
  topology::Deployment deployment;
  deployment.add_instance("webapp", std::make_shared<proxy::RemoteAgentHandle>(
                                        "127.0.0.1", *api_port, "webapp/0"));
  control::FailureOrchestrator orchestrator(&deployment);

  auto call = [&](const std::string& id) {
    httpmsg::Request req;
    req.target = "/items";
    req.headers.set(httpmsg::kRequestIdHeader, id);
    return httpserver::HttpClient::fetch(
        "127.0.0.1", agent.route_port("backend"), std::move(req), sec(3));
  };

  std::printf("1) no faults:      ");
  auto normal = call("test-0");
  std::printf("status=%d body=\"%s\"\n", normal.response.status,
              normal.response.body.c_str());

  std::printf("2) Abort(503) on test-* flows, installed via REST:\n");
  (void)orchestrator.install(
      {faults::FaultRule::abort_rule("webapp", "backend", 503, "test-*")});
  auto aborted = call("test-1");
  std::printf("   test flow:      status=%d body=\"%s\"\n",
              aborted.response.status, aborted.response.body.c_str());
  auto prod = call("prod-1");
  std::printf("   prod flow:      status=%d (untouched)\n",
              prod.response.status);

  std::printf("3) Abort(-1): TCP reset observed by the caller:\n");
  (void)orchestrator.clear_rules();
  (void)orchestrator.install({faults::FaultRule::abort_rule(
      "webapp", "backend", faults::kTcpReset, "test-*")});
  auto reset = call("test-2");
  std::printf("   connection_failed=%s\n",
              reset.connection_failed ? "true" : "false");

  // Collect wire observations into the central store and assert on them.
  logstore::LogStore store;
  (void)orchestrator.collect_logs(&store);
  control::AssertionChecker checker(&store);
  std::printf("\ncollected %zu observations from the agent\n", store.size());
  const auto replies = checker.get_replies("webapp", "backend", "test-*");
  std::printf("replies on webapp->backend (test flows): %zu (last status "
              "%d)\n",
              replies.size(), replies.empty() ? -1 : replies.back().status);

  orchestrator.clear_rules().ok();
  agent.stop();
  backend.stop();
  std::printf("\ndone — the same control plane drives simulated and real "
              "agents.\n");
  return 0;
}
