// Sidecar mesh on a real network (loopback).
//
// The full deployment picture of Section 6 with genuine TCP everywhere:
//
//   * a service registry where backends register themselves;
//   * two real microservices (HTTP servers): `catalog` and `reviews`;
//   * a `storefront` service whose outbound calls go through its own
//     sidecar Gremlin agent, with endpoints resolved from the registry;
//   * the Failure Orchestrator programming the agent over its REST API;
//   * a background LogCollector shipping the agent's observations into the
//     central store while traffic flows.
//
// We then stage a Disconnect of `reviews` and watch the storefront's
// degraded page, and verify the collected logs diagnose the edge.
//
// Build & run:  ./build/examples/sidecar_mesh
#include <cstdio>

#include "control/checker.h"
#include "control/collector.h"
#include "control/orchestrator.h"
#include "httpserver/client.h"
#include "httpserver/server.h"
#include "proxy/control_api.h"
#include "registry/registry.h"

using namespace gremlin;  // NOLINT

int main() {
  // --- registry ---
  registry::Registry reg(minutes(5));
  registry::RegistryServer reg_server(&reg);
  auto reg_port = reg_server.start();
  if (!reg_port.ok()) return 1;
  registry::RegistryClient reg_client("127.0.0.1", *reg_port);
  std::printf("registry on 127.0.0.1:%u\n", *reg_port);

  // --- real backend microservices, self-registering ---
  httpserver::HttpServer catalog([](const httpmsg::Request&) {
    return httpmsg::make_response(200, "[widgets, gizmos]");
  });
  httpserver::HttpServer reviews([](const httpmsg::Request&) {
    return httpmsg::make_response(200, "[5 stars]");
  });
  auto catalog_port = catalog.start();
  auto reviews_port = reviews.start();
  if (!catalog_port.ok() || !reviews_port.ok()) return 1;
  (void)reg_client.register_instance("catalog", {"127.0.0.1", *catalog_port});
  (void)reg_client.register_instance("reviews", {"127.0.0.1", *reviews_port});
  std::printf("catalog on :%u, reviews on :%u (registered)\n\n",
              *catalog_port, *reviews_port);

  // --- the storefront's sidecar agent: registry-resolved routes ---
  proxy::GremlinAgentProxy agent("storefront", "storefront/0");
  proxy::Route catalog_route;
  catalog_route.destination = "catalog";
  proxy::Route reviews_route;
  reviews_route.destination = "reviews";
  agent.add_route(catalog_route);
  agent.add_route(reviews_route);
  agent.set_endpoint_resolver(
      [&reg_client](const std::string& dst) -> std::vector<proxy::Upstream> {
        std::vector<proxy::Upstream> out;
        auto eps = reg_client.lookup(dst);
        if (eps.ok()) {
          for (const auto& ep : *eps) out.push_back({ep.host, ep.port});
        }
        return out;
      });
  if (!agent.start().ok()) return 1;
  proxy::ControlApiServer api(&agent);
  auto api_port = api.start();
  if (!api_port.ok()) return 1;

  // --- control plane: orchestrator + background log shipping ---
  topology::Deployment deployment;
  deployment.add_instance(
      "storefront", std::make_shared<proxy::RemoteAgentHandle>(
                        "127.0.0.1", *api_port, "storefront/0"));
  control::FailureOrchestrator orchestrator(&deployment);
  logstore::LogStore store;
  control::LogCollector collector(&deployment, &store, msec(50));
  collector.start();

  // The storefront renders a page by calling both deps through its sidecar.
  auto render_page = [&](const std::string& flow_id) {
    auto one = [&](const std::string& dst) {
      httpmsg::Request req;
      req.headers.set(httpmsg::kRequestIdHeader, flow_id);
      return httpserver::HttpClient::fetch("127.0.0.1",
                                           agent.route_port(dst), req);
    };
    const auto cat = one("catalog");
    const auto rev = one("reviews");
    std::printf("  page[%s]: catalog=%s reviews=%s\n", flow_id.c_str(),
                cat.failed() ? "UNAVAILABLE" : cat.response.body.c_str(),
                rev.failed() ? "UNAVAILABLE" : rev.response.body.c_str());
  };

  std::printf("healthy mesh:\n");
  render_page("test-1");

  std::printf("\nDisconnect(storefront, reviews) via the orchestrator:\n");
  (void)orchestrator.install({faults::FaultRule::abort_rule(
      "storefront", "reviews", 503, "test-*")});
  render_page("test-2");
  std::printf("  (catalog unaffected — the fault is scoped to one edge)\n");

  std::printf("\nprod traffic is untouched by the test-* rule:\n");
  render_page("prod-7");

  collector.stop();
  std::printf("\ncollected %zu observations via the background collector\n",
              store.size());
  control::AssertionChecker checker(&store);
  const auto verdict = checker.error_rate_below("storefront", "reviews",
                                                0.01, "test-*");
  std::printf("%s %s — %s\n", verdict.passed ? "[PASS]" : "[FAIL]",
              verdict.name.c_str(), verdict.detail.c_str());

  (void)orchestrator.clear_rules();
  api.stop();
  agent.stop();
  catalog.stop();
  reviews.stop();
  reg_server.stop();
  std::printf("\nmesh shut down cleanly\n");
  return 0;
}
