// Quickstart: the paper's running example (Section 3.2).
//
// Two HTTP microservices — serviceA calls serviceB. The operator wants to
// know: when serviceB degrades, does serviceA bound its retries to five
// attempts?
//
//   Overload(ServiceB)
//   HasBoundedRetries(ServiceA, ServiceB, 5)
//
// We build the application twice: once with a well-behaved retry policy
// (3 retries) and once with a retry storm (9 retries), and show Gremlin
// passing the first and diagnosing the second.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "control/recipe.h"

using namespace gremlin;  // NOLINT

namespace {

// Builds serviceA -> serviceB with the given retry budget on serviceA.
topology::AppGraph build_app(sim::Simulation* sim, int retries,
                             Duration timeout) {
  sim::ServiceConfig service_b;
  service_b.name = "serviceB";
  service_b.processing_time = msec(2);
  sim->add_service(service_b);

  sim::ServiceConfig service_a;
  service_a.name = "serviceA";
  service_a.processing_time = msec(1);
  service_a.dependencies = {"serviceB"};
  resilience::CallPolicy policy;
  policy.timeout = timeout;
  policy.retry.max_retries = retries;
  policy.retry.base_backoff = msec(10);
  service_a.default_policy = policy;
  sim->add_service(service_a);

  topology::AppGraph graph;
  graph.add_edge("user", "serviceA");
  graph.add_edge("serviceA", "serviceB");
  return graph;
}

void run_overload_test(const char* label, int retries, Duration timeout) {
  std::printf("--- %s (serviceA: timeout %s, up to %d retries) ---\n",
              label, format_duration(timeout).c_str(), retries);

  sim::Simulation sim;
  auto graph = build_app(&sim, retries, timeout);
  control::TestSession session(&sim, graph);

  // 1. Stage the failure: Overload(serviceB). The Recipe Translator turns
  //    this into Abort(25%) + Delay rules on every edge into serviceB and
  //    the Failure Orchestrator programs serviceA's sidecar agent.
  auto rules = session.apply(control::FailureSpec::overload("serviceB"));
  std::printf("installed %zu fault rules\n", rules.ok() ? *rules : 0);

  // 2. Inject test traffic (request IDs "test-*" — production flows are
  //    untouched).
  auto load = session.run_load("user", "serviceA", 50);
  std::printf("injected %zu requests, %zu user-visible failures\n",
              load.total(), load.failures);

  // 3. Collect the agents' observations and check the assertion.
  if (!session.collect().ok()) {
    std::printf("log collection failed\n");
    return;
  }
  const auto verdict =
      session.checker().has_bounded_retries("serviceA", "serviceB", 5);
  std::printf("%s %s\n    %s\n\n", verdict.passed ? "[PASS]" : "[FAIL]",
              verdict.name.c_str(), verdict.detail.c_str());
}

}  // namespace

int main() {
  std::printf("Gremlin quickstart — Overload(serviceB) + "
              "HasBoundedRetries(serviceA, serviceB, 5)\n\n");
  // Compliant: a generous timeout, modest retries — the 25% aborted calls
  // are retried and succeed within budget.
  run_overload_test("compliant service", 3, msec(300));
  // Retry storm: an aggressive 50ms timeout under a 100ms overload delay —
  // every attempt fails and the client burns its whole 9-retry budget.
  run_overload_test("retry storm", 9, msec(50));
  std::printf(
      "The second variant exceeds the recipe's retry budget; the assertion "
      "names the\nedge and the observed attempt count — feedback the "
      "operator acts on directly.\n");
  return 0;
}
