// Quickstart: the paper's running example (Section 3.2).
//
// Two HTTP microservices — serviceA calls serviceB. The operator wants to
// know: when serviceB degrades, does serviceA bound its retries to five
// attempts?
//
//   Overload(ServiceB)
//   HasBoundedRetries(ServiceA, ServiceB, 5)
//
// We build the application twice: once with a well-behaved retry policy
// (3 retries) and once with a retry storm (9 retries), and show Gremlin
// passing the first and diagnosing the second.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "campaign/app_spec.h"
#include "control/recipe.h"

using namespace gremlin;  // NOLINT

namespace {

void run_overload_test(const char* label, int retries, Duration timeout) {
  std::printf("--- %s (serviceA: timeout %s, up to %d retries) ---\n",
              label, format_duration(timeout).c_str(), retries);

  // The app under test is a declarative spec (serviceA -> serviceB with the
  // given retry budget); instantiate builds it into this fresh simulation.
  sim::Simulation sim;
  auto graph = campaign::AppSpec::quickstart(retries, timeout)
                   .instantiate(&sim);
  control::TestSession session(&sim, graph);

  // 1. Stage the failure: Overload(serviceB). The Recipe Translator turns
  //    this into Abort(25%) + Delay rules on every edge into serviceB and
  //    the Failure Orchestrator programs serviceA's sidecar agent.
  auto rules = session.apply(control::FailureSpec::overload("serviceB"));
  std::printf("installed %zu fault rules\n", rules.ok() ? *rules : 0);

  // 2. Inject test traffic (request IDs "test-*" — production flows are
  //    untouched).
  auto load = session.run_load("user", "serviceA", 50);
  std::printf("injected %zu requests, %zu user-visible failures\n",
              load.total(), load.failures);

  // 3. Collect the agents' observations and check the assertion.
  if (!session.collect().ok()) {
    std::printf("log collection failed\n");
    return;
  }
  const auto verdict =
      session.checker().has_bounded_retries("serviceA", "serviceB", 5);
  std::printf("%s %s\n    %s\n\n", verdict.passed ? "[PASS]" : "[FAIL]",
              verdict.name.c_str(), verdict.detail.c_str());
}

}  // namespace

int main() {
  std::printf("Gremlin quickstart — Overload(serviceB) + "
              "HasBoundedRetries(serviceA, serviceB, 5)\n\n");
  // Compliant: a generous timeout, modest retries — the 25% aborted calls
  // are retried and succeed within budget.
  run_overload_test("compliant service", 3, msec(300));
  // Retry storm: an aggressive 50ms timeout under a 100ms overload delay —
  // every attempt fails and the client burns its whole 9-retry budget.
  run_overload_test("retry storm", 9, msec(50));
  std::printf(
      "The second variant exceeds the recipe's retry budget; the assertion "
      "names the\nedge and the observed attempt count — feedback the "
      "operator acts on directly.\n");
  return 0;
}
