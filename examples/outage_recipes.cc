// Table 1 outage recipes (Section 5).
//
// Runs all five recreated outages — Parse.ly, CircleCI, BBC, Spotify,
// Twilio — against both variants of each application and prints the
// recipes' verdicts. The naive variants reproduce the postmortem bug and
// fail their assertions; the resilient variants pass.
//
// Build & run:  ./build/examples/outage_recipes
#include <cstdio>

#include "apps/outages.h"

using namespace gremlin;  // NOLINT

int main() {
  std::printf("Recreating Table 1's outages as Gremlin recipes\n\n");
  for (const auto& outage : apps::table1_cases()) {
    std::printf("%s — %s\n", outage.id.c_str(), outage.summary.c_str());
    for (const bool resilient : {false, true}) {
      const auto results = apps::run_outage_case(outage, resilient);
      std::printf("  %s variant:\n", resilient ? "resilient" : "naive");
      for (const auto& r : results) {
        std::printf("    %s %s\n        %s\n",
                    r.passed ? "[PASS]" : "[FAIL]", r.name.c_str(),
                    r.detail.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Each failing assertion names the service, the missing pattern and "
      "the observed\nbehaviour — the feedback loop the paper argues makes "
      "systematic testing more\nvaluable than randomized fault "
      "injection.\n");
  return 0;
}
