// Table 1 outage recipes (Section 5).
//
// Runs all five recreated outages — Parse.ly, CircleCI, BBC, Spotify,
// Twilio — against both variants of each application and prints the
// recipes' verdicts. The naive variants reproduce the postmortem bug and
// fail their assertions; the resilient variants pass.
//
// The ten (case × variant) runs execute as one parallel campaign: each
// imperative recipe becomes an Experiment via the `custom` escape hatch, so
// even chained, hand-written scenarios get private simulations, all cores,
// and deterministic results.
//
// Build & run:  ./build/examples/outage_recipes
#include <cstdio>
#include <vector>

#include "apps/outages.h"
#include "campaign/runner.h"

using namespace gremlin;  // NOLINT

int main() {
  std::printf("Recreating Table 1's outages as Gremlin recipes\n\n");

  const auto& cases = apps::table1_cases();
  std::vector<campaign::Experiment> experiments;
  for (const auto& outage : cases) {
    for (const bool resilient : {false, true}) {
      campaign::Experiment e;
      e.id = outage.id + (resilient ? " [resilient]" : " [naive]");
      e.seed = 42;
      e.app.name = outage.id;
      e.app.build = [build = outage.build,
                     resilient](sim::Simulation* sim) {
        return build(sim, resilient);
      };
      e.custom = [recipe = outage.recipe](control::TestSession* session) {
        recipe(session);
        return session->results();
      };
      experiments.push_back(std::move(e));
    }
  }

  const campaign::CampaignResult result =
      campaign::CampaignRunner().run(experiments);

  for (size_t c = 0; c < cases.size(); ++c) {
    std::printf("%s — %s\n", cases[c].id.c_str(),
                cases[c].summary.c_str());
    for (const bool resilient : {false, true}) {
      const auto& r = result.experiments[c * 2 + (resilient ? 1 : 0)];
      std::printf("  %s variant:\n", resilient ? "resilient" : "naive");
      for (const auto& check : r.checks) {
        std::printf("    %s %s\n        %s\n",
                    check.passed ? "[PASS]" : "[FAIL]", check.name.c_str(),
                    check.detail.c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "All %zu recipe runs executed as one campaign on %d threads in "
      "%.0fms.\n\n",
      result.experiments.size(), result.threads,
      to_seconds(result.wall_clock) * 1e3);
  std::printf(
      "Each failing assertion names the service, the missing pattern and "
      "the observed\nbehaviour — the feedback loop the paper argues makes "
      "systematic testing more\nvaluable than randomized fault "
      "injection.\n");
  return 0;
}
