// Message-bus (publish-subscribe) resilience demo.
//
// Builds the Parse.ly/Stackdriver-style pipeline on the pub-sub broker —
// publishers → message bus (bounded queues, at-least-once delivery) →
// Cassandra — and walks through three Gremlin scenarios:
//
//   1. healthy pipeline: everything flows;
//   2. crash-recovery of Cassandra (down 2s, then heals): the bus absorbs
//      the outage, queues drain, nothing is lost;
//   3. permanent crash: deliveries fail, queues fill, publishers block —
//      the cascade the postmortems describe — diagnosed by the recipe's
//      assertions and a flow trace.
//
// Build & run:  ./build/examples/message_bus
#include <cstdio>

#include "control/recipe.h"
#include "report/report.h"
#include "sim/pubsub.h"

using namespace gremlin;  // NOLINT

namespace {

struct BusApp {
  sim::Simulation sim;
  std::unique_ptr<sim::PubSubBroker> broker;
  topology::AppGraph graph;
  size_t stored = 0;

  BusApp() {
    sim::ServiceConfig cassandra;
    cassandra.name = "cassandra";
    cassandra.processing_time = msec(5);
    cassandra.handler = [this](std::shared_ptr<sim::RequestContext> ctx) {
      ++stored;
      ctx->respond(200, "stored");
    };
    sim.add_service(cassandra);

    sim::PubSubBroker::Options options;
    options.queue_capacity = 8;
    options.on_full = sim::PubSubBroker::Options::FullPolicy::kBlock;
    options.delivery_retry = msec(100);
    broker = std::make_unique<sim::PubSubBroker>(&sim, options);
    broker->subscribe("writes", "cassandra");

    graph.add_edge("user", "publisher");
    graph.add_edge("publisher", "messagebus");
    graph.add_edge("messagebus", "cassandra");

    sim::ServiceConfig publisher;
    publisher.name = "publisher";
    publisher.handler = [](std::shared_ptr<sim::RequestContext> ctx) {
      sim::SimRequest publish;
      publish.method = "POST";
      publish.uri = "/publish/writes";
      publish.body = "datapoint";
      ctx->call("messagebus", publish,
                [ctx](const sim::SimResponse& resp) {
                  ctx->respond(resp.failed() ? 500 : 200, resp.body);
                });
    };
    sim.add_service(publisher);
  }
};

}  // namespace

int main() {
  std::printf("Pub-sub pipeline: publisher -> messagebus -> cassandra\n\n");

  {
    std::printf("1) healthy pipeline:\n");
    BusApp app;
    control::TestSession session(&app.sim, app.graph);
    auto load = session.run_load("user", "publisher", 20);
    std::printf("   20 published, %zu stored, %zu user failures, queue "
                "peak %zu\n\n",
                app.stored, load.failures,
                app.broker->queue_peak("writes"));
  }

  {
    std::printf("2) crash-recovery: cassandra down for 2s, then heals:\n");
    BusApp app;
    control::TestSession session(&app.sim, app.graph);
    auto applied = session.apply_for(
        control::FailureSpec::crash("cassandra"), sec(2));
    (void)applied;
    control::LoadOptions load;
    load.count = 20;
    load.gap = msec(100);
    load.horizon = sec(30);
    auto result = session.run_load("user", "publisher", load);
    std::printf("   %zu stored after recovery (at-least-once delivery), "
                "%zu user failures, queue peak %zu, %llu delivery "
                "retries\n\n",
                app.stored, result.failures,
                app.broker->queue_peak("writes"),
                static_cast<unsigned long long>(
                    app.broker->delivery_failures()));
  }

  {
    std::printf("3) permanent crash — the cascade:\n");
    BusApp app;
    control::TestSession session(&app.sim, app.graph);
    auto applied = session.apply(control::FailureSpec::crash("cassandra"));
    (void)applied;
    control::LoadOptions load;
    load.count = 20;
    load.gap = msec(100);
    load.horizon = sec(10);
    auto result = session.run_load("user", "publisher", load);
    auto collected = session.collect();
    (void)collected;
    std::printf("   %zu stored, queue peak %zu/8, publishers stuck: %zu "
                "requests never completed\n",
                app.stored, app.broker->queue_peak("writes"),
                static_cast<size_t>(std::count(result.statuses.begin(),
                                               result.statuses.end(), 0)));
    // Both checks fail — exactly the diagnosis an operator needs: the
    // publisher has no timeout (12 requests simply hang) and the bus does
    // not contain the backend failure.
    session.check(session.checker().has_timeouts("publisher", sec(1)));
    session.check(session.checker().failure_contained("messagebus"));
    const auto report =
        report::build_report(&session, "message bus cascade", 1);
    std::printf("\n%s", report.to_markdown().c_str());
  }
  return 0;
}
