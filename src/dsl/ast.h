// AST for the Gremlin recipe language.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/duration.h"
#include "topology/graph.h"

namespace gremlin::dsl {

// A command argument: positional or named (name=value).
struct Arg {
  std::string name;  // empty for positional
  enum class Kind { kIdent, kString, kNumber, kDuration, kList } kind =
      Kind::kIdent;
  std::string text;                // kIdent / kString
  double number = 0;               // kNumber
  Duration duration{};             // kDuration
  std::vector<std::string> list;   // kList ([a, b, c] of idents/strings)
  int line = 0;

  bool is_textual() const {
    return kind == Kind::kIdent || kind == Kind::kString;
  }
};

// One statement inside a scenario: `name(arg, key=value, ...)` or a bare
// keyword (`collect`, `clear`). `required` marks the `require` prefix, which
// aborts the scenario when the assertion fails (the chained-failure pattern
// of Section 4.2).
struct Command {
  std::string name;
  std::vector<Arg> args;
  bool required = false;
  int line = 0;

  // First positional argument's text, or empty.
  const Arg* positional(size_t index) const;
  const Arg* named(const std::string& key) const;
};

struct Scenario {
  std::string name;
  std::vector<Command> commands;
  int line = 0;
};

// --- argument extraction (shared by the interpreter and the campaign
// lowering pass): positional index OR named key, with type coercion and
// defaults. ---

// Error prefixed with the command's recipe line, for user-facing messages.
Error command_error(const Command& cmd, const std::string& msg);

Result<std::string> text_arg(const Command& cmd, size_t pos,
                             const std::string& key);
std::string text_arg_or(const Command& cmd, size_t pos,
                        const std::string& key, std::string fallback);
double number_arg_or(const Command& cmd, size_t pos, const std::string& key,
                     double fallback);
Duration duration_arg_or(const Command& cmd, size_t pos,
                         const std::string& key, Duration fallback);
bool bool_arg_or(const Command& cmd, const std::string& key, bool fallback);

struct RecipeFile {
  topology::AppGraph graph;
  std::vector<Scenario> scenarios;

  std::string summary() const;  // human-readable structure dump
};

}  // namespace gremlin::dsl
