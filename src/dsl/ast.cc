#include "dsl/ast.h"

namespace gremlin::dsl {

const Arg* Command::positional(size_t index) const {
  size_t seen = 0;
  for (const auto& arg : args) {
    if (!arg.name.empty()) continue;
    if (seen == index) return &arg;
    ++seen;
  }
  return nullptr;
}

const Arg* Command::named(const std::string& key) const {
  for (const auto& arg : args) {
    if (arg.name == key) return &arg;
  }
  return nullptr;
}

Error command_error(const Command& cmd, const std::string& msg) {
  return Error::invalid_argument("recipe line " + std::to_string(cmd.line) +
                                 ", " + cmd.name + ": " + msg);
}

Result<std::string> text_arg(const Command& cmd, size_t pos,
                             const std::string& key) {
  const Arg* arg = cmd.named(key);
  if (arg == nullptr) arg = cmd.positional(pos);
  if (arg == nullptr) {
    return command_error(cmd, "missing argument '" + key + "'");
  }
  if (!arg->is_textual()) {
    return command_error(cmd,
                         "argument '" + key + "' must be a name or string");
  }
  return arg->text;
}

std::string text_arg_or(const Command& cmd, size_t pos,
                        const std::string& key, std::string fallback) {
  auto v = text_arg(cmd, pos, key);
  return v.ok() ? v.value() : std::move(fallback);
}

double number_arg_or(const Command& cmd, size_t pos, const std::string& key,
                     double fallback) {
  const Arg* arg = cmd.named(key);
  if (arg == nullptr) arg = cmd.positional(pos);
  if (arg == nullptr || arg->kind != Arg::Kind::kNumber) return fallback;
  return arg->number;
}

Duration duration_arg_or(const Command& cmd, size_t pos,
                         const std::string& key, Duration fallback) {
  const Arg* arg = cmd.named(key);
  if (arg == nullptr) arg = cmd.positional(pos);
  if (arg == nullptr || arg->kind != Arg::Kind::kDuration) return fallback;
  return arg->duration;
}

bool bool_arg_or(const Command& cmd, const std::string& key, bool fallback) {
  const Arg* arg = cmd.named(key);
  if (arg == nullptr || !arg->is_textual()) return fallback;
  return arg->text == "true" || arg->text == "yes" || arg->text == "on";
}

std::string RecipeFile::summary() const {
  std::string out;
  out += "graph: " + std::to_string(graph.service_count()) + " services, " +
         std::to_string(graph.edge_count()) + " edges\n";
  for (const auto& scenario : scenarios) {
    out += "scenario \"" + scenario.name + "\": " +
           std::to_string(scenario.commands.size()) + " commands\n";
    for (const auto& cmd : scenario.commands) {
      out += "  " + std::string(cmd.required ? "require " : "") + cmd.name +
             "/" + std::to_string(cmd.args.size()) + "\n";
    }
  }
  return out;
}

}  // namespace gremlin::dsl
