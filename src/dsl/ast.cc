#include "dsl/ast.h"

namespace gremlin::dsl {

const Arg* Command::positional(size_t index) const {
  size_t seen = 0;
  for (const auto& arg : args) {
    if (!arg.name.empty()) continue;
    if (seen == index) return &arg;
    ++seen;
  }
  return nullptr;
}

const Arg* Command::named(const std::string& key) const {
  for (const auto& arg : args) {
    if (arg.name == key) return &arg;
  }
  return nullptr;
}

std::string RecipeFile::summary() const {
  std::string out;
  out += "graph: " + std::to_string(graph.service_count()) + " services, " +
         std::to_string(graph.edge_count()) + " edges\n";
  for (const auto& scenario : scenarios) {
    out += "scenario \"" + scenario.name + "\": " +
           std::to_string(scenario.commands.size()) + " commands\n";
    for (const auto& cmd : scenario.commands) {
      out += "  " + std::string(cmd.required ? "require " : "") + cmd.name +
             "/" + std::to_string(cmd.args.size()) + "\n";
    }
  }
  return out;
}

}  // namespace gremlin::dsl
