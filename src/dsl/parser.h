// Recursive-descent parser for the Gremlin recipe language.
//
// Grammar (informal):
//   file      := (graph_block | scenario)*
//   graph_block := "graph" "{" edge* "}"
//   edge      := ident ("->" ident)+
//   scenario  := "scenario" string "{" command* "}"
//   command   := ["require"] ["assert"] ident [ "(" arg_list ")" ]
//   arg_list  := arg ("," arg)*
//   arg       := [ident "="] value
//   value     := ident | string | number | duration | "[" value* "]"
#pragma once

#include "dsl/ast.h"
#include "dsl/lexer.h"

namespace gremlin::dsl {

Result<RecipeFile> parse(std::string_view source);
Result<RecipeFile> parse_tokens(const std::vector<Token>& tokens);

}  // namespace gremlin::dsl
