// Recipe → Experiment lowering: the bridge from the recipe DSL to the
// campaign engine.
//
// The interpreter executes a recipe imperatively against one live
// simulation; lowering instead compiles each scenario into a declarative
// campaign::Experiment so the CampaignRunner can execute scenarios in
// parallel on private simulations, replicate them across seeds, and mix
// them with generated sweeps.
//
// Both paths share one command vocabulary: the parsers here turn a DSL
// Command into a FailureSpec / CheckSpec value, and the interpreter applies
// the same values imperatively.
//
// A scenario lowers cleanly when it is declarative: failure commands, then
// one optional `load`, then assertions (`collect` is implicit — the runner
// always collects before checking). Scenarios using chained control flow
// (`require`, `clear`, `clear_logs`, `crash_recovery`, multiple loads)
// cannot run as a single isolated experiment and are rejected with the
// offending line, pointing the operator at `gremlin run`.
#pragma once

#include <optional>

#include "campaign/experiment.h"
#include "dsl/ast.h"

namespace gremlin::dsl {

// Applies the fault options every failure command accepts
// (pattern / probability / max_matches / on, the activation window
// after / window, and the delay distribution options distribution / min /
// max / mean / values) from `cmd` onto `spec`. Fails on malformed option
// values (unknown distribution, bad duration in values=[...]).
VoidResult apply_common_fault_options(const Command& cmd,
                                      control::FailureSpec* spec);

// Parses a failure command (abort, delay, modify, disconnect, crash, hang,
// overload, fake_success, partition, instance_crash, rolling_partition,
// slow_node) into a FailureSpec with common options applied. Returns
// nullopt when `cmd` is not a failure command.
Result<std::optional<control::FailureSpec>> failure_spec_from_command(
    const Command& cmd);

// Parses an assertion command (has_timeouts, has_bounded_retries,
// has_circuit_breaker, has_bulkhead, has_latency_slo, error_rate_below,
// failure_contained, max_user_failures) into a CheckSpec. Returns nullopt
// when `cmd` is not an assertion command.
Result<std::optional<campaign::CheckSpec>> check_spec_from_command(
    const Command& cmd);

// Parses a `load` command into LoadOptions plus its client/target names.
struct LoweredLoad {
  control::LoadOptions options;
  std::string client;
  std::string target;
};
Result<LoweredLoad> load_from_command(const Command& cmd);

// Lowers every scenario of `file` into one Experiment built on `app`
// (typically campaign::AppSpec::from_graph(file.graph)). Experiment ids are
// the scenario names; every experiment gets `seed`.
Result<std::vector<campaign::Experiment>> lower_recipe(
    const RecipeFile& file, const campaign::AppSpec& app, uint64_t seed);

}  // namespace gremlin::dsl
