#include "dsl/lexer.h"

#include <cctype>

namespace gremlin::dsl {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kNumber: return "number";
    case TokenKind::kDuration: return "duration";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == '*' || c == '?';
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_ws_and_comments();
      if (pos_ >= src_.size()) break;
      auto token = next_token();
      if (!token.ok()) return token.error();
      tokens.push_back(std::move(token.value()));
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.column = col_;
    tokens.push_back(eof);
    return tokens;
  }

 private:
  Error fail(const std::string& msg) const {
    return Error::parse("recipe:" + std::to_string(line_) + ":" +
                        std::to_string(col_) + ": " + msg);
  }

  char peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (pos_ < src_.size() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  Token begin_token(TokenKind kind) const {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.column = col_;
    return t;
  }

  Result<Token> next_token() {
    const char c = peek();
    switch (c) {
      case '{': { Token t = begin_token(TokenKind::kLBrace); advance(); return t; }
      case '}': { Token t = begin_token(TokenKind::kRBrace); advance(); return t; }
      case '(': { Token t = begin_token(TokenKind::kLParen); advance(); return t; }
      case ')': { Token t = begin_token(TokenKind::kRParen); advance(); return t; }
      case '[': { Token t = begin_token(TokenKind::kLBracket); advance(); return t; }
      case ']': { Token t = begin_token(TokenKind::kRBracket); advance(); return t; }
      case ',': { Token t = begin_token(TokenKind::kComma); advance(); return t; }
      case '=': { Token t = begin_token(TokenKind::kEquals); advance(); return t; }
      case '-':
        if (peek(1) == '>') {
          Token t = begin_token(TokenKind::kArrow);
          advance();
          advance();
          return t;
        }
        if (std::isdigit(static_cast<unsigned char>(peek(1)))) {
          return lex_number();
        }
        return fail("unexpected '-'");
      case '"':
        return lex_string();
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
        if (ident_start(c)) return lex_ident();
        return fail(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Token> lex_string() {
    Token t = begin_token(TokenKind::kString);
    advance();  // opening quote
    while (pos_ < src_.size() && peek() != '"') {
      if (peek() == '\n') return fail("unterminated string");
      if (peek() == '\\' && pos_ + 1 < src_.size()) {
        advance();
        t.text.push_back(advance());
      } else {
        t.text.push_back(advance());
      }
    }
    if (pos_ >= src_.size()) return fail("unterminated string");
    advance();  // closing quote
    return t;
  }

  Result<Token> lex_number() {
    Token t = begin_token(TokenKind::kNumber);
    std::string digits;
    if (peek() == '-') digits.push_back(advance());
    while (std::isdigit(static_cast<unsigned char>(peek())) ||
           peek() == '.') {
      digits.push_back(advance());
    }
    // Unit suffix turns the number into a duration.
    std::string unit;
    while (std::isalpha(static_cast<unsigned char>(peek()))) {
      unit.push_back(advance());
    }
    if (!unit.empty()) {
      auto dur = parse_duration(digits + unit);
      if (!dur.ok()) return fail(dur.error().message);
      t.kind = TokenKind::kDuration;
      t.duration = dur.value();
      t.text = digits + unit;
      return t;
    }
    t.number = std::strtod(digits.c_str(), nullptr);
    t.text = digits;
    return t;
  }

  Result<Token> lex_ident() {
    Token t = begin_token(TokenKind::kIdent);
    while (ident_char(peek())) t.text.push_back(advance());
    return t;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> lex(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace gremlin::dsl
