#include "dsl/lowering.h"

#include <set>

namespace gremlin::dsl {

using campaign::CheckSpec;
using campaign::Experiment;
using control::FailureSpec;

VoidResult apply_common_fault_options(const Command& cmd, FailureSpec* spec) {
  spec->pattern = text_arg_or(cmd, 99, "pattern", spec->pattern);
  spec->probability =
      number_arg_or(cmd, 99, "probability", spec->probability);
  const double max_matches = number_arg_or(cmd, 99, "max_matches", -1);
  if (max_matches >= 0) {
    spec->max_matches = static_cast<uint64_t>(max_matches);
  }
  const std::string on = text_arg_or(cmd, 99, "on", "");
  if (on == "response") spec->on = logstore::MessageKind::kResponse;
  if (on == "request") spec->on = logstore::MessageKind::kRequest;

  // Activation window (virtual-clock offsets from experiment start).
  spec->after = duration_arg_or(cmd, 99, "after", spec->after);
  spec->window = duration_arg_or(cmd, 99, "window", spec->window);

  // Delay distribution options (delay-producing commands only; harmless
  // elsewhere since only delay rules read them).
  const std::string dist = text_arg_or(cmd, 99, "distribution", "");
  if (!dist.empty()) {
    auto parsed = faults::delay_distribution_from_string(dist);
    if (!parsed.ok()) return command_error(cmd, parsed.error().message);
    spec->delay_distribution = *parsed;
  }
  spec->delay_min = duration_arg_or(cmd, 99, "min", spec->delay_min);
  spec->delay_max = duration_arg_or(cmd, 99, "max", spec->delay_max);
  spec->delay_mean = duration_arg_or(cmd, 99, "mean", spec->delay_mean);
  if (const Arg* values = cmd.named("values")) {
    if (values->kind != Arg::Kind::kList) {
      return command_error(cmd, "values= must be a [list] of durations");
    }
    spec->delay_values.clear();
    for (const std::string& v : values->list) {
      auto d = parse_duration(v);
      if (!d.ok()) {
        return command_error(cmd, "bad duration '" + v + "' in values=");
      }
      spec->delay_values.push_back(*d);
    }
    // values=[...] implies the empirical sampler unless the recipe named a
    // different distribution explicitly.
    if (dist.empty()) {
      spec->delay_distribution = faults::DelayDistribution::kEmpirical;
    }
  }
  return VoidResult::success();
}

Result<std::optional<FailureSpec>> failure_spec_from_command(
    const Command& cmd) {
  const std::string& name = cmd.name;

  auto finish = [&cmd](FailureSpec spec) -> Result<std::optional<FailureSpec>> {
    auto applied = apply_common_fault_options(cmd, &spec);
    if (!applied.ok()) return applied.error();
    return std::optional<FailureSpec>(std::move(spec));
  };

  if (name == "abort") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const int error = static_cast<int>(number_arg_or(cmd, 2, "error", 503));
    return finish(FailureSpec::abort_edge(src.value(), dst.value(), error));
  }
  if (name == "delay") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const Duration interval = duration_arg_or(cmd, 2, "interval", msec(100));
    return finish(
        FailureSpec::delay_edge(src.value(), dst.value(), interval));
  }
  if (name == "modify") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    auto match = text_arg(cmd, 2, "match");
    if (!match.ok()) return match.error();
    auto replace = text_arg(cmd, 3, "replace");
    if (!replace.ok()) return replace.error();
    return finish(FailureSpec::modify_edge(src.value(), dst.value(),
                                           match.value(), replace.value()));
  }
  if (name == "disconnect") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const int error = static_cast<int>(number_arg_or(cmd, 2, "error", 503));
    return finish(
        FailureSpec::disconnect(src.value(), dst.value(), error));
  }
  if (name == "crash") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    return finish(FailureSpec::crash(svc.value()));
  }
  if (name == "hang") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration interval = duration_arg_or(cmd, 1, "interval", hours(1));
    return finish(FailureSpec::hang(svc.value(), interval));
  }
  if (name == "overload") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration delay = duration_arg_or(cmd, 1, "delay", msec(100));
    const double abort_fraction =
        number_arg_or(cmd, 2, "abort_fraction", 0.25);
    return finish(
        FailureSpec::overload(svc.value(), delay, abort_fraction));
  }
  if (name == "fake_success") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    auto match = text_arg(cmd, 1, "match");
    if (!match.ok()) return match.error();
    auto replace = text_arg(cmd, 2, "replace");
    if (!replace.ok()) return replace.error();
    return finish(FailureSpec::fake_success(svc.value(), match.value(),
                                            replace.value()));
  }
  if (name == "partition") {
    const Arg* group = cmd.named("group");
    if (group == nullptr) group = cmd.positional(0);
    if (group == nullptr || group->kind != Arg::Kind::kList) {
      return command_error(cmd, "partition requires a [list] of services");
    }
    return finish(FailureSpec::partition(
        std::set<std::string>(group->list.begin(), group->list.end())));
  }
  if (name == "instance_crash") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration after = duration_arg_or(cmd, 1, "after", kDurationZero);
    const Duration downtime =
        duration_arg_or(cmd, 2, "downtime", msec(200));
    return finish(FailureSpec::instance_crash(svc.value(), after, downtime));
  }
  if (name == "rolling_partition") {
    const Arg* group = cmd.named("group");
    if (group == nullptr) group = cmd.positional(0);
    if (group == nullptr || group->kind != Arg::Kind::kList) {
      return command_error(cmd,
                           "rolling_partition requires a [list] of services");
    }
    const Duration after = duration_arg_or(cmd, 99, "after", kDurationZero);
    const Duration window = duration_arg_or(cmd, 99, "window", msec(200));
    const Duration stagger = duration_arg_or(cmd, 99, "stagger", msec(200));
    return finish(FailureSpec::rolling_partition(
        std::set<std::string>(group->list.begin(), group->list.end()), after,
        window, stagger));
  }
  if (name == "slow_node") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration mean = duration_arg_or(cmd, 1, "mean", msec(50));
    return finish(FailureSpec::slow_node(svc.value(), mean));
  }
  return std::optional<FailureSpec>();
}

Result<std::optional<CheckSpec>> check_spec_from_command(const Command& cmd) {
  const std::string& name = cmd.name;

  if (name == "has_timeouts") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration bound = duration_arg_or(cmd, 1, "max_latency", sec(1));
    return std::optional<CheckSpec>(
        CheckSpec::has_timeouts(svc.value(), bound));
  }
  if (name == "has_bounded_retries") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const int max_tries =
        static_cast<int>(number_arg_or(cmd, 2, "max_tries", 5));
    return std::optional<CheckSpec>(
        CheckSpec::has_bounded_retries(src.value(), dst.value(), max_tries));
  }
  if (name == "has_circuit_breaker") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const int threshold =
        static_cast<int>(number_arg_or(cmd, 2, "threshold", 5));
    const Duration tdelta = duration_arg_or(cmd, 3, "tdelta", sec(30));
    const int success =
        static_cast<int>(number_arg_or(cmd, 4, "success_threshold", 1));
    return std::optional<CheckSpec>(CheckSpec::has_circuit_breaker(
        src.value(), dst.value(), threshold, tdelta, success));
  }
  if (name == "has_latency_slo") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const double pct = number_arg_or(cmd, 2, "percentile", 99);
    const Duration bound = duration_arg_or(cmd, 3, "bound", sec(1));
    const bool with_rule = bool_arg_or(cmd, "with_rule", true);
    return std::optional<CheckSpec>(CheckSpec::has_latency_slo(
        src.value(), dst.value(), pct, bound, with_rule));
  }
  if (name == "error_rate_below") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const double max = number_arg_or(cmd, 2, "max", 0.01);
    return std::optional<CheckSpec>(
        CheckSpec::error_rate_below(src.value(), dst.value(), max));
  }
  if (name == "has_bulkhead") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto slow = text_arg(cmd, 1, "slow_dst");
    if (!slow.ok()) return slow.error();
    const double rate = number_arg_or(cmd, 2, "rate", 1.0);
    return std::optional<CheckSpec>(
        CheckSpec::has_bulkhead(src.value(), slow.value(), rate));
  }
  if (name == "failure_contained") {
    auto origin = text_arg(cmd, 0, "origin");
    if (!origin.ok()) return origin.error();
    return std::optional<CheckSpec>(
        CheckSpec::failure_contained(origin.value()));
  }
  if (name == "max_user_failures") {
    const auto max_failures =
        static_cast<size_t>(number_arg_or(cmd, 0, "max", 0));
    return std::optional<CheckSpec>(
        CheckSpec::max_user_failures(max_failures));
  }
  return std::optional<CheckSpec>();
}

Result<LoweredLoad> load_from_command(const Command& cmd) {
  LoweredLoad lowered;
  lowered.client = text_arg_or(cmd, 0, "client", "user");
  auto target = text_arg(cmd, 1, "target");
  if (!target.ok()) return target.error();
  lowered.target = target.value();
  lowered.options.count =
      static_cast<size_t>(number_arg_or(cmd, 2, "count", 100));
  lowered.options.gap = duration_arg_or(cmd, 3, "gap", msec(10));
  lowered.options.closed_loop = bool_arg_or(cmd, "closed_loop", false);
  lowered.options.id_prefix = text_arg_or(cmd, 99, "prefix", "test-");
  lowered.options.horizon =
      duration_arg_or(cmd, 99, "horizon", kDurationZero);
  return lowered;
}

Result<std::vector<Experiment>> lower_recipe(const RecipeFile& file,
                                             const campaign::AppSpec& app,
                                             uint64_t seed) {
  std::vector<Experiment> experiments;
  experiments.reserve(file.scenarios.size());
  for (const auto& scenario : file.scenarios) {
    Experiment e;
    e.id = scenario.name;
    e.app = app;
    e.seed = seed;
    bool saw_load = false;

    for (const auto& cmd : scenario.commands) {
      if (cmd.required) {
        return command_error(
            cmd, "'require' chains scenarios imperatively and cannot be "
                 "lowered to a campaign experiment; run with 'gremlin run'");
      }
      auto failure = failure_spec_from_command(cmd);
      if (!failure.ok()) return failure.error();
      if (failure.value().has_value()) {
        if (saw_load) {
          return command_error(
              cmd, "failures staged after 'load' need chained execution; "
                   "run with 'gremlin run'");
        }
        e.failures.push_back(std::move(*failure.value()));
        continue;
      }
      if (cmd.name == "load") {
        if (saw_load) {
          return command_error(cmd,
                               "multiple 'load' phases need chained "
                               "execution; run with 'gremlin run'");
        }
        auto lowered = load_from_command(cmd);
        if (!lowered.ok()) return lowered.error();
        e.load = lowered.value().options;
        e.client = lowered.value().client;
        e.target = lowered.value().target;
        saw_load = true;
        continue;
      }
      if (cmd.name == "collect") continue;  // the runner always collects
      auto check = check_spec_from_command(cmd);
      if (!check.ok()) return check.error();
      if (check.value().has_value()) {
        e.checks.push_back(std::move(*check.value()));
        continue;
      }
      return command_error(
          cmd, "'" + cmd.name +
                   "' is imperative and cannot be lowered to a campaign "
                   "experiment; run with 'gremlin run'");
    }
    experiments.push_back(std::move(e));
  }
  return experiments;
}

}  // namespace gremlin::dsl
