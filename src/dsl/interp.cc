#include "dsl/interp.h"

#include <set>

#include "dsl/parser.h"

namespace gremlin::dsl {

using control::CheckResult;
using control::FailureSpec;
using control::TestSession;

namespace {

Error cmd_error(const Command& cmd, const std::string& msg) {
  return Error::invalid_argument("recipe line " + std::to_string(cmd.line) +
                                 ", " + cmd.name + ": " + msg);
}

// Argument extraction helpers: positional index OR named key, with
// type coercion and defaults.
Result<std::string> text_arg(const Command& cmd, size_t pos,
                             const std::string& key) {
  const Arg* arg = cmd.named(key);
  if (arg == nullptr) arg = cmd.positional(pos);
  if (arg == nullptr) {
    return cmd_error(cmd, "missing argument '" + key + "'");
  }
  if (!arg->is_textual()) {
    return cmd_error(cmd, "argument '" + key + "' must be a name or string");
  }
  return arg->text;
}

std::string text_arg_or(const Command& cmd, size_t pos,
                        const std::string& key, std::string fallback) {
  auto v = text_arg(cmd, pos, key);
  return v.ok() ? v.value() : std::move(fallback);
}

double number_arg_or(const Command& cmd, size_t pos, const std::string& key,
                     double fallback) {
  const Arg* arg = cmd.named(key);
  if (arg == nullptr) arg = cmd.positional(pos);
  if (arg == nullptr || arg->kind != Arg::Kind::kNumber) return fallback;
  return arg->number;
}

Duration duration_arg_or(const Command& cmd, size_t pos,
                         const std::string& key, Duration fallback) {
  const Arg* arg = cmd.named(key);
  if (arg == nullptr) arg = cmd.positional(pos);
  if (arg == nullptr || arg->kind != Arg::Kind::kDuration) return fallback;
  return arg->duration;
}

bool bool_arg_or(const Command& cmd, const std::string& key, bool fallback) {
  const Arg* arg = cmd.named(key);
  if (arg == nullptr || !arg->is_textual()) return fallback;
  return arg->text == "true" || arg->text == "yes" || arg->text == "on";
}

// Applies shared fault options (pattern / probability / max_matches / on).
void apply_common_options(const Command& cmd, FailureSpec* spec) {
  spec->pattern = text_arg_or(cmd, 99, "pattern", spec->pattern);
  spec->probability =
      number_arg_or(cmd, 99, "probability", spec->probability);
  const double max_matches = number_arg_or(cmd, 99, "max_matches", -1);
  if (max_matches >= 0) {
    spec->max_matches = static_cast<uint64_t>(max_matches);
  }
  const std::string on = text_arg_or(cmd, 99, "on", "");
  if (on == "response") spec->on = logstore::MessageKind::kResponse;
  if (on == "request") spec->on = logstore::MessageKind::kRequest;
}

}  // namespace

bool ScenarioOutcome::all_passed() const {
  if (aborted) return false;
  for (const auto& c : checks) {
    if (!c.passed) return false;
  }
  return true;
}

bool RunOutcome::all_passed() const {
  for (const auto& s : scenarios) {
    if (!s.all_passed()) return false;
  }
  return true;
}

std::string RunOutcome::report() const {
  std::string out;
  for (const auto& s : scenarios) {
    out += "scenario \"" + s.name + "\": " +
           (s.all_passed() ? "PASS" : "FAIL") + "\n";
    for (const auto& c : s.checks) {
      out += "  " + std::string(c.passed ? "[PASS] " : "[FAIL] ") + c.name +
             " — " + c.detail + "\n";
    }
    if (s.aborted) {
      out += "  [ABORTED] " + s.abort_reason + "\n";
    }
  }
  return out;
}

VoidResult Interpreter::ensure_services(const topology::AppGraph& graph) {
  for (const auto& name : graph.services()) {
    if (sim_->find_service(name) != nullptr) continue;
    if (!autocreate_) {
      return Error::failed_precondition(
          "service '" + name +
          "' is in the recipe graph but not in the simulation");
    }
    sim::ServiceConfig cfg;
    cfg.name = name;
    cfg.processing_time = msec(1);
    cfg.dependencies = graph.dependencies(name);
    sim_->add_service(std::move(cfg));
  }
  return VoidResult::success();
}

Result<bool> Interpreter::execute(TestSession* session, const Command& cmd,
                                  ScenarioOutcome* outcome) {
  const std::string& name = cmd.name;

  // ---- failure scenarios ----
  auto apply_spec = [&](FailureSpec spec) -> Result<bool> {
    apply_common_options(cmd, &spec);
    auto applied = session->apply(spec);
    if (!applied.ok()) return cmd_error(cmd, applied.error().message);
    outcome->rules_installed += applied.value();
    return true;
  };

  if (name == "abort") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const int error =
        static_cast<int>(number_arg_or(cmd, 2, "error", 503));
    return apply_spec(FailureSpec::abort_edge(src.value(), dst.value(),
                                              error));
  }
  if (name == "delay") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const Duration interval =
        duration_arg_or(cmd, 2, "interval", msec(100));
    return apply_spec(
        FailureSpec::delay_edge(src.value(), dst.value(), interval));
  }
  if (name == "modify") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    auto match = text_arg(cmd, 2, "match");
    if (!match.ok()) return match.error();
    auto replace = text_arg(cmd, 3, "replace");
    if (!replace.ok()) return replace.error();
    return apply_spec(FailureSpec::modify_edge(src.value(), dst.value(),
                                               match.value(),
                                               replace.value()));
  }
  if (name == "disconnect") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const int error = static_cast<int>(number_arg_or(cmd, 2, "error", 503));
    return apply_spec(
        FailureSpec::disconnect(src.value(), dst.value(), error));
  }
  if (name == "crash") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    return apply_spec(FailureSpec::crash(svc.value()));
  }
  if (name == "crash_recovery") {
    // Crash-recovery failure (Section 3.1): the service is down for
    // `downtime` of virtual time, then heals.
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration downtime = duration_arg_or(cmd, 1, "downtime", sec(5));
    FailureSpec spec = FailureSpec::crash(svc.value());
    apply_common_options(cmd, &spec);
    auto applied = session->apply_for(spec, downtime);
    if (!applied.ok()) return cmd_error(cmd, applied.error().message);
    outcome->rules_installed += applied.value();
    return true;
  }
  if (name == "hang") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration interval = duration_arg_or(cmd, 1, "interval", hours(1));
    return apply_spec(FailureSpec::hang(svc.value(), interval));
  }
  if (name == "overload") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration delay = duration_arg_or(cmd, 1, "delay", msec(100));
    const double abort_fraction =
        number_arg_or(cmd, 2, "abort_fraction", 0.25);
    return apply_spec(
        FailureSpec::overload(svc.value(), delay, abort_fraction));
  }
  if (name == "fake_success") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    auto match = text_arg(cmd, 1, "match");
    if (!match.ok()) return match.error();
    auto replace = text_arg(cmd, 2, "replace");
    if (!replace.ok()) return replace.error();
    return apply_spec(FailureSpec::fake_success(svc.value(), match.value(),
                                                replace.value()));
  }
  if (name == "partition") {
    const Arg* group = cmd.named("group");
    if (group == nullptr) group = cmd.positional(0);
    if (group == nullptr || group->kind != Arg::Kind::kList) {
      return cmd_error(cmd, "partition requires a [list] of services");
    }
    return apply_spec(FailureSpec::partition(
        std::set<std::string>(group->list.begin(), group->list.end())));
  }

  // ---- workload & bookkeeping ----
  if (name == "load") {
    const std::string client = text_arg_or(cmd, 0, "client", "user");
    auto target = text_arg(cmd, 1, "target");
    if (!target.ok()) return target.error();
    control::LoadOptions load;
    load.count = static_cast<size_t>(number_arg_or(cmd, 2, "count", 100));
    load.gap = duration_arg_or(cmd, 3, "gap", msec(10));
    load.closed_loop = bool_arg_or(cmd, "closed_loop", false);
    load.id_prefix = text_arg_or(cmd, 99, "prefix", "test-");
    load.horizon = duration_arg_or(cmd, 99, "horizon", kDurationZero);
    session->run_load(client, target.value(), load);
    outcome->requests_injected += load.count;
    return true;
  }
  if (name == "collect") {
    auto ok = session->collect();
    if (!ok.ok()) return cmd_error(cmd, ok.error().message);
    return true;
  }
  if (name == "clear") {
    auto ok = session->clear_faults();
    if (!ok.ok()) return cmd_error(cmd, ok.error().message);
    return true;
  }
  if (name == "clear_logs") {
    sim_->log_store().clear();
    auto ok = session->orchestrator().discard_logs();
    if (!ok.ok()) return cmd_error(cmd, ok.error().message);
    return true;
  }

  // ---- assertions ----
  auto record = [&](const CheckResult& result) -> Result<bool> {
    outcome->checks.push_back(result);
    session->check(result);
    if (!result.passed && cmd.required) {
      outcome->aborted = true;
      outcome->abort_reason = result.name + " failed: " + result.detail;
      return false;  // stop the scenario
    }
    return true;
  };

  const auto checker = session->checker();
  if (name == "has_timeouts") {
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration bound = duration_arg_or(cmd, 1, "max_latency", sec(1));
    return record(checker.has_timeouts(svc.value(), bound));
  }
  if (name == "has_bounded_retries") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const int max_tries =
        static_cast<int>(number_arg_or(cmd, 2, "max_tries", 5));
    return record(
        checker.has_bounded_retries(src.value(), dst.value(), max_tries));
  }
  if (name == "has_circuit_breaker") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const int threshold =
        static_cast<int>(number_arg_or(cmd, 2, "threshold", 5));
    const Duration tdelta = duration_arg_or(cmd, 3, "tdelta", sec(30));
    const int success =
        static_cast<int>(number_arg_or(cmd, 4, "success_threshold", 1));
    return record(checker.has_circuit_breaker(src.value(), dst.value(),
                                              threshold, tdelta, success));
  }
  if (name == "has_latency_slo") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const double pct = number_arg_or(cmd, 2, "percentile", 99);
    const Duration bound = duration_arg_or(cmd, 3, "bound", sec(1));
    const bool with_rule = bool_arg_or(cmd, "with_rule", true);
    return record(checker.has_latency_slo(src.value(), dst.value(), pct,
                                          bound, with_rule));
  }
  if (name == "error_rate_below") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto dst = text_arg(cmd, 1, "dst");
    if (!dst.ok()) return dst.error();
    const double max = number_arg_or(cmd, 2, "max", 0.01);
    return record(checker.error_rate_below(src.value(), dst.value(), max));
  }
  if (name == "has_bulkhead") {
    auto src = text_arg(cmd, 0, "src");
    if (!src.ok()) return src.error();
    auto slow = text_arg(cmd, 1, "slow_dst");
    if (!slow.ok()) return slow.error();
    const double rate = number_arg_or(cmd, 2, "rate", 1.0);
    return record(checker.has_bulkhead(src.value(), slow.value(), rate));
  }
  if (name == "failure_contained") {
    auto origin = text_arg(cmd, 0, "origin");
    if (!origin.ok()) return origin.error();
    return record(checker.failure_contained(origin.value()));
  }

  return cmd_error(cmd, "unknown command");
}

Result<RunOutcome> Interpreter::run(const RecipeFile& file) {
  auto ensured = ensure_services(file.graph);
  if (!ensured.ok()) return ensured.error();

  RunOutcome run_outcome;
  for (const auto& scenario : file.scenarios) {
    TestSession session(sim_, file.graph);
    ScenarioOutcome outcome;
    outcome.name = scenario.name;
    for (const auto& cmd : scenario.commands) {
      auto cont = execute(&session, cmd, &outcome);
      if (!cont.ok()) return cont.error();
      if (!cont.value()) break;  // require failed: abort this scenario
    }
    // Leave the deployment clean for the next scenario.
    (void)session.clear_faults();
    run_outcome.scenarios.push_back(std::move(outcome));
  }
  return run_outcome;
}

Result<RunOutcome> Interpreter::run_source(std::string_view source) {
  auto file = parse(source);
  if (!file.ok()) return file.error();
  return run(file.value());
}

}  // namespace gremlin::dsl
