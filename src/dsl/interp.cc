#include "dsl/interp.h"

#include "dsl/lowering.h"
#include "dsl/parser.h"

namespace gremlin::dsl {

using control::CheckResult;
using control::FailureSpec;
using control::TestSession;

namespace {

// Shortens the shared helper's name inside this file.
Error cmd_error(const Command& cmd, const std::string& msg) {
  return command_error(cmd, msg);
}

}  // namespace

bool ScenarioOutcome::all_passed() const {
  if (aborted) return false;
  for (const auto& c : checks) {
    if (!c.passed) return false;
  }
  return true;
}

bool RunOutcome::all_passed() const {
  for (const auto& s : scenarios) {
    if (!s.all_passed()) return false;
  }
  return true;
}

std::string RunOutcome::report() const {
  std::string out;
  for (const auto& s : scenarios) {
    out += "scenario \"" + s.name + "\": " +
           (s.all_passed() ? "PASS" : "FAIL") + "\n";
    for (const auto& c : s.checks) {
      out += "  " + std::string(c.passed ? "[PASS] " : "[FAIL] ") + c.name +
             " — " + c.detail + "\n";
    }
    if (s.aborted) {
      out += "  [ABORTED] " + s.abort_reason + "\n";
    }
  }
  return out;
}

VoidResult Interpreter::ensure_services(const topology::AppGraph& graph) {
  if (!autocreate_) {
    for (const auto& name : graph.services()) {
      if (sim_->find_service(name) == nullptr) {
        return Error::failed_precondition(
            "service '" + name +
            "' is in the recipe graph but not in the simulation");
      }
    }
    return VoidResult::success();
  }
  campaign::ensure_graph_services(sim_, graph);
  return VoidResult::success();
}

Result<bool> Interpreter::execute(TestSession* session, const Command& cmd,
                                  ScenarioOutcome* outcome,
                                  control::LoadResult* last_load) {
  const std::string& name = cmd.name;

  // ---- failure scenarios (vocabulary shared with campaign lowering) ----
  auto failure = failure_spec_from_command(cmd);
  if (!failure.ok()) return failure.error();
  if (failure.value().has_value()) {
    auto applied = session->apply(*failure.value());
    if (!applied.ok()) return cmd_error(cmd, applied.error().message);
    outcome->rules_installed += applied.value();
    return true;
  }
  if (name == "crash_recovery") {
    // Crash-recovery failure (Section 3.1): the service is down for
    // `downtime` of virtual time, then heals. Inherently time-scoped, so it
    // stays an interpreter-only command (no declarative lowering).
    auto svc = text_arg(cmd, 0, "service");
    if (!svc.ok()) return svc.error();
    const Duration downtime = duration_arg_or(cmd, 1, "downtime", sec(5));
    FailureSpec spec = FailureSpec::crash(svc.value());
    auto options = apply_common_fault_options(cmd, &spec);
    if (!options.ok()) return options.error();
    auto applied = session->apply_for(spec, downtime);
    if (!applied.ok()) return cmd_error(cmd, applied.error().message);
    outcome->rules_installed += applied.value();
    return true;
  }

  // ---- workload & bookkeeping ----
  if (name == "load") {
    auto lowered = load_from_command(cmd);
    if (!lowered.ok()) return lowered.error();
    *last_load = session->run_load(lowered.value().client,
                                   lowered.value().target,
                                   lowered.value().options);
    outcome->requests_injected += lowered.value().options.count;
    return true;
  }
  if (name == "collect") {
    auto ok = session->collect();
    if (!ok.ok()) return cmd_error(cmd, ok.error().message);
    return true;
  }
  if (name == "clear") {
    auto ok = session->clear_faults();
    if (!ok.ok()) return cmd_error(cmd, ok.error().message);
    return true;
  }
  if (name == "clear_logs") {
    sim_->log_store().clear();
    auto ok = session->orchestrator().discard_logs();
    if (!ok.ok()) return cmd_error(cmd, ok.error().message);
    return true;
  }

  // ---- assertions (vocabulary shared with campaign lowering) ----
  auto check = check_spec_from_command(cmd);
  if (!check.ok()) return check.error();
  if (check.value().has_value()) {
    const CheckResult result =
        check.value()->evaluate(session->checker(), *last_load);
    outcome->checks.push_back(result);
    session->check(result);
    if (!result.passed && cmd.required) {
      outcome->aborted = true;
      outcome->abort_reason = result.name + " failed: " + result.detail;
      return false;  // stop the scenario
    }
    return true;
  }

  return cmd_error(cmd, "unknown command");
}

Result<RunOutcome> Interpreter::run(const RecipeFile& file) {
  auto ensured = ensure_services(file.graph);
  if (!ensured.ok()) return ensured.error();

  RunOutcome run_outcome;
  for (const auto& scenario : file.scenarios) {
    TestSession session(sim_, file.graph);
    ScenarioOutcome outcome;
    outcome.name = scenario.name;
    control::LoadResult last_load;
    for (const auto& cmd : scenario.commands) {
      auto cont = execute(&session, cmd, &outcome, &last_load);
      if (!cont.ok()) return cont.error();
      if (!cont.value()) break;  // require failed: abort this scenario
    }
    // Leave the deployment clean for the next scenario.
    (void)session.clear_faults();
    run_outcome.scenarios.push_back(std::move(outcome));
  }
  return run_outcome;
}

Result<RunOutcome> Interpreter::run_source(std::string_view source) {
  auto file = parse(source);
  if (!file.ok()) return file.error();
  return run(file.value());
}

}  // namespace gremlin::dsl
