// Lexer for the Gremlin recipe language.
//
// The paper expresses recipes as Python scripts over the Gremlin libraries
// (Section 3.2); this library ships a small declarative language instead:
//
//   # ElasticPress resilience test
//   graph {
//     user -> wordpress
//     wordpress -> elasticsearch
//     wordpress -> mysql
//   }
//   scenario "overload test" {
//     overload(elasticsearch, delay=100ms, abort_fraction=0.25)
//     load(client=user, target=wordpress, count=100, gap=10ms)
//     collect
//     assert has_bounded_retries(wordpress, elasticsearch, max_tries=5)
//   }
//
// Tokens: identifiers, "strings", numbers (42, 0.25), durations (100ms, 3s,
// 1min, 1h), punctuation ({ } ( ) [ ] , =) and the arrow ->. Comments run
// from '#' to end of line.
#pragma once

#include <string>
#include <vector>

#include "common/duration.h"
#include "common/result.h"

namespace gremlin::dsl {

enum class TokenKind {
  kIdent,
  kString,
  kNumber,
  kDuration,
  kArrow,     // ->
  kLBrace,    // {
  kRBrace,    // }
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,     // ,
  kEquals,    // =
  kEof,
};

const char* to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // identifier name / string contents / raw number
  double number = 0;    // kNumber
  Duration duration{};  // kDuration
  int line = 1;
  int column = 1;
};

Result<std::vector<Token>> lex(std::string_view source);

}  // namespace gremlin::dsl
