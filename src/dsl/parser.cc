#include "dsl/parser.h"

namespace gremlin::dsl {
namespace {

class Parser {
 public:
  explicit Parser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  Result<RecipeFile> run() {
    RecipeFile file;
    while (!at(TokenKind::kEof)) {
      if (at_ident("graph")) {
        auto ok = parse_graph(&file);
        if (!ok.ok()) return ok.error();
      } else if (at_ident("scenario")) {
        auto scenario = parse_scenario();
        if (!scenario.ok()) return scenario.error();
        file.scenarios.push_back(std::move(scenario.value()));
      } else {
        return fail("expected 'graph' or 'scenario'");
      }
    }
    if (file.scenarios.empty()) {
      return fail("recipe contains no scenarios");
    }
    return file;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  bool at(TokenKind kind) const { return cur().kind == kind; }
  bool at_ident(std::string_view name) const {
    return cur().kind == TokenKind::kIdent && cur().text == name;
  }
  const Token& advance() { return tokens_[pos_++]; }

  Error fail(const std::string& msg) const {
    return Error::parse("recipe:" + std::to_string(cur().line) + ":" +
                        std::to_string(cur().column) + ": " + msg +
                        " (got " + std::string(to_string(cur().kind)) +
                        (cur().text.empty() ? "" : " '" + cur().text + "'") +
                        ")");
  }

  VoidResult expect(TokenKind kind) {
    if (!at(kind)) {
      return fail("expected " + std::string(to_string(kind)));
    }
    advance();
    return VoidResult::success();
  }

  VoidResult parse_graph(RecipeFile* file) {
    advance();  // 'graph'
    auto ok = expect(TokenKind::kLBrace);
    if (!ok.ok()) return ok;
    while (!at(TokenKind::kRBrace)) {
      if (!at(TokenKind::kIdent)) return fail("expected service name");
      std::string prev = advance().text;
      file->graph.add_service(prev);
      while (at(TokenKind::kArrow)) {
        advance();
        if (!at(TokenKind::kIdent)) {
          return fail("expected service name after '->'");
        }
        const std::string next = advance().text;
        file->graph.add_edge(prev, next);
        prev = next;
      }
    }
    return expect(TokenKind::kRBrace);
  }

  Result<Scenario> parse_scenario() {
    Scenario scenario;
    scenario.line = cur().line;
    advance();  // 'scenario'
    if (!at(TokenKind::kString)) return fail("expected scenario name string");
    scenario.name = advance().text;
    auto ok = expect(TokenKind::kLBrace);
    if (!ok.ok()) return ok.error();
    while (!at(TokenKind::kRBrace)) {
      auto cmd = parse_command();
      if (!cmd.ok()) return cmd.error();
      scenario.commands.push_back(std::move(cmd.value()));
    }
    ok = expect(TokenKind::kRBrace);
    if (!ok.ok()) return ok.error();
    return scenario;
  }

  Result<Command> parse_command() {
    Command cmd;
    cmd.line = cur().line;
    if (at_ident("require")) {
      cmd.required = true;
      advance();
    }
    if (at_ident("assert")) {
      advance();  // 'assert' is optional sugar before a check name
      if (!cmd.required) cmd.required = false;
    }
    if (!at(TokenKind::kIdent)) return fail("expected command name");
    cmd.name = advance().text;
    if (!at(TokenKind::kLParen)) return cmd;  // bare keyword (collect, clear)
    advance();  // '('
    if (!at(TokenKind::kRParen)) {
      for (;;) {
        auto arg = parse_arg();
        if (!arg.ok()) return arg.error();
        cmd.args.push_back(std::move(arg.value()));
        if (at(TokenKind::kComma)) {
          advance();
          continue;
        }
        break;
      }
    }
    auto ok = expect(TokenKind::kRParen);
    if (!ok.ok()) return ok.error();
    return cmd;
  }

  Result<Arg> parse_arg() {
    Arg arg;
    arg.line = cur().line;
    // Lookahead for `name =`.
    if (at(TokenKind::kIdent) && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokenKind::kEquals) {
      arg.name = advance().text;
      advance();  // '='
    }
    switch (cur().kind) {
      case TokenKind::kIdent:
        arg.kind = Arg::Kind::kIdent;
        arg.text = advance().text;
        return arg;
      case TokenKind::kString:
        arg.kind = Arg::Kind::kString;
        arg.text = advance().text;
        return arg;
      case TokenKind::kNumber:
        arg.kind = Arg::Kind::kNumber;
        arg.number = advance().number;
        return arg;
      case TokenKind::kDuration:
        arg.kind = Arg::Kind::kDuration;
        arg.duration = advance().duration;
        return arg;
      case TokenKind::kLBracket: {
        advance();
        arg.kind = Arg::Kind::kList;
        while (!at(TokenKind::kRBracket)) {
          if (cur().kind == TokenKind::kDuration) {
            // Durations are re-rendered canonically; consumers re-parse the
            // element (e.g. values=[10ms, 20ms] on delay faults).
            arg.list.push_back(format_duration(advance().duration));
          } else if (cur().kind == TokenKind::kIdent ||
                     cur().kind == TokenKind::kString) {
            arg.list.push_back(advance().text);
          } else {
            return fail(
                "list elements must be identifiers, strings, or durations");
          }
          if (at(TokenKind::kComma)) advance();
        }
        advance();  // ']'
        return arg;
      }
      default:
        return fail("expected argument value");
    }
  }

  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<RecipeFile> parse_tokens(const std::vector<Token>& tokens) {
  return Parser(tokens).run();
}

Result<RecipeFile> parse(std::string_view source) {
  auto tokens = lex(source);
  if (!tokens.ok()) return tokens.error();
  return parse_tokens(tokens.value());
}

}  // namespace gremlin::dsl
