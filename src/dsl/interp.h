// Interpreter for the Gremlin recipe language: executes a parsed RecipeFile
// against a simulated deployment through the standard control plane.
//
// Commands:
//   Failure scenarios — abort(src, dst, error=503, pattern="test-*",
//     probability=1, max_matches=N, on=request|response),
//     delay(src, dst, interval=100ms, ...), modify(src, dst, match=...,
//     replace=..., ...), disconnect(src, dst, error=503), crash(svc),
//     hang(svc, interval=1h), overload(svc, delay=100ms,
//     abort_fraction=0.25), fake_success(svc, match=..., replace=...),
//     partition([a, b, c])
//   load(client=user, target=svc, count=100, gap=10ms, closed_loop=false,
//     prefix="test-")
//   collect — drain agent logs into the central store
//   clear — remove all fault rules
//   clear_logs — reset the central store and agent buffers
//   assert <check>(...) — record an assertion outcome:
//     has_timeouts(svc, max_latency), has_bounded_retries(src, dst,
//     max_tries), has_circuit_breaker(src, dst, threshold=5, tdelta=30s,
//     success_threshold=1), has_bulkhead(src, slow_dst, rate),
//     has_latency_slo(src, dst, percentile=99, bound=1s, with_rule=true),
//     error_rate_below(src, dst, max=0.01), failure_contained(origin),
//     max_user_failures(max=0) — bounds client-observed failures of the
//     most recent load
//
// The command vocabulary (failure + assertion parsing) is shared with the
// campaign lowering pass in dsl/lowering.h, so `gremlin run` and
// `gremlin campaign` accept the same recipes.
//   require <check>(...) — like assert, but aborts the scenario on failure
//     (the conditional chaining of Section 4.2)
//
// Services present in the recipe graph but missing from the simulation are
// auto-created with the default handler when autocreate is enabled.
#pragma once

#include "control/recipe.h"
#include "dsl/ast.h"
#include "sim/simulation.h"

namespace gremlin::dsl {

struct ScenarioOutcome {
  std::string name;
  std::vector<control::CheckResult> checks;
  bool aborted = false;          // a `require` failed
  std::string abort_reason;
  size_t rules_installed = 0;
  size_t requests_injected = 0;

  bool all_passed() const;
};

struct RunOutcome {
  std::vector<ScenarioOutcome> scenarios;

  bool all_passed() const;
  std::string report() const;
};

class Interpreter {
 public:
  explicit Interpreter(sim::Simulation* sim) : sim_(sim) {}

  // Auto-create graph services missing from the simulation (default on).
  void set_autocreate(bool enabled) { autocreate_ = enabled; }

  Result<RunOutcome> run(const RecipeFile& file);
  Result<RunOutcome> run_source(std::string_view source);

 private:
  VoidResult ensure_services(const topology::AppGraph& graph);
  Result<bool> execute(control::TestSession* session, const Command& cmd,
                       ScenarioOutcome* outcome,
                       control::LoadResult* last_load);

  sim::Simulation* sim_;
  bool autocreate_ = true;
};

}  // namespace gremlin::dsl
