#include "faults/rule.h"

#include <atomic>

namespace gremlin::faults {
namespace {

// Atomic: rule factories may be called from parallel campaign workers.
uint64_t next_anonymous_id() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string fault_kind_name(FaultKind k) { return logstore::to_string(k); }

}  // namespace

VoidResult FaultRule::validate() const {
  if (source.empty() || destination.empty()) {
    return Error::invalid_argument("rule " + id +
                                   ": source and destination are mandatory");
  }
  if (probability < 0.0 || probability > 1.0) {
    return Error::invalid_argument("rule " + id +
                                   ": probability must be in [0,1]");
  }
  switch (type) {
    case FaultKind::kAbort:
      if (abort_code != kTcpReset && (abort_code < 100 || abort_code > 599)) {
        return Error::invalid_argument(
            "rule " + id + ": abort code must be an HTTP status or -1");
      }
      break;
    case FaultKind::kDelay:
      if (delay_interval <= kDurationZero) {
        return Error::invalid_argument("rule " + id +
                                       ": delay interval must be positive");
      }
      break;
    case FaultKind::kModify:
      if (body_pattern.empty()) {
        return Error::invalid_argument(
            "rule " + id + ": modify requires a body pattern to replace");
      }
      break;
    case FaultKind::kNone:
      return Error::invalid_argument("rule " + id + ": type must be set");
  }
  return VoidResult::success();
}

Json FaultRule::to_json() const {
  Json j = Json::object();
  j["id"] = id;
  j["source"] = source;
  j["destination"] = destination;
  j["type"] = fault_kind_name(type);
  j["on"] = logstore::to_string(on);
  j["pattern"] = pattern;
  j["probability"] = probability;
  j["abort_code"] = abort_code;
  j["delay_us"] = delay_interval.count();
  j["body_pattern"] = body_pattern;
  j["replace_bytes"] = replace_bytes;
  if (max_matches != kUnlimitedMatches) {
    j["max_matches"] = static_cast<int64_t>(max_matches);
  }
  return j;
}

Result<FaultRule> FaultRule::from_json(const Json& j) {
  if (!j.is_object()) return Error::parse("rule must be a JSON object");
  FaultRule r;
  r.id = j["id"].as_string();
  r.source = j["source"].as_string();
  r.destination = j["destination"].as_string();
  const std::string& type = j["type"].as_string();
  if (type == "abort") {
    r.type = FaultKind::kAbort;
  } else if (type == "delay") {
    r.type = FaultKind::kDelay;
  } else if (type == "modify") {
    r.type = FaultKind::kModify;
  } else {
    return Error::parse("unknown fault type '" + type + "'");
  }
  const std::string& on = j["on"].as_string();
  if (on == "response") {
    r.on = MessageKind::kResponse;
  } else if (on == "request" || on.empty()) {
    r.on = MessageKind::kRequest;
  } else {
    return Error::parse("unknown 'on' side '" + on + "'");
  }
  if (j.contains("pattern")) r.pattern = j["pattern"].as_string();
  if (j.contains("probability")) r.probability = j["probability"].as_double(1.0);
  if (j.contains("abort_code")) r.abort_code = static_cast<int>(j["abort_code"].as_int(503));
  if (j.contains("delay_us")) r.delay_interval = Duration(j["delay_us"].as_int());
  r.body_pattern = j["body_pattern"].as_string();
  r.replace_bytes = j["replace_bytes"].as_string();
  if (j.contains("max_matches")) {
    r.max_matches = static_cast<uint64_t>(j["max_matches"].as_int());
  }
  auto valid = r.validate();
  if (!valid.ok()) return valid.error();
  return r;
}

FaultRule FaultRule::abort_rule(std::string src, std::string dst, int error,
                                std::string pattern, double probability) {
  FaultRule r;
  r.id = "abort-" + std::to_string(next_anonymous_id());
  r.source = std::move(src);
  r.destination = std::move(dst);
  r.type = FaultKind::kAbort;
  r.abort_code = error;
  r.pattern = std::move(pattern);
  r.probability = probability;
  return r;
}

FaultRule FaultRule::delay_rule(std::string src, std::string dst,
                                Duration interval, std::string pattern,
                                double probability) {
  FaultRule r;
  r.id = "delay-" + std::to_string(next_anonymous_id());
  r.source = std::move(src);
  r.destination = std::move(dst);
  r.type = FaultKind::kDelay;
  r.delay_interval = interval;
  r.pattern = std::move(pattern);
  r.probability = probability;
  return r;
}

FaultRule FaultRule::modify_rule(std::string src, std::string dst,
                                 std::string body_pattern,
                                 std::string replace_bytes,
                                 std::string pattern) {
  FaultRule r;
  r.id = "modify-" + std::to_string(next_anonymous_id());
  r.source = std::move(src);
  r.destination = std::move(dst);
  r.type = FaultKind::kModify;
  r.body_pattern = std::move(body_pattern);
  r.replace_bytes = std::move(replace_bytes);
  r.pattern = std::move(pattern);
  return r;
}

}  // namespace gremlin::faults
