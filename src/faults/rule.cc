#include "faults/rule.h"

#include <atomic>
#include <cmath>

#include "common/rng.h"

namespace gremlin::faults {
namespace {

// Atomic: rule factories may be called from parallel campaign workers.
uint64_t next_anonymous_id() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string fault_kind_name(FaultKind k) { return logstore::to_string(k); }

}  // namespace

std::string to_string(DelayDistribution d) {
  switch (d) {
    case DelayDistribution::kFixed: return "fixed";
    case DelayDistribution::kUniform: return "uniform";
    case DelayDistribution::kExponential: return "exponential";
    case DelayDistribution::kEmpirical: return "empirical";
  }
  return "fixed";
}

Result<DelayDistribution> delay_distribution_from_string(std::string_view s) {
  if (s.empty() || s == std::string_view("fixed")) {
    return DelayDistribution::kFixed;
  }
  if (s == std::string_view("uniform")) return DelayDistribution::kUniform;
  if (s == std::string_view("exponential")) {
    return DelayDistribution::kExponential;
  }
  if (s == std::string_view("empirical")) return DelayDistribution::kEmpirical;
  return Error::parse("unknown delay distribution '" + std::string(s) + "'");
}

Duration sample_delay(const FaultRule& rule, uint64_t key, uint64_t counter) {
  switch (rule.delay_distribution) {
    case DelayDistribution::kFixed:
      return rule.delay_interval;
    case DelayDistribution::kUniform: {
      const uint64_t lo = static_cast<uint64_t>(rule.delay_min.count());
      const uint64_t hi = static_cast<uint64_t>(rule.delay_max.count());
      if (hi <= lo) return rule.delay_min;
      const uint64_t span = hi - lo + 1;
      // Fixed-point scaling keeps the draw in-bounds without the data
      // dependence of rejection sampling (each counter must map to exactly
      // one value).
      const uint64_t off = static_cast<uint64_t>(
          counter_double(key, counter) * static_cast<double>(span));
      return Duration(static_cast<int64_t>(lo + (off < span ? off : span - 1)));
    }
    case DelayDistribution::kExponential: {
      double u = counter_double(key, counter);
      if (u <= 0.0) u = 0x1.0p-53;
      const double us =
          -static_cast<double>(rule.delay_mean.count()) * std::log(u);
      return Duration(static_cast<int64_t>(us) + 1);  // never zero
    }
    case DelayDistribution::kEmpirical: {
      if (rule.delay_values.empty()) return rule.delay_interval;
      const uint64_t idx =
          counter_u64(key, counter) % rule.delay_values.size();
      return rule.delay_values[idx];
    }
  }
  return rule.delay_interval;
}

VoidResult FaultRule::validate() const {
  if (source.empty() || destination.empty()) {
    return Error::invalid_argument("rule " + id +
                                   ": source and destination are mandatory");
  }
  if (probability < 0.0 || probability > 1.0) {
    return Error::invalid_argument("rule " + id +
                                   ": probability must be in [0,1]");
  }
  switch (type) {
    case FaultKind::kAbort:
      if (abort_code != kTcpReset && (abort_code < 100 || abort_code > 599)) {
        return Error::invalid_argument(
            "rule " + id + ": abort code must be an HTTP status or -1");
      }
      break;
    case FaultKind::kDelay:
      switch (delay_distribution) {
        case DelayDistribution::kFixed:
          if (delay_interval <= kDurationZero) {
            return Error::invalid_argument(
                "rule " + id + ": delay interval must be positive");
          }
          break;
        case DelayDistribution::kUniform:
          if (delay_min < kDurationZero || delay_max < delay_min ||
              delay_max <= kDurationZero) {
            return Error::invalid_argument(
                "rule " + id +
                ": uniform delay requires 0 <= min <= max, max > 0");
          }
          break;
        case DelayDistribution::kExponential:
          if (delay_mean <= kDurationZero) {
            return Error::invalid_argument(
                "rule " + id + ": exponential delay mean must be positive");
          }
          break;
        case DelayDistribution::kEmpirical:
          if (delay_values.empty()) {
            return Error::invalid_argument(
                "rule " + id + ": empirical delay needs at least one value");
          }
          for (const Duration d : delay_values) {
            if (d <= kDurationZero) {
              return Error::invalid_argument(
                  "rule " + id + ": empirical delay values must be positive");
            }
          }
          break;
      }
      break;
    case FaultKind::kModify:
      if (body_pattern.empty()) {
        return Error::invalid_argument(
            "rule " + id + ": modify requires a body pattern to replace");
      }
      break;
    case FaultKind::kNone:
      return Error::invalid_argument("rule " + id + ": type must be set");
  }
  if (after < kDurationZero || window_duration < kDurationZero) {
    return Error::invalid_argument(
        "rule " + id + ": activation window must be non-negative");
  }
  return VoidResult::success();
}

Json FaultRule::to_json() const {
  Json j = Json::object();
  j["id"] = id;
  j["source"] = source;
  j["destination"] = destination;
  j["type"] = fault_kind_name(type);
  j["on"] = logstore::to_string(on);
  j["pattern"] = pattern;
  j["probability"] = probability;
  j["abort_code"] = abort_code;
  j["delay_us"] = delay_interval.count();
  if (delay_distribution != DelayDistribution::kFixed) {
    j["delay_distribution"] = to_string(delay_distribution);
    j["delay_min_us"] = delay_min.count();
    j["delay_max_us"] = delay_max.count();
    j["delay_mean_us"] = delay_mean.count();
    if (!delay_values.empty()) {
      Json values = Json::array();
      for (const Duration d : delay_values) values.push_back(d.count());
      j["delay_values_us"] = std::move(values);
    }
  }
  if (after > kDurationZero || window_duration > kDurationZero) {
    j["after_us"] = after.count();
    j["window_us"] = window_duration.count();
  }
  j["body_pattern"] = body_pattern;
  j["replace_bytes"] = replace_bytes;
  if (max_matches != kUnlimitedMatches) {
    j["max_matches"] = static_cast<int64_t>(max_matches);
  }
  return j;
}

Result<FaultRule> FaultRule::from_json(const Json& j) {
  if (!j.is_object()) return Error::parse("rule must be a JSON object");
  FaultRule r;
  r.id = j["id"].as_string();
  r.source = j["source"].as_string();
  r.destination = j["destination"].as_string();
  const std::string& type = j["type"].as_string();
  if (type == "abort") {
    r.type = FaultKind::kAbort;
  } else if (type == "delay") {
    r.type = FaultKind::kDelay;
  } else if (type == "modify") {
    r.type = FaultKind::kModify;
  } else {
    return Error::parse("unknown fault type '" + type + "'");
  }
  const std::string& on = j["on"].as_string();
  if (on == "response") {
    r.on = MessageKind::kResponse;
  } else if (on == "request" || on.empty()) {
    r.on = MessageKind::kRequest;
  } else {
    return Error::parse("unknown 'on' side '" + on + "'");
  }
  if (j.contains("pattern")) r.pattern = j["pattern"].as_string();
  if (j.contains("probability")) r.probability = j["probability"].as_double(1.0);
  if (j.contains("abort_code")) r.abort_code = static_cast<int>(j["abort_code"].as_int(503));
  if (j.contains("delay_us")) r.delay_interval = Duration(j["delay_us"].as_int());
  if (j.contains("delay_distribution")) {
    auto dist = delay_distribution_from_string(
        j["delay_distribution"].as_string());
    if (!dist.ok()) return dist.error();
    r.delay_distribution = *dist;
    r.delay_min = Duration(j["delay_min_us"].as_int());
    r.delay_max = Duration(j["delay_max_us"].as_int());
    r.delay_mean = Duration(j["delay_mean_us"].as_int());
    if (j.contains("delay_values_us")) {
      for (const Json& v : j["delay_values_us"].as_array()) {
        r.delay_values.push_back(Duration(v.as_int()));
      }
    }
  }
  if (j.contains("after_us")) r.after = Duration(j["after_us"].as_int());
  if (j.contains("window_us")) {
    r.window_duration = Duration(j["window_us"].as_int());
  }
  r.body_pattern = j["body_pattern"].as_string();
  r.replace_bytes = j["replace_bytes"].as_string();
  if (j.contains("max_matches")) {
    r.max_matches = static_cast<uint64_t>(j["max_matches"].as_int());
  }
  auto valid = r.validate();
  if (!valid.ok()) return valid.error();
  return r;
}

FaultRule FaultRule::abort_rule(std::string src, std::string dst, int error,
                                std::string pattern, double probability) {
  FaultRule r;
  r.id = "abort-" + std::to_string(next_anonymous_id());
  r.source = std::move(src);
  r.destination = std::move(dst);
  r.type = FaultKind::kAbort;
  r.abort_code = error;
  r.pattern = std::move(pattern);
  r.probability = probability;
  return r;
}

FaultRule FaultRule::delay_rule(std::string src, std::string dst,
                                Duration interval, std::string pattern,
                                double probability) {
  FaultRule r;
  r.id = "delay-" + std::to_string(next_anonymous_id());
  r.source = std::move(src);
  r.destination = std::move(dst);
  r.type = FaultKind::kDelay;
  r.delay_interval = interval;
  r.pattern = std::move(pattern);
  r.probability = probability;
  return r;
}

FaultRule FaultRule::modify_rule(std::string src, std::string dst,
                                 std::string body_pattern,
                                 std::string replace_bytes,
                                 std::string pattern) {
  FaultRule r;
  r.id = "modify-" + std::to_string(next_anonymous_id());
  r.source = std::move(src);
  r.destination = std::move(dst);
  r.type = FaultKind::kModify;
  r.body_pattern = std::move(body_pattern);
  r.replace_bytes = std::move(replace_bytes);
  r.pattern = std::move(pattern);
  return r;
}

}  // namespace gremlin::faults
