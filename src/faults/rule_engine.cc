#include "faults/rule_engine.h"

#include <algorithm>

#include "common/strings.h"

namespace gremlin::faults {

RuleEngine::RuleEngine(uint64_t seed, std::string_view seed_label)
    : rng_(Rng(seed).fork(seed_label)) {}

VoidResult RuleEngine::add_rule(FaultRule rule) {
  auto valid = rule.validate();
  if (!valid.ok()) return valid;
  std::lock_guard lock(mu_);
  for (const auto& in : rules_) {
    if (in.rule.id == rule.id) {
      return Error::invalid_argument("duplicate rule id '" + rule.id + "'");
    }
  }
  Installed in;
  in.id_sym = Symbol(rule.id);
  in.src_glob = Glob(rule.source);
  in.dst_glob = Glob(rule.destination);
  in.id_glob = Glob(rule.pattern.empty() ? "*" : rule.pattern);
  in.rule = std::move(rule);
  rules_.push_back(std::move(in));
  return VoidResult::success();
}

VoidResult RuleEngine::add_rules(const std::vector<FaultRule>& rules) {
  for (const auto& r : rules) {
    auto res = add_rule(r);
    if (!res.ok()) return res;
  }
  return VoidResult::success();
}

bool RuleEngine::remove_rule(const std::string& id) {
  std::lock_guard lock(mu_);
  const auto it = std::find_if(
      rules_.begin(), rules_.end(),
      [&id](const Installed& in) { return in.rule.id == id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

void RuleEngine::clear() {
  std::lock_guard lock(mu_);
  rules_.clear();
  total_matches_ = 0;
}

void RuleEngine::reset(uint64_t seed, std::string_view seed_label) {
  std::lock_guard lock(mu_);
  rules_.clear();
  total_matches_ = 0;
  rng_ = Rng(seed).fork(seed_label);
}

size_t RuleEngine::rule_count() const {
  std::lock_guard lock(mu_);
  return rules_.size();
}

std::vector<FaultRule> RuleEngine::rules() const {
  std::lock_guard lock(mu_);
  std::vector<FaultRule> out;
  out.reserve(rules_.size());
  for (const auto& in : rules_) out.push_back(in.rule);
  return out;
}

bool RuleEngine::matches_locked(const Installed& in,
                                const MessageView& msg) const {
  const FaultRule& r = in.rule;
  if (in.matches >= r.max_matches) return false;
  if (r.on != msg.kind) return false;
  if (!in.src_glob.match_all() && !in.src_glob.matches(msg.src)) return false;
  if (!in.dst_glob.match_all() && !in.dst_glob.matches(msg.dst)) return false;
  if (!in.id_glob.match_all() && !in.id_glob.matches(msg.request_id)) {
    return false;
  }
  return true;
}

FaultDecision RuleEngine::evaluate(const MessageView& msg) {
  std::lock_guard lock(mu_);
  for (auto& in : rules_) {
    if (!matches_locked(in, msg)) continue;
    if (in.rule.probability < 1.0 && !rng_.bernoulli(in.rule.probability)) {
      // A probabilistic decline falls through to the next rule. Recipes that
      // need an exact traffic split across several rules on the same edge
      // (e.g. Overload's 25% abort / 75% delay) install conditional
      // probabilities: Abort(p=.25) followed by Delay(p=1).
      continue;
    }
    in.matches += 1;
    total_matches_ += 1;
    FaultDecision d;
    d.action = in.rule.type;
    d.rule_id = in.id_sym;
    d.abort_code = in.rule.abort_code;
    d.delay = in.rule.delay_interval;
    d.body_pattern = in.rule.body_pattern;
    d.replace_bytes = in.rule.replace_bytes;
    return d;
  }
  return {};
}

int RuleEngine::apply_modify(const FaultDecision& decision, std::string* body) {
  if (decision.action != FaultKind::kModify || body == nullptr) return 0;
  return replace_all(body, decision.body_pattern, decision.replace_bytes);
}

uint64_t RuleEngine::total_matches() const {
  std::lock_guard lock(mu_);
  return total_matches_;
}

}  // namespace gremlin::faults
