#include "faults/rule_engine.h"

#include <algorithm>

#include "common/strings.h"

namespace gremlin::faults {

namespace {

uint64_t derive_stream_base(uint64_t seed, std::string_view seed_label) {
  return Rng(seed).fork(seed_label).next_u64();
}

}  // namespace

RuleEngine::RuleEngine(uint64_t seed, std::string_view seed_label)
    : stream_base_(derive_stream_base(seed, seed_label)) {}

VoidResult RuleEngine::add_rule(FaultRule rule) {
  auto valid = rule.validate();
  if (!valid.ok()) return valid;
  std::lock_guard lock(mu_);
  for (const auto& in : rules_) {
    if (in.rule.id == rule.id) {
      return Error::invalid_argument("duplicate rule id '" + rule.id + "'");
    }
  }
  Installed in;
  in.id_sym = Symbol(rule.id);
  in.src_glob = Glob(rule.source);
  in.dst_glob = Glob(rule.destination);
  in.id_glob = Glob(rule.pattern.empty() ? "*" : rule.pattern);
  in.rule = std::move(rule);
  derive_keys_locked(&in);
  rules_.push_back(std::move(in));
  armed_count_.store(rules_.size(), std::memory_order_release);
  return VoidResult::success();
}

VoidResult RuleEngine::add_rules(const std::vector<FaultRule>& rules) {
  for (const auto& r : rules) {
    auto res = add_rule(r);
    if (!res.ok()) return res;
  }
  return VoidResult::success();
}

bool RuleEngine::remove_rule(const std::string& id) {
  std::lock_guard lock(mu_);
  const auto it = std::find_if(
      rules_.begin(), rules_.end(),
      [&id](const Installed& in) { return in.rule.id == id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  armed_count_.store(rules_.size(), std::memory_order_release);
  return true;
}

void RuleEngine::clear() {
  std::lock_guard lock(mu_);
  rules_.clear();
  armed_count_.store(0, std::memory_order_release);
  total_matches_ = 0;
  install_seq_ = 0;
}

void RuleEngine::reset(uint64_t seed, std::string_view seed_label) {
  std::lock_guard lock(mu_);
  rules_.clear();
  armed_count_.store(0, std::memory_order_release);
  total_matches_ = 0;
  install_seq_ = 0;
  stream_base_ = derive_stream_base(seed, seed_label);
}

void RuleEngine::derive_keys_locked(Installed* in) {
  // Key the rule's stream on its installation position, not its id:
  // anonymous factory ids come from a process-global counter, so they vary
  // run to run, while installation order is part of the experiment itself —
  // the same recipe installs the same rules in the same order no matter
  // which worker, process, or warm world replays it.
  const uint64_t rule_key = counter_u64(stream_base_, install_seq_++);
  in->prob_key = counter_u64(rule_key, 0);
  in->delay_key = counter_u64(rule_key, 1);
}

size_t RuleEngine::rule_count() const {
  std::lock_guard lock(mu_);
  return rules_.size();
}

std::vector<FaultRule> RuleEngine::rules() const {
  std::lock_guard lock(mu_);
  std::vector<FaultRule> out;
  out.reserve(rules_.size());
  for (const auto& in : rules_) out.push_back(in.rule);
  return out;
}

bool RuleEngine::matches_locked(const Installed& in,
                                const MessageView& msg) const {
  const FaultRule& r = in.rule;
  if (in.matches >= r.max_matches) return false;
  if (r.on != msg.kind) return false;
  // Activation window: a rule outside its window is invisible (later rules
  // still get a chance), and auto-clears once the window has passed.
  if (msg.now < r.after) return false;
  if (r.window_duration > kDurationZero &&
      msg.now >= r.after + r.window_duration) {
    return false;
  }
  if (!in.src_glob.match_all() && !in.src_glob.matches(msg.src)) return false;
  if (!in.dst_glob.match_all() && !in.dst_glob.matches(msg.dst)) return false;
  if (!in.id_glob.match_all() && !in.id_glob.matches(msg.request_id)) {
    return false;
  }
  return true;
}

FaultDecision RuleEngine::evaluate(const MessageView& msg) {
  if (!armed()) return {};  // fault-free fast path: no lock, no scan
  std::lock_guard lock(mu_);
  for (auto& in : rules_) {
    if (!matches_locked(in, msg)) continue;
    // Counter position for this attempt. Advances even on probabilistic
    // declines, so the draw for attempt N is a pure function of
    // (seed, agent, rule id, N) — independent of sibling rules, evaluation
    // interleaving, thread count, and process sharding.
    const uint64_t attempt = in.attempts++;
    if (in.rule.probability < 1.0) {
      // A probabilistic decline falls through to the next rule. Recipes that
      // need an exact traffic split across several rules on the same edge
      // (e.g. Overload's 25% abort / 75% delay) install conditional
      // probabilities: Abort(p=.25) followed by Delay(p=1).
      if (in.rule.probability <= 0.0 ||
          counter_double(in.prob_key, attempt) >= in.rule.probability) {
        continue;
      }
    }
    in.matches += 1;
    total_matches_ += 1;
    FaultDecision d;
    d.action = in.rule.type;
    d.rule_id = in.id_sym;
    d.abort_code = in.rule.abort_code;
    d.delay = in.rule.type == FaultKind::kDelay
                  ? sample_delay(in.rule, in.delay_key, attempt)
                  : in.rule.delay_interval;
    d.body_pattern = in.rule.body_pattern;
    d.replace_bytes = in.rule.replace_bytes;
    return d;
  }
  return {};
}

int RuleEngine::apply_modify(const FaultDecision& decision, std::string* body) {
  if (decision.action != FaultKind::kModify || body == nullptr) return 0;
  return replace_all(body, decision.body_pattern, decision.replace_bytes);
}

uint64_t RuleEngine::total_matches() const {
  std::lock_guard lock(mu_);
  return total_matches_;
}

}  // namespace gremlin::faults
