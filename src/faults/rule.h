// FaultRule: the data-plane interface of Table 2.
//
// A rule instructs a Gremlin agent to Abort, Delay or Modify messages
// flowing from `source` to `destination` whose request ID matches a glob
// `pattern`, on either the request or the response side, with a given
// probability. Non-mandatory parameters take the defaults the paper implies
// (Probability=1, On=request, Pattern matches everything).
//
// Extensions needed by the evaluation:
//  * abort_code == kTcpReset (-1) emulates a TCP-level connection
//    termination rather than an application error (Section 5, Crash).
//  * max_matches bounds how many messages a rule fires on, enabling the
//    "abort 100 consecutive requests, then delay the next 100" sequence of
//    Figure 6 without controller round-trips. Rules are evaluated in
//    installation order, first match wins; an exhausted rule stops matching.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/duration.h"
#include "common/glob.h"
#include "common/json.h"
#include "logstore/record.h"

namespace gremlin::faults {

using logstore::FaultKind;
using logstore::MessageKind;

// Abort code that emulates terminating the connection at the TCP level
// (the caller observes a reset, not an HTTP status).
inline constexpr int kTcpReset = -1;

inline constexpr uint64_t kUnlimitedMatches =
    std::numeric_limits<uint64_t>::max();

// How a delay rule draws its interval. Every sampler reads the rule's
// counter-based stream (see common/rng.h), so the sequence of sampled
// intervals is a pure function of (experiment seed, agent, rule id).
enum class DelayDistribution : uint8_t {
  kFixed = 0,        // always delay_interval
  kUniform = 1,      // uniform in [delay_min, delay_max]
  kExponential = 2,  // exponential with mean delay_mean
  kEmpirical = 3,    // uniform pick from delay_values
};

std::string to_string(DelayDistribution d);
Result<DelayDistribution> delay_distribution_from_string(std::string_view s);

struct FaultRule {
  std::string id;             // unique within a test run
  std::string source;         // logical service name; "*" = any
  std::string destination;    // logical service name; "*" = any
  FaultKind type = FaultKind::kAbort;
  MessageKind on = MessageKind::kRequest;
  std::string pattern = "*";  // glob over the request ID
  double probability = 1.0;

  // Abort parameters.
  int abort_code = 503;       // HTTP status to synthesize, or kTcpReset

  // Delay parameters. kFixed uses delay_interval; the other distributions
  // use their dedicated parameters and ignore delay_interval.
  Duration delay_interval{};
  DelayDistribution delay_distribution = DelayDistribution::kFixed;
  Duration delay_min{};               // kUniform lower bound
  Duration delay_max{};               // kUniform upper bound (inclusive)
  Duration delay_mean{};              // kExponential mean
  std::vector<Duration> delay_values; // kEmpirical sample set

  // Activation window on the virtual clock (time since simulation start).
  // The rule matches only messages with after <= now, and — when
  // window_duration is non-zero — now < after + window_duration. A rule
  // whose window has passed auto-clears: it stops matching without being
  // uninstalled.
  Duration after{};
  Duration window_duration{};

  // Modify parameters: replace occurrences of body_pattern with
  // replace_bytes in the message body.
  std::string body_pattern;
  std::string replace_bytes;

  // Bounded-count matching; see header comment.
  uint64_t max_matches = kUnlimitedMatches;

  // Validation used by the orchestrator and the proxy control API.
  VoidResult validate() const;

  Json to_json() const;
  static Result<FaultRule> from_json(const Json& j);

  // Convenience constructors mirroring Table 2.
  static FaultRule abort_rule(std::string src, std::string dst, int error,
                              std::string pattern = "*",
                              double probability = 1.0);
  static FaultRule delay_rule(std::string src, std::string dst,
                              Duration interval, std::string pattern = "*",
                              double probability = 1.0);
  static FaultRule modify_rule(std::string src, std::string dst,
                               std::string body_pattern,
                               std::string replace_bytes,
                               std::string pattern = "*");
};

// Samples the delay interval for attempt `counter` of a rule whose
// counter-based stream key is `key`. Deterministic: the same (rule, key,
// counter) triple always yields the same interval.
Duration sample_delay(const FaultRule& rule, uint64_t key, uint64_t counter);

}  // namespace gremlin::faults
