// FaultRule: the data-plane interface of Table 2.
//
// A rule instructs a Gremlin agent to Abort, Delay or Modify messages
// flowing from `source` to `destination` whose request ID matches a glob
// `pattern`, on either the request or the response side, with a given
// probability. Non-mandatory parameters take the defaults the paper implies
// (Probability=1, On=request, Pattern matches everything).
//
// Extensions needed by the evaluation:
//  * abort_code == kTcpReset (-1) emulates a TCP-level connection
//    termination rather than an application error (Section 5, Crash).
//  * max_matches bounds how many messages a rule fires on, enabling the
//    "abort 100 consecutive requests, then delay the next 100" sequence of
//    Figure 6 without controller round-trips. Rules are evaluated in
//    installation order, first match wins; an exhausted rule stops matching.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/duration.h"
#include "common/glob.h"
#include "common/json.h"
#include "logstore/record.h"

namespace gremlin::faults {

using logstore::FaultKind;
using logstore::MessageKind;

// Abort code that emulates terminating the connection at the TCP level
// (the caller observes a reset, not an HTTP status).
inline constexpr int kTcpReset = -1;

inline constexpr uint64_t kUnlimitedMatches =
    std::numeric_limits<uint64_t>::max();

struct FaultRule {
  std::string id;             // unique within a test run
  std::string source;         // logical service name; "*" = any
  std::string destination;    // logical service name; "*" = any
  FaultKind type = FaultKind::kAbort;
  MessageKind on = MessageKind::kRequest;
  std::string pattern = "*";  // glob over the request ID
  double probability = 1.0;

  // Abort parameters.
  int abort_code = 503;       // HTTP status to synthesize, or kTcpReset

  // Delay parameters.
  Duration delay_interval{};

  // Modify parameters: replace occurrences of body_pattern with
  // replace_bytes in the message body.
  std::string body_pattern;
  std::string replace_bytes;

  // Bounded-count matching; see header comment.
  uint64_t max_matches = kUnlimitedMatches;

  // Validation used by the orchestrator and the proxy control API.
  VoidResult validate() const;

  Json to_json() const;
  static Result<FaultRule> from_json(const Json& j);

  // Convenience constructors mirroring Table 2.
  static FaultRule abort_rule(std::string src, std::string dst, int error,
                              std::string pattern = "*",
                              double probability = 1.0);
  static FaultRule delay_rule(std::string src, std::string dst,
                              Duration interval, std::string pattern = "*",
                              double probability = 1.0);
  static FaultRule modify_rule(std::string src, std::string dst,
                               std::string body_pattern,
                               std::string replace_bytes,
                               std::string pattern = "*");
};

}  // namespace gremlin::faults
