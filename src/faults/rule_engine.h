// RuleEngine: the message-matching core of a Gremlin agent.
//
// Both data planes — the discrete-event simulator's sidecars and the real
// TCP proxy — delegate to this class, so experiments exercise the same code
// path regardless of substrate. The engine holds an ordered rule list;
// evaluation walks the list and the first enabled, matching, probability-
// passing rule wins. Evaluation is the Figure 8 hot path: it allocates
// nothing and compares the request ID against each rule's glob.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/intern.h"
#include "common/rng.h"
#include "faults/rule.h"

namespace gremlin::faults {

// A protocol-neutral view of an intercepted message. The proxy builds one
// from a parsed HTTP message; the simulator from its internal message type.
struct MessageView {
  MessageKind kind = MessageKind::kRequest;
  std::string_view src;
  std::string_view dst;
  std::string_view request_id;
  std::string_view method;
  std::string_view uri;
  int status = 0;            // responses only
  std::string_view body;
  // Time since the experiment started (virtual clock in the simulator,
  // wall clock offset in the proxy). Rules with activation windows compare
  // against this; always-on rules ignore it.
  Duration now{};
};

// What the agent should do with the message. `rule_id` is an interned
// Symbol (resolved when the rule was installed), so the Figure 8 hot path
// returns a decision without copying any strings; the Modify payloads stay
// owning copies because they are applied outside the engine lock.
struct FaultDecision {
  FaultKind action = FaultKind::kNone;
  Symbol rule_id;
  int abort_code = 0;          // kAbort
  Duration delay{};            // kDelay
  std::string body_pattern;    // kModify
  std::string replace_bytes;   // kModify

  bool none() const { return action == FaultKind::kNone; }
  bool is_tcp_reset() const {
    return action == FaultKind::kAbort && abort_code == kTcpReset;
  }
};

class RuleEngine {
 public:
  // `seed_label` derives this agent's private random stream from the seed,
  // keeping multi-agent runs deterministic regardless of evaluation order.
  explicit RuleEngine(uint64_t seed = 1, std::string_view seed_label = "");

  // Appends a rule (installation order defines match priority).
  // Fails if the rule does not validate or duplicates an existing ID.
  VoidResult add_rule(FaultRule rule);
  VoidResult add_rules(const std::vector<FaultRule>& rules);

  // Removes one rule / all rules. Match counters reset with removal.
  bool remove_rule(const std::string& id);
  void clear();

  // clear() plus a reseed of the private random stream, as if the engine
  // had been constructed with (seed, seed_label). Warm-world reuse: lets a
  // long-lived agent start each experiment from the exact RNG state a
  // freshly built agent would have.
  void reset(uint64_t seed, std::string_view seed_label);

  size_t rule_count() const;
  std::vector<FaultRule> rules() const;

  // Lock-free emptiness probe for the per-message hot path: a fault-free
  // run (the overwhelmingly common case across a campaign's baseline and
  // most sidecars of a faulted experiment) skips the MessageView build and
  // the evaluate() mutex entirely. A concurrent install racing a probe is
  // benign: it is indistinguishable from the message having been delivered
  // just before the install.
  bool armed() const {
    return armed_count_.load(std::memory_order_acquire) != 0;
  }

  // Decides the fault action for a message. Thread-safe. Increments the
  // winning rule's match counter (bounded rules stop matching when
  // exhausted).
  FaultDecision evaluate(const MessageView& msg);

  // Applies a Modify decision to a message body in place; returns the
  // number of byte-range replacements performed.
  static int apply_modify(const FaultDecision& decision, std::string* body);

  // Total number of rule firings since the last clear().
  uint64_t total_matches() const;

 private:
  struct Installed {
    FaultRule rule;
    Symbol id_sym;  // rule.id, interned once at install time
    Glob src_glob;
    Glob dst_glob;
    Glob id_glob;
    uint64_t matches = 0;
    // Counter-based stream keys, derived at install time from
    // (seed, seed_label, installation position). Probability and delay
    // sampling draw from separate keys at the same attempt index so a delay
    // sample never perturbs a probability outcome.
    uint64_t prob_key = 0;
    uint64_t delay_key = 0;
    // Number of statically-matching messages seen (the counter the keyed
    // draws are indexed by). Unlike `matches`, this also advances on
    // probabilistic declines.
    uint64_t attempts = 0;
  };

  bool matches_locked(const Installed& in, const MessageView& msg) const;
  void derive_keys_locked(Installed* in);

  mutable std::mutex mu_;
  std::vector<Installed> rules_;
  // Base of the per-rule counter streams: a pure function of
  // (seed, seed_label), so any engine reset to the same pair reproduces
  // every rule's draw sequence exactly.
  uint64_t stream_base_ = 0;
  // Rules installed since construction / clear() / reset(): the per-rule
  // stream index (see derive_keys_locked).
  uint64_t install_seq_ = 0;
  uint64_t total_matches_ = 0;
  // Mirrors rules_.size(); maintained by the mutators so armed() needs no
  // lock.
  std::atomic<size_t> armed_count_{0};
};

}  // namespace gremlin::faults
