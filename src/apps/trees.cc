#include "apps/trees.h"

namespace gremlin::apps {

topology::AppGraph build_tree_app(sim::Simulation* sim,
                                  const TreeOptions& options) {
  topology::AppGraph graph = topology::AppGraph::binary_tree(options.depth);
  sim->add_services_from_graph(
      graph, [&options](const std::string&) {
        sim::ServiceConfig cfg;
        cfg.instances = options.instances_per_service;
        cfg.processing_time = options.processing_time;
        cfg.default_policy = options.policy;
        return cfg;
      });
  topology::AppGraph with_user = graph;
  with_user.add_edge("user", "svc0");
  return with_user;
}

}  // namespace gremlin::apps
