// The WordPress / ElasticPress case study (Section 7.1).
//
// Three unmodified services: WordPress (with the ElasticPress plugin),
// Elasticsearch, and MySQL. ElasticPress routes search queries to
// Elasticsearch and falls back to the default MySQL-powered search when
// Elasticsearch is unreachable or returns an error — but implements *no
// timeout* and *no circuit breaker*, the two bugs the paper demonstrates
// in Figures 5 and 6.
//
// `WordPressOptions` can switch the buggy patterns on, producing the
// counterfactual "fixed plugin" used by tests and ablation benches.
#pragma once

#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin::apps {

struct WordPressOptions {
  // ElasticPress as shipped: no timeout, no breaker, but graceful fallback
  // to MySQL on *observed* errors.
  bool with_timeout = false;
  Duration timeout = sec(1);
  bool with_circuit_breaker = false;
  resilience::CircuitBreakerConfig breaker{100, sec(30), 1};

  Duration elasticsearch_processing = msec(20);
  Duration mysql_processing = msec(30);
  Duration wordpress_processing = msec(5);

  // Natural variance so latency CDFs have realistic spread (all draws come
  // from the simulation's seeded RNG — runs stay reproducible).
  double processing_jitter = 0.3;  // ± fraction of processing time
  double network_jitter = 0.2;     // ± fraction of link latency
};

// Builds wordpress, elasticsearch and mysql services in `sim` and returns
// the logical application graph (user → wordpress → {elasticsearch, mysql}).
topology::AppGraph build_wordpress_app(sim::Simulation* sim,
                                       const WordPressOptions& options = {});

}  // namespace gremlin::apps
