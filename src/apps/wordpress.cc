#include "apps/wordpress.h"

namespace gremlin::apps {

using sim::RequestContext;
using sim::ServiceConfig;
using sim::SimResponse;

topology::AppGraph build_wordpress_app(sim::Simulation* sim,
                                       const WordPressOptions& options) {
  sim->network().set_jitter(options.network_jitter);

  // Leaf data stores.
  ServiceConfig es;
  es.name = "elasticsearch";
  es.processing_time = options.elasticsearch_processing;
  es.processing_jitter = options.processing_jitter;
  sim->add_service(es);

  ServiceConfig mysql;
  mysql.name = "mysql";
  mysql.processing_time = options.mysql_processing;
  mysql.processing_jitter = options.processing_jitter;
  sim->add_service(mysql);

  // WordPress with the ElasticPress plugin: query Elasticsearch, fall back
  // to MySQL search when the reply is an error or the connection fails.
  ServiceConfig wp;
  wp.name = "wordpress";
  wp.processing_time = options.wordpress_processing;
  wp.processing_jitter = options.processing_jitter;
  resilience::CallPolicy es_policy;  // naive: ElasticPress as shipped
  if (options.with_timeout) es_policy.timeout = options.timeout;
  if (options.with_circuit_breaker) {
    es_policy.circuit_breaker = options.breaker;
  }
  wp.policies["elasticsearch"] = es_policy;
  wp.handler = [](std::shared_ptr<RequestContext> ctx) {
    ctx->call("elasticsearch", [ctx](const SimResponse& resp) {
      if (!resp.failed()) {
        ctx->respond(200, "es-search-results");
        return;
      }
      // Graceful degradation: default MySQL-powered search.
      ctx->call("mysql", [ctx](const SimResponse& db) {
        if (db.failed()) {
          ctx->respond(500, "search-unavailable");
        } else {
          ctx->respond(200, "mysql-search-results");
        }
      });
    });
  };
  sim->add_service(wp);

  topology::AppGraph graph;
  graph.add_edge("user", "wordpress");
  graph.add_edge("wordpress", "elasticsearch");
  graph.add_edge("wordpress", "mysql");
  return graph;
}

}  // namespace gremlin::apps
