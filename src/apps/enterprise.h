// The IBM enterprise application case study (Section 7.1, Figure 4).
//
// A web app for discovering web services: the user-facing Web App calls a
// search service and an activity service; those call the external
// github.com and stackoverflow.com APIs. Two Ruby and two Node.js services
// in the paper — runtimes are irrelevant to Gremlin (observation O1), so we
// model only the call structure and the failure-handling logic.
//
// The Web App uses a Unirest-like HTTP client library to abstract
// failure-handling boilerplate. The bug the paper's developers discovered:
// the library's timeout pattern handles slow responses gracefully but does
// NOT handle TCP connection timeouts/resets — those errors percolate out of
// the library and fail the request (emulated network instability surfaces
// it). `fix_unirest_bug` models the corrected library.
#pragma once

#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin::apps {

struct EnterpriseOptions {
  bool fix_unirest_bug = false;
  Duration webapp_timeout = msec(800);
};

// Services: webapp → {search-svc, activity-svc};
// search-svc → {github, stackoverflow}; activity-svc → github.
// Returns the logical graph including the "user" edge client.
topology::AppGraph build_enterprise_app(sim::Simulation* sim,
                                        const EnterpriseOptions& options = {});

}  // namespace gremlin::apps
