#include "apps/outages.h"

#include "control/failures.h"
#include "sim/pubsub.h"

namespace gremlin::apps {

using control::CheckResult;
using control::FailureSpec;
using control::LoadOptions;
using control::TestSession;
using resilience::CallPolicy;
using resilience::CircuitBreakerConfig;
using resilience::Fallback;
using sim::RequestContext;
using sim::ServiceConfig;
using sim::Simulation;
using sim::SimResponse;

namespace {

// -------------------------------------------------------- parsely-2015

topology::AppGraph build_messagebus_app(Simulation* sim, bool resilient) {
  ServiceConfig cassandra;
  cassandra.name = "cassandra";
  cassandra.processing_time = msec(10);
  sim->add_service(cassandra);

  // A real message bus: bounded per-topic queue, at-least-once delivery to
  // Cassandra with head-of-line retries, publishers BLOCK when the queue
  // is full — the Kafkapocalypse mechanism. The broker is kept alive by the
  // shared_ptr captured in the publishers' handlers below.
  sim::PubSubBroker::Options bus_options;
  bus_options.queue_capacity = 8;
  bus_options.on_full = sim::PubSubBroker::Options::FullPolicy::kBlock;
  bus_options.block_poll = msec(50);
  bus_options.delivery_retry = msec(100);
  auto broker = std::make_shared<sim::PubSubBroker>(sim, bus_options);
  broker->subscribe("data", "cassandra");

  CallPolicy publisher_policy;  // naive: block on the bus forever
  if (resilient) {
    publisher_policy.timeout = msec(500);
    publisher_policy.circuit_breaker = CircuitBreakerConfig{5, sec(10), 1};
    publisher_policy.fallback = Fallback{202, "buffered-locally"};
  }
  for (const char* name : {"publisher-a", "publisher-b"}) {
    ServiceConfig pub;
    pub.name = name;
    pub.processing_time = msec(1);
    pub.default_policy = publisher_policy;
    // Publish the user's payload to the bus; the broker shared_ptr rides in
    // the handler to keep it alive for the simulation's lifetime.
    pub.handler = [broker](std::shared_ptr<RequestContext> ctx) {
      sim::SimRequest publish;
      publish.method = "POST";
      publish.uri = "/publish/data";
      publish.body = ctx->request().body.empty() ? "metrics"
                                                 : ctx->request().body;
      ctx->call("messagebus", publish, [ctx](const SimResponse& resp) {
        if (resp.failed()) {
          ctx->respond(500, "publish failed");
        } else {
          ctx->respond(200, "accepted");
        }
      });
    };
    sim->add_service(pub);
  }

  topology::AppGraph graph;
  graph.add_edge("user", "publisher-a");
  graph.add_edge("user", "publisher-b");
  graph.add_edge("publisher-a", "messagebus");
  graph.add_edge("publisher-b", "messagebus");
  graph.add_edge("messagebus", "cassandra");
  return graph;
}

void messagebus_recipe(TestSession* session) {
  auto applied = session->apply(FailureSpec::crash("cassandra"));
  (void)applied;
  LoadOptions load;
  load.count = 40;
  load.gap = msec(50);
  // The broken bus never quiesces (blocked publishers, delivery retries):
  // run each load for a bounded horizon instead of to idle.
  load.horizon = sec(15);
  session->run_load("user", "publisher-a", load);
  LoadOptions load_b = load;
  load_b.id_prefix = "test-b-";
  session->run_load("user", "publisher-b", load_b);
  auto collected = session->collect();
  (void)collected;
  auto checker = session->checker();
  for (const auto& s : session->graph().dependents("messagebus")) {
    session->check(checker.has_timeouts(s, sec(1)));
    session->check(checker.has_circuit_breaker(s, "messagebus", 5, sec(2), 1));
  }
}

// ------------------------------------------------------------- bbc-2014

topology::AppGraph build_bbc_app(Simulation* sim, bool resilient) {
  ServiceConfig db;
  db.name = "database";
  db.processing_time = msec(8);
  sim->add_service(db);

  CallPolicy api_policy;  // naive: no local response cache, no breaker
  if (resilient) {
    api_policy.timeout = msec(500);
    api_policy.circuit_breaker = CircuitBreakerConfig{3, sec(10), 1};
    api_policy.fallback = Fallback{200, "locally-cached-response"};
  }
  for (const char* name : {"iplayer-api", "news-api"}) {
    ServiceConfig api;
    api.name = name;
    api.processing_time = msec(3);
    api.dependencies = {"database"};
    api.default_policy = api_policy;
    sim->add_service(api);
  }

  ServiceConfig frontend;
  frontend.name = "frontend";
  frontend.processing_time = msec(2);
  frontend.dependencies = {"iplayer-api", "news-api"};
  sim->add_service(frontend);

  topology::AppGraph graph;
  graph.add_edge("user", "frontend");
  graph.add_edge("frontend", "iplayer-api");
  graph.add_edge("frontend", "news-api");
  graph.add_edge("iplayer-api", "database");
  graph.add_edge("news-api", "database");
  return graph;
}

void bbc_recipe(TestSession* session) {
  // Throttling database: most requests crawl, the rest are rejected.
  FailureSpec overload = FailureSpec::overload("database", sec(2), 0.25);
  auto applied = session->apply(overload);
  (void)applied;
  LoadOptions load;
  load.count = 60;
  load.gap = msec(50);
  session->run_load("user", "frontend", load);
  auto collected = session->collect();
  (void)collected;
  auto checker = session->checker();
  for (const auto& s : session->graph().dependents("database")) {
    session->check(checker.has_circuit_breaker(s, "database", 3, sec(2), 1));
  }
  // The frontend composes both APIs sequentially; before the breakers trip
  // each API may burn its full 500ms budget once, so the page SLO is 1.5s.
  session->check(checker.has_timeouts("frontend", msec(1500)));
}

// --------------------------------------------------------- spotify-2013

topology::AppGraph build_spotify_app(Simulation* sim, bool resilient) {
  for (const auto& [name, proc] :
       std::vector<std::pair<const char*, Duration>>{
           {"core", msec(10)}, {"ads", msec(5)}, {"recs", msec(5)}}) {
    ServiceConfig leaf;
    leaf.name = name;
    leaf.processing_time = proc;
    sim->add_service(leaf);
  }

  ServiceConfig frontend;
  frontend.name = "frontend";
  frontend.processing_time = msec(2);
  CallPolicy base;
  base.timeout = sec(1);
  if (resilient) {
    // Bulkhead pattern: an isolated client pool per dependency.
    CallPolicy core_policy = base;
    core_policy.bulkhead_max_concurrent = 4;
    core_policy.fallback = Fallback{200, "degraded-core"};
    CallPolicy other_policy = base;
    other_policy.bulkhead_max_concurrent = 16;
    frontend.policies["core"] = core_policy;
    frontend.policies["ads"] = other_policy;
    frontend.policies["recs"] = other_policy;
  } else {
    // The outage's shape: one shared client pool across all dependencies.
    frontend.default_policy = base;
    frontend.shared_client_pool = 4;
  }
  // Parallel fan-out to the three backends; reply when all have resolved.
  frontend.handler = [](std::shared_ptr<RequestContext> ctx) {
    auto remaining = std::make_shared<int>(3);
    auto failed = std::make_shared<bool>(false);
    auto done = [ctx, remaining, failed](const SimResponse& resp) {
      if (resp.failed()) *failed = true;
      if (--*remaining == 0) {
        if (*failed) {
          ctx->respond(500, "backend failure");
        } else {
          ctx->respond(200, "home-screen");
        }
      }
    };
    ctx->call("core", done);
    ctx->call("ads", done);
    ctx->call("recs", done);
  };
  sim->add_service(frontend);

  topology::AppGraph graph;
  graph.add_edge("user", "frontend");
  graph.add_edge("frontend", "core");
  graph.add_edge("frontend", "ads");
  graph.add_edge("frontend", "recs");
  return graph;
}

void spotify_recipe(TestSession* session) {
  // Core service degrades: every call to it crawls.
  auto applied =
      session->apply(FailureSpec::hang("core", sec(5)));
  (void)applied;
  LoadOptions load;
  load.count = 100;
  load.gap = msec(20);
  session->run_load("user", "frontend", load);
  auto collected = session->collect();
  (void)collected;
  auto checker = session->checker();
  // While core is degraded, ads/recs must keep receiving traffic at a rate
  // comparable to the injection rate (50 req/s; require half of it).
  session->check(checker.has_bulkhead("frontend", "core", 25.0));
  session->check(checker.has_timeouts("frontend", sec(2)));
}

// ---------------------------------------------------------- twilio-2013

topology::AppGraph build_twilio_app(Simulation* sim, bool resilient) {
  ServiceConfig db;
  db.name = "paymentdb";
  db.processing_time = msec(12);
  sim->add_service(db);

  ServiceConfig billing;
  billing.name = "billing";
  billing.processing_time = msec(3);
  billing.dependencies = {"paymentdb"};
  CallPolicy policy;
  policy.timeout = msec(300);
  if (resilient) {
    policy.retry.max_retries = 2;
    policy.retry.base_backoff = msec(50);
  } else {
    // The faulty loop: aggressive, effectively unbounded re-billing.
    policy.retry.max_retries = 10;
    policy.retry.base_backoff = msec(1);
    policy.retry.multiplier = 1.0;
  }
  billing.default_policy = policy;
  sim->add_service(billing);

  topology::AppGraph graph;
  graph.add_edge("user", "billing");
  graph.add_edge("billing", "paymentdb");
  return graph;
}

void twilio_recipe(TestSession* session) {
  auto applied = session->apply(FailureSpec::crash("paymentdb"));
  (void)applied;
  LoadOptions load;
  load.count = 20;
  load.gap = msec(100);
  session->run_load("user", "billing", load);
  auto collected = session->collect();
  (void)collected;
  auto checker = session->checker();
  // A charge may be retried at most 3 times before being parked for manual
  // review; more than that risks double billing.
  session->check(checker.has_bounded_retries("billing", "paymentdb", 3));
}

// -------------------------------------------------------- circleci-2015

topology::AppGraph build_circleci_app(Simulation* sim, bool resilient) {
  ServiceConfig db;
  db.name = "database";
  db.instances = 2;
  db.processing_time = msec(10);
  sim->add_service(db);

  ServiceConfig worker;
  worker.name = "build-worker";
  worker.instances = 2;
  worker.processing_time = msec(5);
  worker.dependencies = {"database"};
  CallPolicy policy;
  if (resilient) {
    policy.timeout = msec(300);
    policy.retry.max_retries = 1;
    policy.retry.base_backoff = msec(100);
    policy.circuit_breaker = CircuitBreakerConfig{5, sec(5), 1};
    policy.fallback = Fallback{200, "requeued-build"};
  } else {
    policy.retry.max_retries = 8;  // hammering an overloaded database
    policy.retry.base_backoff = msec(1);
    policy.retry.multiplier = 1.0;
  }
  worker.default_policy = policy;
  sim->add_service(worker);

  topology::AppGraph graph;
  graph.add_edge("user", "build-worker");
  graph.add_edge("build-worker", "database");
  return graph;
}

void circleci_recipe(TestSession* session) {
  auto applied =
      session->apply(FailureSpec::overload("database", sec(3), 0.5));
  (void)applied;
  LoadOptions load;
  load.count = 40;
  load.gap = msec(50);
  session->run_load("user", "build-worker", load);
  auto collected = session->collect();
  (void)collected;
  auto checker = session->checker();
  session->check(checker.has_timeouts("build-worker", sec(1)));
  session->check(
      checker.has_bounded_retries("build-worker", "database", 3));
}

}  // namespace

const std::vector<OutageCase>& table1_cases() {
  static const std::vector<OutageCase> kCases = {
      {"parsely-2015", "cascading failure due to message bus overload",
       "publisher-a", build_messagebus_app, messagebus_recipe},
      {"circleci-2015", "cascading failure due to database overload",
       "build-worker", build_circleci_app, circleci_recipe},
      {"bbc-2014", "cascading failure due to database overload", "frontend",
       build_bbc_app, bbc_recipe},
      {"spotify-2013",
       "cascading failure due to degradation of a core internal service",
       "frontend", build_spotify_app, spotify_recipe},
      {"twilio-2013",
       "database failure caused billing service to repeatedly bill customers",
       "billing", build_twilio_app, twilio_recipe},
  };
  return kCases;
}

std::vector<CheckResult> run_outage_case(const OutageCase& c, bool resilient,
                                         uint64_t seed) {
  sim::SimulationConfig cfg;
  cfg.seed = seed;
  Simulation sim(cfg);
  topology::AppGraph graph = c.build(&sim, resilient);
  TestSession session(&sim, graph);
  c.recipe(&session);
  return session.results();
}

}  // namespace gremlin::apps
