// Warm-cache application: the probabilistic/windowed fault vocabulary's
// seeded-bug testbed.
//
// `portal` calls `backend` on every request and keeps one bit of state:
// whether the backend has EVER succeeded since boot. Backend failures are
// absorbed two different ways —
//
//   backend fails, never succeeded  → 200 "cold-fallback" (the cold-start
//                                     path serves a static page; absorbed)
//   backend fails, succeeded before → 500 "cache-corrupt" (the warm path
//                                     trusts its cache-invalidation
//                                     protocol and has no fallback)
//
// so the bug is a *state transition*: a request must succeed and a later
// one fail. Deterministic always-on faults can't get there — abort, crash,
// disconnect, and over-timeout delay make every call fail (cold path,
// absorbed), and no fault makes every call succeed. Only the richer
// vocabulary reaches the bug: a probabilistic abort (p strictly between 0
// and 1), a windowed fault with after > 0 (successes before the window
// opens, failures inside), or an instance crash/rolling partition with a
// delayed onset. tests/search_test and the search CLI use this app to prove
// `gremlin search` finds bugs only the new fault classes can reach.
//
// The portal's state lives in the handler closure and mutates across
// requests, so the AppSpec must set reusable = false (a warm-world reset
// cannot restore run-zero behaviour).
#pragma once

#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin::apps {

struct WarmCacheOptions {
  Duration portal_processing = msec(1);
  Duration backend_processing = msec(2);
  // Per-call timeout on portal → backend; injected delays beyond this fail
  // the call (and, once warm, trip the bug).
  Duration backend_timeout = msec(50);
};

// Builds the app; `portal` is the entry point called by "user".
topology::AppGraph build_warmcache_app(sim::Simulation* sim,
                                       const WarmCacheOptions& options = {});

}  // namespace gremlin::apps
