#include "apps/redundant.h"

#include <memory>

namespace gremlin::apps {

using sim::RequestContext;
using sim::ServiceConfig;
using sim::SimResponse;

topology::AppGraph build_redundant_app(sim::Simulation* sim,
                                       const RedundantOptions& options) {
  for (const char* replica : {"replica-a", "replica-b"}) {
    ServiceConfig cfg;
    cfg.name = replica;
    cfg.processing_time = options.replica_processing;
    sim->add_service(cfg);
  }

  // Feature-flagged audit trail: only /admin requests reach it, so a plain
  // read workload leaves the whole subtree unobserved.
  ServiceConfig archive;
  archive.name = "archive";
  archive.processing_time = options.replica_processing;
  sim->add_service(archive);

  ServiceConfig audit;
  audit.name = "audit";
  audit.processing_time = options.replica_processing;
  audit.dependencies = {"archive"};
  sim->add_service(audit);

  ServiceConfig frontend;
  frontend.name = "frontend";
  frontend.processing_time = options.frontend_processing;
  resilience::CallPolicy replica_policy;  // bounded wait, no fallback
  replica_policy.timeout = options.replica_timeout;
  frontend.policies["replica-a"] = replica_policy;
  frontend.policies["replica-b"] = replica_policy;
  frontend.handler = [](std::shared_ptr<RequestContext> ctx) {
    if (ctx->request().uri.str() == "/admin") {
      ctx->call("audit", [ctx](const SimResponse&) {
        ctx->respond(200, "audited");  // audit is best-effort
      });
      return;
    }
    // Mirrored read: both replicas are queried on every request and either
    // success satisfies the user. The seeded bug: no plan C when both fail.
    struct Scatter {
      int pending = 2;
      bool succeeded = false;
    };
    auto state = std::make_shared<Scatter>();
    auto on_reply = [ctx, state](const SimResponse& resp) {
      if (!resp.failed()) state->succeeded = true;
      if (--state->pending == 0) {
        if (state->succeeded) {
          ctx->respond(200, "replica-read");
        } else {
          ctx->respond(502, "all-replicas-failed");
        }
      }
    };
    ctx->call("replica-a", on_reply);
    ctx->call("replica-b", on_reply);
  };
  sim->add_service(frontend);

  topology::AppGraph graph;
  graph.add_edge("user", "frontend");
  graph.add_edge("frontend", "replica-a");
  graph.add_edge("frontend", "replica-b");
  graph.add_edge("frontend", "audit");
  graph.add_edge("audit", "archive");
  return graph;
}

}  // namespace gremlin::apps
