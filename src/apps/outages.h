// Table 1: recreations of five real-world outages as Gremlin recipes.
//
// Each case builds a synthetic application with the call structure the
// postmortem describes, in two variants: `resilient=false` reproduces the
// missing/faulty failure-handling logic that caused the outage (the recipe's
// assertions FAIL, diagnosing the bug before it bites), `resilient=true`
// applies the recommended patterns (the assertions PASS).
//
//   parsely-2015 / stackdriver-2013 — cascading failure through an
//       overloaded message bus after the Cassandra backend crashed
//   circleci-2015 — database performance degradation stalling workers
//   bbc-2014 — database overload throttling dependent services that had
//       no cached responses
//   spotify-2013 — degradation of a core internal service starving calls
//       to healthy services (shared client pool, no bulkheads)
//   twilio-2013 — database failure plus unbounded billing retries causing
//       repeated customer charges
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "control/recipe.h"
#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin::apps {

struct OutageCase {
  std::string id;       // e.g. "parsely-2015"
  std::string summary;  // the postmortem finding being recreated
  std::string entry;    // user-facing service the test load targets

  // Builds the application into `sim`; returns the logical graph.
  std::function<topology::AppGraph(sim::Simulation*, bool resilient)> build;

  // Executes the Gremlin recipe (failures + load + assertions) against a
  // session bound to the sim/graph from build(). Assertion outcomes are
  // recorded in the session.
  std::function<void(control::TestSession*)> recipe;
};

const std::vector<OutageCase>& table1_cases();

// Convenience: build + run one case end-to-end on a fresh simulation;
// returns the session's assertion outcomes.
std::vector<control::CheckResult> run_outage_case(const OutageCase& c,
                                                  bool resilient,
                                                  uint64_t seed = 42);

}  // namespace gremlin::apps
