// Binary-tree applications for the scaling benchmarks (Section 7.2).
//
// The paper packages a naive Python service with the Gremlin agent into
// Docker containers arranged as complete binary trees of varying depth
// (1, 3, 7, 15, 31 services) and measures orchestration + assertion time
// (Figure 7). This builder reproduces those topologies in the simulator.
#pragma once

#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin::apps {

struct TreeOptions {
  int depth = 3;                        // 2^depth - 1 services
  int instances_per_service = 1;
  Duration processing_time = msec(2);
  resilience::CallPolicy policy;        // applied to every dependency call
};

// Builds the tree app; every internal node calls both children sequentially
// (default handler). Returns the logical graph; svc0 is the entry point.
topology::AppGraph build_tree_app(sim::Simulation* sim,
                                  const TreeOptions& options = {});

}  // namespace gremlin::apps
