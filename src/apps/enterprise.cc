#include "apps/enterprise.h"

namespace gremlin::apps {

using sim::RequestContext;
using sim::ServiceConfig;
using sim::SimResponse;

topology::AppGraph build_enterprise_app(sim::Simulation* sim,
                                        const EnterpriseOptions& options) {
  // External APIs (leaves). Real WAN latency is higher than the intra-DC
  // default; model it on the network edges below.
  ServiceConfig github;
  github.name = "github";
  github.processing_time = msec(40);
  sim->add_service(github);

  ServiceConfig stackoverflow;
  stackoverflow.name = "stackoverflow";
  stackoverflow.processing_time = msec(50);
  sim->add_service(stackoverflow);

  sim->network().set_edge_latency("search-svc", "github", msec(15));
  sim->network().set_edge_latency("search-svc", "stackoverflow", msec(15));
  sim->network().set_edge_latency("activity-svc", "github", msec(15));

  // Backend services aggregate the external feeds with sensible policies.
  ServiceConfig search;
  search.name = "search-svc";
  search.processing_time = msec(10);
  search.dependencies = {"github", "stackoverflow"};
  resilience::CallPolicy backend_policy;
  backend_policy.timeout = msec(400);
  backend_policy.retry.max_retries = 1;
  backend_policy.fallback = resilience::Fallback{200, "cached-feed"};
  search.default_policy = backend_policy;
  sim->add_service(search);

  ServiceConfig activity;
  activity.name = "activity-svc";
  activity.processing_time = msec(8);
  activity.dependencies = {"github"};
  activity.default_policy = backend_policy;
  sim->add_service(activity);

  // The Web App, using the Unirest-like client for both backends.
  ServiceConfig webapp;
  webapp.name = "webapp";
  webapp.processing_time = msec(5);
  resilience::CallPolicy unirest;
  unirest.timeout = options.webapp_timeout;
  webapp.policies["search-svc"] = unirest;
  webapp.policies["activity-svc"] = unirest;
  const bool fixed = options.fix_unirest_bug;
  webapp.handler = [fixed](std::shared_ptr<RequestContext> ctx) {
    ctx->call("search-svc", [ctx, fixed](const SimResponse& search) {
      // Unirest's timeout handler: a *slow* backend degrades gracefully...
      if (search.timed_out) {
        ctx->respond(200, "partial-results(search timed out)");
        return;
      }
      // ...but a TCP-level connection failure escapes the library and the
      // exception percolates up, failing the whole request (the bug).
      if (search.connection_reset && !fixed) {
        ctx->respond(500, "unhandled-exception: connection reset");
        return;
      }
      if (search.failed() && !fixed) {
        ctx->respond(502, "search backend error");
        return;
      }
      ctx->call("activity-svc", [ctx, fixed](const SimResponse& act) {
        if (act.failed() && !fixed) {
          ctx->respond(act.connection_reset
                           ? 500
                           : 502,
                       act.connection_reset
                           ? "unhandled-exception: connection reset"
                           : "activity backend error");
          return;
        }
        ctx->respond(200, "service-catalog-page");
      });
    });
  };
  sim->add_service(webapp);

  topology::AppGraph graph;
  graph.add_edge("user", "webapp");
  graph.add_edge("webapp", "search-svc");
  graph.add_edge("webapp", "activity-svc");
  graph.add_edge("search-svc", "github");
  graph.add_edge("search-svc", "stackoverflow");
  graph.add_edge("activity-svc", "github");
  return graph;
}

}  // namespace gremlin::apps
