#include "apps/warmcache.h"

#include <memory>

namespace gremlin::apps {

using sim::RequestContext;
using sim::ServiceConfig;
using sim::SimResponse;

topology::AppGraph build_warmcache_app(sim::Simulation* sim,
                                       const WarmCacheOptions& options) {
  ServiceConfig backend;
  backend.name = "backend";
  backend.processing_time = options.backend_processing;
  sim->add_service(backend);

  ServiceConfig portal;
  portal.name = "portal";
  portal.processing_time = options.portal_processing;
  resilience::CallPolicy backend_policy;  // bounded wait, no fallback
  backend_policy.timeout = options.backend_timeout;
  portal.policies["backend"] = backend_policy;
  // One bit of cross-request state: has the backend ever answered? Shared
  // by every request the handler serves within one deployment.
  auto warm = std::make_shared<bool>(false);
  portal.handler = [warm](std::shared_ptr<RequestContext> ctx) {
    ctx->call("backend", [ctx, warm](const SimResponse& resp) {
      if (!resp.failed()) {
        *warm = true;
        ctx->respond(200, "cache-fill");
        return;
      }
      if (!*warm) {
        // Cold start: the static fallback page absorbs the failure.
        ctx->respond(200, "cold-fallback");
        return;
      }
      // The seeded bug: the warm path assumes the cache protocol never
      // loses the backend mid-session and has no plan B.
      ctx->respond(500, "cache-corrupt");
    });
  };
  sim->add_service(portal);

  topology::AppGraph graph;
  graph.add_edge("user", "portal");
  graph.add_edge("portal", "backend");
  return graph;
}

}  // namespace gremlin::apps
