// Redundant-pair application: the fault-space search's seeded-bug testbed.
//
// `frontend` mirrors every read to two replicas and succeeds if *either*
// replies — single-replica outages are fully absorbed, so every k=1
// experiment passes. The seeded bug is the missing last line of defence:
// when BOTH replicas fail the same request, frontend has no fallback and
// returns 502 to the user. The minimal reproducer is therefore exactly a
// 2-fault combination pairing one fault on each replica side, which is what
// `gremlin search` must discover and shrink to (docs/SEARCH.md).
//
// The logical graph additionally declares a feature-flagged audit subtree
// (frontend → audit → archive) that the handler only exercises for /admin
// requests. A plain read workload never touches it, so the observed call
// graph lets the dependency-aware pruner discard every combination that
// faults the dead subtree — the app seeds both halves of the search story.
#pragma once

#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin::apps {

struct RedundantOptions {
  Duration frontend_processing = msec(1);
  Duration replica_processing = msec(2);
  // Per-replica call timeout; injected delays beyond this fail the call.
  Duration replica_timeout = msec(50);
};

// Builds the app; `frontend` is the entry point called by "user".
topology::AppGraph build_redundant_app(sim::Simulation* sim,
                                       const RedundantOptions& options = {});

}  // namespace gremlin::apps
