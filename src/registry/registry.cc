#include "registry/registry.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "httpserver/client.h"

namespace gremlin::registry {
namespace {

TimePoint wall_clock_now() {
  return std::chrono::duration_cast<Duration>(
      std::chrono::system_clock::now().time_since_epoch());
}

httpmsg::Response json_response(int status, const Json& body) {
  httpmsg::Response r = httpmsg::make_response(status, body.dump());
  r.headers.set("Content-Type", "application/json");
  return r;
}

Result<Endpoint> endpoint_from_json(const Json& j) {
  if (!j.is_object() || !j.contains("port")) {
    return Error::parse("endpoint requires {host, port}");
  }
  Endpoint ep;
  if (j.contains("host")) ep.host = j["host"].as_string();
  const int64_t port = j["port"].as_int();
  if (port <= 0 || port > 65535) return Error::parse("bad port");
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

Json endpoint_to_json(const Endpoint& ep) {
  Json j = Json::object();
  j["host"] = ep.host;
  j["port"] = static_cast<int64_t>(ep.port);
  return j;
}

}  // namespace

void Registry::register_instance(const std::string& service,
                                 const Endpoint& ep, TimePoint now) {
  std::lock_guard lock(mu_);
  auto& list = entries_[service];
  for (auto& entry : list) {
    if (entry.endpoint == ep) {
      entry.last_heartbeat = now;
      return;
    }
  }
  list.push_back(Entry{ep, now});
}

bool Registry::deregister(const std::string& service, const Endpoint& ep) {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(service);
  if (it == entries_.end()) return false;
  auto& list = it->second;
  const auto found = std::find_if(
      list.begin(), list.end(),
      [&ep](const Entry& e) { return e.endpoint == ep; });
  if (found == list.end()) return false;
  list.erase(found);
  return true;
}

std::vector<Endpoint> Registry::lookup(const std::string& service,
                                       TimePoint now) const {
  std::lock_guard lock(mu_);
  std::vector<Endpoint> out;
  const auto it = entries_.find(service);
  if (it == entries_.end()) return out;
  for (const auto& entry : it->second) {
    if (!expired(entry, now)) out.push_back(entry.endpoint);
  }
  return out;
}

std::vector<std::string> Registry::services(TimePoint now) const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, list] : entries_) {
    for (const auto& entry : list) {
      if (!expired(entry, now)) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

void Registry::prune(TimePoint now) {
  std::lock_guard lock(mu_);
  for (auto& [name, list] : entries_) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [this, now](const Entry& e) {
                                return expired(e, now);
                              }),
               list.end());
  }
}

size_t Registry::size() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& [_, list] : entries_) n += list.size();
  return n;
}

// ----------------------------------------------------------------- server

RegistryServer::RegistryServer(Registry* registry) : registry_(registry) {}

RegistryServer::~RegistryServer() { stop(); }

Result<uint16_t> RegistryServer::start(uint16_t port) {
  server_ = std::make_unique<httpserver::HttpServer>(
      [this](const httpmsg::Request& request) { return handle(request); });
  return server_->start(port);
}

void RegistryServer::stop() {
  if (server_) server_->stop();
}

httpmsg::Response RegistryServer::handle(const httpmsg::Request& request) {
  const std::string prefix = "/registry/v1/services";
  if (!starts_with(request.target, prefix)) {
    Json err = Json::object();
    err["error"] = "unknown path";
    return json_response(404, err);
  }
  const TimePoint now = wall_clock_now();
  std::string name = request.target.substr(prefix.size());
  if (!name.empty() && name.front() == '/') name.erase(0, 1);

  if (name.empty()) {
    if (request.method != "GET") {
      Json err = Json::object();
      err["error"] = "unsupported method";
      return json_response(405, err);
    }
    Json body = Json::object();
    Json arr = Json::array();
    for (const auto& service : registry_->services(now)) {
      arr.push_back(service);
    }
    body["services"] = arr;
    return json_response(200, body);
  }

  if (request.method == "GET") {
    Json body = Json::object();
    Json arr = Json::array();
    for (const auto& ep : registry_->lookup(name, now)) {
      arr.push_back(endpoint_to_json(ep));
    }
    body["endpoints"] = arr;
    return json_response(200, body);
  }
  if (request.method == "PUT" || request.method == "POST" ||
      request.method == "DELETE") {
    auto parsed = Json::parse(request.body);
    if (!parsed.ok()) {
      Json err = Json::object();
      err["error"] = parsed.error().message;
      return json_response(400, err);
    }
    auto ep = endpoint_from_json(parsed.value());
    if (!ep.ok()) {
      Json err = Json::object();
      err["error"] = ep.error().message;
      return json_response(400, err);
    }
    if (request.method == "DELETE") {
      const bool removed = registry_->deregister(name, ep.value());
      Json body = Json::object();
      body["removed"] = removed;
      return json_response(removed ? 200 : 404, body);
    }
    registry_->register_instance(name, ep.value(), now);
    return json_response(200, Json::object());
  }
  Json err = Json::object();
  err["error"] = "unsupported method";
  return json_response(405, err);
}

// ----------------------------------------------------------------- client

VoidResult RegistryClient::register_instance(const std::string& service,
                                             const Endpoint& ep) {
  httpmsg::Request req;
  req.method = "PUT";
  req.target = "/registry/v1/services/" + service;
  req.body = endpoint_to_json(ep).dump();
  auto result = httpserver::HttpClient::fetch(host_, port_, std::move(req));
  if (result.failed() || result.response.status != 200) {
    return Error::unavailable("registry rejected registration");
  }
  return VoidResult::success();
}

VoidResult RegistryClient::deregister(const std::string& service,
                                      const Endpoint& ep) {
  httpmsg::Request req;
  req.method = "DELETE";
  req.target = "/registry/v1/services/" + service;
  req.body = endpoint_to_json(ep).dump();
  auto result = httpserver::HttpClient::fetch(host_, port_, std::move(req));
  if (result.connection_failed || result.timed_out) {
    return Error::unavailable("registry unreachable");
  }
  return VoidResult::success();
}

Result<std::vector<Endpoint>> RegistryClient::lookup(
    const std::string& service) {
  httpmsg::Request req;
  req.target = "/registry/v1/services/" + service;
  auto result = httpserver::HttpClient::fetch(host_, port_, std::move(req));
  if (result.failed()) return Error::unavailable("registry unreachable");
  auto parsed = Json::parse(result.response.body);
  if (!parsed.ok()) return parsed.error();
  std::vector<Endpoint> out;
  for (const Json& item : parsed.value()["endpoints"].as_array()) {
    auto ep = endpoint_from_json(item);
    if (!ep.ok()) return ep.error();
    out.push_back(ep.value());
  }
  return out;
}

Result<std::vector<std::string>> RegistryClient::services() {
  httpmsg::Request req;
  req.target = "/registry/v1/services";
  auto result = httpserver::HttpClient::fetch(host_, port_, std::move(req));
  if (result.failed()) return Error::unavailable("registry unreachable");
  auto parsed = Json::parse(result.response.body);
  if (!parsed.ok()) return parsed.error();
  std::vector<std::string> out;
  for (const Json& item : parsed.value()["services"].as_array()) {
    out.push_back(item.as_string());
  }
  return out;
}

}  // namespace gremlin::registry
