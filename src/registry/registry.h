// Service registry: dynamic endpoint discovery for sidecar proxies.
//
// Section 6: a service's dependency mappings (localhost:<port> → list of
// <remotehost>[:<remoteport>]) "can be statically specified, or be fetched
// dynamically from a service registry" (SmartStack/Eureka style). This
// module provides the registry: an in-memory TTL-based instance table, an
// HTTP facade, and a client the Gremlin agent proxy can use as an endpoint
// resolver.
//
// The core Registry is clock-agnostic (callers pass `now`), so expiry logic
// is deterministic and unit-testable; the HTTP server uses wall time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/duration.h"
#include "common/json.h"
#include "httpserver/server.h"

namespace gremlin::registry {

struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  bool operator==(const Endpoint& other) const {
    return host == other.host && port == other.port;
  }
};

class Registry {
 public:
  // Instances expire `ttl` after their last heartbeat; ttl <= 0 disables
  // expiry.
  explicit Registry(Duration ttl = sec(30)) : ttl_(ttl) {}

  // Registers (or refreshes) an instance of `service`.
  void register_instance(const std::string& service, const Endpoint& ep,
                         TimePoint now);

  // Removes an instance; returns whether it was present.
  bool deregister(const std::string& service, const Endpoint& ep);

  // Live endpoints of `service` at `now` (expired entries are skipped).
  std::vector<Endpoint> lookup(const std::string& service,
                               TimePoint now) const;

  // Services with at least one live instance.
  std::vector<std::string> services(TimePoint now) const;

  // Drops expired entries (lookup already ignores them; this reclaims
  // memory).
  void prune(TimePoint now);

  size_t size() const;

 private:
  struct Entry {
    Endpoint endpoint;
    TimePoint last_heartbeat{};
  };

  bool expired(const Entry& e, TimePoint now) const {
    return ttl_ > kDurationZero && now - e.last_heartbeat > ttl_;
  }

  mutable std::mutex mu_;
  Duration ttl_;
  std::map<std::string, std::vector<Entry>> entries_;
};

// HTTP facade:
//   PUT    /registry/v1/services/<name>   {"host": "...", "port": N}
//   DELETE /registry/v1/services/<name>   {"host": "...", "port": N}
//   GET    /registry/v1/services/<name>   -> {"endpoints": [...]}
//   GET    /registry/v1/services          -> {"services": [...]}
class RegistryServer {
 public:
  explicit RegistryServer(Registry* registry);
  ~RegistryServer();

  Result<uint16_t> start(uint16_t port = 0);
  void stop();
  uint16_t port() const { return server_ ? server_->port() : 0; }

 private:
  httpmsg::Response handle(const httpmsg::Request& request);

  Registry* registry_;
  std::unique_ptr<httpserver::HttpServer> server_;
};

// Client used by agents / services to publish and resolve endpoints.
class RegistryClient {
 public:
  RegistryClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  VoidResult register_instance(const std::string& service,
                               const Endpoint& ep);
  VoidResult deregister(const std::string& service, const Endpoint& ep);
  Result<std::vector<Endpoint>> lookup(const std::string& service);
  Result<std::vector<std::string>> services();

 private:
  std::string host_;
  uint16_t port_;
};

}  // namespace gremlin::registry
