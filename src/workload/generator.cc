#include "workload/generator.h"

namespace gremlin::workload {

std::vector<Duration> TrafficResult::successful_latencies() const {
  std::vector<Duration> out;
  for (size_t i = 0; i < latencies.size(); ++i) {
    if (statuses[i] != 0 && statuses[i] < 500) out.push_back(latencies[i]);
  }
  return out;
}

std::shared_ptr<TrafficResult> schedule_traffic(sim::Simulation* sim,
                                                const std::string& target,
                                                const TrafficSpec& spec) {
  auto result = std::make_shared<TrafficResult>();
  result->latencies.resize(spec.count);
  result->statuses.resize(spec.count);

  TimePoint at = sim->now();
  for (size_t i = 0; i < spec.count; ++i) {
    sim->schedule_at(at, [sim, result, spec, i, target] {
      sim::SimRequest req;
      req.request_id = spec.id_prefix + std::to_string(i);
      req.uri = spec.uri;
      const TimePoint sent = sim->now();
      sim->inject(spec.client, target, std::move(req),
                  [sim, result, i, sent](const sim::SimResponse& resp) {
                    result->latencies[i] = sim->now() - sent;
                    result->statuses[i] =
                        resp.connection_reset || resp.timed_out ? 0
                                                                : resp.status;
                    if (resp.failed()) ++result->failures;
                  });
    });
    const Duration step =
        spec.poisson
            ? Duration(static_cast<int64_t>(sim->rng().exponential(
                  static_cast<double>(spec.gap.count()))))
            : spec.gap;
    at += step;
  }
  return result;
}

TrafficResult run_traffic(sim::Simulation* sim, const std::string& target,
                          const TrafficSpec& spec) {
  auto result = schedule_traffic(sim, target, spec);
  sim->run();
  return *result;
}

}  // namespace gremlin::workload
