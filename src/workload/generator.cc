#include "workload/generator.h"

#include <algorithm>
#include <charconv>
#include <cmath>

namespace gremlin::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Nominal (pre-poisson) inter-arrival gap after arrival `i`, from the
// spec's rate curve. Pure in (spec, i) so chained and prescheduled
// injection agree on the deterministic shapes.
Duration shaped_gap(const TrafficSpec& spec, size_t i) {
  double g = static_cast<double>(spec.gap.count());
  switch (spec.shape) {
    case TrafficSpec::Shape::kConstant:
      break;
    case TrafficSpec::Shape::kRamp: {
      const Duration to =
          spec.ramp_to == kDurationZero ? spec.gap : spec.ramp_to;
      const double t = spec.count <= 1
                           ? 1.0
                           : static_cast<double>(i) /
                                 static_cast<double>(spec.count - 1);
      g += (static_cast<double>(to.count()) - g) * t;
      break;
    }
    case TrafficSpec::Shape::kDiurnal: {
      // Phase from the nominal schedule position (i * gap), not the actual
      // clock, so the curve stays a pure function of the arrival index.
      const double period = std::max(
          1.0, static_cast<double>(spec.diurnal_period.count()));
      const double phase =
          std::fmod(static_cast<double>(i) *
                        static_cast<double>(spec.gap.count()),
                    period) /
          period;
      const double amp = std::clamp(spec.diurnal_amplitude, 0.0, 0.95);
      g /= 1.0 + amp * std::sin(kTwoPi * phase);
      break;
    }
  }
  return Duration(static_cast<int64_t>(g));
}

// Actual step after arrival `i`: the shaped gap, exponentially drawn around
// it when poisson. Draws from the simulation RNG, so call order matters —
// prescheduling draws all steps upfront, chaining draws them at fire time.
Duration arrival_step(sim::Simulation* sim, const TrafficSpec& spec,
                      size_t i) {
  const Duration g = shaped_gap(spec, i);
  if (!spec.poisson) return g;
  return Duration(static_cast<int64_t>(
      sim->rng().exponential(static_cast<double>(g.count()))));
}

// Shared state of a chained (self-rescheduling) injection: the scheduled
// events capture this by shared_ptr, never themselves, so the last arrival
// releases everything.
struct ChainState {
  TrafficSpec spec;
  // Client/target/uri interned once at schedule time: the per-arrival
  // inject goes through the pre-interned overload and assigns pre-interned
  // symbols, skipping three symbol-table lookups per request.
  Symbol client;
  Symbol target;
  Symbol uri;
  std::shared_ptr<TrafficResult> result;
};

void inject_arrival(sim::Simulation* sim,
                    const std::shared_ptr<ChainState>& state, size_t i) {
  sim::SimRequest req;
  // to_chars + append instead of `prefix + to_string(i)`: no temporary
  // string per request on the million-arrival path.
  char digits[20];
  const auto conv = std::to_chars(digits, digits + sizeof(digits), i);
  req.request_id = state->spec.id_prefix;
  req.request_id.append(digits, static_cast<size_t>(conv.ptr - digits));
  req.uri = state->uri;
  const TimePoint sent = sim->now();
  sim->inject(state->client, state->target, std::move(req),
              [sim, result = state->result, i,
               sent](const sim::SimResponse& resp) {
                result->latencies[i] = sim->now() - sent;
                result->statuses[i] = resp.connection_reset || resp.timed_out
                                          ? 0
                                          : resp.status;
                if (resp.failed()) ++result->failures;
              });
}

void chain_arrival(sim::Simulation* sim, std::shared_ptr<ChainState> state,
                   size_t i) {
  inject_arrival(sim, state, i);
  if (i + 1 >= state->spec.count) return;
  const Duration step = arrival_step(sim, state->spec, i);
  sim->schedule(step, [sim, state = std::move(state), i]() mutable {
    chain_arrival(sim, std::move(state), i + 1);
  });
}

}  // namespace

std::vector<Duration> TrafficResult::successful_latencies() const {
  std::vector<Duration> out;
  for (size_t i = 0; i < latencies.size(); ++i) {
    if (statuses[i] != 0 && statuses[i] < 500) out.push_back(latencies[i]);
  }
  return out;
}

std::shared_ptr<TrafficResult> schedule_traffic(sim::Simulation* sim,
                                                const std::string& target,
                                                const TrafficSpec& spec) {
  auto result = std::make_shared<TrafficResult>();
  result->latencies.resize(spec.count);
  result->statuses.resize(spec.count);
  if (spec.count == 0) return result;

  if (spec.chained) {
    auto state = std::make_shared<ChainState>();
    state->spec = spec;
    state->client = Symbol(spec.client);
    state->target = Symbol(target);
    state->uri = Symbol(spec.uri);
    state->result = result;
    sim->schedule_at(sim->now(), [sim, state]() mutable {
      chain_arrival(sim, std::move(state), 0);
    });
    return result;
  }

  TimePoint at = sim->now();
  for (size_t i = 0; i < spec.count; ++i) {
    sim->schedule_at(at, [sim, result, spec, i, target] {
      sim::SimRequest req;
      req.request_id = spec.id_prefix + std::to_string(i);
      req.uri = spec.uri;
      const TimePoint sent = sim->now();
      sim->inject(spec.client, target, std::move(req),
                  [sim, result, i, sent](const sim::SimResponse& resp) {
                    result->latencies[i] = sim->now() - sent;
                    result->statuses[i] =
                        resp.connection_reset || resp.timed_out ? 0
                                                                : resp.status;
                    if (resp.failed()) ++result->failures;
                  });
    });
    at += arrival_step(sim, spec, i);
  }
  return result;
}

TrafficResult run_traffic(sim::Simulation* sim, const std::string& target,
                          const TrafficSpec& spec) {
  auto result = schedule_traffic(sim, target, spec);
  sim->run();
  return *result;
}

}  // namespace gremlin::workload
