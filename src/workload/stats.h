// Latency statistics helpers used by benches and examples: summaries,
// percentiles, and CDF series matching the paper's figures.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/duration.h"

namespace gremlin::workload {

struct Summary {
  size_t count = 0;
  Duration min{};
  Duration max{};
  Duration mean{};
  Duration p50{};
  Duration p90{};
  Duration p99{};
};

Summary summarize(std::vector<Duration> latencies);

// Percentile in [0,100] by nearest-rank on a copy of the data.
Duration percentile(std::vector<Duration> latencies, double pct);

// Empirical CDF as (seconds, cumulative fraction) points, ascending. When
// max_points > 0 the series is downsampled evenly to that many points.
std::vector<std::pair<double, double>> cdf_points(
    const std::vector<Duration>& latencies, size_t max_points = 0);

// Renders a fixed-width table of CDF rows: "<seconds>\t<fraction>".
std::string format_cdf(const std::vector<Duration>& latencies,
                       size_t max_points = 20);

}  // namespace gremlin::workload
