// Latency statistics helpers used by benches and examples: summaries,
// percentiles, and CDF series matching the paper's figures.
//
// Two flavours: the batch helpers (summarize/percentile) sort a full copy
// of the sample — exact, but O(n) memory, unusable for the 10⁶-request
// mega-topology campaigns. StreamingQuantile/StreamingSummary keep O(1)
// state per statistic (the P² algorithm, Jain & Chlamtac 1985) with
// percentile error pinned by streaming_stats_test.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/duration.h"

namespace gremlin::workload {

struct Summary {
  size_t count = 0;
  Duration min{};
  Duration max{};
  Duration mean{};
  Duration p50{};
  Duration p90{};
  Duration p99{};
};

Summary summarize(std::vector<Duration> latencies);

// One P² marker set: estimates a single percentile of an unbounded stream
// in constant space (five marker heights + positions). Exact while the
// stream holds ≤ 5 observations; piecewise-parabolic interpolation after.
class StreamingQuantile {
 public:
  // `pct` in (0, 100), e.g. 99 for P99.
  explicit StreamingQuantile(double pct);

  void add(double value);
  void add(Duration d) { add(static_cast<double>(d.count())); }

  double estimate() const;
  Duration estimate_duration() const {
    return Duration(static_cast<int64_t>(estimate()));
  }
  size_t count() const { return n_; }

 private:
  double p_;                       // target quantile in (0, 1)
  size_t n_ = 0;                   // observations absorbed
  std::array<double, 5> q_{};      // marker heights
  std::array<double, 5> pos_{};    // actual marker positions (1-based)
  std::array<double, 5> want_{};   // desired marker positions
  std::array<double, 5> inc_{};    // desired-position increments
};

// Constant-space replacement for summarize(): count/min/max/mean exactly,
// p50/p90/p99 via P². A 10⁶-request campaign carries ~200 bytes of state
// instead of an 8 MB latency vector.
class StreamingSummary {
 public:
  void add(Duration d);
  size_t count() const { return count_; }
  Summary summary() const;

 private:
  size_t count_ = 0;
  int64_t total_ = 0;
  Duration min_{};
  Duration max_{};
  StreamingQuantile p50_{50};
  StreamingQuantile p90_{90};
  StreamingQuantile p99_{99};
};

// Percentile in [0,100] by nearest-rank on a copy of the data.
Duration percentile(std::vector<Duration> latencies, double pct);

// Empirical CDF as (seconds, cumulative fraction) points, ascending. When
// max_points > 0 the series is downsampled evenly to that many points.
std::vector<std::pair<double, double>> cdf_points(
    const std::vector<Duration>& latencies, size_t max_points = 0);

// Renders a fixed-width table of CDF rows: "<seconds>\t<fraction>".
std::string format_cdf(const std::vector<Duration>& latencies,
                       size_t max_points = 20);

}  // namespace gremlin::workload
