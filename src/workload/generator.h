// Load generators for driving simulated applications.
//
// The paper assumes standard load-generation tools inject test requests
// tagged with "test-*" IDs (Section 6). These helpers provide open-loop
// (fixed or Poisson inter-arrival) and closed-loop injection, recording
// per-request latency and final status.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/duration.h"
#include "sim/simulation.h"

namespace gremlin::workload {

struct TrafficSpec {
  size_t count = 100;
  Duration gap = msec(10);       // mean inter-arrival time
  bool poisson = false;          // exponential inter-arrivals with mean gap
  std::string id_prefix = "test-";
  std::string uri = "/";
  std::string client = "user";
};

struct TrafficResult {
  std::vector<Duration> latencies;  // indexed by request number
  std::vector<int> statuses;        // 0 = connection failure / timeout
  size_t failures = 0;

  std::vector<Duration> successful_latencies() const;
};

// Schedules the injections on `sim` (does not run the simulation). The
// returned result is populated as the simulation executes; read it after
// sim->run().
std::shared_ptr<TrafficResult> schedule_traffic(sim::Simulation* sim,
                                                const std::string& target,
                                                const TrafficSpec& spec);

// Convenience: schedule + run to quiescence.
TrafficResult run_traffic(sim::Simulation* sim, const std::string& target,
                          const TrafficSpec& spec);

}  // namespace gremlin::workload
