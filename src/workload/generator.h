// Load generators for driving simulated applications.
//
// The paper assumes standard load-generation tools inject test requests
// tagged with "test-*" IDs (Section 6). These helpers provide open-loop
// (fixed or Poisson inter-arrival) and closed-loop injection, recording
// per-request latency and final status.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/duration.h"
#include "sim/simulation.h"

namespace gremlin::workload {

struct TrafficSpec {
  size_t count = 100;
  Duration gap = msec(10);       // mean inter-arrival time
  bool poisson = false;          // exponential inter-arrivals with mean gap
  std::string id_prefix = "test-";
  std::string uri = "/";
  std::string client = "user";

  // --- open-loop arrival shaping (heavy-traffic workload models) ---
  // The rate curve modulates the nominal gap per arrival index; all three
  // shapes are deterministic in the spec, so prescheduled and chained
  // injection produce the same arrival times (modulo poisson draws).
  enum class Shape {
    kConstant,  // every gap equals `gap` (the historical behaviour)
    kRamp,      // gap interpolates linearly from `gap` to `ramp_to`
    kDiurnal,   // rate swings sinusoidally around 1/gap
  };
  Shape shape = Shape::kConstant;
  Duration ramp_to{};             // kRamp final gap; zero → stays at `gap`
  double diurnal_amplitude = 0.5;  // kDiurnal rate swing, clamped to [0,.95]
  Duration diurnal_period = sec(1);  // kDiurnal period on the virtual clock

  // Chained self-rescheduling: each arrival schedules only the next one, so
  // the queue holds O(1) pending arrivals instead of `count` — the shape the
  // timer wheel absorbs at mega scale (docs/PERFORMANCE.md). Off by
  // default: prescheduling all arrivals upfront is the historical event
  // order, and pinned campaign fingerprints depend on it.
  bool chained = false;
};

struct TrafficResult {
  std::vector<Duration> latencies;  // indexed by request number
  std::vector<int> statuses;        // 0 = connection failure / timeout
  size_t failures = 0;

  std::vector<Duration> successful_latencies() const;
};

// Schedules the injections on `sim` (does not run the simulation). The
// returned result is populated as the simulation executes; read it after
// sim->run().
std::shared_ptr<TrafficResult> schedule_traffic(sim::Simulation* sim,
                                                const std::string& target,
                                                const TrafficSpec& spec);

// Convenience: schedule + run to quiescence.
TrafficResult run_traffic(sim::Simulation* sim, const std::string& target,
                          const TrafficSpec& spec);

}  // namespace gremlin::workload
