#include "workload/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace gremlin::workload {

Summary summarize(std::vector<Duration> latencies) {
  Summary s;
  if (latencies.empty()) return s;
  std::sort(latencies.begin(), latencies.end());
  s.count = latencies.size();
  s.min = latencies.front();
  s.max = latencies.back();
  const int64_t total = std::accumulate(
      latencies.begin(), latencies.end(), int64_t{0},
      [](int64_t acc, Duration d) { return acc + d.count(); });
  s.mean = Duration(total / static_cast<int64_t>(latencies.size()));
  auto at_pct = [&latencies](double pct) {
    const size_t n = latencies.size();
    size_t rank = static_cast<size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    if (rank > n) rank = n;
    return latencies[rank - 1];
  };
  s.p50 = at_pct(50);
  s.p90 = at_pct(90);
  s.p99 = at_pct(99);
  return s;
}

Duration percentile(std::vector<Duration> latencies, double pct) {
  if (latencies.empty()) return kDurationZero;
  std::sort(latencies.begin(), latencies.end());
  const size_t n = latencies.size();
  size_t rank =
      static_cast<size_t>(std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return latencies[rank - 1];
}

std::vector<std::pair<double, double>> cdf_points(
    const std::vector<Duration>& latencies, size_t max_points) {
  std::vector<std::pair<double, double>> out;
  if (latencies.empty()) return out;
  std::vector<Duration> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  out.reserve(max_points > 0 ? max_points : n);
  if (max_points == 0 || max_points >= n) {
    for (size_t i = 0; i < n; ++i) {
      out.emplace_back(to_seconds(sorted[i]),
                       static_cast<double>(i + 1) / static_cast<double>(n));
    }
    return out;
  }
  for (size_t k = 1; k <= max_points; ++k) {
    const size_t idx =
        (k * n) / max_points == 0 ? 0 : (k * n) / max_points - 1;
    out.emplace_back(to_seconds(sorted[idx]),
                     static_cast<double>(idx + 1) / static_cast<double>(n));
  }
  return out;
}

std::string format_cdf(const std::vector<Duration>& latencies,
                       size_t max_points) {
  std::string out = "latency_s\tcdf\n";
  char buf[64];
  for (const auto& [secs, frac] : cdf_points(latencies, max_points)) {
    std::snprintf(buf, sizeof(buf), "%.4f\t%.3f\n", secs, frac);
    out += buf;
  }
  return out;
}

}  // namespace gremlin::workload
