#include "workload/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace gremlin::workload {

Summary summarize(std::vector<Duration> latencies) {
  Summary s;
  if (latencies.empty()) return s;
  std::sort(latencies.begin(), latencies.end());
  s.count = latencies.size();
  s.min = latencies.front();
  s.max = latencies.back();
  const int64_t total = std::accumulate(
      latencies.begin(), latencies.end(), int64_t{0},
      [](int64_t acc, Duration d) { return acc + d.count(); });
  s.mean = Duration(total / static_cast<int64_t>(latencies.size()));
  auto at_pct = [&latencies](double pct) {
    const size_t n = latencies.size();
    size_t rank = static_cast<size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    if (rank > n) rank = n;
    return latencies[rank - 1];
  };
  s.p50 = at_pct(50);
  s.p90 = at_pct(90);
  s.p99 = at_pct(99);
  return s;
}

StreamingQuantile::StreamingQuantile(double pct) : p_(pct / 100.0) {
  if (p_ < 0.0) p_ = 0.0;
  if (p_ > 1.0) p_ = 1.0;
  // Desired positions of the five markers after n observations are
  // 1 + (n-1) * inc_[i]: min, p/2, p, (1+p)/2, max.
  inc_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
  want_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
}

void StreamingQuantile::add(double x) {
  if (n_ < 5) {
    q_[n_++] = x;
    if (n_ == 5) {
      std::sort(q_.begin(), q_.end());
      pos_ = {1, 2, 3, 4, 5};
    }
    return;
  }

  // Locate the cell containing x, stretching the extreme markers.
  size_t k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  ++n_;
  for (size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (size_t i = 0; i < 5; ++i) want_[i] += inc_[i];

  // Nudge the three interior markers toward their desired positions with
  // piecewise-parabolic (P²) interpolation, falling back to linear when the
  // parabola would break marker monotonicity.
  for (size_t i = 1; i <= 3; ++i) {
    const double d = want_[i] - pos_[i];
    const double right = pos_[i + 1] - pos_[i];
    const double left = pos_[i - 1] - pos_[i];
    if ((d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double parabolic =
          q_[i] + s / (pos_[i + 1] - pos_[i - 1]) *
                      ((pos_[i] - pos_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                           right +
                       (pos_[i + 1] - pos_[i] - s) * (q_[i] - q_[i - 1]) /
                           -left);
      if (q_[i - 1] < parabolic && parabolic < q_[i + 1]) {
        q_[i] = parabolic;
      } else {
        const size_t j = s > 0 ? i + 1 : i - 1;
        q_[i] += s * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double StreamingQuantile::estimate() const {
  if (n_ == 0) return 0.0;
  if (n_ >= 5) return q_[2];
  // Small stream: exact nearest-rank on the buffered prefix.
  std::array<double, 5> sorted = q_;
  std::sort(sorted.begin(), sorted.begin() + n_);
  size_t rank = static_cast<size_t>(
      std::ceil(p_ * static_cast<double>(n_)));
  if (rank == 0) rank = 1;
  if (rank > n_) rank = n_;
  return sorted[rank - 1];
}

void StreamingSummary::add(Duration d) {
  if (count_ == 0 || d < min_) min_ = d;
  if (count_ == 0 || d > max_) max_ = d;
  ++count_;
  total_ += d.count();
  p50_.add(d);
  p90_.add(d);
  p99_.add(d);
}

Summary StreamingSummary::summary() const {
  Summary s;
  if (count_ == 0) return s;
  s.count = count_;
  s.min = min_;
  s.max = max_;
  s.mean = Duration(total_ / static_cast<int64_t>(count_));
  s.p50 = p50_.estimate_duration();
  s.p90 = p90_.estimate_duration();
  s.p99 = p99_.estimate_duration();
  return s;
}

Duration percentile(std::vector<Duration> latencies, double pct) {
  if (latencies.empty()) return kDurationZero;
  std::sort(latencies.begin(), latencies.end());
  const size_t n = latencies.size();
  size_t rank =
      static_cast<size_t>(std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return latencies[rank - 1];
}

std::vector<std::pair<double, double>> cdf_points(
    const std::vector<Duration>& latencies, size_t max_points) {
  std::vector<std::pair<double, double>> out;
  if (latencies.empty()) return out;
  std::vector<Duration> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  out.reserve(max_points > 0 ? max_points : n);
  if (max_points == 0 || max_points >= n) {
    for (size_t i = 0; i < n; ++i) {
      out.emplace_back(to_seconds(sorted[i]),
                       static_cast<double>(i + 1) / static_cast<double>(n));
    }
    return out;
  }
  for (size_t k = 1; k <= max_points; ++k) {
    const size_t idx =
        (k * n) / max_points == 0 ? 0 : (k * n) / max_points - 1;
    out.emplace_back(to_seconds(sorted[idx]),
                     static_cast<double>(idx + 1) / static_cast<double>(n));
  }
  return out;
}

std::string format_cdf(const std::vector<Duration>& latencies,
                       size_t max_points) {
  std::string out = "latency_s\tcdf\n";
  char buf[64];
  for (const auto& [secs, frac] : cdf_points(latencies, max_points)) {
    std::snprintf(buf, sizeof(buf), "%.4f\t%.3f\n", secs, frac);
    out += buf;
  }
  return out;
}

}  // namespace gremlin::workload
