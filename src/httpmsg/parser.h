// Incremental HTTP/1.1 parser for requests and responses.
//
// Feed bytes as they arrive; `feed` reports how many bytes it consumed and
// whether a full message is available. Supports Content-Length bodies,
// chunked transfer-coding, and (for responses) read-until-close. Designed
// for the proxy's streaming path — no copy of already-parsed data is kept.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/result.h"
#include "httpmsg/message.h"

namespace gremlin::httpmsg {

class Parser {
 public:
  enum class Kind { kRequest, kResponse };
  enum class State {
    kStartLine,
    kHeaders,
    kBody,          // Content-Length counted
    kChunkSize,
    kChunkData,
    kChunkTrailer,
    kUntilClose,    // response without a length: body ends at EOF
    kComplete,
    kError,
  };

  explicit Parser(Kind kind) : kind_(kind) {}

  // Consumes as much of `data` as possible. Returns the number of bytes
  // consumed, or an Error on malformed input. Call `complete()` after each
  // feed; surplus bytes (pipelined messages) are left unconsumed.
  Result<size_t> feed(std::string_view data);

  // For kUntilClose responses: the peer closed the connection; finalize.
  void finish_eof();

  bool complete() const { return state_ == State::kComplete; }
  State state() const { return state_; }

  const Request& request() const { return request_; }
  const Response& response() const { return response_; }
  Request& mutable_request() { return request_; }
  Response& mutable_response() { return response_; }

  // Prepares for the next message on the same connection.
  void reset();

 private:
  Result<size_t> consume_line(std::string_view data, std::string* line,
                              bool* ready);
  VoidResult parse_start_line(const std::string& line);
  VoidResult parse_header_line(const std::string& line);
  void on_headers_done();

  Kind kind_;
  State state_ = State::kStartLine;
  std::string line_buffer_;
  Request request_;
  Response response_;
  size_t body_remaining_ = 0;
  std::string* body_ = nullptr;  // points into request_/response_
};

}  // namespace gremlin::httpmsg
