// Headers: HTTP header collection with case-insensitive names and preserved
// insertion order.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gremlin::httpmsg {

class Headers {
 public:
  // Sets (replacing any existing value of) `name`.
  void set(std::string_view name, std::string_view value);

  // Appends without replacing (for repeated headers).
  void add(std::string_view name, std::string_view value);

  // First value of `name`, if present.
  std::optional<std::string> get(std::string_view name) const;

  // Value or a fallback.
  std::string get_or(std::string_view name, std::string_view fallback) const;

  bool has(std::string_view name) const;

  // Removes every occurrence; returns how many were removed.
  int remove(std::string_view name);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  // Parsed Content-Length, if present and numeric.
  std::optional<size_t> content_length() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace gremlin::httpmsg
