// HTTP/1.1 request and response models plus serializers.
//
// The real Gremlin agent proxies HTTP between microservices; these types are
// the wire-level counterparts of the simulator's SimRequest/SimResponse.
// The request-ID header used for flow tracing is X-Gremlin-ID.
#pragma once

#include <string>

#include "httpmsg/headers.h"

namespace gremlin::httpmsg {

// Header carrying the globally unique per-user-request ID that scopes fault
// injection to test traffic (Section 4.1).
inline constexpr const char* kRequestIdHeader = "X-Gremlin-ID";

struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  std::string request_id() const {
    return headers.get_or(kRequestIdHeader, "");
  }
};

struct Response {
  std::string version = "HTTP/1.1";
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;
};

// Canonical reason phrase for a status code ("Service Unavailable", ...).
std::string reason_phrase(int status);

// Serializes with a correct Content-Length (overwriting any present).
std::string serialize(const Request& request);
std::string serialize(const Response& response);

// Convenience factory.
Response make_response(int status, std::string body = "");

}  // namespace gremlin::httpmsg
