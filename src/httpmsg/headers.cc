#include "httpmsg/headers.h"

#include <charconv>

#include "common/strings.h"

namespace gremlin::httpmsg {

void Headers::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

void Headers::add(std::string_view name, std::string_view value) {
  entries_.emplace_back(std::string(name), std::string(value));
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [k, v] : entries_) {
    if (iequals(k, name)) return v;
  }
  return std::nullopt;
}

std::string Headers::get_or(std::string_view name,
                            std::string_view fallback) const {
  auto v = get(name);
  return v ? *v : std::string(fallback);
}

bool Headers::has(std::string_view name) const {
  return get(name).has_value();
}

int Headers::remove(std::string_view name) {
  int removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (iequals(it->first, name)) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::optional<size_t> Headers::content_length() const {
  const auto v = get("Content-Length");
  if (!v) return std::nullopt;
  size_t out = 0;
  const auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc() || p != v->data() + v->size()) return std::nullopt;
  return out;
}

}  // namespace gremlin::httpmsg
