#include "httpmsg/parser.h"

#include <charconv>

#include "common/strings.h"

namespace gremlin::httpmsg {
namespace {

constexpr size_t kMaxLineLength = 64 * 1024;

}  // namespace

// Accumulates into line_buffer_ until "\n"; strips the trailing "\r".
// Sets *ready when a full line is available in *line.
Result<size_t> Parser::consume_line(std::string_view data, std::string* line,
                                    bool* ready) {
  *ready = false;
  const size_t nl = data.find('\n');
  if (nl == std::string_view::npos) {
    if (line_buffer_.size() + data.size() > kMaxLineLength) {
      state_ = State::kError;
      return Error::parse("header line too long");
    }
    line_buffer_.append(data);
    return data.size();
  }
  line_buffer_.append(data.substr(0, nl));
  if (!line_buffer_.empty() && line_buffer_.back() == '\r') {
    line_buffer_.pop_back();
  }
  *line = std::move(line_buffer_);
  line_buffer_.clear();
  *ready = true;
  return nl + 1;
}

VoidResult Parser::parse_start_line(const std::string& line) {
  const auto parts = split(line, ' ');
  if (kind_ == Kind::kRequest) {
    if (parts.size() != 3) {
      return Error::parse("malformed request line: '" + line + "'");
    }
    request_.method = parts[0];
    request_.target = parts[1];
    request_.version = parts[2];
    if (!starts_with(request_.version, "HTTP/")) {
      return Error::parse("bad HTTP version: '" + request_.version + "'");
    }
  } else {
    if (parts.size() < 2 || !starts_with(parts[0], "HTTP/")) {
      return Error::parse("malformed status line: '" + line + "'");
    }
    response_.version = parts[0];
    int status = 0;
    const auto [p, ec] = std::from_chars(
        parts[1].data(), parts[1].data() + parts[1].size(), status);
    if (ec != std::errc() || p != parts[1].data() + parts[1].size() ||
        status < 100 || status > 599) {
      return Error::parse("bad status code: '" + parts[1] + "'");
    }
    response_.status = status;
    std::string reason;
    for (size_t i = 2; i < parts.size(); ++i) {
      if (i > 2) reason += ' ';
      reason += parts[i];
    }
    response_.reason = reason;
  }
  return VoidResult::success();
}

VoidResult Parser::parse_header_line(const std::string& line) {
  const size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    return Error::parse("malformed header line: '" + line + "'");
  }
  const std::string_view name = trim(std::string_view(line).substr(0, colon));
  const std::string_view value =
      trim(std::string_view(line).substr(colon + 1));
  if (name.empty()) return Error::parse("empty header name");
  Headers& headers =
      kind_ == Kind::kRequest ? request_.headers : response_.headers;
  headers.add(name, value);
  return VoidResult::success();
}

void Parser::on_headers_done() {
  Headers& headers =
      kind_ == Kind::kRequest ? request_.headers : response_.headers;
  body_ = kind_ == Kind::kRequest ? &request_.body : &response_.body;
  body_->clear();

  const std::string te = to_lower(headers.get_or("Transfer-Encoding", ""));
  if (te.find("chunked") != std::string::npos) {
    state_ = State::kChunkSize;
    return;
  }
  const auto length = headers.content_length();
  if (length.has_value()) {
    body_remaining_ = *length;
    state_ = body_remaining_ == 0 ? State::kComplete : State::kBody;
    return;
  }
  if (kind_ == Kind::kRequest) {
    // A request without a length has no body.
    state_ = State::kComplete;
  } else {
    // A response without a length: body runs until the peer closes.
    state_ = State::kUntilClose;
  }
}

Result<size_t> Parser::feed(std::string_view data) {
  size_t consumed = 0;
  while (consumed < data.size() && state_ != State::kComplete &&
         state_ != State::kError) {
    const std::string_view rest = data.substr(consumed);
    switch (state_) {
      case State::kStartLine: {
        std::string line;
        bool ready = false;
        auto n = consume_line(rest, &line, &ready);
        if (!n.ok()) return n;
        consumed += n.value();
        if (ready) {
          if (line.empty()) break;  // tolerate leading CRLF (RFC 7230 §3.5)
          auto ok = parse_start_line(line);
          if (!ok.ok()) {
            state_ = State::kError;
            return ok.error();
          }
          state_ = State::kHeaders;
        }
        break;
      }
      case State::kHeaders: {
        std::string line;
        bool ready = false;
        auto n = consume_line(rest, &line, &ready);
        if (!n.ok()) return n;
        consumed += n.value();
        if (!ready) break;
        if (line.empty()) {
          on_headers_done();
        } else {
          auto ok = parse_header_line(line);
          if (!ok.ok()) {
            state_ = State::kError;
            return ok.error();
          }
        }
        break;
      }
      case State::kBody: {
        const size_t take = std::min(body_remaining_, rest.size());
        body_->append(rest.substr(0, take));
        body_remaining_ -= take;
        consumed += take;
        if (body_remaining_ == 0) state_ = State::kComplete;
        break;
      }
      case State::kChunkSize: {
        std::string line;
        bool ready = false;
        auto n = consume_line(rest, &line, &ready);
        if (!n.ok()) return n;
        consumed += n.value();
        if (!ready) break;
        if (line.empty()) break;  // CRLF separating chunks
        size_t size = 0;
        const size_t semi = line.find(';');  // ignore chunk extensions
        const std::string hex = line.substr(0, semi);
        const auto [p, ec] =
            std::from_chars(hex.data(), hex.data() + hex.size(), size, 16);
        if (ec != std::errc() || p != hex.data() + hex.size()) {
          state_ = State::kError;
          return Error::parse("bad chunk size: '" + line + "'");
        }
        if (size == 0) {
          state_ = State::kChunkTrailer;
        } else {
          body_remaining_ = size;
          state_ = State::kChunkData;
        }
        break;
      }
      case State::kChunkData: {
        const size_t take = std::min(body_remaining_, rest.size());
        body_->append(rest.substr(0, take));
        body_remaining_ -= take;
        consumed += take;
        if (body_remaining_ == 0) state_ = State::kChunkSize;
        break;
      }
      case State::kChunkTrailer: {
        std::string line;
        bool ready = false;
        auto n = consume_line(rest, &line, &ready);
        if (!n.ok()) return n;
        consumed += n.value();
        if (!ready) break;
        if (line.empty()) state_ = State::kComplete;
        // Non-empty trailer lines are consumed and ignored.
        break;
      }
      case State::kUntilClose: {
        body_->append(rest);
        consumed += rest.size();
        break;
      }
      case State::kComplete:
      case State::kError:
        break;
    }
  }
  return consumed;
}

void Parser::finish_eof() {
  if (state_ == State::kUntilClose) state_ = State::kComplete;
}

void Parser::reset() {
  state_ = State::kStartLine;
  line_buffer_.clear();
  request_ = Request{};
  response_ = Response{};
  body_remaining_ = 0;
  body_ = nullptr;
}

}  // namespace gremlin::httpmsg
