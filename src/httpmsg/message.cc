#include "httpmsg/message.h"

#include "common/strings.h"

namespace gremlin::httpmsg {
namespace {

void serialize_headers(const Headers& headers, size_t body_size,
                       std::string* out) {
  bool wrote_length = false;
  for (const auto& [k, v] : headers.entries()) {
    if (iequals(k, "Content-Length")) {
      if (wrote_length) continue;
      out->append("Content-Length: ");
      out->append(std::to_string(body_size));
      out->append("\r\n");
      wrote_length = true;
      continue;
    }
    out->append(k);
    out->append(": ");
    out->append(v);
    out->append("\r\n");
  }
  if (!wrote_length) {
    out->append("Content-Length: ");
    out->append(std::to_string(body_size));
    out->append("\r\n");
  }
  out->append("\r\n");
}

}  // namespace

std::string reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string serialize(const Request& request) {
  std::string out;
  out.reserve(64 + request.body.size());
  out.append(request.method);
  out.push_back(' ');
  out.append(request.target);
  out.push_back(' ');
  out.append(request.version);
  out.append("\r\n");
  serialize_headers(request.headers, request.body.size(), &out);
  out.append(request.body);
  return out;
}

std::string serialize(const Response& response) {
  std::string out;
  out.reserve(64 + response.body.size());
  out.append(response.version);
  out.push_back(' ');
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(response.reason.empty() ? reason_phrase(response.status)
                                     : response.reason);
  out.append("\r\n");
  serialize_headers(response.headers, response.body.size(), &out);
  out.append(response.body);
  return out;
}

Response make_response(int status, std::string body) {
  Response r;
  r.status = status;
  r.reason = reason_phrase(status);
  r.body = std::move(body);
  return r;
}

}  // namespace gremlin::httpmsg
