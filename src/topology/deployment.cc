#include "topology/deployment.h"

namespace gremlin::topology {

void Deployment::add_instance(const std::string& service,
                              std::shared_ptr<AgentHandle> agent) {
  agents_[service].push_back(std::move(agent));
}

void Deployment::remove_service(const std::string& service) {
  agents_.erase(service);
}

const std::vector<std::shared_ptr<AgentHandle>>& Deployment::instances(
    const std::string& service) const {
  static const std::vector<std::shared_ptr<AgentHandle>> kEmpty;
  const auto it = agents_.find(service);
  return it == agents_.end() ? kEmpty : it->second;
}

std::vector<std::shared_ptr<AgentHandle>> Deployment::all_agents() const {
  std::vector<std::shared_ptr<AgentHandle>> out;
  for (const auto& [_, list] : agents_) {
    out.insert(out.end(), list.begin(), list.end());
  }
  return out;
}

std::vector<std::string> Deployment::services() const {
  std::vector<std::string> out;
  out.reserve(agents_.size());
  for (const auto& [name, _] : agents_) out.push_back(name);
  return out;
}

size_t Deployment::instance_count() const {
  size_t n = 0;
  for (const auto& [_, list] : agents_) n += list.size();
  return n;
}

bool Deployment::has_service(const std::string& service) const {
  return agents_.count(service) > 0;
}

}  // namespace gremlin::topology
