// Deployment: the physical view of an application (Section 4.2, Figure 3).
//
// A logical service may run as multiple instances, each with its own sidecar
// Gremlin agent. The Failure Orchestrator must locate *every* physical agent
// and install the fault rules on each, so that faults apply between every
// pair of instances. AgentHandle abstracts the agent's control interface —
// the simulator's sidecars implement it in-process, the real proxy over its
// REST control API.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "faults/rule.h"
#include "logstore/store.h"

namespace gremlin::topology {

// Control interface every Gremlin agent exposes (the SDN "switch" API).
class AgentHandle {
 public:
  virtual ~AgentHandle() = default;

  // Identifies the physical instance ("serviceA/0", "10.1.1.1", ...).
  virtual std::string instance_id() const = 0;

  virtual VoidResult install_rules(
      const std::vector<faults::FaultRule>& rules) = 0;

  // Installs a single rule. The orchestrator's per-experiment hot path: the
  // default wraps the rule in a one-element vector, in-process agents
  // override it to skip that temporary.
  virtual VoidResult install_rule(const faults::FaultRule& rule) {
    return install_rules({rule});
  }

  virtual VoidResult clear_rules() = 0;

  // Removes specific rules by ID (unknown IDs are ignored). Enables timed
  // scenarios — e.g. crash-recovery failures where a Crash heals after a
  // fixed downtime.
  virtual VoidResult remove_rules(const std::vector<std::string>& ids) = 0;

  // Drains the agent's observation log into the central store.
  virtual Result<logstore::RecordList> fetch_records() = 0;
  virtual VoidResult clear_records() = 0;

  // Fetch + clear in one step. In-process agents override this to move the
  // buffer out instead of copying it (the collector's hot path); the
  // default is the two-call sequence for remote agents.
  virtual Result<logstore::RecordList> drain_records() {
    auto records = fetch_records();
    if (!records.ok()) return records;
    auto cleared = clear_records();
    if (!cleared.ok()) return cleared.error();
    return records;
  }
};

class Deployment {
 public:
  Deployment() = default;

  // Registers a physical agent instance backing `service`.
  void add_instance(const std::string& service,
                    std::shared_ptr<AgentHandle> agent);

  // Unregisters every agent backing `service` (no-op if unknown). Used by
  // Simulation::reset to drop services created lazily during a run.
  void remove_service(const std::string& service);

  // All agent instances backing `service` (empty if unknown).
  const std::vector<std::shared_ptr<AgentHandle>>& instances(
      const std::string& service) const;

  // Every agent in the deployment, in deterministic (service, insertion)
  // order.
  std::vector<std::shared_ptr<AgentHandle>> all_agents() const;

  std::vector<std::string> services() const;
  size_t instance_count() const;
  bool has_service(const std::string& service) const;

 private:
  std::map<std::string, std::vector<std::shared_ptr<AgentHandle>>> agents_;
};

}  // namespace gremlin::topology
