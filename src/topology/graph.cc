#include "topology/graph.h"

#include <algorithm>
#include <functional>

#include "common/rng.h"

namespace gremlin::topology {

void AppGraph::add_service(const std::string& name) {
  adjacency_[name];
  reverse_[name];
}

void AppGraph::add_edge(const std::string& src, const std::string& dst) {
  add_service(src);
  add_service(dst);
  adjacency_[src].insert(dst);
  reverse_[dst].insert(src);
}

bool AppGraph::has_service(const std::string& name) const {
  return adjacency_.count(name) > 0;
}

bool AppGraph::has_edge(const std::string& src, const std::string& dst) const {
  const auto it = adjacency_.find(src);
  return it != adjacency_.end() && it->second.count(dst) > 0;
}

std::vector<std::string> AppGraph::dependents(
    const std::string& service) const {
  const auto it = reverse_.find(service);
  if (it == reverse_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> AppGraph::dependencies(
    const std::string& service) const {
  const auto it = adjacency_.find(service);
  if (it == adjacency_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> AppGraph::services() const {
  std::vector<std::string> out;
  out.reserve(adjacency_.size());
  for (const auto& [name, _] : adjacency_) out.push_back(name);
  return out;
}

std::vector<Edge> AppGraph::edges() const {
  std::vector<Edge> out;
  for (const auto& [src, callees] : adjacency_) {
    for (const auto& dst : callees) out.push_back({src, dst});
  }
  return out;
}

size_t AppGraph::edge_count() const {
  size_t n = 0;
  for (const auto& [_, callees] : adjacency_) n += callees.size();
  return n;
}

std::vector<Edge> AppGraph::cut(const std::set<std::string>& group) const {
  std::vector<Edge> out;
  for (const auto& [src, callees] : adjacency_) {
    const bool src_in = group.count(src) > 0;
    for (const auto& dst : callees) {
      const bool dst_in = group.count(dst) > 0;
      if (src_in != dst_in) out.push_back({src, dst});
    }
  }
  return out;
}

std::vector<std::string> AppGraph::entry_points() const {
  std::vector<std::string> out;
  for (const auto& [name, callers] : reverse_) {
    if (callers.empty()) out.push_back(name);
  }
  return out;
}

VoidResult AppGraph::validate_acyclic() const {
  enum class Mark { kUnvisited, kInProgress, kDone };
  std::map<std::string, Mark> marks;
  for (const auto& [name, _] : adjacency_) marks[name] = Mark::kUnvisited;

  std::function<bool(const std::string&)> has_cycle =
      [&](const std::string& node) -> bool {
    Mark& m = marks[node];
    if (m == Mark::kInProgress) return true;
    if (m == Mark::kDone) return false;
    m = Mark::kInProgress;
    const auto it = adjacency_.find(node);
    if (it != adjacency_.end()) {
      for (const auto& next : it->second) {
        if (has_cycle(next)) return true;
      }
    }
    m = Mark::kDone;
    return false;
  };

  for (const auto& [name, _] : adjacency_) {
    if (has_cycle(name)) {
      return Error::failed_precondition("application graph contains a cycle "
                                        "through '" + name + "'");
    }
  }
  return VoidResult::success();
}

AppGraph AppGraph::binary_tree(int depth) {
  AppGraph g;
  if (depth <= 0) return g;
  const int total = (1 << depth) - 1;
  g.add_service("svc0");
  for (int i = 0; i < total; ++i) {
    const int left = 2 * i + 1;
    const int right = 2 * i + 2;
    if (left < total) {
      g.add_edge("svc" + std::to_string(i), "svc" + std::to_string(left));
    }
    if (right < total) {
      g.add_edge("svc" + std::to_string(i), "svc" + std::to_string(right));
    }
  }
  return g;
}

AppGraph AppGraph::chain(int length) {
  AppGraph g;
  if (length <= 0) return g;
  g.add_service("s0");
  for (int i = 0; i + 1 < length; ++i) {
    g.add_edge("s" + std::to_string(i), "s" + std::to_string(i + 1));
  }
  return g;
}

uint64_t AppGraph::fingerprint() const {
  // adjacency_ is an ordered map with ordered callee sets, so iteration is
  // canonical regardless of insertion order; FNV-1a over a structured
  // rendering of (service, callees...) keeps the digest order-independent.
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;  // separator so ("ab","c") != ("a","bc")
    h *= 0x100000001b3ull;
  };
  for (const auto& [src, callees] : adjacency_) {
    mix(src);
    for (const auto& dst : callees) mix(dst);
    h ^= 0xfe;  // end-of-adjacency-row marker
    h *= 0x100000001b3ull;
  }
  return h;
}

AppGraph AppGraph::tiered(int tiers, int width, uint64_t seed, int fan_out) {
  AppGraph g;
  if (tiers <= 0 || width <= 0) return g;
  const auto name = [](int tier, int w) {
    return "t" + std::to_string(tier) + "_w" + std::to_string(w);
  };
  Rng rng(seed);
  for (int w = 0; w < width; ++w) g.add_edge("gw", name(0, w));
  const int out = std::clamp(fan_out, 1, width);
  for (int tier = 0; tier + 1 < tiers; ++tier) {
    // `out` distinct callees in the next tier per caller. The anchor walks
    // the tier with the caller index (plus a seeded per-tier rotation so
    // the wiring varies with the seed), which guarantees every next-tier
    // service has at least one caller — no spurious entry points, no
    // orphaned terminal services.
    const int offset = static_cast<int>(
        rng.next_below(static_cast<uint64_t>(width)));
    for (int w = 0; w < width; ++w) {
      const int base = (w + offset) % width;
      for (int k = 0; k < out; ++k) {
        g.add_edge(name(tier, w), name(tier + 1, (base + k) % width));
      }
    }
  }
  return g;
}

AppGraph AppGraph::random_dag(int services, int avg_degree, uint64_t seed) {
  AppGraph g;
  if (services <= 0) return g;
  const auto name = [](int i) { return "n" + std::to_string(i); };
  g.add_service(name(0));
  Rng rng(seed);
  const int degree = std::max(1, avg_degree);
  for (int i = 1; i < services; ++i) {
    // Connectivity: every node has at least one caller among its
    // predecessors (edges always point from lower to higher index, so the
    // graph is acyclic by construction).
    const int caller = static_cast<int>(
        rng.next_below(static_cast<uint64_t>(i)));
    g.add_edge(name(caller), name(i));
    // Extra seeded edges for density: expected (degree - 1) additional
    // callers per node, drawn uniformly from the predecessors.
    const int extra = static_cast<int>(
        rng.next_below(static_cast<uint64_t>(2 * degree - 1)));
    for (int k = 0; k < extra && k < i; ++k) {
      const int src = static_cast<int>(
          rng.next_below(static_cast<uint64_t>(i)));
      g.add_edge(name(src), name(i));  // idempotent on duplicates
    }
  }
  return g;
}

}  // namespace gremlin::topology
