#include "topology/graph.h"

#include <functional>

namespace gremlin::topology {

void AppGraph::add_service(const std::string& name) {
  adjacency_[name];
  reverse_[name];
}

void AppGraph::add_edge(const std::string& src, const std::string& dst) {
  add_service(src);
  add_service(dst);
  adjacency_[src].insert(dst);
  reverse_[dst].insert(src);
}

bool AppGraph::has_service(const std::string& name) const {
  return adjacency_.count(name) > 0;
}

bool AppGraph::has_edge(const std::string& src, const std::string& dst) const {
  const auto it = adjacency_.find(src);
  return it != adjacency_.end() && it->second.count(dst) > 0;
}

std::vector<std::string> AppGraph::dependents(
    const std::string& service) const {
  const auto it = reverse_.find(service);
  if (it == reverse_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> AppGraph::dependencies(
    const std::string& service) const {
  const auto it = adjacency_.find(service);
  if (it == adjacency_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> AppGraph::services() const {
  std::vector<std::string> out;
  out.reserve(adjacency_.size());
  for (const auto& [name, _] : adjacency_) out.push_back(name);
  return out;
}

std::vector<Edge> AppGraph::edges() const {
  std::vector<Edge> out;
  for (const auto& [src, callees] : adjacency_) {
    for (const auto& dst : callees) out.push_back({src, dst});
  }
  return out;
}

size_t AppGraph::edge_count() const {
  size_t n = 0;
  for (const auto& [_, callees] : adjacency_) n += callees.size();
  return n;
}

std::vector<Edge> AppGraph::cut(const std::set<std::string>& group) const {
  std::vector<Edge> out;
  for (const auto& [src, callees] : adjacency_) {
    const bool src_in = group.count(src) > 0;
    for (const auto& dst : callees) {
      const bool dst_in = group.count(dst) > 0;
      if (src_in != dst_in) out.push_back({src, dst});
    }
  }
  return out;
}

std::vector<std::string> AppGraph::entry_points() const {
  std::vector<std::string> out;
  for (const auto& [name, callers] : reverse_) {
    if (callers.empty()) out.push_back(name);
  }
  return out;
}

VoidResult AppGraph::validate_acyclic() const {
  enum class Mark { kUnvisited, kInProgress, kDone };
  std::map<std::string, Mark> marks;
  for (const auto& [name, _] : adjacency_) marks[name] = Mark::kUnvisited;

  std::function<bool(const std::string&)> has_cycle =
      [&](const std::string& node) -> bool {
    Mark& m = marks[node];
    if (m == Mark::kInProgress) return true;
    if (m == Mark::kDone) return false;
    m = Mark::kInProgress;
    const auto it = adjacency_.find(node);
    if (it != adjacency_.end()) {
      for (const auto& next : it->second) {
        if (has_cycle(next)) return true;
      }
    }
    m = Mark::kDone;
    return false;
  };

  for (const auto& [name, _] : adjacency_) {
    if (has_cycle(name)) {
      return Error::failed_precondition("application graph contains a cycle "
                                        "through '" + name + "'");
    }
  }
  return VoidResult::success();
}

AppGraph AppGraph::binary_tree(int depth) {
  AppGraph g;
  if (depth <= 0) return g;
  const int total = (1 << depth) - 1;
  g.add_service("svc0");
  for (int i = 0; i < total; ++i) {
    const int left = 2 * i + 1;
    const int right = 2 * i + 2;
    if (left < total) {
      g.add_edge("svc" + std::to_string(i), "svc" + std::to_string(left));
    }
    if (right < total) {
      g.add_edge("svc" + std::to_string(i), "svc" + std::to_string(right));
    }
  }
  return g;
}

AppGraph AppGraph::chain(int length) {
  AppGraph g;
  if (length <= 0) return g;
  g.add_service("s0");
  for (int i = 0; i + 1 < length; ++i) {
    g.add_edge("s" + std::to_string(i), "s" + std::to_string(i + 1));
  }
  return g;
}

}  // namespace gremlin::topology
