// AppGraph: the logical application graph (Section 4.2).
//
// A directed graph of microservices where an edge A → B means "A makes API
// calls to B". The operator supplies this graph alongside a recipe; the
// Recipe Translator uses it to expand high-level failures: Crash(B) aborts
// requests from every dependent of B, a Partition aborts every edge crossing
// a cut, etc.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace gremlin::topology {

struct Edge {
  std::string src;  // caller
  std::string dst;  // callee
  bool operator<(const Edge& other) const {
    return std::tie(src, dst) < std::tie(other.src, other.dst);
  }
  bool operator==(const Edge& other) const {
    return src == other.src && dst == other.dst;
  }
};

class AppGraph {
 public:
  AppGraph() = default;

  // Declares a service with no edges (edges also auto-declare endpoints).
  void add_service(const std::string& name);

  // Declares "src calls dst". Idempotent.
  void add_edge(const std::string& src, const std::string& dst);

  bool has_service(const std::string& name) const;
  bool has_edge(const std::string& src, const std::string& dst) const;

  // Services with an edge into `service` (its callers). The paper's
  // `dependents()` helper (Section 5).
  std::vector<std::string> dependents(const std::string& service) const;

  // Services `service` calls (its callees).
  std::vector<std::string> dependencies(const std::string& service) const;

  // All services, sorted.
  std::vector<std::string> services() const;

  // All edges, sorted.
  std::vector<Edge> edges() const;

  size_t service_count() const { return adjacency_.size(); }
  size_t edge_count() const;

  // Edges crossing the cut between `group` and the rest of the graph, in
  // both directions — the set a NetworkPartition recipe must sever.
  std::vector<Edge> cut(const std::set<std::string>& group) const;

  // Services with no callers (user-facing entry points).
  std::vector<std::string> entry_points() const;

  // Fails if the call graph contains a cycle (request-response apps should
  // be acyclic; a cycle usually indicates a miswritten graph).
  VoidResult validate_acyclic() const;

  // Order-independent structural fingerprint over the sorted service and
  // edge sets: two graphs fingerprint equal iff they have the same services
  // and edges. Used by the seeded generators' determinism tests and by
  // AppSpec identity at mega scale.
  uint64_t fingerprint() const;

  // Builders for common shapes used by the evaluation.
  // Complete binary tree with `depth` levels (depth=1 → 1 service,
  // 5 → 31 services), names "svc0".."svcN", svc0 is the root/entry.
  static AppGraph binary_tree(int depth);
  // Linear chain: s0 → s1 → ... → s(n-1).
  static AppGraph chain(int length);

  // --- seeded mega-topology generators (100–1000 services) ---
  // All three are deterministic in their arguments: the same (shape, seed)
  // always yields the same graph (pinned by fingerprint() in tests), and
  // every graph is acyclic by construction (edges only point to later
  // tiers / higher indices).

  // `tiers` layers of `width` services ("t<i>_w<j>") behind a single
  // gateway "gw" that calls every tier-0 service; each service calls
  // `fan_out` seeded-random services in the next tier (clamped to width).
  // Total services: tiers * width + 1; entry point: "gw".
  static AppGraph tiered(int tiers, int width, uint64_t seed,
                         int fan_out = 3);

  // Random DAG over `services` nodes ("n0".."nN-1"): every node except n0
  // calls-from at least one earlier node, with ~`avg_degree` outgoing edges
  // per node on average. Entry point: "n0".
  static AppGraph random_dag(int services, int avg_degree, uint64_t seed);

 private:
  // service -> callees; value set may be empty (leaf service).
  std::map<std::string, std::set<std::string>> adjacency_;
  // service -> callers (reverse adjacency).
  std::map<std::string, std::set<std::string>> reverse_;
};

}  // namespace gremlin::topology
