// Bulkhead: per-dependency concurrency isolation (Section 2.1).
//
// Models an independent thread/connection pool per downstream dependency: at
// most `max_concurrent` calls may be in flight; excess calls are rejected
// immediately (the caller typically serves a fallback). Rejection rather
// than queueing matches the failure mode the pattern exists to prevent —
// a slow dependency exhausting shared resources.
#pragma once

#include <cstdint>
#include <mutex>

namespace gremlin::resilience {

class Bulkhead {
 public:
  explicit Bulkhead(int max_concurrent = 0)
      : max_concurrent_(max_concurrent) {}

  // max_concurrent <= 0 means "unbounded" (pattern disabled).
  bool enabled() const { return max_concurrent_ > 0; }

  // Attempts to reserve a slot; returns false when saturated.
  bool try_acquire();
  void release();

  int in_flight() const;
  uint64_t rejected() const;

  // Restores the pristine post-construction state (the capacity is
  // configuration and survives; warm-world reuse).
  void reset() {
    std::lock_guard lock(mu_);
    in_flight_ = 0;
    rejected_ = 0;
  }

  // Snapshot support: the mutable fields, detached from the const capacity
  // and the mutex (a Bulkhead itself is not copyable).
  struct State {
    int in_flight = 0;
    uint64_t rejected = 0;
  };
  State capture() const {
    std::lock_guard lock(mu_);
    return State{in_flight_, rejected_};
  }
  void restore(const State& state) {
    std::lock_guard lock(mu_);
    in_flight_ = state.in_flight;
    rejected_ = state.rejected;
  }

 private:
  const int max_concurrent_;
  mutable std::mutex mu_;
  int in_flight_ = 0;
  uint64_t rejected_ = 0;
};

// RAII slot holder.
class BulkheadPermit {
 public:
  explicit BulkheadPermit(Bulkhead* bulkhead);
  ~BulkheadPermit();
  BulkheadPermit(const BulkheadPermit&) = delete;
  BulkheadPermit& operator=(const BulkheadPermit&) = delete;

  bool acquired() const { return acquired_; }

 private:
  Bulkhead* bulkhead_;
  bool acquired_;
};

}  // namespace gremlin::resilience
