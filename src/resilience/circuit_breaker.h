// CircuitBreaker: the closed / open / half-open state machine (Section 2.1).
//
// Closed: calls flow; `failure_threshold` consecutive failures trip the
// breaker. Open: calls are rejected until `open_interval` elapses, then the
// breaker transitions to half-open. Half-open: trial calls are admitted;
// `success_threshold` consecutive successes close the breaker, any failure
// re-opens it.
//
// Clock-agnostic: callers pass the current TimePoint (virtual time in the
// simulator, wall time in the real client), keeping the class deterministic
// and unit-testable.
#pragma once

#include "common/duration.h"

namespace gremlin::resilience {

struct CircuitBreakerConfig {
  int failure_threshold = 5;       // consecutive failures to trip
  Duration open_interval = sec(30);
  int success_threshold = 1;       // consecutive half-open successes to close
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {})
      : config_(config) {}

  // Returns true if a call may proceed at `now`. Transitions open→half-open
  // when the open interval has elapsed.
  bool allow_request(TimePoint now);

  void record_success(TimePoint now);
  void record_failure(TimePoint now);

  State state() const { return state_; }
  const CircuitBreakerConfig& config() const { return config_; }

  // Restores the pristine post-construction state (warm-world reuse: a
  // reset deployment must behave byte-identically to a fresh one).
  void reset() {
    state_ = State::kClosed;
    opened_at_ = TimePoint{};
    consecutive_failures_ = 0;
    half_open_successes_ = 0;
    times_opened_ = 0;
  }

  // Counters exposed for observability / tests.
  int consecutive_failures() const { return consecutive_failures_; }
  int half_open_successes() const { return half_open_successes_; }
  int times_opened() const { return times_opened_; }

 private:
  void trip(TimePoint now);

  CircuitBreakerConfig config_;
  State state_ = State::kClosed;
  TimePoint opened_at_{};
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int times_opened_ = 0;
};

const char* to_string(CircuitBreaker::State state);

}  // namespace gremlin::resilience
