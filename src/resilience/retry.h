// RetryPolicy: bounded retries with exponential backoff (Section 2.1).
//
// Pure schedule computation — the caller (simulator sidecar or real client)
// owns timers. attempt numbering: attempt 0 is the initial call; retries are
// attempts 1..max_retries.
#pragma once

#include <cstdint>

#include "common/duration.h"

namespace gremlin::resilience {

struct RetryPolicy {
  int max_retries = 0;             // 0 = no retries
  Duration base_backoff = msec(10);
  double multiplier = 2.0;         // exponential factor
  Duration max_backoff = sec(10);  // cap

  // Whether another attempt is allowed after `attempt` attempts have
  // completed (i.e. attempt index of the *next* try is `attempt`).
  bool should_retry(int completed_attempts) const {
    return completed_attempts <= max_retries;
  }

  // Backoff to wait before retry number `retry_index` (1-based).
  Duration backoff_before(int retry_index) const;

  // Total attempts allowed (initial + retries).
  int total_attempts() const { return max_retries + 1; }
};

}  // namespace gremlin::resilience
