#include "resilience/retry.h"

#include <cmath>

namespace gremlin::resilience {

Duration RetryPolicy::backoff_before(int retry_index) const {
  if (retry_index <= 0) return kDurationZero;
  const double factor = std::pow(multiplier, retry_index - 1);
  const double raw = static_cast<double>(base_backoff.count()) * factor;
  const auto capped = static_cast<int64_t>(
      std::min(raw, static_cast<double>(max_backoff.count())));
  return Duration(capped);
}

}  // namespace gremlin::resilience
