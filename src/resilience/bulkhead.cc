#include "resilience/bulkhead.h"

namespace gremlin::resilience {

bool Bulkhead::try_acquire() {
  std::lock_guard lock(mu_);
  if (max_concurrent_ > 0 && in_flight_ >= max_concurrent_) {
    ++rejected_;
    return false;
  }
  ++in_flight_;
  return true;
}

void Bulkhead::release() {
  std::lock_guard lock(mu_);
  if (in_flight_ > 0) --in_flight_;
}

int Bulkhead::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

uint64_t Bulkhead::rejected() const {
  std::lock_guard lock(mu_);
  return rejected_;
}

BulkheadPermit::BulkheadPermit(Bulkhead* bulkhead)
    : bulkhead_(bulkhead), acquired_(bulkhead == nullptr ||
                                     !bulkhead->enabled() ||
                                     bulkhead->try_acquire()) {
  if (bulkhead_ != nullptr && !bulkhead_->enabled()) {
    bulkhead_ = nullptr;  // nothing to release
  }
  if (!acquired_) bulkhead_ = nullptr;
}

BulkheadPermit::~BulkheadPermit() {
  if (bulkhead_ != nullptr) bulkhead_->release();
}

}  // namespace gremlin::resilience
