#include "resilience/circuit_breaker.h"

namespace gremlin::resilience {

const char* to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::allow_request(TimePoint now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= config_.open_interval) {
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        return true;
      }
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::trip(TimePoint now) {
  state_ = State::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  ++times_opened_;
}

void CircuitBreaker::record_success(TimePoint) {
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++half_open_successes_ >= config_.success_threshold) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        half_open_successes_ = 0;
      }
      break;
    case State::kOpen:
      // A success while open can only come from a call admitted before the
      // trip; it does not affect the breaker.
      break;
  }
}

void CircuitBreaker::record_failure(TimePoint now) {
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        trip(now);
      }
      break;
    case State::kHalfOpen:
      trip(now);
      break;
    case State::kOpen:
      break;
  }
}

}  // namespace gremlin::resilience
