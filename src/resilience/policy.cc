#include "resilience/policy.h"

namespace gremlin::resilience {

CallPolicy CallPolicy::resilient() {
  CallPolicy p;
  p.timeout = msec(500);
  p.retry.max_retries = 3;
  p.retry.base_backoff = msec(50);
  p.retry.multiplier = 2.0;
  CircuitBreakerConfig cb;
  cb.failure_threshold = 5;
  cb.open_interval = sec(30);
  cb.success_threshold = 1;
  p.circuit_breaker = cb;
  p.bulkhead_max_concurrent = 32;
  p.fallback = Fallback{200, "cached-fallback"};
  return p;
}

}  // namespace gremlin::resilience
