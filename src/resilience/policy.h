// CallPolicy: the failure-handling configuration a service applies when
// calling one dependency. Composes the four patterns of Section 2.1 plus an
// optional fallback response. A default-constructed CallPolicy has *no*
// resiliency patterns — this models the naive services whose bugs Gremlin's
// assertions are designed to catch.
#pragma once

#include <optional>
#include <string>

#include "common/duration.h"
#include "resilience/circuit_breaker.h"
#include "resilience/retry.h"

namespace gremlin::resilience {

struct Fallback {
  int status = 200;
  std::string body = "fallback";
};

struct CallPolicy {
  // Timeout for a single attempt; zero disables the pattern (the caller
  // waits indefinitely — the ElasticPress bug of Section 7.1).
  Duration timeout{};

  RetryPolicy retry;  // max_retries == 0 disables

  // Circuit breaker; disengaged when absent.
  std::optional<CircuitBreakerConfig> circuit_breaker;

  // Max concurrent in-flight calls to this dependency; 0 disables.
  int bulkhead_max_concurrent = 0;

  // Response served when all attempts fail / breaker is open / bulkhead is
  // saturated. Without a fallback the failure propagates upstream.
  std::optional<Fallback> fallback;

  bool has_timeout() const { return timeout > kDurationZero; }
  bool has_retries() const { return retry.max_retries > 0; }
  bool has_circuit_breaker() const { return circuit_breaker.has_value(); }
  bool has_bulkhead() const { return bulkhead_max_concurrent > 0; }

  // Named presets used throughout tests, examples and benches.
  static CallPolicy naive() { return {}; }
  static CallPolicy resilient();  // all four patterns, sensible defaults
};

}  // namespace gremlin::resilience
