#include "search/shrinker.h"

#include <algorithm>

#include "control/checker.h"

namespace gremlin::search {

ShrinkResult shrink(const campaign::Experiment& failing, const RunFn& run,
                    const ShrinkOptions& options) {
  const RunFn exec =
      run ? run : [](const campaign::Experiment& e) {
        return campaign::CampaignRunner::run_one(e, /*keep_latencies=*/false);
      };

  ShrinkResult result;
  result.minimal = failing;
  result.faults_before = result.faults_after = failing.failures.size();
  result.load_before = result.load_after = failing.load.count;

  // Verification re-run: the failure must reproduce deterministically
  // before any reduction is meaningful.
  const campaign::ExperimentResult reference = exec(failing);
  ++result.runs;
  if (!reference.ok || reference.passed()) {
    result.flaky = true;
    return result;
  }
  result.reproduced = true;
  result.signature = control::failure_signature(reference.checks);

  // A candidate counts as reproducing only when the identical set of checks
  // fails — shrinking must preserve the failure mode, not just "some
  // failure".
  auto reproduces = [&](const campaign::Experiment& candidate) {
    if (result.runs >= options.max_runs) return false;
    const campaign::ExperimentResult r = exec(candidate);
    ++result.runs;
    return r.ok && !r.passed() &&
           control::failure_signature(r.checks) == result.signature;
  };

  campaign::Experiment current = failing;

  // 1-minimal fault set: drop one fault at a time until no drop reproduces.
  bool progress = current.failures.size() > 1;
  while (progress && result.runs < options.max_runs) {
    progress = false;
    for (size_t i = 0; i < current.failures.size(); ++i) {
      if (current.failures.size() <= 1) break;
      campaign::Experiment candidate = current;
      candidate.failures.erase(candidate.failures.begin() +
                               static_cast<ptrdiff_t>(i));
      if (reproduces(candidate)) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }

  // Load shrinking: halve while the failure persists.
  while (options.shrink_load && current.load.count > options.min_load &&
         result.runs < options.max_runs) {
    campaign::Experiment candidate = current;
    candidate.load.count =
        std::max(options.min_load, current.load.count / 2);
    if (!reproduces(candidate)) break;
    current = std::move(candidate);
  }

  result.faults_after = current.failures.size();
  result.load_after = current.load.count;
  result.minimal = std::move(current);
  return result;
}

}  // namespace gremlin::search
