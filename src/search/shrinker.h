// Failing-scenario shrinking: delta debugging over an experiment's fault
// set and sweep parameters.
//
// A failing k-fault experiment is rarely a minimal explanation — often a
// single member fault (or a smaller load) reproduces the same assertion
// violations. The shrinker re-runs candidate reductions deterministically
// (same app spec, same seed) and keeps a reduction only when it reproduces
// the *same failure mode*: experiment still runs, still fails, and
// control::failure_signature of its check verdicts is unchanged — so a bug
// is never "shrunk" into a different bug. Reductions tried, in order:
//
//   1. Fault-set minimization to 1-minimality (ddmin-style: repeatedly drop
//      one fault while the failure persists; at k ≤ 3 single drops reach
//      1-minimality in O(k²) runs).
//   2. Load shrinking: halve the request count while the failure persists.
//
// A failure that does not reproduce on the verification re-run is reported
// as flaky (`flaky = true`) and returned unshrunk rather than looping.
#pragma once

#include <functional>
#include <string>

#include "campaign/experiment.h"
#include "campaign/runner.h"

namespace gremlin::search {

// How candidates are executed. Defaults to CampaignRunner::run_one; tests
// script fake runners to exercise the algorithm without a simulator.
using RunFn =
    std::function<campaign::ExperimentResult(const campaign::Experiment&)>;

struct ShrinkOptions {
  // Total run budget, counting the verification re-run. The shrinker
  // returns the best reduction found when the budget is exhausted.
  size_t max_runs = 48;

  bool shrink_load = true;
  size_t min_load = 1;  // never shrink below this many requests
};

struct ShrinkResult {
  campaign::Experiment minimal;  // locally-minimal reproducer (or the input)
  bool reproduced = false;       // verification re-run failed as expected
  bool flaky = false;            // it passed instead: not deterministic
  std::string signature;         // preserved failure signature
  size_t runs = 0;               // experiments executed while shrinking
  size_t faults_before = 0;
  size_t faults_after = 0;
  size_t load_before = 0;
  size_t load_after = 0;

  // True when no reduction survived: the input was already 1-minimal.
  bool already_minimal() const {
    return reproduced && faults_after == faults_before &&
           load_after == load_before;
  }
};

// Shrinks `failing` (an experiment whose run failed at least one check).
ShrinkResult shrink(const campaign::Experiment& failing, const RunFn& run = {},
                    const ShrinkOptions& options = {});

}  // namespace gremlin::search
