#include "search/pruner.h"

namespace gremlin::search {

Baseline run_baseline(const campaign::Experiment& experiment) {
  campaign::Experiment clean = experiment;
  clean.id = "baseline";
  clean.failures.clear();
  clean.custom = nullptr;

  sim::SimulationConfig cfg;
  cfg.seed = clean.seed;
  sim::Simulation sim(cfg);
  Baseline baseline;
  baseline.result = campaign::CampaignRunner::run_in(clean, &sim,
                                                     /*keep_latencies=*/false);
  baseline.call_graph = sim.log_store().call_graph();
  return baseline;
}

Baseline run_baseline(const campaign::Experiment& experiment,
                      campaign::WarmWorld* world) {
  if (world == nullptr || !world->app().reusable) {
    return run_baseline(experiment);
  }
  campaign::Experiment clean = experiment;
  clean.id = "baseline";
  clean.failures.clear();
  clean.custom = nullptr;

  // Mirror run_in's legacy exec shape: full run, log preserved — pruning
  // needs the complete observed call graph.
  campaign::ExecOptions exec;
  exec.keep_latencies = false;
  exec.early_exit = false;
  exec.preserve_log = true;
  Baseline baseline;
  baseline.result = world->run(clean, exec);
  baseline.call_graph = world->simulation()->log_store().call_graph();
  return baseline;
}

const char* to_string(PruneVerdict verdict) {
  switch (verdict) {
    case PruneVerdict::kKeep:
      return "keep";
    case PruneVerdict::kUnreachableFault:
      return "unreachable-fault";
    case PruneVerdict::kNoSharedPath:
      return "no-shared-path";
  }
  return "unknown";
}

namespace {

bool touches(const logstore::CallGraph::EdgeSet& path,
             const std::vector<topology::Edge>& trigger_edges) {
  for (const auto& edge : trigger_edges) {
    if (path.count({edge.src, edge.dst}) != 0) return true;
  }
  return false;
}

}  // namespace

PruneDecision decide(const std::vector<FaultPoint>& points,
                     const Combination& combination,
                     const logstore::CallGraph& observed) {
  PruneDecision decision;
  for (const size_t index : combination.points) {
    const FaultPoint& point = points[index];
    bool reachable = false;
    for (const auto& edge : point.trigger_edges) {
      if (observed.observed(edge.src, edge.dst)) {
        reachable = true;
        break;
      }
    }
    if (!reachable) {
      decision.verdict = PruneVerdict::kUnreachableFault;
      decision.detail = point.label + " touches no observed edge";
      return decision;
    }
  }

  if (combination.points.size() > 1) {
    // Faults interact only when one request can meet all of them: some
    // observed path signature must intersect every point's trigger set.
    bool shared = false;
    for (const auto& path : observed.paths) {
      bool all = true;
      for (const size_t index : combination.points) {
        if (!touches(path, points[index].trigger_edges)) {
          all = false;
          break;
        }
      }
      if (all) {
        shared = true;
        break;
      }
    }
    if (!shared) {
      decision.verdict = PruneVerdict::kNoSharedPath;
      decision.detail = "no observed request path meets every fault";
      return decision;
    }
  }
  return decision;
}

}  // namespace gremlin::search
