// Combinatorial fault-space enumeration: the generator half of `gremlin
// search`.
//
// A FaultPoint is one injectable failure (a FailureSpec) plus the graph
// edges whose traffic it manipulates — the evidence the dependency-aware
// pruner (search/pruner.h) matches against the observed call graph. The
// generator enumerates every k-combination of fault points for k ≤ max_k
// (hard-capped at 3: beyond triple faults the space explodes faster than
// any pruner can pay back), optionally replacing the exhaustive k≥2 tail
// with a greedy pairwise-covering design, and truncating to an explicit
// budget. Combinations are emitted k-ascending, lexicographic within k, so
// campaign results are reproducible run to run.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "control/failures.h"
#include "topology/graph.h"

namespace gremlin::search {

// One injectable fault and the edges whose traffic it touches.
struct FaultPoint {
  control::FailureSpec spec;
  std::string label;  // describe(spec): "abort(a->b)", "crash(svc)", ...
  std::vector<topology::Edge> trigger_edges;
};

struct GeneratorOptions {
  // Largest combination size; clamped to [1, 3].
  int max_k = 2;

  // Hard cap on emitted combinations (0 = unlimited). Generation order is
  // k-ascending, so a tight budget keeps all singles and drops the deepest
  // combinations first; the dropped count is reported, never silent.
  size_t max_combinations = 5000;

  // Replace the exhaustive k = max_k stratum with a greedy covering design:
  // every *pair* of fault points still co-occurs in some combination, but
  // each emitted combination packs max_k faults, cutting the combination
  // count roughly by a factor of max_k-1. Only meaningful for max_k == 3
  // (for max_k == 2 the covering design is the exhaustive pair set).
  bool pairwise = false;

  // Failure kinds enumerated per edge (abort/delay/disconnect/modify) or
  // per service (crash/overload/hang/instance_crash/rolling_partition/
  // slow_node).
  std::vector<control::FailureSpec::Kind> kinds = {
      control::FailureSpec::Kind::kAbort,
      control::FailureSpec::Kind::kDelay,
      control::FailureSpec::Kind::kOverload,
      control::FailureSpec::Kind::kCrash,
      control::FailureSpec::Kind::kDisconnect,
  };

  // Services never faulted; the search adds its client and load target.
  std::set<std::string> exclude = {"user"};

  // Fault parameters (mirrors campaign::SweepOptions).
  int abort_error = 503;
  Duration delay = msec(100);
  Duration hang = hours(1);

  // Infra-level service kinds.
  Duration crash_after{};              // outage start on the virtual clock
  Duration crash_downtime = msec(200);
  Duration slow_mean = msec(50);       // kSlowNode exponential delay mean

  // Applied to every enumerated point: fire probability (< 1.0 makes the
  // whole search probabilistic but still seed-deterministic — the engine's
  // counter-based streams key on the rule, not evaluation order) and an
  // activation window on the virtual clock (zero-duration = open-ended).
  double probability = 1.0;
  Duration after{};
  Duration window{};
};

// Canonical human-readable label for a failure spec, e.g. "abort(a->b)".
std::string describe(const control::FailureSpec& spec);

// Enumerates every fault point the graph admits under `options`, in
// deterministic (kind, edge/service) order. `extra_excluded` extends
// options.exclude (the search passes its client + load target).
std::vector<FaultPoint> enumerate_fault_points(
    const topology::AppGraph& graph, const GeneratorOptions& options,
    const std::set<std::string>& extra_excluded = {});

// A combination of fault points, by index into the fault-point list.
struct Combination {
  std::vector<size_t> points;  // strictly increasing indices
  std::string label;           // point labels joined with " + "
};

// Enumerates combinations over `points` per `options`. When the budget
// truncates the space, the number of dropped combinations is returned via
// `truncated` (pass nullptr to ignore).
std::vector<Combination> generate_combinations(
    const std::vector<FaultPoint>& points, const GeneratorOptions& options,
    size_t* truncated = nullptr);

}  // namespace gremlin::search
