#include "search/search.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>

#include "campaign/execution_context.h"
#include "campaign/warm_world.h"

namespace gremlin::search {

namespace {

// Mirrors the sweep generator's load-target resolution: the first entry
// point that is neither excluded nor the client, falling back to the front
// door the client calls.
std::string resolve_target(const topology::AppGraph& graph,
                           const SearchOptions& options) {
  if (!options.target.empty()) return options.target;
  for (const auto& entry : graph.entry_points()) {
    if (options.generator.exclude.count(entry) == 0 &&
        entry != options.client) {
      return entry;
    }
  }
  for (const auto& edge : graph.edges()) {
    if (edge.src == options.client) return edge.dst;
  }
  return {};
}

campaign::Experiment make_experiment(const campaign::AppSpec& app,
                                     const std::vector<FaultPoint>& points,
                                     const Combination& combo,
                                     const SearchOptions& options,
                                     const std::string& target,
                                     const std::vector<campaign::CheckSpec>&
                                         checks) {
  campaign::Experiment e;
  e.id = combo.label;
  e.app = app;
  for (const size_t index : combo.points) {
    e.failures.push_back(points[index].spec);
  }
  e.client = options.client;
  e.target = target;
  e.load = options.load;
  e.checks = checks;
  e.seed = options.seed;
  return e;
}

}  // namespace

SearchOutcome run_search(const campaign::AppSpec& app,
                         const SearchOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  SearchOutcome outcome;
  outcome.app = app.name;
  outcome.seed = options.seed;

  const topology::AppGraph graph = app.probe_graph();
  const std::string target = resolve_target(graph, options);
  if (target.empty()) {
    outcome.error = "no load target: graph has no entry point";
    return outcome;
  }

  std::vector<campaign::CheckSpec> checks = options.checks;
  if (checks.empty()) {
    checks.push_back(campaign::CheckSpec::max_user_failures(0));
  }

  // Fault space: the client and load target are excluded exactly as in the
  // single-fault sweep (faulting the front door is trivially user-visible).
  std::set<std::string> excluded = {options.client, target};
  const std::vector<FaultPoint> points =
      enumerate_fault_points(graph, options.generator, excluded);
  outcome.fault_points = points.size();

  size_t truncated = 0;
  const std::vector<Combination> combos =
      generate_combinations(points, options.generator, &truncated);
  outcome.generated = combos.size();
  outcome.truncated = truncated;

  // Baseline replay: verdict reference plus the observed call graph. In
  // warm mode the baseline's deployment stays alive — the shrink probes
  // below reset and reuse it instead of rebuilding per probe. The search
  // thread runs them inside its own ExecutionContext (shard interning,
  // pooled allocation), exactly like a campaign worker; the campaign batch
  // in between binds fresh per-worker contexts of its own.
  campaign::ExecutionContext search_ctx(options.warm);
  ScopedShardSymbols bind_symbols(&search_ctx.symbols());
  campaign::WarmWorld* world =
      options.warm ? search_ctx.world_for(app) : nullptr;
  Combination empty_combo;
  const campaign::Experiment baseline_experiment =
      make_experiment(app, points, empty_combo, options, target, checks);
  const Baseline baseline = world ? run_baseline(baseline_experiment, world)
                                  : run_baseline(baseline_experiment);
  search_ctx.merge();  // result boundary: baseline names are global now
  outcome.baseline_passed = baseline.result.passed();
  outcome.baseline_requests = baseline.result.requests;
  outcome.observed_edges = baseline.call_graph.edges.size();
  outcome.observed_paths = baseline.call_graph.paths.size();
  if (!baseline.result.ok) {
    outcome.error = "baseline run failed: " + baseline.result.error;
    return outcome;
  }
  if (!outcome.baseline_passed) {
    outcome.error =
        "baseline violates its own checks (" +
        control::failure_signature(baseline.result.checks) +
        "); fix the app or the checks before searching for fault-induced "
        "failures";
    return outcome;
  }

  // Prune, then materialize the survivors.
  outcome.combos.reserve(combos.size());
  std::vector<campaign::Experiment> experiments;
  std::vector<size_t> experiment_combo;  // experiment -> combo row index
  for (const Combination& combo : combos) {
    ComboOutcome row;
    row.label = combo.label;
    row.k = combo.points.size();
    if (options.prune) {
      const PruneDecision decision =
          decide(points, combo, baseline.call_graph);
      row.verdict = decision.verdict;
      row.prune_detail = decision.detail;
    }
    if (row.verdict == PruneVerdict::kKeep) {
      experiments.push_back(
          make_experiment(app, points, combo, options, target, checks));
      experiment_combo.push_back(outcome.combos.size());
    } else {
      ++outcome.pruned;
      if (row.verdict == PruneVerdict::kUnreachableFault) {
        ++outcome.pruned_unreachable;
      } else {
        ++outcome.pruned_no_shared_path;
      }
    }
    outcome.combos.push_back(std::move(row));
  }

  campaign::RunnerOptions runner_options;
  runner_options.threads = options.threads;
  runner_options.procs = options.procs;
  runner_options.keep_latencies = false;
  runner_options.early_exit = options.early_exit;
  runner_options.warm_worlds = options.warm;
  const campaign::CampaignRunner runner(runner_options);
  const campaign::CampaignResult campaign = runner.run(experiments);
  outcome.threads = campaign.threads;
  outcome.procs = campaign.procs;
  outcome.ran = campaign.experiments.size();

  // Shrink failures to minimal reproducers, deduplicated by the minimal
  // fault set (many combinations typically collapse onto one bug).
  std::map<std::string, size_t> finding_index;
  for (size_t i = 0; i < campaign.experiments.size(); ++i) {
    const campaign::ExperimentResult& r = campaign.experiments[i];
    ComboOutcome& row = outcome.combos[experiment_combo[i]];
    row.ran = true;
    if (!r.ok) {
      row.error = true;
      ++outcome.errors;
      continue;
    }
    if (r.passed()) {
      row.passed = true;
      ++outcome.passed;
      continue;
    }
    ++outcome.failed;

    Finding finding;
    finding.combination = r.id;
    finding.seed = r.seed;
    finding.faults_before = experiments[i].failures.size();
    if (options.shrink) {
      campaign::ExecOptions shrink_exec;
      shrink_exec.keep_latencies = false;
      shrink_exec.early_exit = options.early_exit;
      ShrinkResult shrunk = shrink(
          experiments[i],
          [&shrink_exec, &world](const campaign::Experiment& e) {
            // Probes run sequentially after the campaign batch; reusing the
            // baseline's warm world here amortizes construction across the
            // whole shrink budget.
            return world ? world->run(e, shrink_exec)
                         : campaign::CampaignRunner::run_one(e, shrink_exec);
          },
          options.shrink_options);
      outcome.shrink_runs += shrunk.runs;
      finding.flaky = shrunk.flaky;
      finding.signature = shrunk.signature;
      finding.shrink_runs = shrunk.runs;
      finding.load_count = shrunk.minimal.load.count;
      finding.faults = shrunk.minimal.failures;
    } else {
      finding.signature = control::failure_signature(r.checks);
      finding.load_count = experiments[i].load.count;
      finding.faults = experiments[i].failures;
    }
    std::string minimal;
    for (const auto& spec : finding.faults) {
      if (!minimal.empty()) minimal += " + ";
      minimal += describe(spec);
    }
    finding.minimal = finding.flaky ? "(flaky) " + finding.combination
                                    : minimal;

    const auto it = finding_index.find(finding.minimal);
    if (it != finding_index.end()) {
      ++outcome.findings[it->second].occurrences;
    } else {
      finding_index.emplace(finding.minimal, outcome.findings.size());
      outcome.findings.push_back(std::move(finding));
    }
  }

  outcome.ok = true;
  outcome.wall_clock = std::chrono::duration_cast<Duration>(
      std::chrono::steady_clock::now() - start);
  return outcome;
}

}  // namespace gremlin::search
