// Dependency-aware pruning: the LDFI-style half of `gremlin search`.
//
// Combinatorial enumeration is only tractable because most combinations
// cannot matter. The pruner replays the fault-free baseline experiment
// once, extracts the *observed* call graph from the LogStore
// (logstore::CallGraph), and discards two classes of combinations before
// any of them costs a simulation:
//
//   1. Unreachable fault — a fault point none of whose trigger edges was
//      exercised by any baseline request. Injecting there is a no-op.
//   2. No shared path — a multi-fault combination whose points are all
//      individually reachable, but no single observed request path touches
//      an edge of every point. Such faults cannot interact on any flow, so
//      the combination's outcome is implied by its already-enumerated
//      sub-combinations.
//
// The classic lineage-driven caveat applies and is deliberate: pruning is
// relative to the *baseline* call graph, so code paths only reachable after
// a fault (failover routes) are judged by whether the baseline exercised
// them. Apps that want failover edges searched must exercise them in the
// baseline workload (see docs/SEARCH.md).
#pragma once

#include <string>
#include <vector>

#include "campaign/experiment.h"
#include "campaign/runner.h"
#include "campaign/warm_world.h"
#include "logstore/store.h"
#include "search/combinations.h"

namespace gremlin::search {

// The fault-free reference run: verdicts plus the observed call graph.
struct Baseline {
  campaign::ExperimentResult result;  // checks evaluated with no faults
  logstore::CallGraph call_graph;
};

// Runs `experiment` with its failure list ignored, on a private Simulation,
// and extracts the observed call graph from the collected logs. The
// experiment's checks are evaluated as-is: a baseline that fails its own
// assertions makes every search verdict meaningless, and the search aborts.
Baseline run_baseline(const campaign::Experiment& experiment);

// As above, but replayed on a caller-provided warm world that stays alive
// for the rest of the search (shrink probes reuse it). Byte-identical to
// the cold form by the warm-world contract; falls back to it when the
// world's spec is not reusable.
Baseline run_baseline(const campaign::Experiment& experiment,
                      campaign::WarmWorld* world);

enum class PruneVerdict {
  kKeep,             // run it
  kUnreachableFault,  // some point's trigger edges were never observed
  kNoSharedPath,     // points cannot co-occur on any observed request path
};

const char* to_string(PruneVerdict verdict);

struct PruneDecision {
  PruneVerdict verdict = PruneVerdict::kKeep;
  std::string detail;  // which point / why, for the report

  bool keep() const { return verdict == PruneVerdict::kKeep; }
};

// Decides one combination against the observed call graph.
PruneDecision decide(const std::vector<FaultPoint>& points,
                     const Combination& combination,
                     const logstore::CallGraph& observed);

}  // namespace gremlin::search
