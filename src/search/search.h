// FaultSpaceSearch: the `gremlin search` pipeline.
//
//   enumerate fault points  →  generate k ≤ 3 combinations (budgeted,
//   optionally pairwise-covering)  →  replay the fault-free baseline and
//   prune combinations the observed call graph rules out  →  run the
//   survivors in parallel on the campaign engine  →  shrink every failure
//   to a locally-minimal reproducer with a replayable seed.
//
// The output is a SearchOutcome: the funnel counters (generated / pruned /
// run / failed), per-combination verdicts, and deduplicated minimal
// reproducers. report::build_search_report turns it into JSON/Markdown.
#pragma once

#include <string>
#include <vector>

#include "campaign/app_spec.h"
#include "campaign/experiment.h"
#include "campaign/runner.h"
#include "search/combinations.h"
#include "search/pruner.h"
#include "search/shrinker.h"

namespace gremlin::search {

struct SearchOptions {
  GeneratorOptions generator;

  control::LoadOptions load;   // load shape for baseline and experiments
  std::string client = "user";
  std::string target;          // empty → first non-excluded entry point

  // Checks attached to every experiment (and the baseline). Empty → the
  // canonical sweep verdict: no user-visible failures.
  std::vector<campaign::CheckSpec> checks;

  uint64_t seed = 42;
  int threads = 0;        // campaign workers; 0 = hardware concurrency
  // Worker processes for the combination campaign (multi-process sharding,
  // campaign/process_pool.h). Baseline replay and shrink probes stay
  // in-process — they are sequential and reuse one kept-alive world.
  // Findings are identical at any procs count.
  int procs = 1;
  bool prune = true;      // false: run every generated combination
  bool shrink = true;     // false: report failures unshrunk

  // Online checking with early-verdict termination for every combination
  // run and every shrink probe (verdict-preserving; see RunnerOptions).
  // The baseline replay always runs to quiescence — pruning needs the
  // complete observed call graph.
  bool early_exit = true;

  // Warm-world execution for the baseline replay, the campaign batch, and
  // every shrink probe (byte-identical results; see RunnerOptions). The
  // baseline's world is kept alive and reused by the shrink probes.
  bool warm = true;
  ShrinkOptions shrink_options;
};

// Per-combination verdict row (report fodder).
struct ComboOutcome {
  std::string label;
  size_t k = 0;
  PruneVerdict verdict = PruneVerdict::kKeep;
  std::string prune_detail;  // set when pruned
  bool ran = false;
  bool passed = false;   // ran and every check passed
  bool error = false;    // infrastructure error
};

// One distinct minimal reproducer.
struct Finding {
  std::string combination;   // first failing combination that produced it
  std::string minimal;       // labels of the minimal fault set
  std::vector<control::FailureSpec> faults;  // the minimal fault set itself
  uint64_t seed = 0;         // replays deterministically with this seed
  size_t load_count = 0;     // shrunk request count
  std::string signature;     // failing checks (control::failure_signature)
  bool flaky = false;        // failure did not reproduce on re-run
  size_t shrink_runs = 0;
  size_t faults_before = 0;
  size_t occurrences = 1;    // failing combinations that shrank to this
};

struct SearchOutcome {
  bool ok = false;       // search infrastructure worked end to end
  std::string error;     // set when !ok (e.g. the baseline itself fails)
  std::string app;
  uint64_t seed = 0;
  int threads = 1;
  int procs = 1;  // worker processes used by the combination campaign

  // Baseline replay.
  bool baseline_passed = false;
  size_t baseline_requests = 0;
  size_t observed_edges = 0;
  size_t observed_paths = 0;

  // The funnel.
  size_t fault_points = 0;
  size_t generated = 0;   // combinations enumerated (after budget)
  size_t truncated = 0;   // combinations dropped by the budget cap
  size_t pruned = 0;
  size_t pruned_unreachable = 0;
  size_t pruned_no_shared_path = 0;
  size_t ran = 0;
  size_t passed = 0;
  size_t failed = 0;
  size_t errors = 0;
  size_t shrink_runs = 0;  // extra experiment executions spent shrinking

  std::vector<ComboOutcome> combos;   // generation order
  std::vector<Finding> findings;      // distinct minimal reproducers
  Duration wall_clock{};

  bool found_failures() const { return !findings.empty(); }
};

SearchOutcome run_search(const campaign::AppSpec& app,
                         const SearchOptions& options = {});

}  // namespace gremlin::search
