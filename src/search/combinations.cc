#include "search/combinations.h"

#include <algorithm>
#include <cstdio>

namespace gremlin::search {

using control::FailureSpec;

namespace {

std::string group_label(const char* name, const std::set<std::string>& group) {
  std::string out = std::string(name) + "({";
  for (const auto& s : group) {
    if (out.back() != '{') out += ",";
    out += s;
  }
  return out + "})";
}

std::string base_describe(const FailureSpec& spec) {
  switch (spec.kind) {
    case FailureSpec::Kind::kAbort:
      return "abort(" + spec.a + "->" + spec.b + ")";
    case FailureSpec::Kind::kDelay:
      return "delay(" + spec.a + "->" + spec.b + ")";
    case FailureSpec::Kind::kModify:
      return "modify(" + spec.a + "->" + spec.b + ")";
    case FailureSpec::Kind::kDisconnect:
      return "disconnect(" + spec.a + "->" + spec.b + ")";
    case FailureSpec::Kind::kCrash:
      return "crash(" + spec.b + ")";
    case FailureSpec::Kind::kHang:
      return "hang(" + spec.b + ")";
    case FailureSpec::Kind::kOverload:
      return "overload(" + spec.b + ")";
    case FailureSpec::Kind::kFakeSuccess:
      return "fake_success(" + spec.b + ")";
    case FailureSpec::Kind::kPartition:
      return group_label("partition", spec.group);
    case FailureSpec::Kind::kInstanceCrash:
      return "instance_crash(" + spec.b + ")";
    case FailureSpec::Kind::kRollingPartition:
      return group_label("rolling_partition", spec.group);
    case FailureSpec::Kind::kSlowNode:
      return "slow_node(" + spec.b + ")";
  }
  return "unknown";
}

}  // namespace

std::string describe(const FailureSpec& spec) {
  std::string out = base_describe(spec);
  // Annotate the probabilistic / windowed axes so a finding's minimal label
  // distinguishes "abort(a->b)" from its p=0.5 or delayed-onset variant.
  // kOverload owns its probability internally (the 25/75 split), and the
  // infra kinds' windows are intrinsic to the scenario, not an axis.
  if (spec.probability < 1.0 && spec.kind != FailureSpec::Kind::kOverload) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " p=%g", spec.probability);
    out += buf;
  }
  const bool windowed_kind = spec.kind == FailureSpec::Kind::kInstanceCrash ||
                             spec.kind == FailureSpec::Kind::kRollingPartition;
  if (!windowed_kind &&
      (spec.after > kDurationZero || spec.window > kDurationZero)) {
    out += " w=" + format_duration(spec.after) + "+" +
           format_duration(spec.window);
  }
  return out;
}

namespace {

bool is_edge_kind(FailureSpec::Kind kind) {
  return kind == FailureSpec::Kind::kAbort ||
         kind == FailureSpec::Kind::kDelay ||
         kind == FailureSpec::Kind::kDisconnect ||
         kind == FailureSpec::Kind::kModify;
}

FailureSpec point_spec(FailureSpec::Kind kind, const std::string& src,
                       const std::string& dst,
                       const GeneratorOptions& options) {
  switch (kind) {
    case FailureSpec::Kind::kAbort:
      return FailureSpec::abort_edge(src, dst, options.abort_error);
    case FailureSpec::Kind::kDelay:
      return FailureSpec::delay_edge(src, dst, options.delay);
    case FailureSpec::Kind::kDisconnect:
      return FailureSpec::disconnect(src, dst, options.abort_error);
    case FailureSpec::Kind::kCrash:
      return FailureSpec::crash(dst);
    case FailureSpec::Kind::kOverload:
      return FailureSpec::overload(dst);
    case FailureSpec::Kind::kHang:
      return FailureSpec::hang(dst, options.hang);
    case FailureSpec::Kind::kInstanceCrash:
      return FailureSpec::instance_crash(dst, options.crash_after,
                                         options.crash_downtime);
    case FailureSpec::Kind::kRollingPartition:
      // A point isolates one service; multi-member rolling partitions come
      // from recipes or hand-built combination lists.
      return FailureSpec::rolling_partition({dst}, options.crash_after,
                                            options.crash_downtime,
                                            options.crash_downtime);
    case FailureSpec::Kind::kSlowNode:
      return FailureSpec::slow_node(dst, options.slow_mean);
    default:
      return FailureSpec::abort_edge(src, dst, options.abort_error);
  }
}

// Applies the search-wide probability / activation-window axes to one
// enumerated point. The infra kinds keep their intrinsic windows.
void apply_axes(const GeneratorOptions& options, FailureSpec* spec) {
  if (options.probability < 1.0 &&
      spec->kind != FailureSpec::Kind::kOverload) {
    spec->probability = options.probability;
  }
  const bool windowed_kind =
      spec->kind == FailureSpec::Kind::kInstanceCrash ||
      spec->kind == FailureSpec::Kind::kRollingPartition;
  if (!windowed_kind &&
      (options.after > kDurationZero || options.window > kDurationZero)) {
    spec->after = options.after;
    spec->window = options.window;
  }
}

}  // namespace

std::vector<FaultPoint> enumerate_fault_points(
    const topology::AppGraph& graph, const GeneratorOptions& options,
    const std::set<std::string>& extra_excluded) {
  std::set<std::string> excluded = options.exclude;
  excluded.insert(extra_excluded.begin(), extra_excluded.end());

  std::vector<FaultPoint> points;
  for (const auto kind : options.kinds) {
    if (is_edge_kind(kind)) {
      for (const auto& edge : graph.edges()) {
        // Only the callee side disqualifies an edge (the sweep-generator
        // convention): the front door's outbound edges are fair game.
        if (excluded.count(edge.dst) != 0) continue;
        FaultPoint p;
        p.spec = point_spec(kind, edge.src, edge.dst, options);
        apply_axes(options, &p.spec);
        p.label = describe(p.spec);
        p.trigger_edges = {edge};
        points.push_back(std::move(p));
      }
    } else {
      for (const auto& service : graph.services()) {
        if (excluded.count(service) != 0) continue;
        FaultPoint p;
        p.spec = point_spec(kind, "", service, options);
        apply_axes(options, &p.spec);
        p.label = describe(p.spec);
        // A service fault manipulates every call *into* the service: the
        // translator expands it across all dependent edges (Table 2).
        for (const auto& dep : graph.dependents(service)) {
          p.trigger_edges.push_back({dep, service});
        }
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

namespace {

std::string combo_label(const std::vector<FaultPoint>& points,
                        const std::vector<size_t>& indices) {
  std::string out;
  for (const size_t i : indices) {
    if (!out.empty()) out += " + ";
    out += points[i].label;
  }
  return out;
}

// Exhaustive k-subsets of [0, n) in lexicographic order.
void emit_subsets(size_t n, size_t k, std::vector<size_t>* current,
                  size_t first, std::vector<std::vector<size_t>>* out) {
  if (current->size() == k) {
    out->push_back(*current);
    return;
  }
  for (size_t i = first; i + (k - current->size()) <= n; ++i) {
    current->push_back(i);
    emit_subsets(n, k, current, i + 1, out);
    current->pop_back();
  }
}

// Greedy pairwise-covering design: max_k-sized combinations such that every
// pair of points co-occurs in at least one combination. Deterministic:
// seeded with the smallest uncovered pair, grown by best-gain / lowest-index.
std::vector<std::vector<size_t>> pairwise_cover(size_t n, size_t k) {
  std::set<std::pair<size_t, size_t>> uncovered;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) uncovered.insert({i, j});
  }
  std::vector<std::vector<size_t>> out;
  while (!uncovered.empty()) {
    std::vector<size_t> combo = {uncovered.begin()->first,
                                 uncovered.begin()->second};
    while (combo.size() < k) {
      size_t best = n;
      size_t best_gain = 0;
      for (size_t cand = 0; cand < n; ++cand) {
        if (std::find(combo.begin(), combo.end(), cand) != combo.end()) {
          continue;
        }
        size_t gain = 0;
        for (const size_t member : combo) {
          const auto pair = std::minmax(member, cand);
          if (uncovered.count({pair.first, pair.second}) != 0) ++gain;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best = cand;
        }
      }
      if (best == n) break;  // no candidate adds coverage
      combo.push_back(best);
    }
    std::sort(combo.begin(), combo.end());
    for (size_t i = 0; i < combo.size(); ++i) {
      for (size_t j = i + 1; j < combo.size(); ++j) {
        uncovered.erase({combo[i], combo[j]});
      }
    }
    out.push_back(std::move(combo));
  }
  return out;
}

}  // namespace

std::vector<Combination> generate_combinations(
    const std::vector<FaultPoint>& points, const GeneratorOptions& options,
    size_t* truncated) {
  const size_t n = points.size();
  const size_t max_k = static_cast<size_t>(
      std::clamp(options.max_k, 1, 3));

  std::vector<std::vector<size_t>> subsets;
  for (size_t k = 1; k <= std::min(max_k, n); ++k) {
    if (options.pairwise && k >= 2) {
      // One covering stratum replaces every k >= 2 stratum.
      for (auto& combo : pairwise_cover(n, std::min(max_k, n))) {
        subsets.push_back(std::move(combo));
      }
      break;
    }
    std::vector<size_t> current;
    emit_subsets(n, k, &current, 0, &subsets);
  }

  size_t dropped = 0;
  if (options.max_combinations != 0 &&
      subsets.size() > options.max_combinations) {
    dropped = subsets.size() - options.max_combinations;
    subsets.resize(options.max_combinations);
  }
  if (truncated != nullptr) *truncated = dropped;

  std::vector<Combination> out;
  out.reserve(subsets.size());
  for (auto& indices : subsets) {
    Combination c;
    c.label = combo_label(points, indices);
    c.points = std::move(indices);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace gremlin::search
