#include "baseline/chaos.h"

namespace gremlin::baseline {

ChaosMonkey::ChaosMonkey(sim::Simulation* sim, topology::AppGraph graph,
                         ChaosOptions options)
    : sim_(sim),
      graph_(std::move(graph)),
      options_(std::move(options)),
      rng_(options_.seed),
      orchestrator_(&sim->deployment()) {
  if (options_.candidates.empty()) {
    options_.candidates = graph_.services();
  }
}

void ChaosMonkey::unleash(Duration horizon) {
  const TimePoint end = sim_->now() + horizon;
  TimePoint at = sim_->now();
  for (;;) {
    at += Duration(static_cast<int64_t>(rng_.exponential(
        static_cast<double>(options_.mean_interval.count()))));
    if (at >= end) break;
    sim_->schedule_at(at, [this] { kill_random_service(); });
  }
}

void ChaosMonkey::kill_random_service() {
  const std::string victim = options_.candidates[static_cast<size_t>(
      rng_.next_below(options_.candidates.size()))];
  events_.push_back({sim_->now(), victim});

  // Chaos is not flow-scoped: every request to the victim is affected.
  std::vector<faults::FaultRule> rules;
  std::vector<std::string> ids;
  for (const auto& dependent : graph_.dependents(victim)) {
    faults::FaultRule rule = faults::FaultRule::abort_rule(
        dependent, victim, faults::kTcpReset, "*");
    rule.id = "chaos-" + std::to_string(++rule_seq_) + "-" + dependent +
              "->" + victim;
    ids.push_back(rule.id);
    rules.push_back(std::move(rule));
  }
  if (rules.empty()) return;
  if (!orchestrator_.install(rules).ok()) return;

  // Resurrect the victim after the outage.
  sim_->schedule(options_.outage_duration, [this, victim, ids] {
    for (const auto& agent : sim_->deployment().all_agents()) {
      auto* sim_agent = dynamic_cast<sim::SimAgent*>(agent.get());
      if (sim_agent == nullptr) continue;
      for (const auto& id : ids) {
        (void)sim_agent->engine().remove_rule(id);
      }
    }
  });
}

}  // namespace gremlin::baseline
