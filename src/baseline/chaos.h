// ChaosMonkey: a randomized fault-injection baseline (Section 8.1).
//
// Netflix's Chaos Monkey kills instances at random: faults are not
// constrained to a subset of requests or services, and there is no
// automatic validation of the application's reaction. This baseline
// reproduces that testing style on the simulator so benches can compare it
// against Gremlin's systematic recipes: how much injected chaos does it
// take to *happen upon* a failure-handling bug that a targeted recipe
// exposes in one run?
#pragma once

#include <string>
#include <vector>

#include "control/orchestrator.h"
#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin::baseline {

struct ChaosOptions {
  Duration mean_interval = sec(5);    // mean time between kills (Poisson)
  Duration outage_duration = sec(2);  // how long a killed service stays dead
  uint64_t seed = 1;
  std::vector<std::string> candidates;  // services eligible to be killed
};

struct ChaosEvent {
  TimePoint at{};
  std::string service;
};

class ChaosMonkey {
 public:
  ChaosMonkey(sim::Simulation* sim, topology::AppGraph graph,
              ChaosOptions options);

  // Schedules random kills over [now, now + horizon). Each kill installs
  // crash rules (TCP reset, pattern "*" — chaos is not flow-scoped) on all
  // dependents of the victim and removes them after outage_duration.
  void unleash(Duration horizon);

  const std::vector<ChaosEvent>& events() const { return events_; }

 private:
  void kill_random_service();

  sim::Simulation* sim_;
  topology::AppGraph graph_;
  ChaosOptions options_;
  Rng rng_;
  control::FailureOrchestrator orchestrator_;
  std::vector<ChaosEvent> events_;
  uint64_t rule_seq_ = 0;
};

}  // namespace gremlin::baseline
