#include "campaign/execution_context.h"

#include "campaign/warm_world.h"

namespace gremlin::campaign {

ExecutionContext::ExecutionContext(bool warm_worlds)
    : scratch_rng_(Rng(0x9e3779b97f4a7c15ull).fork("execution-context")),
      warm_enabled_(warm_worlds) {}

ExecutionContext::~ExecutionContext() {
  // Worlds hold Symbols minted by this shard; tear them down before the
  // shard merges and dies with the context.
  worlds_.clear();
  symbols_.merge();
}

WarmWorld* ExecutionContext::world_for(const AppSpec& app) {
  for (auto& world : worlds_) {
    if (world->app().identity() == app.identity()) return world.get();
  }
  if (worlds_.size() >= kMaxWarmWorlds) {
    worlds_.erase(worlds_.begin());
  }
  worlds_.push_back(
      std::make_unique<WarmWorld>(app, &event_pool_, &memory_));
  return worlds_.back().get();
}

ExperimentResult ExecutionContext::execute(const Experiment& experiment,
                                           const ExecOptions& exec) {
  if (!warm_enabled_ || experiment.custom || !experiment.app.reusable) {
    return CampaignRunner::run_one(experiment, exec);
  }
  return world_for(experiment.app)->run(experiment, exec);
}

}  // namespace gremlin::campaign
