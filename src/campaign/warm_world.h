// WarmWorld: a long-lived deployment reused across experiments.
//
// Campaigns and fault-space searches run thousands of experiments that
// differ only in fault set and seed; rebuilding the Simulation per
// experiment (services, instances, agents, dep caches) dominates small-app
// experiment cost. A WarmWorld builds the AppSpec's deployment once, marks
// it as the baseline, and between experiments calls Simulation::reset(seed)
// — a deep reset restoring the exact state a cold build with that seed
// would start from — plus memoizes fault-rule translation per deployment
// graph (control::RuleCache).
//
// Contract: WarmWorld::run is byte-identical (fingerprint() AND
// verdict_fingerprint()) to CampaignRunner::run_one for every experiment.
// tests/warm_world_test.cc enforces this differentially; the CI
// warm-cold-differential job re-checks it end to end.
//
// Cold fallback: custom experiments (their hook drives the session
// imperatively and may mutate the deployment arbitrarily) and specs marked
// !reusable run on a fresh throwaway Simulation and leave the world
// untouched.
//
// Not thread-safe; each campaign worker owns its pool of worlds.
#pragma once

#include <memory>

#include "campaign/runner.h"
#include "campaign/snapshot_exec.h"
#include "control/rule_cache.h"
#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin::campaign {

class WarmWorld {
 public:
  // Optional worker-context resources (see campaign::ExecutionContext):
  // an event pool and memory pool shared by every world the owning worker
  // drives. Null means the world's Simulation owns private ones.
  explicit WarmWorld(AppSpec app, sim::EventPool* event_pool = nullptr,
                     MemoryPool* memory = nullptr)
      : app_(std::move(app)), event_pool_(event_pool), memory_(memory) {}

  // Runs one experiment on the warm deployment. `experiment.app` must be a
  // copy of the spec this world was built from (same identity()); sweep
  // generators and seed replication guarantee that.
  ExperimentResult run(const Experiment& experiment, const ExecOptions& exec);

  const AppSpec& app() const { return app_; }
  // Null until the first (non-fallback) run builds the deployment. After a
  // preserve_log run, the log is readable here (pruner baseline).
  sim::Simulation* simulation() { return sim_.get(); }
  const topology::AppGraph& graph() const { return graph_; }
  const control::RuleCache& rule_cache() const { return rule_cache_; }
  // Experiments executed warm (excludes cold fallbacks).
  size_t runs() const { return runs_; }
  // Prefix-snapshot cache stats (campaign reporting).
  const SnapshotCache& snapshots() const { return snapshot_cache_; }

 private:
  AppSpec app_;
  sim::EventPool* event_pool_;
  MemoryPool* memory_;
  std::unique_ptr<sim::Simulation> sim_;
  topology::AppGraph graph_;
  control::RuleCache rule_cache_;
  // Declared after sim_ so it is destroyed first: cache entries pin
  // request-path objects whose destructors unlink from the simulation.
  SnapshotCache snapshot_cache_;
  size_t runs_ = 0;
};

}  // namespace gremlin::campaign
