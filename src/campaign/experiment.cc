#include "campaign/experiment.h"

#include <cstdio>

namespace gremlin::campaign {

using control::CheckResult;
using control::FailureSpec;

CheckSpec CheckSpec::has_timeouts(std::string service, Duration max_latency) {
  CheckSpec c;
  c.kind = Kind::kHasTimeouts;
  c.a = std::move(service);
  c.bound = max_latency;
  return c;
}

CheckSpec CheckSpec::has_bounded_retries(std::string src, std::string dst,
                                         int max_tries) {
  CheckSpec c;
  c.kind = Kind::kHasBoundedRetries;
  c.a = std::move(src);
  c.b = std::move(dst);
  c.threshold = max_tries;
  return c;
}

CheckSpec CheckSpec::has_circuit_breaker(std::string src, std::string dst,
                                         int threshold, Duration tdelta,
                                         int success_threshold) {
  CheckSpec c;
  c.kind = Kind::kHasCircuitBreaker;
  c.a = std::move(src);
  c.b = std::move(dst);
  c.threshold = threshold;
  c.bound = tdelta;
  c.success_threshold = success_threshold;
  return c;
}

CheckSpec CheckSpec::has_bulkhead(std::string src, std::string slow_dst,
                                  double min_rate) {
  CheckSpec c;
  c.kind = Kind::kHasBulkhead;
  c.a = std::move(src);
  c.b = std::move(slow_dst);
  c.value = min_rate;
  return c;
}

CheckSpec CheckSpec::has_latency_slo(std::string src, std::string dst,
                                     double percentile, Duration bound,
                                     bool with_rule) {
  CheckSpec c;
  c.kind = Kind::kHasLatencySlo;
  c.a = std::move(src);
  c.b = std::move(dst);
  c.percentile = percentile;
  c.bound = bound;
  c.with_rule = with_rule;
  return c;
}

CheckSpec CheckSpec::error_rate_below(std::string src, std::string dst,
                                      double max_fraction) {
  CheckSpec c;
  c.kind = Kind::kErrorRateBelow;
  c.a = std::move(src);
  c.b = std::move(dst);
  c.value = max_fraction;
  return c;
}

CheckSpec CheckSpec::failure_contained(std::string origin) {
  CheckSpec c;
  c.kind = Kind::kFailureContained;
  c.a = std::move(origin);
  return c;
}

CheckSpec CheckSpec::max_user_failures(size_t max_failures) {
  CheckSpec c;
  c.kind = Kind::kMaxUserFailures;
  c.value = static_cast<double>(max_failures);
  return c;
}

CheckResult CheckSpec::evaluate(const control::AssertionChecker& checker,
                                const control::LoadResult& load) const {
  switch (kind) {
    case Kind::kHasTimeouts:
      return checker.has_timeouts(a, bound, id_pattern);
    case Kind::kHasBoundedRetries:
      return checker.has_bounded_retries(a, b, threshold, id_pattern);
    case Kind::kHasCircuitBreaker:
      return checker.has_circuit_breaker(a, b, threshold, bound,
                                         success_threshold, id_pattern);
    case Kind::kHasBulkhead:
      return checker.has_bulkhead(a, b, value, id_pattern);
    case Kind::kHasLatencySlo:
      return checker.has_latency_slo(a, b, percentile, bound, with_rule,
                                     id_pattern);
    case Kind::kErrorRateBelow:
      return checker.error_rate_below(a, b, value, id_pattern);
    case Kind::kFailureContained:
      return checker.failure_contained(a, id_pattern);
    case Kind::kMaxUserFailures: {
      const auto max_failures = static_cast<size_t>(value);
      CheckResult r;
      r.name = "MaxUserFailures(" + std::to_string(max_failures) + ")";
      r.passed = load.failures <= max_failures;
      r.detail = std::to_string(load.failures) + "/" +
                 std::to_string(load.total()) +
                 " injected requests saw a user-visible failure";
      return r;
    }
  }
  CheckResult r;
  r.name = "UnknownCheck";
  r.detail = "unhandled check kind";
  return r;
}

std::unique_ptr<control::IncrementalCheck> CheckSpec::incremental(
    const topology::AppGraph* graph, size_t expected_total) const {
  switch (kind) {
    case Kind::kHasTimeouts:
      return control::make_incremental_timeouts(a, bound, id_pattern);
    case Kind::kHasBoundedRetries:
      return control::make_incremental_bounded_retries(a, b, threshold,
                                                       id_pattern);
    case Kind::kHasCircuitBreaker:
      return control::make_incremental_circuit_breaker(
          a, b, threshold, bound, success_threshold, id_pattern);
    case Kind::kHasBulkhead:
      return control::make_incremental_bulkhead(graph, a, b, value,
                                                id_pattern);
    case Kind::kHasLatencySlo:
      return control::make_incremental_latency_slo(a, b, percentile, bound,
                                                   with_rule, id_pattern);
    case Kind::kErrorRateBelow:
      return control::make_incremental_error_rate(a, b, value, id_pattern);
    case Kind::kFailureContained:
      return nullptr;  // no incremental form: opaque, blocks early exit
    case Kind::kMaxUserFailures:
      return control::make_incremental_max_user_failures(
          static_cast<size_t>(value), expected_total);
  }
  return nullptr;
}

namespace {

// Builds the failure spec for one sweep point; returns a human-readable
// scenario label through `label`.
FailureSpec sweep_spec(FailureSpec::Kind kind, const std::string& src,
                       const std::string& dst, const SweepOptions& options,
                       std::string* label) {
  switch (kind) {
    case FailureSpec::Kind::kAbort:
      *label = "abort(" + src + "->" + dst + ")";
      return FailureSpec::abort_edge(src, dst, options.abort_error);
    case FailureSpec::Kind::kDelay:
      *label = "delay(" + src + "->" + dst + ")";
      return FailureSpec::delay_edge(src, dst, options.delay);
    case FailureSpec::Kind::kDisconnect:
      *label = "disconnect(" + src + "->" + dst + ")";
      return FailureSpec::disconnect(src, dst, options.abort_error);
    case FailureSpec::Kind::kCrash:
      *label = "crash(" + dst + ")";
      return FailureSpec::crash(dst);
    case FailureSpec::Kind::kOverload:
      *label = "overload(" + dst + ")";
      return FailureSpec::overload(dst);
    case FailureSpec::Kind::kHang:
      *label = "hang(" + dst + ")";
      return FailureSpec::hang(dst, options.hang);
    case FailureSpec::Kind::kInstanceCrash:
      *label = "instance_crash(" + dst + ")";
      return FailureSpec::instance_crash(dst, options.crash_after,
                                         options.crash_downtime);
    case FailureSpec::Kind::kRollingPartition:
      // A sweep isolates one service at a time; multi-member rolling
      // partitions come from recipes or hand-built experiment lists.
      *label = "rolling_partition(" + dst + ")";
      return FailureSpec::rolling_partition({dst}, options.crash_after,
                                            options.crash_downtime,
                                            options.crash_downtime);
    case FailureSpec::Kind::kSlowNode:
      *label = "slow_node(" + dst + ")";
      return FailureSpec::slow_node(dst, options.slow_mean);
    default:
      *label = "abort(" + src + "->" + dst + ")";
      return FailureSpec::abort_edge(src, dst, options.abort_error);
  }
}

bool is_edge_kind(FailureSpec::Kind kind) {
  return kind == FailureSpec::Kind::kAbort ||
         kind == FailureSpec::Kind::kDelay ||
         kind == FailureSpec::Kind::kDisconnect ||
         kind == FailureSpec::Kind::kModify;
}

std::string probability_label(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p);
  return buf;
}

// Cross-multiplies the probability and window axes onto a base sweep.
std::vector<Experiment> expand_axes(std::vector<Experiment> base,
                                    const SweepOptions& options) {
  if (options.probabilities.empty() && options.windows.empty()) return base;
  // A single-element sentinel keeps the cross product uniform; the flags
  // record whether the axis actually applies its value.
  const bool use_p = !options.probabilities.empty();
  const bool use_w = !options.windows.empty();
  const std::vector<double> probs =
      use_p ? options.probabilities : std::vector<double>{1.0};
  const std::vector<SweepOptions::Window> windows =
      use_w ? options.windows : std::vector<SweepOptions::Window>{{}};
  std::vector<Experiment> out;
  out.reserve(base.size() * probs.size() * windows.size());
  for (const auto& e : base) {
    for (const double p : probs) {
      for (const auto& w : windows) {
        Experiment clone = e;
        for (auto& spec : clone.failures) {
          if (use_p) spec.probability = p;
          if (use_w) {
            spec.after = w.after;
            spec.window = w.duration;
          }
        }
        if (use_p) clone.id += " p=" + probability_label(p);
        if (use_w) {
          clone.id += " w=" + format_duration(w.after) + "+" +
                      format_duration(w.duration);
        }
        out.push_back(std::move(clone));
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Experiment> generate_sweep(const AppSpec& app,
                                       const topology::AppGraph& graph,
                                       const SweepOptions& options) {
  std::string target = options.target;
  if (target.empty()) {
    // Load the entry point the graph exposes; skip excluded pseudo-services
    // (the edge client itself has no callers either).
    for (const auto& entry : graph.entry_points()) {
      if (options.exclude.count(entry) == 0 && entry != options.client) {
        target = entry;
        break;
      }
    }
    if (target.empty()) {
      // The client is usually the graph's only root ("user" -> svc0):
      // load the front door it calls.
      for (const auto& edge : graph.edges()) {
        if (edge.src == options.client) {
          target = edge.dst;
          break;
        }
      }
    }
  }

  std::vector<CheckSpec> checks = options.checks;
  if (checks.empty()) checks.push_back(CheckSpec::max_user_failures(0));

  // The load entry edge is not a fault target: killing the user-facing
  // front door is trivially user-visible and says nothing about failure
  // handling (same exclusion bench_ablation applied by hand).
  std::set<std::string> excluded = options.exclude;
  excluded.insert(options.client);
  if (!target.empty()) excluded.insert(target);

  std::vector<Experiment> experiments;
  for (const auto kind : options.kinds) {
    if (is_edge_kind(kind)) {
      for (const auto& edge : graph.edges()) {
        // Only the callee side disqualifies an edge: faulting calls *into*
        // the front door is trivially user-visible, but the front door's
        // own outbound edges are exactly what a sweep must cover.
        if (excluded.count(edge.dst) != 0) continue;
        Experiment e;
        e.app = app;
        e.failures.push_back(
            sweep_spec(kind, edge.src, edge.dst, options, &e.id));
        e.client = options.client;
        e.target = target;
        e.load = options.load;
        e.checks = checks;
        e.seed = options.seed;
        experiments.push_back(std::move(e));
      }
    } else {
      for (const auto& service : graph.services()) {
        if (excluded.count(service) != 0) continue;
        Experiment e;
        e.app = app;
        e.failures.push_back(sweep_spec(kind, "", service, options, &e.id));
        e.client = options.client;
        e.target = target;
        e.load = options.load;
        e.checks = checks;
        e.seed = options.seed;
        experiments.push_back(std::move(e));
      }
    }
  }
  return expand_axes(std::move(experiments), options);
}

std::vector<Experiment> replicate_seeds(const std::vector<Experiment>& base,
                                        const std::vector<uint64_t>& seeds) {
  std::vector<Experiment> out;
  out.reserve(base.size() * seeds.size());
  for (const auto& e : base) {
    for (const uint64_t seed : seeds) {
      Experiment clone = e;
      clone.seed = seed;
      clone.id += " seed=" + std::to_string(seed);
      out.push_back(std::move(clone));
    }
  }
  return out;
}

}  // namespace gremlin::campaign
