// Experiment: one declarative resilience test, and generators that
// systematically enumerate experiments from an application graph.
//
// The paper's pitch (Section 4) is *systematic* testing: instead of
// hand-writing one imperative TestSession flow per scenario, an Experiment
// is a value — (app spec, failure specs, load shape, assertion set, seed) —
// that the CampaignRunner can execute on a private Simulation, thousands at
// a time. Generators produce per-edge and per-service sweeps over an
// AppGraph (the "enumerate every failure the graph admits" loop that
// bench_ablation_systematic_vs_random and FastFI-style campaigns need),
// and multi-seed replication turns any experiment list into a statistical
// ensemble.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "campaign/app_spec.h"
#include "control/checker.h"
#include "control/failures.h"
#include "control/online.h"
#include "control/recipe.h"

namespace gremlin::campaign {

// A declarative assertion: what to check once the experiment's logs are
// collected. Mirrors the AssertionChecker surface as data so experiments
// can be generated, serialized, and compared.
struct CheckSpec {
  enum class Kind {
    kHasTimeouts,        // a: service;       bound = max latency
    kHasBoundedRetries,  // a→b;              threshold = max tries
    kHasCircuitBreaker,  // a→b;              threshold, bound = tdelta,
                         //                   success_threshold
    kHasBulkhead,        // a: src, b: slow;  value = min rate (req/s)
    kHasLatencySlo,      // a→b;              percentile, bound, with_rule
    kErrorRateBelow,     // a→b;              value = max failed fraction
    kFailureContained,   // a: origin service
    kMaxUserFailures,    // value = max user-visible load failures
  };

  Kind kind = Kind::kMaxUserFailures;
  std::string a;
  std::string b;
  Duration bound{};
  double value = 0;
  double percentile = 99;
  int threshold = 5;
  int success_threshold = 1;
  bool with_rule = true;
  std::string id_pattern = "*";

  // Factories mirroring control::AssertionChecker.
  static CheckSpec has_timeouts(std::string service, Duration max_latency);
  static CheckSpec has_bounded_retries(std::string src, std::string dst,
                                       int max_tries);
  static CheckSpec has_circuit_breaker(std::string src, std::string dst,
                                       int threshold, Duration tdelta,
                                       int success_threshold = 1);
  static CheckSpec has_bulkhead(std::string src, std::string slow_dst,
                                double min_rate);
  static CheckSpec has_latency_slo(std::string src, std::string dst,
                                   double percentile, Duration bound,
                                   bool with_rule = true);
  static CheckSpec error_rate_below(std::string src, std::string dst,
                                    double max_fraction);
  static CheckSpec failure_contained(std::string origin);
  static CheckSpec max_user_failures(size_t max_failures);

  // Evaluates against the collected logs (and the load outcome, for
  // kMaxUserFailures).
  control::CheckResult evaluate(const control::AssertionChecker& checker,
                                const control::LoadResult& load) const;

  // Incremental (online) equivalent: a state machine fed one record at a
  // time while the experiment runs, enabling early termination the moment
  // every attached check has a final verdict. Returns nullptr for kinds
  // with no incremental form (kFailureContained) — an opaque check that
  // blocks early exit; the runner falls back to evaluate() for it.
  // `expected_total` is the configured load count (kMaxUserFailures can
  // early-PASS once all responses arrived within budget); `graph` is
  // needed by kHasBulkhead's dependency enumeration.
  std::unique_ptr<control::IncrementalCheck> incremental(
      const topology::AppGraph* graph, size_t expected_total) const;
};

// One isolated experiment. Executed by CampaignRunner::run_one on a fresh
// Simulation seeded with `seed`: build app → apply failures → run load →
// collect logs → evaluate checks.
struct Experiment {
  std::string id;  // unique within a campaign, e.g. "crash(svc2) seed=7"
  AppSpec app;
  std::vector<control::FailureSpec> failures;
  std::string client = "user";
  std::string target;  // load destination; empty → first graph entry point
  control::LoadOptions load;
  std::vector<CheckSpec> checks;
  uint64_t seed = 42;

  // Escape hatch for imperative, chained scenarios (e.g. the Table 1
  // outage recipes): when set, the hook replaces the declarative
  // failures/load/checks body and returns the assertion outcomes itself.
  std::function<std::vector<control::CheckResult>(control::TestSession*)>
      custom;
};

// Options shared by the sweep generators.
struct SweepOptions {
  // Failure kinds to enumerate. Edge kinds (kAbort, kDelay, kDisconnect)
  // produce one experiment per graph edge; service kinds (kCrash,
  // kOverload, kHang) one per service.
  std::vector<control::FailureSpec::Kind> kinds = {
      control::FailureSpec::Kind::kAbort,
      control::FailureSpec::Kind::kDelay,
      control::FailureSpec::Kind::kOverload,
      control::FailureSpec::Kind::kCrash,
      control::FailureSpec::Kind::kDisconnect,
  };

  // Services never targeted (nor used as fault sources): typically the
  // edge client and the user-facing entry point, whose failure is
  // trivially user-visible.
  std::set<std::string> exclude = {"user"};

  control::LoadOptions load;  // load shape shared by every experiment
  std::string client = "user";
  std::string target;  // empty → first entry point of the graph

  // Checks attached to every experiment. Empty → the canonical sweep
  // verdict: no user-visible failures (CheckSpec::max_user_failures(0)).
  std::vector<CheckSpec> checks;

  uint64_t seed = 42;
  int abort_error = 503;
  Duration delay = msec(100);
  Duration hang = hours(1);

  // Parameters for the infra-level service kinds (kInstanceCrash,
  // kRollingPartition, kSlowNode).
  Duration crash_after{};             // outage start on the virtual clock
  Duration crash_downtime = msec(200);
  Duration slow_mean = msec(50);      // kSlowNode exponential delay mean

  // Parameter axes. When non-empty, every generated experiment is
  // replicated once per probability (id suffixed " p=<v>") and once per
  // activation window (" w=<after>+<duration>"), with the value applied to
  // each of the clone's failure specs. Both axes cross-multiply.
  std::vector<double> probabilities;
  struct Window {
    Duration after{};
    Duration duration{};  // zero = open-ended
  };
  std::vector<Window> windows;
};

// Enumerates one experiment per (edge|service) × kind over `graph`
// (which must be the spec's logical graph, e.g. app.probe_graph()).
std::vector<Experiment> generate_sweep(const AppSpec& app,
                                       const topology::AppGraph& graph,
                                       const SweepOptions& options = {});

// Multi-seed replication: the cross product experiments × seeds, each
// clone re-seeded and its id suffixed with " seed=<s>".
std::vector<Experiment> replicate_seeds(const std::vector<Experiment>& base,
                                        const std::vector<uint64_t>& seeds);

}  // namespace gremlin::campaign
