#include "campaign/warm_world.h"

namespace gremlin::campaign {

ExperimentResult WarmWorld::run(const Experiment& experiment,
                                const ExecOptions& exec) {
  if (experiment.custom || !app_.reusable) {
    // Cold fallback: the custom hook owns the session and may mutate the
    // deployment in ways reset() cannot undo.
    return CampaignRunner::run_one(experiment, exec);
  }
  const bool fresh = sim_ == nullptr;
  if (fresh) {
    sim::SimulationConfig cfg;
    cfg.seed = experiment.seed;
    cfg.event_pool = event_pool_;
    cfg.memory = memory_;
    cfg.use_timer_wheel = exec.use_timer_wheel;
    sim_ = std::make_unique<sim::Simulation>(cfg);
    graph_ = app_.instantiate(sim_.get());
  }
  if (exec.use_snapshots) {
    if (auto result = snapshot_cache_.run(experiment, sim_.get(), &graph_,
                                          &rule_cache_, exec)) {
      ++runs_;
      return std::move(*result);
    }
    // Ineligible (or not reproducible from a snapshot); the attempt may
    // have dirtied the sim, so reset before the normal warm path.
    sim_->reset(experiment.seed);
  } else if (!fresh) {
    sim_->reset(experiment.seed);
  }
  ++runs_;
  return CampaignRunner::run_prepared(experiment, sim_.get(), &graph_,
                                      &rule_cache_, exec);
}

}  // namespace gremlin::campaign
