#include "campaign/warm_world.h"

namespace gremlin::campaign {

ExperimentResult WarmWorld::run(const Experiment& experiment,
                                const ExecOptions& exec) {
  if (experiment.custom || !app_.reusable) {
    // Cold fallback: the custom hook owns the session and may mutate the
    // deployment in ways reset() cannot undo.
    return CampaignRunner::run_one(experiment, exec);
  }
  if (sim_ == nullptr) {
    sim::SimulationConfig cfg;
    cfg.seed = experiment.seed;
    cfg.event_pool = event_pool_;
    cfg.memory = memory_;
    cfg.use_timer_wheel = exec.use_timer_wheel;
    sim_ = std::make_unique<sim::Simulation>(cfg);
    graph_ = app_.instantiate(sim_.get());
  } else {
    sim_->reset(experiment.seed);
  }
  ++runs_;
  return CampaignRunner::run_prepared(experiment, sim_.get(), &graph_,
                                      &rule_cache_, exec);
}

}  // namespace gremlin::campaign
