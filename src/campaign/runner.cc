#include "campaign/runner.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "campaign/execution_context.h"
#include "campaign/process_pool.h"
#include "campaign/warm_world.h"
#include "control/collector.h"
#include "control/online.h"

namespace gremlin::campaign {

namespace {

// Serializes a Duration exactly (tick count), so fingerprints are
// byte-identical iff the underlying values are.
void append_duration(std::string* out, Duration d) {
  *out += std::to_string(d.count());
  *out += ',';
}

}  // namespace

std::string ExperimentResult::fingerprint() const {
  std::string out;
  out += id;
  out += '|';
  out += std::to_string(seed);
  out += '|';
  out += ok ? '1' : '0';
  out += error;
  out += '|';
  out += std::to_string(rules_installed);
  out += '|';
  for (const auto& check : checks) {
    out += check.passed ? "P:" : "F:";
    out += check.name;
    out += '=';
    out += check.detail;
    out += ';';
  }
  out += '|';
  out += std::to_string(requests);
  out += ',';
  out += std::to_string(failures);
  out += '|';
  for (const Duration d : latencies) append_duration(&out, d);
  out += '|';
  for (const int s : statuses) {
    out += std::to_string(s);
    out += ',';
  }
  out += '\n';
  return out;
}

std::string ExperimentResult::verdict_fingerprint() const {
  std::string out;
  out += id;
  out += '|';
  out += std::to_string(seed);
  out += '|';
  out += ok ? '1' : '0';
  out += error;
  out += '|';
  for (const auto& check : checks) {
    out += check.passed ? "P:" : "F:";
    out += check.name;
    out += ';';
  }
  out += '\n';
  return out;
}

size_t CampaignResult::passed() const {
  size_t n = 0;
  for (const auto& e : experiments) {
    if (e.passed()) ++n;
  }
  return n;
}

size_t CampaignResult::failed() const {
  size_t n = 0;
  for (const auto& e : experiments) {
    if (e.ok && !e.passed()) ++n;
  }
  return n;
}

size_t CampaignResult::errors() const {
  size_t n = 0;
  for (const auto& e : experiments) {
    if (!e.ok) ++n;
  }
  return n;
}

std::string CampaignResult::fingerprint() const {
  std::string out;
  for (const auto& e : experiments) out += e.fingerprint();
  return out;
}

std::string CampaignResult::verdict_fingerprint() const {
  std::string out;
  for (const auto& e : experiments) out += e.verdict_fingerprint();
  return out;
}

CampaignRunner::CampaignRunner(RunnerOptions options)
    : options_(std::move(options)) {}

int CampaignRunner::resolved_threads() const {
  if (options_.threads > 0) return options_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ExperimentResult CampaignRunner::run_one(const Experiment& experiment,
                                         bool keep_latencies) {
  ExecOptions exec;
  exec.keep_latencies = keep_latencies;
  return run_one(experiment, exec);
}

ExperimentResult CampaignRunner::run_in(const Experiment& experiment,
                                        sim::Simulation* sim,
                                        bool keep_latencies) {
  // Kept-alive callers predate online checking and read sim->log_store()
  // after the run (call-graph extraction, the pruner baseline): run to
  // quiescence with the full log retained.
  ExecOptions exec;
  exec.keep_latencies = keep_latencies;
  exec.early_exit = false;
  exec.preserve_log = true;
  return run_in(experiment, sim, exec);
}

ExperimentResult CampaignRunner::run_one(const Experiment& experiment,
                                         const ExecOptions& exec) {
  // A fully private deployment: clock, RNG, log store, services, agents.
  sim::SimulationConfig cfg;
  cfg.seed = experiment.seed;
  cfg.use_timer_wheel = exec.use_timer_wheel;
  sim::Simulation sim(cfg);
  return run_in(experiment, &sim, exec);
}

ExperimentResult CampaignRunner::run_in(const Experiment& experiment,
                                        sim::Simulation* sim,
                                        const ExecOptions& exec) {
  return run_prepared(experiment, sim, nullptr, nullptr, exec);
}

ExperimentResult CampaignRunner::run_prepared(const Experiment& experiment,
                                              sim::Simulation* sim_ptr,
                                              const topology::AppGraph* graph,
                                              control::RuleCache* rule_cache,
                                              const ExecOptions& exec) {
  ExperimentResult result;
  result.id = experiment.id;
  result.seed = experiment.seed;

  sim::Simulation& sim = *sim_ptr;
  topology::AppGraph local_graph;
  if (graph == nullptr) {
    local_graph = experiment.app.instantiate(&sim);
    graph = &local_graph;
  }
  control::TestSession session(&sim, graph);

  if (experiment.custom) {
    result.checks = experiment.custom(&session);
    for (const auto& check : result.checks) {
      if (check.passed) ++result.checks_passed;
    }
    result.ok = true;
    return result;
  }

  for (const auto& spec : experiment.failures) {
    auto installed = session.apply(spec, rule_cache);
    if (!installed.ok()) {
      result.error = "apply " + std::string(spec.kind_name()) + ": " +
                     installed.error().message;
      return result;
    }
    result.rules_installed += installed.value();
  }

  std::string target = experiment.target;
  if (target.empty()) {
    for (const auto& entry : graph->entry_points()) {
      if (entry != experiment.client) {
        target = entry;
        break;
      }
    }
  }
  if (target.empty()) {
    // The client is usually the graph's only root ("user" -> svc0): load
    // the front door it calls.
    for (const auto& edge : graph->edges()) {
      if (edge.src == experiment.client) {
        target = edge.dst;
        break;
      }
    }
  }
  if (target.empty()) {
    result.error = "no load target: graph has no entry point";
    return result;
  }

  // --- online checker pipeline ---------------------------------------
  // One incremental state machine per declarative check, fed every log
  // record the moment it is appended (plus every user-visible response).
  // Verdicts are sticky; once all of them are final the remaining
  // simulation cannot change the outcome, so the run stops early. A check
  // with no incremental form (FailureContained) disables the whole online
  // path for this experiment: the run falls back to the untouched post-hoc
  // flow, byte-identical to early_exit=false.
  control::OnlineChecker online;
  bool use_online = exec.early_exit && !experiment.checks.empty();
  if (use_online) {
    for (const auto& spec : experiment.checks) {
      online.add(spec.incremental(graph, experiment.load.count));
    }
    if (!online.all_incremental()) use_online = false;
  }
  const bool wants_records = use_online && online.wants_records();
  // Load-only check sets that also skip the post-hoc collect never read a
  // single record. Rather than buffering ~1k records per run in the
  // sidecars and draining them onto the floor, switch observation capture
  // off for the whole run: the data plane skips LogRecord construction
  // entirely. Fault injection and the event timeline are untouched, so
  // results stay byte-identical (the records never reached a fingerprint
  // in this mode anyway).
  const bool suppress_records =
      use_online && !exec.preserve_log && !wants_records;
  const bool bounded =
      wants_records && !exec.preserve_log && exec.retention_limit > 0;
  const bool stream = wants_records;

  std::optional<control::SimStreamCollector> collector;
  if (stream) {
    // Record-consuming checks need the stream shipped into the store (the
    // append observer feeds them).
    collector.emplace(&sim, control::SimStreamCollector::Mode::kAppendToStore,
                      exec.stream_interval);
  }
  if (suppress_records) sim.set_recording(false);
  if (wants_records) {
    sim.log_store().set_observer([&online, &sim](
                                     const logstore::LogRecord& record) {
      online.offer(record);
      if (online.all_decided()) sim.request_stop();
    });
    if (bounded) sim.log_store().set_retention_limit(exec.retention_limit);
  }
  if (use_online) {
    session.set_response_observer([&online, &sim](bool failed) {
      online.on_user_response(failed);
      if (online.all_decided()) sim.request_stop();
    });
    if (stream) collector->start();
  }

  const control::LoadResult load =
      session.run_load(experiment.client, target, experiment.load);
  result.requests = load.total();
  result.failures = load.failures;
  result.early_terminated = load.stopped_early;
  if (exec.keep_latencies) {
    result.latencies = load.latencies;
    result.statuses = load.statuses;
  }

  if (stream) collector->drain_now();  // final flush feeds the checks' tail
  if (wants_records) {
    sim.log_store().set_observer(nullptr);
    sim.log_store().set_retention_limit(0);
  }
  session.set_response_observer(nullptr);
  if (suppress_records) sim.set_recording(true);
  // Drop whatever an early stop left on the timeline (and the collector's
  // pending drain), so a kept-alive sim is clean for its next run.
  sim.cancel_pending();

  // When every check already consumed the stream online and nobody needs
  // the log afterwards, the post-hoc collect is pure overhead — skip it.
  const bool skip_collect = use_online && !exec.preserve_log;
  if (!skip_collect) {
    auto collected = session.collect();
    if (!collected.ok()) {
      result.error = "collect: " + collected.error().message;
      return result;
    }
  }

  if (use_online) {
    const control::LoadSummary summary{load.total(), load.failures};
    for (size_t i = 0; i < online.size(); ++i) {
      control::CheckResult outcome = online.check(i)->finalize(summary);
      if (outcome.passed) ++result.checks_passed;
      result.checks.push_back(std::move(outcome));
    }
  } else {
    const control::AssertionChecker checker = session.checker();
    for (const auto& check : experiment.checks) {
      control::CheckResult outcome = check.evaluate(checker, load);
      if (outcome.passed) ++result.checks_passed;
      result.checks.push_back(std::move(outcome));
    }
  }
  result.ok = true;
  return result;
}

CampaignResult CampaignRunner::run(
    const std::vector<Experiment>& experiments) const {
  // Multi-process sharding: fork worker processes and merge their streamed
  // results in experiment order (campaign/process_pool). Byte-identical to
  // the in-process paths below; a batch of one experiment gains nothing
  // from a fork, so it stays in-process.
  if (options_.procs > 1 && experiments.size() > 1 && multiproc_available()) {
    return run_multiproc(experiments, options_);
  }

  CampaignResult campaign;
  campaign.experiments.resize(experiments.size());
  campaign.threads = resolved_threads();
  const auto start = std::chrono::steady_clock::now();

  const size_t n = experiments.size();
  const int threads =
      static_cast<int>(std::min<size_t>(campaign.threads, n == 0 ? 1 : n));

  ExecOptions exec;
  exec.keep_latencies = options_.keep_latencies;
  exec.early_exit = options_.early_exit;
  exec.use_timer_wheel = options_.use_timer_wheel;
  exec.use_snapshots = options_.use_snapshots;

  std::mutex result_mu;  // guards options_.on_result only
  auto finish = [&](ExperimentResult&& r, size_t index) {
    campaign.experiments[index] = std::move(r);
    if (options_.on_result) {
      std::lock_guard lock(result_mu);
      options_.on_result(campaign.experiments[index]);
    }
  };

  if (threads <= 1) {
    // The inline worker gets the same per-worker context the parallel path
    // uses (shard interning, pooled allocation, shared event pool), so the
    // two paths execute byte-identically by construction.
    ExecutionContext ctx(options_.warm_worlds);
    ScopedShardSymbols bind_symbols(&ctx.symbols());
    for (size_t i = 0; i < n; ++i) {
      finish(ctx.execute(experiments[i], exec), i);
      ctx.merge();  // result boundary: publish new names, usually empty
    }
  } else {
    // Work-stealing pool: per-worker deques seeded with a strided share of
    // the index space; an idle worker pops from its own front, then steals
    // from the back of the fullest peer. Each result is written to a
    // distinct slot of the pre-sized vector, so workers share no mutable
    // experiment state.
    struct WorkerQueue {
      std::mutex mu;
      std::deque<size_t> tasks;
    };
    std::vector<WorkerQueue> queues(static_cast<size_t>(threads));
    for (size_t i = 0; i < n; ++i) {
      queues[i % static_cast<size_t>(threads)].tasks.push_back(i);
    }

    auto worker = [&](size_t self) {
      // Worker-private execution context: warm worlds, symbol shard, and
      // allocation pools, none of it shared. Determinism is unaffected
      // because a reset world is byte-equivalent to a fresh one and
      // fingerprints carry no Symbol ids.
      ExecutionContext ctx(options_.warm_worlds);
      ScopedShardSymbols bind_symbols(&ctx.symbols());
      for (;;) {
        size_t index = n;  // sentinel: nothing claimed
        {
          std::lock_guard lock(queues[self].mu);
          if (!queues[self].tasks.empty()) {
            index = queues[self].tasks.front();
            queues[self].tasks.pop_front();
          }
        }
        if (index == n) {
          // Own deque empty: steal from the peer with the most work left.
          size_t victim = queues.size();
          size_t victim_depth = 0;
          for (size_t q = 0; q < queues.size(); ++q) {
            if (q == self) continue;
            std::lock_guard lock(queues[q].mu);
            if (queues[q].tasks.size() > victim_depth) {
              victim_depth = queues[q].tasks.size();
              victim = q;
            }
          }
          if (victim == queues.size()) return;  // everything drained
          std::lock_guard lock(queues[victim].mu);
          if (queues[victim].tasks.empty()) continue;  // raced; rescan
          index = queues[victim].tasks.back();
          queues[victim].tasks.pop_back();
        }
        finish(ctx.execute(experiments[index], exec), index);
        ctx.merge();  // result boundary: publish new names, usually empty
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker, static_cast<size_t>(t));
    }
    for (auto& t : pool) t.join();
  }

  campaign.wall_clock = std::chrono::duration_cast<Duration>(
      std::chrono::steady_clock::now() - start);
  return campaign;
}

}  // namespace gremlin::campaign
