#include "campaign/process_pool.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <new>
#include <string>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/execution_context.h"
#include "campaign/result_codec.h"
#include "common/wire.h"

namespace gremlin::campaign {

namespace {

// ---------------------------------------------------------------------------
// Shared-memory lease protocol.

struct Range {
  uint64_t begin = 0;
  uint64_t end = 0;  // half-open
};

// Ranges a dead worker claimed but never delivered wait here for a
// survivor. Sized far beyond any realistic crash count — overflow falls
// back to parent-inline execution.
constexpr uint32_t kRecoverySlots = 256;

// Lease chunk ceiling: even the first leases stay small enough that a
// crash re-queues bounded work and the tail degenerates to single
// experiments (work-stealing semantics: whoever is fast drains it).
constexpr uint64_t kMaxChunk = 64;

// One anonymous MAP_SHARED page, mapped before fork, visible to parent and
// every worker. The cursor is the whole steady-state protocol: a lease is
// one fetch_add. The recovery ring only sees traffic when a worker dies.
struct SharedControl {
  std::atomic<uint64_t> cursor{0};
  std::atomic<uint32_t> done{0};
  std::atomic<uint32_t> ring_lock{0};  // spinlock over ring_count + ring
  uint32_t ring_count = 0;
  uint64_t total = 0;
  uint32_t workers = 1;  // procs × threads, for chunk sizing
  Range ring[kRecoverySlots];
};

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "shared-memory cursor must be lock-free across processes");
static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "shared-memory flags must be lock-free across processes");

class RingLock {
 public:
  explicit RingLock(SharedControl* ctl) : ctl_(ctl) {
    while (ctl_->ring_lock.exchange(1, std::memory_order_acquire) != 0) {
      // Contended only during crash recovery; critical sections are a few
      // loads/stores, so spinning is fine.
    }
  }
  ~RingLock() { ctl_->ring_lock.store(0, std::memory_order_release); }

 private:
  SharedControl* ctl_;
};

bool ring_pop(SharedControl* ctl, Range* out) {
  if (ctl->ring_count == 0) return false;  // racy fast-path peek
  RingLock lock(ctl);
  if (ctl->ring_count == 0) return false;
  *out = ctl->ring[--ctl->ring_count];
  return true;
}

// Pushes as many of the n ranges as fit; returns how many were taken.
size_t ring_push(SharedControl* ctl, const Range* ranges, size_t n) {
  RingLock lock(ctl);
  size_t pushed = 0;
  while (pushed < n && ctl->ring_count < kRecoverySlots) {
    ctl->ring[ctl->ring_count++] = ranges[pushed++];
  }
  return pushed;
}

std::vector<Range> ring_ranges(SharedControl* ctl) {
  RingLock lock(ctl);
  return std::vector<Range>(ctl->ring, ctl->ring + ctl->ring_count);
}

// Claims the next lease: recovery ranges first (a re-queued dead shard
// beats fresh tail work), then a cursor chunk sized to the remaining work
// per live execution thread. Blocks polling the ring once the cursor is
// drained — the parent may still re-queue a crashed sibling's lease — and
// returns false only when the parent raises the done flag.
bool claim_lease(SharedControl* ctl, Range* out) {
  for (;;) {
    if (ring_pop(ctl, out)) return true;
    uint64_t cur = ctl->cursor.load(std::memory_order_relaxed);
    if (cur >= ctl->total) {
      if (ctl->done.load(std::memory_order_acquire) != 0) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    const uint64_t remaining = ctl->total - cur;
    const uint64_t chunk = std::clamp<uint64_t>(
        remaining / (static_cast<uint64_t>(ctl->workers) * 4), 1, kMaxChunk);
    if (ctl->cursor.compare_exchange_weak(cur, cur + chunk,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      *out = Range{cur, cur + chunk};
      return true;
    }
  }
}

// ---------------------------------------------------------------------------
// Pipe frames. A worker announces every lease before executing it, so the
// parent always knows which indices a dead worker owned.

constexpr uint8_t kLeaseFrame = 1;
constexpr uint8_t kResultFrame = 2;

// ---------------------------------------------------------------------------
// Worker (child) side.

struct WorkerShared {
  int fd = -1;
  std::mutex write_mu;  // frames from sibling threads must not interleave
  SharedControl* ctl = nullptr;
  const std::vector<Experiment>* experiments = nullptr;
  ExecOptions exec;
  bool warm_worlds = true;
  int threads = 1;
  std::atomic<bool> io_failed{false};
};

bool send_frame(WorkerShared* ws, const std::string& payload) {
  std::lock_guard lock(ws->write_mu);
  if (!wire::write_frame(ws->fd, payload)) {
    ws->io_failed.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

// One execution thread: a private ExecutionContext (warm worlds, symbol
// shard, pools — exactly what an in-process campaign worker binds), a loop
// of leases, one result frame per experiment. Identical inputs produce
// identical ExperimentResults regardless of which process or thread runs
// them, which is the whole byte-identity argument.
void worker_thread_loop(WorkerShared* ws) {
  ExecutionContext ctx(ws->warm_worlds);
  ScopedShardSymbols bind_symbols(&ctx.symbols());
  Range lease;
  while (claim_lease(ws->ctl, &lease)) {
    {
      wire::Writer w;
      w.u8(kLeaseFrame);
      w.u64(lease.begin);
      w.u64(lease.end);
      if (!send_frame(ws, w.buffer())) return;  // parent died; stop quietly
    }
    for (uint64_t i = lease.begin; i < lease.end; ++i) {
      ExperimentResult result = ctx.execute((*ws->experiments)[i], ws->exec);
      ctx.merge();  // stringification boundary: names are strings below here
      wire::Writer w;
      w.u8(kResultFrame);
      w.u64(i);
      encode_result(result, &w);
      if (!send_frame(ws, w.buffer())) return;
    }
  }
}

[[noreturn]] void worker_main(WorkerShared* ws) {
  // SIGPIPE on a dead parent must not kill the worker mid-frame; write()
  // returns EPIPE and the loop exits instead.
  ::signal(SIGPIPE, SIG_IGN);
  if (ws->threads <= 1) {
    // Inline: no threads are ever created in the child (keeps forked
    // execution simple and sanitizer-friendly at the default 1 thread).
    worker_thread_loop(ws);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(ws->threads));
    for (int t = 0; t < ws->threads; ++t) {
      pool.emplace_back(worker_thread_loop, ws);
    }
    for (auto& t : pool) t.join();
  }
  // _exit: no destructors, no atexit — the child shares the parent's stdio
  // buffers and must not flush them a second time.
  ::close(ws->fd);
  ::_exit(ws->io_failed.load(std::memory_order_relaxed) ? 1 : 0);
}

// ---------------------------------------------------------------------------
// Parent side.

struct WorkerState {
  pid_t pid = -1;
  int fd = -1;
  bool alive = false;
  wire::FrameBuffer frames;
  std::vector<Range> announced;  // leases this worker committed to
};

void mark_covered(std::vector<uint8_t>* covered, const Range& r) {
  const uint64_t end = std::min<uint64_t>(r.end, covered->size());
  for (uint64_t i = std::min<uint64_t>(r.begin, end); i < end; ++i) {
    (*covered)[i] = 1;
  }
}

// Coalesces ascending indices into maximal contiguous ranges.
std::vector<Range> to_ranges(const std::vector<uint64_t>& indices) {
  std::vector<Range> out;
  for (const uint64_t i : indices) {
    if (!out.empty() && out.back().end == i) {
      ++out.back().end;
    } else {
      out.push_back(Range{i, i + 1});
    }
  }
  return out;
}

}  // namespace

bool multiproc_available() { return true; }

CampaignResult run_multiproc(const std::vector<Experiment>& experiments,
                             const RunnerOptions& options,
                             const MultiprocHooks* hooks) {
  const auto start = std::chrono::steady_clock::now();
  const size_t n = experiments.size();

  CampaignResult campaign;
  campaign.experiments.resize(n);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int procs = static_cast<int>(
      std::min<size_t>(std::max(options.procs, 1), std::max<size_t>(n, 1)));
  // threads=0 splits the machine across the shards instead of
  // oversubscribing it procs times.
  const int threads =
      options.threads > 0
          ? options.threads
          : std::max(1, static_cast<int>(hw) / std::max(procs, 1));
  campaign.procs = procs;
  campaign.threads = threads;

  ExecOptions exec;
  exec.keep_latencies = options.keep_latencies;
  exec.early_exit = options.early_exit;
  exec.use_timer_wheel = options.use_timer_wheel;
  exec.use_snapshots = options.use_snapshots;

  // Everything below degrades to "parent runs it inline" — fork failure,
  // ring overflow, total worker die-off all land in these helpers.
  std::vector<uint8_t> delivered(n, 0);
  size_t delivered_count = 0;
  auto run_inline_one = [&](ExecutionContext* ctx, size_t i) {
    if (delivered[i]) return;
    campaign.experiments[i] = ctx->execute(experiments[i], exec);
    ctx->merge();
    delivered[i] = 1;
    ++delivered_count;
    if (options.on_result) options.on_result(campaign.experiments[i]);
  };
  auto run_inline_remaining = [&]() {
    ExecutionContext ctx(options.warm_worlds);
    ScopedShardSymbols bind_symbols(&ctx.symbols());
    for (size_t i = 0; i < n; ++i) run_inline_one(&ctx, i);
  };

  SharedControl* ctl = static_cast<SharedControl*>(
      ::mmap(nullptr, sizeof(SharedControl), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  if (ctl == MAP_FAILED) {
    run_inline_remaining();
    campaign.procs = 1;
    campaign.wall_clock = std::chrono::duration_cast<Duration>(
        std::chrono::steady_clock::now() - start);
    return campaign;
  }
  new (ctl) SharedControl;
  ctl->total = n;
  ctl->workers = static_cast<uint32_t>(procs * threads);

  WorkerShared ws;
  ws.ctl = ctl;
  ws.experiments = &experiments;
  ws.exec = exec;
  ws.warm_worlds = options.warm_worlds;
  ws.threads = threads;

  // Spawn shards. The parent closes each write end right after forking its
  // owner, and every child closes the read ends of earlier siblings it
  // inherited, so a crashed shard's EOF reaches the parent even while
  // other children live.
  std::vector<WorkerState> workers(static_cast<size_t>(procs));
  // Parent-buffered printf output would be duplicated into every child.
  std::fflush(nullptr);
  for (int w = 0; w < procs; ++w) {
    int fds[2];
    if (::pipe(fds) != 0) break;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      break;
    }
    if (pid == 0) {
      // Child: keep only our write end.
      ::close(fds[0]);
      for (int other = 0; other < w; ++other) {
        if (workers[static_cast<size_t>(other)].fd >= 0) {
          ::close(workers[static_cast<size_t>(other)].fd);
        }
      }
      ws.fd = fds[1];
      worker_main(&ws);  // never returns
    }
    ::close(fds[1]);
    // Non-blocking reads: the parent drains whatever is buffered and gets
    // EAGAIN instead of blocking behind a tail-waiting worker.
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    workers[static_cast<size_t>(w)].pid = pid;
    workers[static_cast<size_t>(w)].fd = fds[0];
    workers[static_cast<size_t>(w)].alive = true;
  }

  size_t alive = 0;
  for (const auto& w : workers) {
    if (w.alive) ++alive;
  }

  auto handle_frame = [&](WorkerState* w, std::string_view payload) {
    wire::Reader r(payload);
    const uint8_t type = r.u8();
    if (type == kLeaseFrame) {
      Range lease;
      lease.begin = r.u64();
      lease.end = r.u64();
      if (r.ok()) w->announced.push_back(lease);
    } else if (type == kResultFrame) {
      const uint64_t index = r.u64();
      ExperimentResult result;
      if (!r.ok() || index >= n) return;
      if (!decode_result(&r, &result) || r.remaining() != 0) return;
      // Crash recovery can execute an index twice; deliveries are
      // byte-identical by determinism, keep the first.
      if (delivered[index]) return;
      campaign.experiments[index] = std::move(result);
      delivered[index] = 1;
      ++delivered_count;
      if (options.on_result) options.on_result(campaign.experiments[index]);
    }
  };

  // Re-queues every claimed-but-undelivered index that no live worker owns:
  // leases announced by dead workers, plus claims whose announcement died
  // in the pipe. Exact modulo in-flight announcements, and a false
  // positive only duplicates deterministic work.
  auto requeue_lost = [&]() {
    if (delivered_count >= n) return;
    const uint64_t cursor =
        std::min<uint64_t>(ctl->cursor.load(std::memory_order_acquire), n);
    std::vector<uint8_t> covered(n, 0);
    for (const auto& w : workers) {
      if (!w.alive) continue;
      for (const Range& r : w.announced) mark_covered(&covered, r);
    }
    for (const Range& r : ring_ranges(ctl)) mark_covered(&covered, r);
    std::vector<uint64_t> lost;
    for (uint64_t i = 0; i < cursor; ++i) {
      if (!delivered[i] && !covered[i]) lost.push_back(i);
    }
    if (lost.empty()) return;
    const std::vector<Range> ranges = to_ranges(lost);
    size_t pushed = 0;
    if (alive > 0) {
      pushed = ring_push(ctl, ranges.data(), ranges.size());
      if (pushed == ranges.size()) return;
    }
    // No survivors (the main loop handles that wholesale) or ring overflow
    // (≥256 crashes — effectively unreachable): the parent absorbs the
    // un-queued ranges itself.
    ExecutionContext ctx(options.warm_worlds);
    ScopedShardSymbols bind_symbols(&ctx.symbols());
    for (size_t r = pushed; r < ranges.size(); ++r) {
      for (uint64_t i = ranges[r].begin; i < ranges[r].end; ++i) {
        run_inline_one(&ctx, static_cast<size_t>(i));
      }
    }
  };

  bool kill_hook_fired = false;
  char chunk[65536];
  while (delivered_count < n) {
    if (alive == 0) {
      run_inline_remaining();
      break;
    }

    if (hooks != nullptr && !kill_hook_fired &&
        delivered_count >= hooks->kill_first_worker_after_results &&
        workers[0].alive) {
      kill_hook_fired = true;
      ::kill(workers[0].pid, SIGKILL);
    }

    std::vector<pollfd> fds;
    std::vector<size_t> fd_worker;
    for (size_t i = 0; i < workers.size(); ++i) {
      if (!workers[i].alive) continue;
      fds.push_back(pollfd{workers[i].fd, POLLIN, 0});
      fd_worker.push_back(i);
    }
    const int ready = ::poll(fds.data(), fds.size(), 50);
    bool death = false;
    bool got_bytes = false;
    if (ready > 0) {
      for (size_t f = 0; f < fds.size(); ++f) {
        if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        WorkerState& w = workers[fd_worker[f]];
        for (;;) {
          const ssize_t got = ::read(w.fd, chunk, sizeof(chunk));
          if (got < 0) {
            if (errno == EINTR) continue;
            break;  // nothing more right now
          }
          if (got == 0) {
            // EOF: clean exit never happens before the done flag, so this
            // worker crashed. Reap it and let requeue_lost re-shard its
            // unfinished leases.
            ::close(w.fd);
            w.alive = false;
            --alive;
            death = true;
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            break;
          }
          got_bytes = true;
          w.frames.append(chunk, static_cast<size_t>(got));
          if (static_cast<size_t>(got) < sizeof(chunk)) break;
        }
        std::string payload;
        while (w.frames.next(&payload)) handle_frame(&w, payload);
      }
    }
    // Sweep for lost leases after a death, or when the stream has gone
    // quiet with work unaccounted for (covers announcements that died
    // mid-pipe: rare, but otherwise unrecoverable).
    if (death || (!got_bytes && ready <= 0)) requeue_lost();
  }

  // All results merged: release the tail-waiting workers and reap them.
  ctl->done.store(1, std::memory_order_release);
  for (auto& w : workers) {
    if (!w.alive) continue;
    // Drain to EOF; any frames still in flight are duplicates of
    // already-delivered indices. The fd is non-blocking, so wait out the
    // worker's exit path on EAGAIN.
    for (;;) {
      const ssize_t got = ::read(w.fd, chunk, sizeof(chunk));
      if (got == 0) break;
      if (got > 0 || errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::close(w.fd);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.alive = false;
  }
  ::munmap(ctl, sizeof(SharedControl));

  campaign.wall_clock = std::chrono::duration_cast<Duration>(
      std::chrono::steady_clock::now() - start);
  return campaign;
}

}  // namespace gremlin::campaign
