// ExperimentResult wire codec: the payload format multi-process campaign
// sharding ships over worker pipes (src/campaign/process_pool).
//
// The encoding is exact — every field that feeds fingerprint() or
// verdict_fingerprint() survives a round trip bit-for-bit (Durations as
// tick counts, strings as raw bytes), so a campaign merged from worker
// processes is byte-identical to one run in a single process. The format
// is versioned: decode rejects frames whose version byte it does not
// understand instead of guessing, turning a skew between parent and worker
// binaries into a loud infrastructure error (impossible under fork, which
// is the only producer today, but cheap insurance).
//
// tests/wire_test.cc enforces the round-trip contract with a seeded fuzz
// loop over adversarial field contents.
#pragma once

#include <string>
#include <string_view>

#include "campaign/runner.h"
#include "common/wire.h"

namespace gremlin::campaign {

// Bump when the field layout changes. v2: the fault-vocabulary extension
// (rules with probabilities, delay distributions, activation windows, and
// infra-level scenarios) changed what campaigns produce; rejecting v1
// frames keeps a skewed binary from silently merging results computed under
// the old vocabulary.
inline constexpr uint8_t kResultWireVersion = 3;  // v3: snapshot stats

// FaultRule codec version, bumped independently of the result layout.
inline constexpr uint8_t kRuleWireVersion = 1;

// Appends the versioned encoding of `result` to `w`.
void encode_result(const ExperimentResult& result, wire::Writer* w);

// Decodes one ExperimentResult; false on truncation, trailing garbage
// within the consumed fields, or a version mismatch.
bool decode_result(wire::Reader* r, ExperimentResult* result);

// Whole-buffer conveniences.
std::string encode_result(const ExperimentResult& result);
bool decode_result(std::string_view bytes, ExperimentResult* result);

// FaultRule codec: the full Table 2 vocabulary including the probabilistic,
// distribution-valued, and time-bounded fields — exact (durations as tick
// counts, probability by bit pattern), so a rule survives a round trip
// byte-for-byte. Used for shipping rule sets to out-of-process agents and
// covered by the wire_test fuzz.
void encode_rule(const faults::FaultRule& rule, wire::Writer* w);
bool decode_rule(wire::Reader* r, faults::FaultRule* rule);
std::string encode_rule(const faults::FaultRule& rule);
bool decode_rule(std::string_view bytes, faults::FaultRule* rule);

}  // namespace gremlin::campaign
