#include "campaign/result_codec.h"

namespace gremlin::campaign {

void encode_result(const ExperimentResult& result, wire::Writer* w) {
  w->u8(kResultWireVersion);
  w->str(result.id);
  w->u64(result.seed);
  w->boolean(result.ok);
  w->str(result.error);
  w->u64(result.rules_installed);
  w->u64(result.checks.size());
  for (const auto& check : result.checks) {
    w->boolean(check.passed);
    w->str(check.name);
    w->str(check.detail);
  }
  w->u64(result.checks_passed);
  w->u64(result.requests);
  w->u64(result.failures);
  w->boolean(result.early_terminated);
  w->u64(result.latencies.size());
  for (const Duration d : result.latencies) w->i64(d.count());
  w->u64(result.statuses.size());
  for (const int s : result.statuses) w->i32(s);
}

bool decode_result(wire::Reader* r, ExperimentResult* result) {
  if (r->u8() != kResultWireVersion) return false;
  ExperimentResult out;
  out.id = r->str();
  out.seed = r->u64();
  out.ok = r->boolean();
  out.error = r->str();
  out.rules_installed = r->u64();
  const uint64_t checks = r->u64();
  if (!r->ok() || checks > r->remaining()) return false;  // ≥1 byte/check
  out.checks.reserve(checks);
  for (uint64_t i = 0; i < checks; ++i) {
    control::CheckResult check;
    check.passed = r->boolean();
    check.name = r->str();
    check.detail = r->str();
    out.checks.push_back(std::move(check));
  }
  out.checks_passed = r->u64();
  out.requests = r->u64();
  out.failures = r->u64();
  out.early_terminated = r->boolean();
  const uint64_t latencies = r->u64();
  if (!r->ok() || latencies > r->remaining()) return false;
  out.latencies.reserve(latencies);
  for (uint64_t i = 0; i < latencies; ++i) out.latencies.push_back(Duration(r->i64()));
  const uint64_t statuses = r->u64();
  if (!r->ok() || statuses > r->remaining()) return false;
  out.statuses.reserve(statuses);
  for (uint64_t i = 0; i < statuses; ++i) out.statuses.push_back(r->i32());
  if (!r->ok()) return false;
  *result = std::move(out);
  return true;
}

std::string encode_result(const ExperimentResult& result) {
  wire::Writer w;
  encode_result(result, &w);
  return w.take();
}

bool decode_result(std::string_view bytes, ExperimentResult* result) {
  wire::Reader r(bytes);
  if (!decode_result(&r, result)) return false;
  return r.remaining() == 0;
}

}  // namespace gremlin::campaign
