#include "campaign/result_codec.h"

#include <cstring>

namespace gremlin::campaign {
namespace {

uint64_t double_bits(double v) {
  uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

double bits_double(uint64_t u) {
  double v = 0;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

}  // namespace

void encode_result(const ExperimentResult& result, wire::Writer* w) {
  w->u8(kResultWireVersion);
  w->str(result.id);
  w->u64(result.seed);
  w->boolean(result.ok);
  w->str(result.error);
  w->u64(result.rules_installed);
  w->u64(result.checks.size());
  for (const auto& check : result.checks) {
    w->boolean(check.passed);
    w->str(check.name);
    w->str(check.detail);
  }
  w->u64(result.checks_passed);
  w->u64(result.requests);
  w->u64(result.failures);
  w->boolean(result.early_terminated);
  w->u8(result.snapshot_path);
  w->u64(result.prefix_events_skipped);
  w->u64(result.latencies.size());
  for (const Duration d : result.latencies) w->i64(d.count());
  w->u64(result.statuses.size());
  for (const int s : result.statuses) w->i32(s);
}

bool decode_result(wire::Reader* r, ExperimentResult* result) {
  if (r->u8() != kResultWireVersion) return false;
  ExperimentResult out;
  out.id = r->str();
  out.seed = r->u64();
  out.ok = r->boolean();
  out.error = r->str();
  out.rules_installed = r->u64();
  const uint64_t checks = r->u64();
  if (!r->ok() || checks > r->remaining()) return false;  // ≥1 byte/check
  out.checks.reserve(checks);
  for (uint64_t i = 0; i < checks; ++i) {
    control::CheckResult check;
    check.passed = r->boolean();
    check.name = r->str();
    check.detail = r->str();
    out.checks.push_back(std::move(check));
  }
  out.checks_passed = r->u64();
  out.requests = r->u64();
  out.failures = r->u64();
  out.early_terminated = r->boolean();
  out.snapshot_path = r->u8();
  out.prefix_events_skipped = r->u64();
  const uint64_t latencies = r->u64();
  if (!r->ok() || latencies > r->remaining()) return false;
  out.latencies.reserve(latencies);
  for (uint64_t i = 0; i < latencies; ++i) out.latencies.push_back(Duration(r->i64()));
  const uint64_t statuses = r->u64();
  if (!r->ok() || statuses > r->remaining()) return false;
  out.statuses.reserve(statuses);
  for (uint64_t i = 0; i < statuses; ++i) out.statuses.push_back(r->i32());
  if (!r->ok()) return false;
  *result = std::move(out);
  return true;
}

std::string encode_result(const ExperimentResult& result) {
  wire::Writer w;
  encode_result(result, &w);
  return w.take();
}

bool decode_result(std::string_view bytes, ExperimentResult* result) {
  wire::Reader r(bytes);
  if (!decode_result(&r, result)) return false;
  return r.remaining() == 0;
}

void encode_rule(const faults::FaultRule& rule, wire::Writer* w) {
  w->u8(kRuleWireVersion);
  w->str(rule.id);
  w->str(rule.source);
  w->str(rule.destination);
  w->u8(static_cast<uint8_t>(rule.type));
  w->u8(static_cast<uint8_t>(rule.on));
  w->str(rule.pattern);
  w->u64(double_bits(rule.probability));
  w->i32(rule.abort_code);
  w->i64(rule.delay_interval.count());
  w->u8(static_cast<uint8_t>(rule.delay_distribution));
  w->i64(rule.delay_min.count());
  w->i64(rule.delay_max.count());
  w->i64(rule.delay_mean.count());
  w->u64(rule.delay_values.size());
  for (const Duration d : rule.delay_values) w->i64(d.count());
  w->i64(rule.after.count());
  w->i64(rule.window_duration.count());
  w->str(rule.body_pattern);
  w->str(rule.replace_bytes);
  w->u64(rule.max_matches);
}

bool decode_rule(wire::Reader* r, faults::FaultRule* rule) {
  if (r->u8() != kRuleWireVersion) return false;
  faults::FaultRule out;
  out.id = r->str();
  out.source = r->str();
  out.destination = r->str();
  out.type = static_cast<faults::FaultKind>(r->u8());
  out.on = static_cast<logstore::MessageKind>(r->u8());
  out.pattern = r->str();
  out.probability = bits_double(r->u64());
  out.abort_code = r->i32();
  out.delay_interval = Duration(r->i64());
  out.delay_distribution = static_cast<faults::DelayDistribution>(r->u8());
  out.delay_min = Duration(r->i64());
  out.delay_max = Duration(r->i64());
  out.delay_mean = Duration(r->i64());
  const uint64_t values = r->u64();
  if (!r->ok() || values > r->remaining()) return false;  // ≥1 byte/value
  out.delay_values.reserve(values);
  for (uint64_t i = 0; i < values; ++i) {
    out.delay_values.push_back(Duration(r->i64()));
  }
  out.after = Duration(r->i64());
  out.window_duration = Duration(r->i64());
  out.body_pattern = r->str();
  out.replace_bytes = r->str();
  out.max_matches = r->u64();
  if (!r->ok()) return false;
  *rule = std::move(out);
  return true;
}

std::string encode_rule(const faults::FaultRule& rule) {
  wire::Writer w;
  encode_rule(rule, &w);
  return w.take();
}

bool decode_rule(std::string_view bytes, faults::FaultRule* rule) {
  wire::Reader r(bytes);
  if (!decode_rule(&r, rule)) return false;
  return r.remaining() == 0;
}

}  // namespace gremlin::campaign
