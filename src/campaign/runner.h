// CampaignRunner: executes a batch of Experiments in parallel.
//
// Each worker thread owns everything an experiment touches — a private
// Simulation (with its own virtual clock, RNG, LogStore and deployment) is
// constructed per experiment, so workers share no mutable state and need no
// locks on the hot path. Work distribution is a work-stealing pool: every
// worker starts with a strided share of the experiment list and steals from
// the busiest peer when its own deque drains, so a handful of slow
// experiments (e.g. hour-long Hang horizons) cannot idle the other cores.
//
// Determinism contract: experiment results depend only on (app spec,
// failure specs, load, checks, seed) — never on thread count, scheduling
// order, or sibling experiments. `threads=8` is byte-identical to
// `threads=1` (tests/campaign_test.cc enforces this).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/experiment.h"

namespace gremlin::control {
class RuleCache;
}

namespace gremlin::campaign {

struct RunnerOptions {
  // Worker threads; 0 → std::thread::hardware_concurrency (min 1).
  // With procs > 1 this is the thread count *per worker process* and 0
  // resolves to hardware_concurrency / procs instead, so sharding splits
  // the machine rather than oversubscribing it.
  int threads = 0;

  // Worker processes (multi-process campaign sharding, see
  // campaign/process_pool.h): > 1 forks that many shard processes, each
  // hosting `threads` execution threads with their own warm-world pools,
  // leases experiment ranges through a shared-memory cursor, and merges
  // the streamed results in experiment order. Byte-identical — both
  // fingerprint() and verdict_fingerprint() — to procs=1 at any
  // procs × threads combination; a crashed worker's unfinished lease is
  // re-queued onto survivors (wall-clock cost, never correctness).
  // <= 1, or platforms without fork, run in-process.
  int procs = 1;

  // Drop per-request latency/status vectors from results (saves memory on
  // very large sweeps; fingerprints then cover verdicts + counters only).
  bool keep_latencies = true;

  // Online assertion checking with early termination: attach incremental
  // check state machines to the run and stop the simulation the moment
  // every check has a final (sticky) verdict. Verdicts are unchanged; raw
  // counters/latencies of a stopped run cover only the completed prefix,
  // so disable this (--no-early-exit) when fingerprints must be
  // byte-identical to a full run.
  bool early_exit = true;

  // Warm-world execution: each worker keeps long-lived Simulations (one per
  // distinct AppSpec identity, small bounded pool) and deep-resets them
  // between experiments instead of destructing/reconstructing, with fault
  // translations memoized per world (control::RuleCache). Results are
  // byte-identical to cold construction — fingerprint() and
  // verdict_fingerprint() both — enforced by differential tests and the CI
  // warm-cold job. Custom experiments and non-reusable specs fall back to
  // cold construction automatically; --cold disables reuse entirely.
  bool warm_worlds = true;

  // Timer-wheel event scheduling in every worker Simulation (see
  // sim/event_queue.h). Off forces the pure binary-heap scheduler — the
  // pre-wheel behaviour, kept as a runtime toggle so differential tests and
  // bench_megatopo can verify wheel-on results are byte-identical to the
  // heap-only schedule.
  bool use_timer_wheel = true;

  // Prefix-snapshot execution (campaign/snapshot_exec.h): experiments whose
  // fault rules all activate at `after > 0` share the fault-free prefix —
  // each warm world simulates it once, snapshots, and restores siblings
  // from the snapshot instead of replaying from t=0. Byte-identical —
  // fingerprint() and verdict_fingerprint() both — to the warm-world path;
  // experiments with immediate faults (or custom bodies, or non-reusable
  // specs) degrade to that path automatically. --no-snapshot disables.
  bool use_snapshots = true;

  // Optional progress hook, invoked after each experiment completes.
  // Called from worker threads under an internal mutex — keep it cheap.
  std::function<void(const struct ExperimentResult&)> on_result;
};

// Per-run execution knobs for run_one/run_in (RunnerOptions is the
// campaign-level surface; this is the single-experiment one).
struct ExecOptions {
  bool keep_latencies = true;

  // Stop the simulation once every attached check reached a final verdict.
  bool early_exit = true;

  // Keep the full log in sim->log_store() after the run (disables bounded
  // retention and the collect-skip shortcut). Required by callers that
  // read the log afterwards, e.g. call-graph extraction.
  bool preserve_log = false;

  // Bounded-memory retention: once the store exceeds this many records,
  // the oldest half is evicted. Online checks have already consumed every
  // record when it is appended, so no live check can still reference a
  // dropped one. 0 disables retention. Ignored when preserve_log is set
  // or any attached check has no incremental form.
  size_t retention_limit = 16384;

  // Virtual-time drain cadence of the streaming collector.
  Duration stream_interval = msec(5);

  // Scheduler selection for the private Simulation (RunnerOptions
  // docs; results are byte-identical either way).
  bool use_timer_wheel = true;

  // Prefix-snapshot execution in warm worlds (RunnerOptions docs;
  // byte-identical either way).
  bool use_snapshots = true;
};

// Outcome of one experiment.
struct ExperimentResult {
  std::string id;
  uint64_t seed = 0;

  bool ok = false;     // infrastructure worked (translate/install/collect)
  std::string error;   // set when !ok

  size_t rules_installed = 0;
  std::vector<control::CheckResult> checks;
  size_t checks_passed = 0;

  size_t requests = 0;
  size_t failures = 0;  // user-visible load failures
  std::vector<Duration> latencies;
  std::vector<int> statuses;

  // True when online checking stopped the simulation before quiescence.
  // Deliberately NOT part of fingerprint(): it describes how the result
  // was obtained, not what the experiment observed.
  bool early_terminated = false;

  // How the experiment executed (like early_terminated, NOT fingerprinted):
  // 0 = normal path, 1 = built a prefix snapshot (cache miss), 2 = restored
  // from one (cache hit). prefix_events_skipped counts the prefix events a
  // hit did not re-simulate.
  uint8_t snapshot_path = 0;
  uint64_t prefix_events_skipped = 0;

  bool passed() const { return ok && checks_passed == checks.size(); }

  // Byte-exact digest of everything above; equal fingerprints mean equal
  // results. Used by the determinism tests and the parallel bench.
  std::string fingerprint() const;

  // Verdict-only digest: id, seed, ok/error, and each check's pass/fail by
  // name — no details, counters, or latencies. Early termination preserves
  // verdicts but not raw counters, so this is the digest that must match
  // between early-exit and full runs (the CI differential job diffs it).
  std::string verdict_fingerprint() const;
};

struct CampaignResult {
  // Same order as the input experiment list, independent of which worker
  // ran what.
  std::vector<ExperimentResult> experiments;
  Duration wall_clock{};  // real elapsed time for the whole batch
  int threads = 1;        // execution threads (per process when procs > 1)
  int procs = 1;          // worker processes that ran the batch

  size_t passed() const;
  size_t failed() const;
  size_t errors() const;

  // Concatenated per-experiment fingerprints.
  std::string fingerprint() const;

  // Concatenated per-experiment verdict fingerprints (see
  // ExperimentResult::verdict_fingerprint).
  std::string verdict_fingerprint() const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions options = {});

  CampaignResult run(const std::vector<Experiment>& experiments) const;

  // Executes one experiment on a fresh private Simulation. Pure apart from
  // the simulation it builds and discards; safe to call concurrently.
  static ExperimentResult run_one(const Experiment& experiment,
                                  const ExecOptions& exec);

  // As run_one, but on a caller-provided Simulation, which must be freshly
  // constructed with the experiment's seed. Lets callers keep the deployment
  // alive after the run — the fault-space search replays a baseline this way
  // and then reads the observed call graph out of sim->log_store(). Any
  // events an early exit left pending are cancelled before returning, so a
  // kept-alive sim is reusable.
  static ExperimentResult run_in(const Experiment& experiment,
                                 sim::Simulation* sim,
                                 const ExecOptions& exec);

  // The warm-path core run_one/run_in delegate to. `graph` non-null skips
  // AppSpec::instantiate (the sim already hosts the deployment — freshly
  // reset); `rule_cache` non-null memoizes fault translation. Both null
  // reproduces run_in exactly. Used by WarmWorld; most callers want run_one
  // or WarmWorld::run instead.
  static ExperimentResult run_prepared(const Experiment& experiment,
                                       sim::Simulation* sim,
                                       const topology::AppGraph* graph,
                                       control::RuleCache* rule_cache,
                                       const ExecOptions& exec);

  // Legacy single-flag forms. run_one keeps the online defaults; run_in
  // runs to quiescence and preserves the log, because its callers read
  // sim->log_store() after the run.
  static ExperimentResult run_one(const Experiment& experiment,
                                  bool keep_latencies = true);
  static ExperimentResult run_in(const Experiment& experiment,
                                 sim::Simulation* sim,
                                 bool keep_latencies = true);

  int resolved_threads() const;

  const RunnerOptions& options() const { return options_; }

 private:
  RunnerOptions options_;
};

}  // namespace gremlin::campaign
