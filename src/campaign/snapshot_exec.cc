#include "campaign/snapshot_exec.h"

#include <functional>
#include <utility>

#include "control/collector.h"
#include "control/online.h"
#include "control/recipe.h"

namespace gremlin::campaign {

namespace {

// One tick of the virtual clock (TimePoint resolution): the snapshot sits
// at the last instant provably untouched by any rule. Events AT the
// activation time must already see the rules installed, so the prefix runs
// `run_until(t_act - kTick)`.
constexpr Duration kTick = Duration(1);

void append_load_key(std::string* key, const control::LoadOptions& load) {
  *key += std::to_string(load.count);
  *key += '|';
  *key += std::to_string(load.gap.count());
  *key += '|';
  *key += load.id_prefix;
  *key += '|';
  *key += load.uri;
  *key += '|';
  *key += load.method;
  *key += '|';
  *key += load.body;
  *key += '|';
  *key += load.closed_loop ? '1' : '0';
  *key += '|';
  *key += std::to_string(load.horizon.count());
  *key += '|';
}

}  // namespace

std::optional<ExperimentResult> SnapshotCache::run(
    const Experiment& experiment, sim::Simulation* sim,
    const topology::AppGraph* graph, control::RuleCache* rule_cache,
    const ExecOptions& exec) {
  // --- eligibility --------------------------------------------------------
  if (experiment.custom || experiment.failures.empty()) return std::nullopt;
  Duration min_after = experiment.failures.front().after;
  for (const auto& spec : experiment.failures) {
    // InstanceCrash schedules outage events at apply() time — they would
    // belong inside the prefix, so the prefix is not fault-free for it.
    if (spec.kind == control::FailureSpec::Kind::kInstanceCrash) {
      return std::nullopt;
    }
    if (spec.after < min_after) min_after = spec.after;
  }
  if (min_after < kTick) return std::nullopt;  // immediate fault: no prefix
  if (experiment.load.horizon > kDurationZero &&
      min_after > experiment.load.horizon) {
    // The snapshot instant would lie beyond the run horizon.
    return std::nullopt;
  }

  // Resolve the load target exactly as run_prepared would; an unresolvable
  // target degrades to the warm path, which surfaces the error identically.
  std::string target = experiment.target;
  if (target.empty()) {
    for (const auto& entry : graph->entry_points()) {
      if (entry != experiment.client) {
        target = entry;
        break;
      }
    }
  }
  if (target.empty()) {
    for (const auto& edge : graph->edges()) {
      if (edge.src == experiment.client) {
        target = edge.dst;
        break;
      }
    }
  }
  if (target.empty()) return std::nullopt;

  const TimePoint t_act = TimePoint{} + min_after;
  const TimePoint t_snap = t_act - kTick;

  // --- cache lookup -------------------------------------------------------
  std::string key = std::to_string(experiment.seed);
  key += '|';
  append_load_key(&key, experiment.load);
  key += experiment.client;
  key += '|';
  key += target;

  Entry* entry = nullptr;
  for (auto& e : entries_) {
    if (e->key == key) {
      entry = e.get();
      break;
    }
  }
  // Reusable only when the cached snapshot predates this experiment's
  // activation: running the restored world through an inert armed-rules
  // segment up to t_act is byte-identical to snapshotting later. A
  // snapshot AT or AFTER t_act overshoots — rebuild at the earlier instant
  // (the entry converges to the sweep's minimum activation).
  const bool rebuild = entry == nullptr || entry->t_snap >= t_act;

  if (rebuild) {
    if (entry == nullptr) {
      if (entries_.size() >= kMaxEntries) entries_.erase(entries_.begin());
      entries_.push_back(std::make_unique<Entry>());
      entry = entries_.back().get();
      entry->key = std::move(key);
    }
    ++misses_;
    // Drop the old snapshot before the driver its saved actions reference.
    entry->snap = sim::SimSnapshot{};
    entry->response_tape.clear();
    entry->prefix_result = control::LoadResult{};

    // Fault-free prefix: a freshly reset world, NO rules installed, the
    // load scheduled exactly as run_load schedules it, run to the last
    // pre-activation instant.
    sim->reset(experiment.seed);
    sim->begin_snapshot_capture();
    entry->driver = std::make_unique<control::LoadDriver>(
        sim, experiment.client, target, experiment.load);
    entry->prefix_result.latencies.resize(experiment.load.count);
    entry->prefix_result.statuses.resize(experiment.load.count);
    entry->driver->bind(&entry->prefix_result,
                        [tape = &entry->response_tape](bool failed) {
                          tape->push_back(failed);
                        });
    entry->driver->schedule_all();
    sim->run_until(t_snap);  // no stop sources: never ends early
    entry->events_at_snapshot = sim->events_processed();
    entry->t_snap = t_snap;
    entry->snap = sim->snapshot();
    sim->end_snapshot_capture();
    entry->driver->bind(nullptr, {});
  }

  // --- early-exit tape replay (before touching the sim) -------------------
  control::OnlineChecker online;
  bool use_online = exec.early_exit && !experiment.checks.empty();
  if (use_online) {
    for (const auto& spec : experiment.checks) {
      online.add(spec.incremental(graph, experiment.load.count));
    }
    if (!online.all_incremental()) use_online = false;
  }
  if (use_online) {
    // The prefix appends nothing to the store (the collector only drains
    // at the end of a run), so mid-prefix stops can only come from user
    // responses: the tape reconstructs them exactly.
    for (const bool failed : entry->response_tape) {
      online.on_user_response(failed);
      if (online.all_decided()) {
        // A cold run would have stopped inside the prefix; that partial
        // run cannot be reproduced from the snapshot.
        return std::nullopt;
      }
    }
  }
  if (!rebuild) {
    ++hits_;
    prefix_events_skipped_ += entry->events_at_snapshot;
  }

  // --- restore + run the experiment from the snapshot ---------------------
  ExperimentResult result;
  result.id = experiment.id;
  result.seed = experiment.seed;
  result.snapshot_path = rebuild ? 1 : 2;
  if (!rebuild) result.prefix_events_skipped = entry->events_at_snapshot;

  sim->restore(entry->snap);
  control::TestSession session(sim, graph);

  // Rules carry absolute activation offsets, and pre-window matching is
  // side-effect-free — installing them at t_snap is equivalent to
  // installing them at t=0.
  for (const auto& spec : experiment.failures) {
    auto installed = session.apply(spec, rule_cache);
    if (!installed.ok()) {
      result.error = "apply " + std::string(spec.kind_name()) + ": " +
                     installed.error().message;
      return result;
    }
    result.rules_installed += installed.value();
  }

  // Sibling result starts from the prefix's partial outcome.
  control::LoadResult load = entry->prefix_result;

  const bool wants_records = use_online && online.wants_records();
  const bool suppress_records =
      use_online && !exec.preserve_log && !wants_records;
  const bool bounded =
      wants_records && !exec.preserve_log && exec.retention_limit > 0;
  const bool stream = wants_records;

  std::optional<control::SimStreamCollector> collector;
  if (stream) {
    // Constructed but never start()ed: the queue is non-empty after a
    // restore, so arming would schedule periodic drains a cold run (whose
    // queue is empty at start()) never schedules. Only the final
    // drain_now() below ships records — exactly the cold behaviour.
    collector.emplace(sim, control::SimStreamCollector::Mode::kAppendToStore,
                      exec.stream_interval);
  }
  if (suppress_records) sim->set_recording(false);
  if (wants_records) {
    sim->log_store().set_observer(
        [&online, sim](const logstore::LogRecord& record) {
          online.offer(record);
          if (online.all_decided()) sim->request_stop();
        });
    if (bounded) sim->log_store().set_retention_limit(exec.retention_limit);
  }
  std::function<void(bool)> observer;
  if (use_online) {
    observer = [&online, sim](bool failed) {
      online.on_user_response(failed);
      if (online.all_decided()) sim->request_stop();
    };
  }
  entry->driver->bind(&load, std::move(observer));

  if (experiment.load.horizon > kDurationZero) {
    // Absolute deadline: cold computes now() + horizon at now == 0.
    sim->run_until(TimePoint{} + experiment.load.horizon);
  } else {
    sim->run();
  }
  load.stopped_early = sim->stop_requested();
  result.requests = load.total();
  result.failures = load.failures;
  result.early_terminated = load.stopped_early;
  if (exec.keep_latencies) {
    result.latencies = load.latencies;
    result.statuses = load.statuses;
  }

  if (stream) collector->drain_now();  // final flush feeds the checks' tail
  if (wants_records) {
    sim->log_store().set_observer(nullptr);
    sim->log_store().set_retention_limit(0);
  }
  if (suppress_records) sim->set_recording(true);
  sim->cancel_pending();
  entry->driver->bind(nullptr, {});

  const bool skip_collect = use_online && !exec.preserve_log;
  if (!skip_collect) {
    auto collected = session.collect();
    if (!collected.ok()) {
      result.error = "collect: " + collected.error().message;
      return result;
    }
  }

  if (use_online) {
    const control::LoadSummary summary{load.total(), load.failures};
    for (size_t i = 0; i < online.size(); ++i) {
      control::CheckResult outcome = online.check(i)->finalize(summary);
      if (outcome.passed) ++result.checks_passed;
      result.checks.push_back(std::move(outcome));
    }
  } else {
    const control::AssertionChecker checker = session.checker();
    for (const auto& check : experiment.checks) {
      control::CheckResult outcome = check.evaluate(checker, load);
      if (outcome.passed) ++result.checks_passed;
      result.checks.push_back(std::move(outcome));
    }
  }
  result.ok = true;
  return result;
}

}  // namespace gremlin::campaign
