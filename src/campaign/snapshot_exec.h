// SnapshotCache: fault-free prefix snapshots for campaign execution.
//
// A windowed sweep runs N experiments that differ only in which fault rules
// activate (all at `after > 0`) — so every one of them deterministically
// replays the same fault-free prefix before its window opens. Pre-window
// rule matching is side-effect-free (the `now < after` test precedes every
// counter and probability draw), which makes the world at `after - 1 tick`
// byte-identical whether the rules are armed or absent. The cache exploits
// that: simulate the shared prefix once with NO rules installed, snapshot
// the world (sim/snapshot.h), and start each sibling experiment from the
// restore point — skipping the prefix events entirely.
//
// One wrinkle is load injection: run_load's closures capture their result
// object, which would tie the snapshot to one experiment. The prefix is
// instead driven by a control::LoadDriver held at a stable address by the
// cache entry; its in-flight closures write through a rebindable result
// pointer, so each sibling binds its own LoadResult (seeded with a copy of
// the prefix's partial result) before resuming.
//
// Early exit needs one more piece: a cold early-exit run can stop *during*
// the prefix (a purely load-based check deciding on an early response). The
// entry records the prefix's per-response failed flags; before restoring,
// the sibling replays that tape into its fresh OnlineChecker — if every
// check decides mid-tape, the cold run would have stopped inside the
// prefix, and the sibling falls back to the warm-world path (return
// nullopt) rather than reproduce a partial prefix.
//
// Eligibility: declarative experiments on reusable specs whose failure
// specs all have `after >= 1 tick` (and none is kInstanceCrash, which
// schedules outage events at apply time — before the prefix would be
// sharable). Everything else returns nullopt and degrades gracefully to
// the warm-world path. Contract: for eligible experiments the returned
// result is byte-identical — fingerprint() and verdict_fingerprint() both
// — to CampaignRunner::run_prepared on a freshly reset world
// (tests/snapshot_test.cc and the CI snapshot differential enforce this).
//
// Not thread-safe; each warm world owns one cache.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "control/load_driver.h"
#include "control/rule_cache.h"
#include "sim/snapshot.h"

namespace gremlin::campaign {

class SnapshotCache {
 public:
  // Runs `experiment` from a prefix snapshot when eligible; nullopt means
  // "not eligible / not reproducible from a snapshot — run it on the
  // normal warm path" (the sim may have been dirtied; reset before reuse).
  std::optional<ExperimentResult> run(const Experiment& experiment,
                                      sim::Simulation* sim,
                                      const topology::AppGraph* graph,
                                      control::RuleCache* rule_cache,
                                      const ExecOptions& exec);

  // Cache effectiveness counters (campaign reporting). A miss built a
  // prefix snapshot; a hit restored one instead of re-simulating.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  // Prefix events hits did not re-simulate, summed over all hits.
  uint64_t prefix_events_skipped() const { return prefix_events_skipped_; }

 private:
  struct Entry {
    std::string key;        // seed + load shape + client + target
    TimePoint t_snap{};     // snapshot instant (min activation - 1 tick)
    // Stable-address injector: saved event actions capture its `this`.
    std::unique_ptr<control::LoadDriver> driver;
    control::LoadResult prefix_result;  // partial result at t_snap
    std::vector<bool> response_tape;    // per-response failed flags
    uint64_t events_at_snapshot = 0;    // prefix event count (the savings)
    sim::SimSnapshot snap;
  };

  // A handful of entries covers a sweep's load shapes; oldest evicted.
  static constexpr size_t kMaxEntries = 4;

  // unique_ptr: entries must not move — drivers are address-pinned.
  std::vector<std::unique_ptr<Entry>> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t prefix_events_skipped_ = 0;
};

}  // namespace gremlin::campaign
