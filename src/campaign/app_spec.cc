#include "campaign/app_spec.h"

#include <atomic>

namespace gremlin::campaign {

AppSpec::AppSpec() : uid_([] {
        static std::atomic<uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()) {}

topology::AppGraph AppSpec::probe_graph() const {
  sim::Simulation scratch;
  return build(&scratch);
}

void ensure_graph_services(sim::Simulation* sim,
                           const topology::AppGraph& graph,
                           const sim::ServiceConfig& prototype) {
  for (const auto& name : graph.services()) {
    if (sim->find_service(name) != nullptr) continue;
    sim::ServiceConfig cfg = prototype;
    cfg.name = name;
    cfg.dependencies = graph.dependencies(name);
    sim->add_service(std::move(cfg));
  }
}

AppSpec AppSpec::from_graph(topology::AppGraph graph,
                            sim::ServiceConfig prototype) {
  AppSpec spec;
  spec.name = "graph";
  spec.build = [graph = std::move(graph),
                prototype = std::move(prototype)](sim::Simulation* sim) {
    ensure_graph_services(sim, graph, prototype);
    return graph;
  };
  return spec;
}

AppSpec AppSpec::from_graph(
    topology::AppGraph graph,
    std::function<sim::ServiceConfig(const std::string&)> make) {
  AppSpec spec;
  spec.name = "graph";
  spec.build = [graph = std::move(graph),
                make = std::move(make)](sim::Simulation* sim) {
    for (const auto& name : graph.services()) {
      if (sim->find_service(name) != nullptr) continue;
      sim::ServiceConfig cfg = make(name);
      cfg.name = name;
      cfg.dependencies = graph.dependencies(name);
      sim->add_service(std::move(cfg));
    }
    return graph;
  };
  return spec;
}

AppSpec AppSpec::quickstart(int retries, Duration timeout) {
  AppSpec spec;
  spec.name = "quickstart";
  spec.build = [retries, timeout](sim::Simulation* sim) {
    sim::ServiceConfig service_b;
    service_b.name = "serviceB";
    service_b.processing_time = msec(2);
    sim->add_service(service_b);

    sim::ServiceConfig service_a;
    service_a.name = "serviceA";
    service_a.processing_time = msec(1);
    service_a.dependencies = {"serviceB"};
    resilience::CallPolicy policy;
    policy.timeout = timeout;
    policy.retry.max_retries = retries;
    policy.retry.base_backoff = msec(10);
    service_a.default_policy = policy;
    sim->add_service(service_a);

    topology::AppGraph graph;
    graph.add_edge("user", "serviceA");
    graph.add_edge("serviceA", "serviceB");
    return graph;
  };
  return spec;
}

AppSpec AppSpec::tree(apps::TreeOptions options) {
  AppSpec spec;
  spec.name = "tree-depth" + std::to_string(options.depth);
  spec.build = [options](sim::Simulation* sim) {
    return apps::build_tree_app(sim, options);
  };
  return spec;
}

AppSpec AppSpec::buggy_tree(int depth, std::string buggy_src,
                            std::string buggy_dst) {
  AppSpec spec;
  spec.name = "buggy-tree";
  spec.build = [depth, buggy_src, buggy_dst](sim::Simulation* sim) {
    topology::AppGraph graph = topology::AppGraph::binary_tree(depth);
    sim->add_services_from_graph(
        graph, [&buggy_src, &buggy_dst](const std::string& name) {
          sim::ServiceConfig cfg;
          cfg.processing_time = msec(1);
          resilience::CallPolicy safe;
          safe.timeout = msec(200);
          safe.fallback = resilience::Fallback{200, "cached"};
          cfg.default_policy = safe;
          if (name == buggy_src) {
            resilience::CallPolicy buggy;  // no fallback, no timeout
            cfg.policies[buggy_dst] = buggy;
          }
          return cfg;
        });
    topology::AppGraph with_user = graph;
    with_user.add_edge("user", "svc0");
    return with_user;
  };
  return spec;
}

AppSpec AppSpec::enterprise(apps::EnterpriseOptions options) {
  AppSpec spec;
  spec.name = "enterprise";
  spec.build = [options](sim::Simulation* sim) {
    return apps::build_enterprise_app(sim, options);
  };
  return spec;
}

AppSpec AppSpec::wordpress(apps::WordPressOptions options) {
  AppSpec spec;
  spec.name = "wordpress";
  spec.build = [options](sim::Simulation* sim) {
    return apps::build_wordpress_app(sim, options);
  };
  return spec;
}

AppSpec AppSpec::redundant(apps::RedundantOptions options) {
  AppSpec spec;
  spec.name = "redundant";
  spec.build = [options](sim::Simulation* sim) {
    return apps::build_redundant_app(sim, options);
  };
  return spec;
}

AppSpec AppSpec::warmcache(apps::WarmCacheOptions options) {
  AppSpec spec;
  spec.name = "warmcache";
  spec.build = [options](sim::Simulation* sim) {
    return apps::build_warmcache_app(sim, options);
  };
  // The portal's ever-succeeded bit lives in the handler closure and
  // mutates across requests: a warm-world reset cannot restore run-zero
  // behaviour, so every experiment must build cold.
  spec.reusable = false;
  return spec;
}

namespace {

// Single-instance default-handler prototype shared by the mega factories:
// a small fixed processing time and a generous per-call timeout keep the
// request volume (not per-service config) as the scaling variable.
sim::ServiceConfig mega_prototype() {
  sim::ServiceConfig cfg;
  cfg.processing_time = msec(1);
  resilience::CallPolicy policy;
  policy.timeout = msec(500);
  cfg.default_policy = policy;
  return cfg;
}

// Parses a non-negative decimal integer spanning [pos, end) of `s`;
// returns -1 on empty or non-digit input.
int parse_int(const std::string& s, size_t pos, size_t end) {
  if (pos >= end || end > s.size()) return -1;
  long value = 0;
  for (size_t i = pos; i < end; ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
    if (value > 1'000'000) return -1;  // reject absurd sizes early
  }
  return static_cast<int>(value);
}

}  // namespace

AppSpec AppSpec::mega(int tiers, int width, uint64_t seed, int fan_out) {
  AppSpec spec = from_graph(topology::AppGraph::tiered(tiers, width, seed,
                                                       fan_out),
                            mega_prototype());
  spec.name = "mega:" + std::to_string(tiers) + "x" + std::to_string(width);
  return spec;
}

AppSpec AppSpec::mega_dag(int services, int avg_degree, uint64_t seed) {
  AppSpec spec = from_graph(
      topology::AppGraph::random_dag(services, avg_degree, seed),
      mega_prototype());
  spec.name = "megadag:" + std::to_string(services);
  return spec;
}

Result<AppSpec> AppSpec::named(const std::string& name) {
  if (name == "quickstart") return quickstart(3, msec(300));
  if (name == "tree") return tree();
  if (name == "buggy-tree") return buggy_tree();
  if (name == "redundant") return redundant();
  if (name == "warmcache") return warmcache();
  if (name == "enterprise") return enterprise();
  if (name == "wordpress") return wordpress();
  if (name.rfind("mega:", 0) == 0) {
    const size_t x = name.find('x', 5);
    const int tiers = x == std::string::npos ? -1 : parse_int(name, 5, x);
    const int width =
        x == std::string::npos ? -1 : parse_int(name, x + 1, name.size());
    if (tiers <= 0 || width <= 0) {
      return Error::invalid_argument(
          "malformed mega app '" + name + "' (expected mega:<tiers>x<width>, "
          "e.g. mega:10x50)");
    }
    return mega(tiers, width);
  }
  if (name.rfind("megadag:", 0) == 0) {
    const int services = parse_int(name, 8, name.size());
    if (services <= 0) {
      return Error::invalid_argument(
          "malformed megadag app '" + name +
          "' (expected megadag:<services>, e.g. megadag:500)");
    }
    return mega_dag(services);
  }
  return Error::invalid_argument(
      "unknown app '" + name +
      "' (expected quickstart, tree, buggy-tree, redundant, warmcache, "
      "enterprise, wordpress, mega:<tiers>x<width>, or "
      "megadag:<services>)");
}

}  // namespace gremlin::campaign
