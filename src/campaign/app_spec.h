// AppSpec: a declarative, reusable description of an application under test.
//
// The campaign engine runs many isolated experiments, each on a private
// Simulation, so topology + handler wiring must be a *factory* rather than
// a live object: an AppSpec holds a build function that instantiates the
// application into any fresh Simulation and returns its logical AppGraph.
// build() must be deterministic — the same spec built into two simulations
// with the same seed produces identical behaviour (the campaign determinism
// contract, see docs/CAMPAIGNS.md).
//
// Factories cover the repo's case-study apps (quickstart, enterprise,
// wordpress, binary trees) plus `from_graph`, which mirrors the DSL
// interpreter's autocreate semantics: every graph node becomes a
// default-handler service calling its dependencies in order.
#pragma once

#include <functional>
#include <string>

#include "apps/enterprise.h"
#include "apps/redundant.h"
#include "apps/trees.h"
#include "apps/warmcache.h"
#include "apps/wordpress.h"
#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin::campaign {

struct AppSpec {
  AppSpec();

  std::string name;
  std::function<topology::AppGraph(sim::Simulation*)> build;

  // Warm-world eligibility. build() functions whose captured state mutates
  // across runs (so Simulation::reset cannot restore run-zero behaviour)
  // must clear this; the campaign runner then constructs cold per
  // experiment. Every factory below is stateless and stays reusable.
  bool reusable = true;

  // Process-unique identity stamped at construction and shared by copies —
  // the warm-world cache key. Names are not usable for this: every
  // from_graph spec is called "graph".
  uint64_t identity() const { return uid_; }

  // Builds the application into `sim` and returns the logical graph.
  topology::AppGraph instantiate(sim::Simulation* sim) const {
    return build(sim);
  }

  // The logical graph without keeping a live deployment: builds into a
  // scratch Simulation. Used by experiment generators, which enumerate
  // edges/services before any experiment runs.
  topology::AppGraph probe_graph() const;

  // Every graph node becomes a single-instance service cloned from
  // `prototype` (name and dependencies overwritten per node), running the
  // default handler: call each dependency in order, fail upstream on the
  // first failure. Entry clients (e.g. "user") become services too, exactly
  // like the DSL interpreter's autocreate.
  static AppSpec from_graph(topology::AppGraph graph,
                            sim::ServiceConfig prototype = {});

  // As above but with a per-service config hook (the
  // Simulation::add_services_from_graph contract).
  static AppSpec from_graph(
      topology::AppGraph graph,
      std::function<sim::ServiceConfig(const std::string&)> make);

  // The paper's running example (Section 3.2): user → serviceA → serviceB,
  // with serviceA's retry budget and timeout as the spec parameters.
  static AppSpec quickstart(int retries, Duration timeout);

  // Complete binary tree (Section 7.2 scaling apps); svc0 is the entry.
  static AppSpec tree(apps::TreeOptions options = {});

  // The ablation topology: a binary tree where every dependency call has a
  // timeout + cached fallback EXCEPT `buggy_src` → `buggy_dst` — the single
  // latent bug a systematic sweep must localize.
  static AppSpec buggy_tree(int depth = 3, std::string buggy_src = "svc0",
                            std::string buggy_dst = "svc2");

  // The IBM enterprise case study (Section 7.1, Figure 4).
  static AppSpec enterprise(apps::EnterpriseOptions options = {});

  // WordPress + ElasticPress + Elasticsearch + MySQL (Section 7.1).
  static AppSpec wordpress(apps::WordPressOptions options = {});

  // The fault-space search testbed: mirrored replica reads that absorb any
  // single fault but 502 when both replicas fail, plus a feature-flagged
  // audit subtree the baseline workload never touches (docs/SEARCH.md).
  static AppSpec redundant(apps::RedundantOptions options = {});

  // The probabilistic/windowed testbed: a cold-start fallback absorbs every
  // always-on fault, but a success-then-failure transition returns 500 —
  // only probabilistic or time-bounded faults reach the bug. Not reusable:
  // the portal's ever-succeeded bit lives in the handler closure
  // (docs/FAULTS.md).
  static AppSpec warmcache(apps::WarmCacheOptions options = {});

  // Seeded mega-topology: `tiers` x `width` services behind a "gw" gateway
  // (AppGraph::tiered), every node a single-instance default-handler
  // service. Deterministic in (tiers, width, seed, fan_out); sized for the
  // 100–1000 service scale-out benchmarks (docs/PERFORMANCE.md).
  static AppSpec mega(int tiers, int width, uint64_t seed = 42,
                      int fan_out = 3);

  // Seeded random-DAG mega-topology over `services` nodes
  // (AppGraph::random_dag); "n0" is the entry point.
  static AppSpec mega_dag(int services, int avg_degree = 3,
                          uint64_t seed = 42);

  // Looks up a built-in spec by name ("quickstart", "tree", "buggy-tree",
  // "redundant", "warmcache", "enterprise", "wordpress"), with default
  // options — the `gremlin search --app <name>` registry. Also accepts the
  // parameterized mega-topology forms "mega:<tiers>x<width>" (e.g.
  // "mega:10x50" → 501 services) and "megadag:<services>". Fails on
  // unknown names.
  static Result<AppSpec> named(const std::string& name);

 private:
  uint64_t uid_;
};

// Instantiates every `graph` service missing from `sim` as a clone of
// `prototype` with the default handler (shared by AppSpec::from_graph and
// the DSL interpreter's autocreate).
void ensure_graph_services(sim::Simulation* sim,
                           const topology::AppGraph& graph,
                           const sim::ServiceConfig& prototype = {});

}  // namespace gremlin::campaign
