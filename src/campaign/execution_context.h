// ExecutionContext: everything one campaign worker's experiments mutate,
// gathered behind a single per-worker object.
//
// Parallel campaigns used to scale *negatively* because the hot path
// threaded shared mutable state through every layer: the global symbol
// table's intern mutex, the process heap under every LogRecord and
// callback, and per-simulation event pools that each grew to their own
// peak. An ExecutionContext gives each worker private copies of all of it:
//
//   - a ShardSymbolTable (common/intern.h): interning without the global
//     mutex; new names merge into the global index only at result
//     boundaries (merge()), and ids never cross workers.
//   - a MemoryPool (common/arena.h): arena-backed size-class recycling for
//     the data plane's shared_ptr control blocks, queue buffers, and
//     container nodes.
//   - a sim::EventPool: one slab pool lent to every warm world the worker
//     drives (worlds run one at a time, so they can share a free list).
//   - the worker's warm-world pool, keyed by AppSpec identity.
//   - a scratch Rng forked off the context for any non-semantic decisions
//     a scheduler may need (never consulted by experiment execution, which
//     derives all randomness from the experiment seed).
//
// Workers therefore share nothing but the work queue and the final merge:
// CampaignRunner binds one context per worker (ScopedShardSymbols routes
// Symbol construction through the shard) and calls merge() after each
// result. Determinism is unaffected — experiment results depend only on
// (app, failures, load, checks, seed), and fingerprints carry no Symbol
// ids — so campaigns stay byte-identical across 1/4/8 threads, warm and
// cold (the CI warm-cold-differential and contention jobs enforce this).
//
// Not thread-safe; one context per worker thread.
#pragma once

#include <memory>
#include <vector>

#include "campaign/runner.h"
#include "common/arena.h"
#include "common/intern.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace gremlin::campaign {

class WarmWorld;

class ExecutionContext {
 public:
  explicit ExecutionContext(bool warm_worlds = true);
  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  // Runs one experiment, warm when possible (same semantics the runner's
  // per-worker WorldPool used to provide): reusable specs execute on a
  // context-owned warm world backed by this context's pools; custom or
  // non-reusable specs fall back to a cold private simulation.
  ExperimentResult execute(const Experiment& experiment,
                           const ExecOptions& exec);

  // The warm world for `app` (created on demand, evicting the oldest world
  // beyond the per-worker cap). Callers that need the world itself — the
  // search baseline reads its log store for the call graph — go through
  // here; execute() uses it internally.
  WarmWorld* world_for(const AppSpec& app);

  // Result boundary: publish this worker's newly minted symbols into the
  // global index. Cheap no-op when nothing is pending (the steady state).
  void merge() { symbols_.merge(); }

  ShardSymbolTable& symbols() { return symbols_; }
  MemoryPool& memory() { return memory_; }
  sim::EventPool& event_pool() { return event_pool_; }
  Rng& scratch_rng() { return scratch_rng_; }
  size_t world_count() const { return worlds_.size(); }

 private:
  // Bound on live deployments per worker: campaigns normally sweep one app,
  // so one world per worker is the steady state; a small pool tolerates
  // mixed-app batches without unbounded memory.
  static constexpr size_t kMaxWarmWorlds = 4;

  ShardSymbolTable symbols_;
  MemoryPool memory_;
  sim::EventPool event_pool_;
  Rng scratch_rng_;
  bool warm_enabled_;
  std::vector<std::unique_ptr<WarmWorld>> worlds_;
};

}  // namespace gremlin::campaign
