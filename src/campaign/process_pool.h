// Multi-process campaign sharding: fork N worker processes, lease
// experiment-index ranges to them through a shared-memory atomic cursor,
// stream results back over per-worker pipes, and merge in experiment order
// so the campaign is byte-identical to a single-process run.
//
// Why processes: the in-process workers already share nothing but the work
// queue (ExecutionContext, PR 6), but one process is still one heap, one
// page table, and one global symbol index. Forked shards give the kernel
// whole cores to schedule independently and cap the blast radius of a
// crashing experiment to its shard.
//
// Protocol (docs/PERFORMANCE.md has the full write-up):
//
//   parent                                 worker (forked, one per shard)
//   ------                                 ------------------------------
//   mmap(MAP_SHARED) SharedControl         claim lease: cursor.fetch_add
//   fork workers, one pipe each            (adaptive chunk: remaining /
//   poll pipes, reassemble frames           (workers*4), clamped [1,64] —
//   mark delivered[index]                   fast workers drain the tail)
//   on EOF: waitpid, requeue the dead      announce lease frame, then per
//   worker's undelivered lease onto        experiment one result frame
//   the recovery ring (survivors pick      (length-prefixed; result codec)
//   it up; none left → run inline)         cursor drained → poll recovery
//   all delivered → done flag              ring until parent sets done
//
// Every index is executed by exactly one worker in the steady state; a
// crashed shard's undelivered indices are re-queued (or re-run inline by
// the parent), so worker death costs wall-clock, never correctness. The
// occasional duplicate execution during crash recovery is benign: results
// are deterministic, and the parent keeps the first delivery.
//
// Workers inherit the experiment list by fork (copy-on-write) — only
// results cross the process boundary, as plain stringified bytes (the
// shard interner's stable stringification runs before encoding), so
// shard-local Symbol ids never leak between processes.
#pragma once

#include <cstddef>
#include <vector>

#include "campaign/runner.h"

namespace gremlin::campaign {

// Test-only knobs for the crash-recovery path.
struct MultiprocHooks {
  // SIGKILL the first worker process once this many results have been
  // delivered to the parent (SIZE_MAX = never). The campaign must still
  // merge byte-identically (tests/multiproc_test.cc).
  size_t kill_first_worker_after_results = static_cast<size_t>(-1);
};

// True when this platform can fork worker processes (POSIX). When false,
// CampaignRunner silently falls back to in-process execution.
bool multiproc_available();

// Runs the campaign across options.procs forked workers, each hosting
// options.threads execution threads (0 → hardware_concurrency / procs,
// min 1). Byte-identical to CampaignRunner(options).run(experiments) at
// procs=1 for every procs × threads combination. options.on_result fires
// on the parent, in delivery order.
CampaignResult run_multiproc(const std::vector<Experiment>& experiments,
                             const RunnerOptions& options,
                             const MultiprocHooks* hooks = nullptr);

}  // namespace gremlin::campaign
