// Flow tracing: reconstructing a user request's path across microservices
// from the agents' observation logs.
//
// Section 4.1: a globally unique request ID is propagated downstream in
// message headers, and "the flow of a user's request across different
// microservices can be traced using this unique request ID" (Dapper /
// Zipkin style). This module rebuilds that flow: each request/response pair
// observed on an edge becomes a Span; spans nest by time containment into a
// call tree. The failure-diagnosis helpers answer the operator question the
// paper's feedback loop exists for: *where* in the chain did a failure
// originate, and how far did it propagate?
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "logstore/store.h"

namespace gremlin::trace {

// One observed call on an edge (a request record paired with the matching
// response record, FIFO per edge — retries become separate spans).
struct Span {
  Symbol src;
  Symbol dst;
  TimePoint start{};                 // request observed at the caller agent
  std::optional<TimePoint> end;      // response observed (nullopt: none seen)
  int status = -1;                   // -1 when no response was observed
  logstore::FaultKind fault = logstore::FaultKind::kNone;
  Symbol rule_id;
  Duration injected_delay{};
  Symbol uri;

  std::optional<size_t> parent;      // index into FlowTrace::spans
  std::vector<size_t> children;

  // Span duration; zero when no response was observed.
  Duration duration() const {
    return end ? *end - start : kDurationZero;
  }
  bool failed() const { return status == 0 || status >= 500 || !end; }
};

struct FlowTrace {
  std::string request_id;
  std::vector<Span> spans;    // time-ordered by start
  std::vector<size_t> roots;  // spans with no parent

  size_t failed_spans() const;
  // Total time from the first request to the last response observation.
  Duration total_duration() const;

  // The chain of spans from a root to the deepest failing span, i.e. where
  // a failure originated and how it propagated upward. Empty when no span
  // failed.
  std::vector<size_t> failure_chain() const;

  // ASCII rendering:
  //   user -> frontend    [0.0ms +4.0ms] 200
  //     frontend -> db    [1.5ms +1.0ms] 503 (abort rule overload-1)
  std::string format_tree() const;
};

// Builds one trace per distinct request ID in `records` (time-sorted
// output; IDs in first-appearance order).
std::vector<FlowTrace> build_traces(const logstore::RecordList& records);

// Builds the trace for a single flow.
FlowTrace build_trace(const logstore::RecordList& records,
                      const std::string& request_id);

}  // namespace gremlin::trace
