#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>

namespace gremlin::trace {

using logstore::LogRecord;
using logstore::MessageKind;

namespace {

// Pairs request and response records FIFO per (src, dst) edge.
std::vector<Span> pair_spans(const logstore::RecordList& records) {
  std::vector<Span> spans;
  // Open span indices per edge, FIFO (a retry opens a second span on the
  // same edge before the first closes only if the first never closes —
  // with timeouts the late response still pairs with the oldest open one,
  // which matches the wire reality).
  std::map<std::pair<Symbol, Symbol>, std::deque<size_t>> open;

  for (const LogRecord& r : records) {
    if (r.kind == MessageKind::kRequest) {
      Span span;
      span.src = r.src;
      span.dst = r.dst;
      span.start = r.timestamp;
      span.uri = r.uri;
      if (r.fault != logstore::FaultKind::kNone) {
        span.fault = r.fault;
        span.rule_id = r.rule_id;
        span.injected_delay = r.injected_delay;
      }
      open[{r.src, r.dst}].push_back(spans.size());
      spans.push_back(std::move(span));
    } else {
      auto& queue = open[{r.src, r.dst}];
      if (queue.empty()) continue;  // response without a request: ignore
      Span& span = spans[queue.front()];
      queue.pop_front();
      span.end = r.timestamp;
      span.status = r.status;
      if (r.fault != logstore::FaultKind::kNone) {
        span.fault = r.fault;
        span.rule_id = r.rule_id;
      }
      span.injected_delay = std::max(span.injected_delay, r.injected_delay);
    }
  }
  return spans;
}

// Assigns parents: span X's parent is the latest-starting span Y with
// Y.dst == X.src that contains X's start time.
void link_parents(std::vector<Span>* spans) {
  for (size_t i = 0; i < spans->size(); ++i) {
    Span& child = (*spans)[i];
    std::optional<size_t> best;
    for (size_t j = 0; j < spans->size(); ++j) {
      if (i == j) continue;
      const Span& candidate = (*spans)[j];
      if (candidate.dst != child.src) continue;
      if (candidate.start > child.start) continue;
      // An un-closed candidate is still "in progress" and can own the call.
      if (candidate.end && *candidate.end < child.start) continue;
      if (!best || (*spans)[*best].start <= candidate.start) {
        best = j;
      }
    }
    child.parent = best;
    if (best) (*spans)[*best].children.push_back(i);
  }
}

void format_span(const FlowTrace& t, size_t index, int depth,
                 TimePoint origin, std::string* out) {
  const Span& span = t.spans[index];
  char line[256];
  const double rel_ms = to_millis(span.start - origin);
  std::string status;
  if (!span.end) {
    status = "no response";
  } else if (span.status == 0) {
    status = "reset/timeout";
  } else {
    status = std::to_string(span.status);
  }
  std::string fault;
  if (span.fault != logstore::FaultKind::kNone) {
    fault = std::string(" (") + logstore::to_string(span.fault) + " rule " +
            span.rule_id + ")";
  }
  std::snprintf(line, sizeof(line), "%*s%s -> %s  [%.1fms +%.1fms] %s%s\n",
                depth * 2, "", span.src.str().c_str(), span.dst.str().c_str(),
                rel_ms, to_millis(span.duration()), status.c_str(),
                fault.c_str());
  out->append(line);
  for (const size_t child : span.children) {
    format_span(t, child, depth + 1, origin, out);
  }
}

}  // namespace

size_t FlowTrace::failed_spans() const {
  size_t n = 0;
  for (const Span& s : spans) {
    if (s.failed()) ++n;
  }
  return n;
}

Duration FlowTrace::total_duration() const {
  if (spans.empty()) return kDurationZero;
  TimePoint first = spans.front().start;
  TimePoint last = first;
  for (const Span& s : spans) {
    first = std::min(first, s.start);
    if (s.end) last = std::max(last, *s.end);
  }
  return last - first;
}

std::vector<size_t> FlowTrace::failure_chain() const {
  // Deepest failing span: maximize depth, break ties by earliest start
  // (the origin of the cascade).
  std::optional<size_t> deepest;
  int deepest_depth = -1;
  auto depth_of = [this](size_t index) {
    int depth = 0;
    std::optional<size_t> cur = spans[index].parent;
    while (cur) {
      ++depth;
      cur = spans[*cur].parent;
    }
    return depth;
  };
  for (size_t i = 0; i < spans.size(); ++i) {
    if (!spans[i].failed()) continue;
    const int depth = depth_of(i);
    if (depth > deepest_depth ||
        (depth == deepest_depth && deepest &&
         spans[i].start < spans[*deepest].start)) {
      deepest = i;
      deepest_depth = depth;
    }
  }
  std::vector<size_t> chain;
  if (!deepest) return chain;
  std::optional<size_t> cur = deepest;
  while (cur) {
    chain.push_back(*cur);
    cur = spans[*cur].parent;
  }
  std::reverse(chain.begin(), chain.end());  // root → origin of failure
  return chain;
}

std::string FlowTrace::format_tree() const {
  std::string out = "trace " + request_id + " (" +
                    std::to_string(spans.size()) + " spans, " +
                    std::to_string(failed_spans()) + " failed, " +
                    format_duration(total_duration()) + ")\n";
  if (spans.empty()) return out;
  const TimePoint origin = spans.front().start;
  for (const size_t root : roots) {
    format_span(*this, root, 1, origin, &out);
  }
  return out;
}

FlowTrace build_trace(const logstore::RecordList& records,
                      const std::string& request_id) {
  logstore::RecordList filtered;
  for (const auto& r : records) {
    if (r.request_id == request_id) filtered.push_back(r);
  }
  std::stable_sort(filtered.begin(), filtered.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  FlowTrace t;
  t.request_id = request_id;
  t.spans = pair_spans(filtered);
  link_parents(&t.spans);
  for (size_t i = 0; i < t.spans.size(); ++i) {
    if (!t.spans[i].parent) t.roots.push_back(i);
  }
  return t;
}

std::vector<FlowTrace> build_traces(const logstore::RecordList& records) {
  std::vector<std::string> order;
  std::map<std::string, bool> seen;
  for (const auto& r : records) {
    if (!seen[r.request_id]) {
      seen[r.request_id] = true;
      order.push_back(r.request_id);
    }
  }
  std::vector<FlowTrace> out;
  out.reserve(order.size());
  for (const auto& id : order) {
    out.push_back(build_trace(records, id));
  }
  return out;
}

}  // namespace gremlin::trace
