// TestSession: one resiliency-test run against a simulated deployment.
//
// Mirrors how an operator uses Gremlin (Section 3.2): set up failure
// scenarios, inject test load tagged with "test-*" request IDs, collect the
// agents' observations into the central store, and evaluate assertions.
// Chained failure scenarios (Section 4.2) are expressed naturally in C++
// control flow:
//
//   TestSession t(&sim, graph);
//   t.apply(FailureSpec::overload("serviceB"));
//   t.run_load("user", "serviceA", 100);
//   t.collect();
//   if (!t.check(t.checker().has_bounded_retries("serviceA", "serviceB", 5)))
//     ...  // no bounded retries: stop here
//   t.clear_faults();
//   t.apply(FailureSpec::crash("serviceB"));
//   ...
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/checker.h"
#include "control/orchestrator.h"
#include "control/rule_cache.h"
#include "control/translator.h"
#include "sim/simulation.h"

namespace gremlin::control {

// Outcome of one test-load injection.
struct LoadResult {
  std::vector<Duration> latencies;  // end-to-end, per request, arrival order
  std::vector<int> statuses;        // final status per request (0 = reset)
  size_t failures = 0;              // responses with failed() == true
  size_t completed = 0;             // responses that actually arrived
  bool stopped_early = false;       // run ended on a sim stop request

  // Injected request count. Vectors are pre-sized, so this stays the
  // configured count even when an early-terminated run left some slots
  // zero-filled (completed < total()).
  size_t total() const { return latencies.size(); }
};

struct LoadOptions {
  size_t count = 100;
  Duration gap = msec(10);           // open-loop inter-arrival time
  std::string id_prefix = "test-";   // request IDs: <prefix><n>
  std::string uri = "/";
  std::string method = "GET";
  std::string body;
  bool closed_loop = false;          // true: next request after the previous
                                     // response (the Fig. 6 workload shape)

  // Bounded run horizon. Zero runs the simulation to quiescence; set this
  // for scenarios that never quiesce (blocked publishers, at-least-once
  // delivery loops against a permanently crashed subscriber, ...).
  Duration horizon{};
};

class TestSession {
 public:
  TestSession(sim::Simulation* sim, topology::AppGraph graph);

  // Borrowing form: `graph` must outlive the session. The warm-world runner
  // caches one graph per deployment, so per-experiment sessions skip two
  // AppGraph copies (session + translator).
  TestSession(sim::Simulation* sim, const topology::AppGraph* graph);

  RecipeTranslator& translator() { return translator_; }
  FailureOrchestrator& orchestrator() { return orchestrator_; }
  sim::Simulation& sim() { return *sim_; }

  // Translates a failure scenario and installs the rules on all affected
  // agents; returns the number of rules installed. With a `cache`, the
  // translation is memoized (see RuleCache) — rule IDs are byte-identical
  // either way.
  Result<size_t> apply(const FailureSpec& spec, RuleCache* cache = nullptr);
  Result<size_t> apply_all(const std::vector<FailureSpec>& specs);
  VoidResult clear_faults();

  // Applies a scenario for a bounded (virtual) duration, then removes its
  // rules automatically — the crash-*recovery* failures of the paper's
  // fault model (Section 3.1): the fault heals after `active` and the
  // application's recovery behaviour becomes observable.
  Result<size_t> apply_for(const FailureSpec& spec, Duration active);

  // Injects `count` requests from the edge client into `target` and runs
  // the simulation until the application quiesces.
  LoadResult run_load(const std::string& client, const std::string& target,
                      const LoadOptions& options = {});
  LoadResult run_load(const std::string& client, const std::string& target,
                      size_t count);

  // Drains all agent logs into the central store (must run before
  // assertions).
  VoidResult collect();

  // Online-checking hook: invoked once per user-visible response during
  // run_load with the response's failed() flag, before the LoadResult
  // counters update is visible to the caller. The observer may call
  // sim().request_stop() to terminate the run early.
  void set_response_observer(std::function<void(bool failed)> observer) {
    response_observer_ = std::move(observer);
  }

  // Assertion checker over the collected logs.
  AssertionChecker checker() const {
    return AssertionChecker(&sim_->log_store(), graph_);
  }

  // Records an assertion outcome in the session report; returns passed.
  bool check(const CheckResult& result);

  const std::vector<CheckResult>& results() const { return results_; }
  bool all_passed() const;
  std::string report() const;

  const topology::AppGraph& graph() const { return *graph_; }

 private:
  sim::Simulation* sim_;
  std::unique_ptr<const topology::AppGraph> owned_graph_;  // null: borrowed
  const topology::AppGraph* graph_;
  RecipeTranslator translator_;
  FailureOrchestrator orchestrator_;
  std::vector<CheckResult> results_;
  std::function<void(bool failed)> response_observer_;
};

}  // namespace gremlin::control
