// Online assertion checking: incremental state machines that evaluate the
// Table 3 checks *while the experiment runs*, one LogRecord at a time.
//
// The post-hoc AssertionChecker (control/checker.h) evaluates each check by
// querying the finished LogStore. The classes here are parallel incremental
// implementations: each check is a small state machine fed the same
// time-sorted record stream the post-hoc query would visit, and reports a
// sticky three-valued verdict:
//
//   kUndecided — more records could still change the outcome
//   kPass      — the check provably passes no matter what follows
//   kFail      — the check provably fails no matter what follows
//
// Sticky means a verdict, once reached, is final: every early kFail/kPass
// equals the verdict the post-hoc checker would compute over the *complete*
// run. That equivalence is what lets the campaign runner terminate a
// simulation the moment every attached check is decided (and what the
// differential fuzz in tests/online_checker_test.cc pins, with the post-hoc
// checker as the oracle — the two implementations deliberately share no
// evaluation code).
//
// finalize() produces a CheckResult whose name and detail are byte-identical
// to the post-hoc checker's over the same record stream, so report
// fingerprints agree between online and post-hoc evaluation of full runs.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/glob.h"
#include "control/checker.h"
#include "logstore/record.h"
#include "topology/graph.h"

namespace gremlin::control {

enum class Verdict { kUndecided, kPass, kFail };

const char* to_string(Verdict v);

// Load-level outcome summary, passed to finalize() so checks that report
// user-visible failure counts render the same detail strings as their
// post-hoc equivalents.
struct LoadSummary {
  size_t total = 0;
  size_t failures = 0;
};

class IncrementalCheck {
 public:
  virtual ~IncrementalCheck() = default;

  // Feed one observation. Records must arrive in the (timestamp, arrival)
  // order LogStore queries visit them in; each check applies its own filter
  // and ignores unrelated records. Feeding continues after a verdict is
  // reached so finalize() details stay exact on full streams.
  virtual void offer(const logstore::LogRecord& r) = 0;

  // Load-level signal: one user-visible response completed. Only consumed
  // by checks with wants_records() == false.
  virtual void on_user_response(bool /*failed*/) {}

  // False for checks decided purely by load outcomes (no log records).
  virtual bool wants_records() const { return true; }

  Verdict verdict() const { return verdict_; }
  bool decided() const { return verdict_ != Verdict::kUndecided; }

  // End-of-stream result; byte-identical to the post-hoc checker over the
  // same record stream.
  virtual CheckResult finalize(const LoadSummary& load) const = 0;

 protected:
  // Sticky: the first non-undecided verdict wins.
  void decide(Verdict v) {
    if (verdict_ == Verdict::kUndecided) verdict_ = v;
  }

 private:
  Verdict verdict_ = Verdict::kUndecided;
};

// --- incremental Combine (Section 4.2) --------------------------------------
//
// Streaming equivalent of control::Combine::evaluate: the same step
// vocabulary, fed one record at a time. A step that fails sinks the whole
// chain (sticky kFail); once the last step is satisfied the chain is
// sticky kPass regardless of what follows — exactly the post-hoc semantics,
// where evaluate() returns as soon as a step fails and ignores records after
// the last consumed prefix.
class IncrementalCombine {
 public:
  IncrementalCombine& check_status(int status, size_t num_match,
                                   bool with_rule = true);
  IncrementalCombine& at_most_requests(Duration tdelta, bool with_rule,
                                       size_t max);
  IncrementalCombine& no_requests_for(Duration tdelta);
  IncrementalCombine& at_least_requests(Duration tdelta, bool with_rule,
                                        size_t min);

  void feed(const logstore::LogRecord& r);
  Verdict verdict() const { return verdict_; }

  // End-of-stream: closes the remaining steps over the empty remainder and
  // returns the chain result (== Combine::evaluate over the full stream).
  bool finish();

 private:
  struct Step {
    enum class Kind {
      kCheckStatus,
      kAtMostRequests,
      kNoRequestsFor,
      kAtLeastRequests,
    };
    Kind kind = Kind::kCheckStatus;
    int status = 0;
    size_t num = 0;  // num_match / max / min
    Duration tdelta{};
    bool with_rule = true;
  };

  void close_step(bool satisfied);

  std::vector<Step> steps_;
  size_t current_ = 0;
  TimePoint anchor_{};
  bool have_anchor_ = false;
  size_t count_ = 0;             // per-step counter, reset on step close
  TimePoint window_last_{};      // last record consumed by the open window
  bool window_consumed_ = false;
  Verdict verdict_ = Verdict::kUndecided;
};

// --- factories for the pattern checks ---------------------------------------
//
// Parameters mirror the AssertionChecker methods of the same name.

std::unique_ptr<IncrementalCheck> make_incremental_timeouts(
    std::string service, Duration max_latency, std::string id_pattern = "*");

std::unique_ptr<IncrementalCheck> make_incremental_bounded_retries(
    std::string src, std::string dst, int max_tries,
    std::string id_pattern = "*");

std::unique_ptr<IncrementalCheck> make_incremental_bounded_retries_windowed(
    std::string src, std::string dst, int status, size_t threshold_failures,
    Duration window, size_t max_more, std::string id_pattern = "*");

std::unique_ptr<IncrementalCheck> make_incremental_circuit_breaker(
    std::string src, std::string dst, int threshold, Duration tdelta,
    int success_threshold, std::string id_pattern = "*");

// `graph` may be null (the check then fails with the post-hoc "no
// application graph" detail). Dependency order is captured at construction.
std::unique_ptr<IncrementalCheck> make_incremental_bulkhead(
    const topology::AppGraph* graph, std::string src, std::string slow_dst,
    double min_rate, std::string id_pattern = "*");

std::unique_ptr<IncrementalCheck> make_incremental_latency_slo(
    std::string src, std::string dst, double percentile, Duration bound,
    bool with_rule = true, std::string id_pattern = "*");

std::unique_ptr<IncrementalCheck> make_incremental_error_rate(
    std::string src, std::string dst, double max_fraction,
    std::string id_pattern = "*");

// Load-based: fails the moment more than `max_failures` user-visible
// failures occurred; passes the moment all `expected_total` responses
// arrived with the budget intact. wants_records() == false.
std::unique_ptr<IncrementalCheck> make_incremental_max_user_failures(
    size_t max_failures, size_t expected_total);

// --- collection -------------------------------------------------------------

// The set of incremental checks attached to one experiment. A nullptr slot
// marks a check with no incremental implementation (e.g. FailureContained's
// whole-trace reconstruction); it is evaluated post-hoc and permanently
// blocks early exit and log retention.
class OnlineChecker {
 public:
  void add(std::unique_ptr<IncrementalCheck> check);

  size_t size() const { return checks_.size(); }
  IncrementalCheck* check(size_t i) { return checks_[i].get(); }

  // True when every added check has an incremental implementation.
  bool all_incremental() const { return !has_opaque_; }

  // True when any incremental check consumes log records (false for purely
  // load-based check sets, which skip log streaming entirely).
  bool wants_records() const;

  void offer(const logstore::LogRecord& r);
  void on_user_response(bool failed);

  // True when every check holds a final verdict — the early-exit condition.
  // Always false while an opaque (post-hoc only) check is attached.
  bool all_decided() const;

 private:
  std::vector<std::unique_ptr<IncrementalCheck>> checks_;
  bool has_opaque_ = false;
};

}  // namespace gremlin::control
