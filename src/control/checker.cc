#include "control/checker.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "trace/trace.h"

namespace gremlin::control {

using logstore::FaultKind;
using logstore::LogRecord;
using logstore::MessageKind;

namespace {

std::string fmt_edge(const std::string& src, const std::string& dst) {
  return src + " -> " + dst;
}

logstore::Query exchanges_query(const std::string& src, const std::string& dst,
                                const std::string& id_pattern) {
  logstore::Query q;
  q.src = src;
  q.dst = dst;
  q.id_pattern = id_pattern;
  q.any_kind = true;
  return q;
}

logstore::Query replies_query(const std::string& src, const std::string& dst,
                              const std::string& id_pattern) {
  logstore::Query q;
  q.src = src;
  q.dst = dst;
  q.id_pattern = id_pattern;
  q.kind = MessageKind::kResponse;
  return q;
}

}  // namespace

RecordList AssertionChecker::get_requests(const std::string& src,
                                          const std::string& dst,
                                          const std::string& id_pattern) const {
  return store_->get_requests(src, dst, id_pattern);
}

RecordList AssertionChecker::get_replies(const std::string& src,
                                         const std::string& dst,
                                         const std::string& id_pattern) const {
  return store_->get_replies(src, dst, id_pattern);
}

RecordList AssertionChecker::get_exchanges(
    const std::string& src, const std::string& dst,
    const std::string& id_pattern) const {
  return store_->query(exchanges_query(src, dst, id_pattern));
}

CheckResult AssertionChecker::has_timeouts(const std::string& service,
                                           Duration max_latency,
                                           const std::string& id_pattern) const {
  CheckResult result;
  result.name = "HasTimeouts(" + service + ", " +
                format_duration(max_latency) + ")";
  logstore::Query q;
  q.dst = service;
  q.any_kind = true;
  q.id_pattern = id_pattern;

  // Pair requests with replies FIFO per calling edge; a request that stays
  // unanswered for longer than the bound (within the observation window) is
  // the worst timeout violation of all — the caller is hung.
  struct State {
    std::map<Symbol, std::deque<TimePoint>> pending;  // per src
    TimePoint observation_end{};
    Duration worst = kDurationZero;
    size_t violations = 0;
    size_t replies = 0;
  } st;
  const size_t visited =
      store_->for_each(q, [&st, max_latency](const LogRecord& r) {
        st.observation_end = r.timestamp;  // visited in time order
        if (r.kind == MessageKind::kRequest) {
          st.pending[r.src].push_back(r.timestamp);
          return;
        }
        ++st.replies;
        auto& queue = st.pending[r.src];
        if (!queue.empty()) queue.pop_front();
        // Discount Gremlin's own interference on this edge.
        const Duration adjusted =
            r.latency > r.injected_delay ? r.latency - r.injected_delay
                                         : kDurationZero;
        st.worst = std::max(st.worst, adjusted);
        if (adjusted > max_latency) ++st.violations;
      });
  if (visited == 0) {
    result.passed = false;
    result.detail = "no traffic into " + service +
                    " observed; cannot verify the pattern";
    return result;
  }
  size_t unanswered = 0;
  for (const auto& [src, queue] : st.pending) {
    for (const TimePoint sent : queue) {
      if (st.observation_end - sent > max_latency) {
        ++unanswered;
        st.worst = std::max(st.worst, st.observation_end - sent);
      }
    }
  }
  if (st.replies == 0 && unanswered == 0) {
    result.passed = false;
    result.detail = "no replies from " + service +
                    " observed; cannot verify the pattern";
    return result;
  }
  result.passed = st.violations == 0 && unanswered == 0;
  result.detail = std::to_string(st.replies) + " replies, worst " +
                  format_duration(st.worst) + ", " +
                  std::to_string(st.violations) + " over the " +
                  format_duration(max_latency) + " bound, " +
                  std::to_string(unanswered) + " requests never answered";
  return result;
}

CheckResult AssertionChecker::has_bounded_retries(
    const std::string& src, const std::string& dst, int max_tries,
    const std::string& id_pattern) const {
  CheckResult result;
  result.name = "HasBoundedRetries(" + fmt_edge(src, dst) + ", " +
                std::to_string(max_tries) + ")";
  // Group attempts per flow; only flows that experienced a failure are
  // evidence about retry behaviour.
  struct Flow {
    size_t attempts = 0;
    bool saw_failure = false;
  };
  std::map<std::string, Flow, std::less<>> flows;
  const size_t visited = store_->for_each(
      exchanges_query(src, dst, id_pattern), [&flows](const LogRecord& r) {
        Flow& f = flows[r.request_id];
        if (r.kind == MessageKind::kRequest) {
          ++f.attempts;
        } else if (r.failed()) {
          f.saw_failure = true;
        }
      });
  if (visited == 0) {
    result.passed = false;
    result.detail = "no traffic observed on " + fmt_edge(src, dst);
    return result;
  }
  size_t failed_flows = 0;
  size_t worst_attempts = 0;
  size_t violations = 0;
  const size_t allowed = static_cast<size_t>(max_tries) + 1;  // initial + retries
  for (const auto& [id, f] : flows) {
    if (!f.saw_failure) continue;
    ++failed_flows;
    worst_attempts = std::max(worst_attempts, f.attempts);
    if (f.attempts > allowed) ++violations;
  }
  if (failed_flows == 0) {
    result.passed = false;
    result.detail = "no failed calls observed on " + fmt_edge(src, dst) +
                    "; cannot verify the pattern";
    return result;
  }
  result.passed = violations == 0;
  result.detail = std::to_string(failed_flows) + " flows saw failures; max " +
                  std::to_string(worst_attempts) + " attempts per flow (" +
                  std::to_string(allowed) + " allowed); " +
                  std::to_string(violations) + " violations";
  return result;
}

CheckResult AssertionChecker::has_bounded_retries_windowed(
    const std::string& src, const std::string& dst, int status,
    size_t threshold_failures, Duration window, size_t max_more,
    const std::string& id_pattern) const {
  CheckResult result;
  result.name = "HasBoundedRetriesWindowed(" + fmt_edge(src, dst) + ")";
  // Combine walks subspans of one materialized list; the steps themselves
  // copy nothing.
  const RecordList records = get_exchanges(src, dst, id_pattern);
  if (records.empty()) {
    result.passed = false;
    result.detail = "no traffic observed on " + fmt_edge(src, dst);
    return result;
  }
  Combine chain;
  chain.then(Combine::check_status(status, threshold_failures))
      .then(Combine::at_most_requests(window, /*with_rule=*/true, max_more));
  result.passed = chain.evaluate(records);
  result.detail = result.passed
                      ? "after " + std::to_string(threshold_failures) +
                            " status-" + std::to_string(status) +
                            " replies, at most " + std::to_string(max_more) +
                            " requests followed within " +
                            format_duration(window)
                      : "more than " + std::to_string(max_more) +
                            " requests within " + format_duration(window) +
                            " of " + std::to_string(threshold_failures) +
                            " failures (or failures never occurred)";
  return result;
}

CheckResult AssertionChecker::has_circuit_breaker(
    const std::string& src, const std::string& dst, int threshold,
    Duration tdelta, int success_threshold,
    const std::string& id_pattern) const {
  CheckResult result;
  result.name = "HasCircuitBreaker(" + fmt_edge(src, dst) + ", " +
                std::to_string(threshold) + ", " + format_duration(tdelta) +
                ", " + std::to_string(success_threshold) + ")";
  // The scan needs indexed back-tracking, so project the records down to the
  // three fields it reads — 16 bytes each instead of a full LogRecord copy.
  struct Obs {
    TimePoint timestamp;
    bool is_request;
    bool failed;
  };
  std::vector<Obs> obs;
  store_->for_each(exchanges_query(src, dst, id_pattern),
                   [&obs](const LogRecord& r) {
                     obs.push_back({r.timestamp,
                                    r.kind == MessageKind::kRequest,
                                    r.failed()});
                   });
  if (obs.empty()) {
    result.passed = false;
    result.detail = "no traffic observed on " + fmt_edge(src, dst);
    return result;
  }

  // Find the first run of `threshold` consecutive failed replies.
  int consecutive = 0;
  std::optional<size_t> trip_index;
  for (size_t i = 0; i < obs.size(); ++i) {
    const auto& r = obs[i];
    if (r.is_request) continue;
    if (r.failed) {
      if (++consecutive >= threshold) {
        trip_index = i;
        break;
      }
    } else {
      consecutive = 0;
    }
  }
  if (!trip_index) {
    result.passed = false;
    result.detail = "never observed " + std::to_string(threshold) +
                    " consecutive failures; cannot verify the pattern";
    return result;
  }
  const TimePoint trip_time = obs[*trip_index].timestamp;

  // The breaker must suppress requests for tdelta after the trip.
  size_t requests_while_open = 0;
  std::optional<TimePoint> first_probe;
  int successes_after_open = 0;
  size_t requests_after_close_window = 0;
  for (size_t i = *trip_index + 1; i < obs.size(); ++i) {
    const auto& r = obs[i];
    if (r.is_request) {
      if (r.timestamp - trip_time < tdelta) {
        ++requests_while_open;
      } else {
        if (!first_probe) first_probe = r.timestamp;
        ++requests_after_close_window;
      }
    } else if (first_probe && !r.failed) {
      ++successes_after_open;
    }
  }
  if (requests_while_open > 0) {
    result.passed = false;
    result.detail = std::to_string(requests_while_open) +
                    " requests sent within " + format_duration(tdelta) +
                    " of the trip (breaker missing or leaky)";
    return result;
  }
  result.passed = true;
  std::string detail = "no requests for " + format_duration(tdelta) +
                       " after " + std::to_string(threshold) +
                       " consecutive failures";
  if (first_probe) {
    detail += "; probe traffic resumed (" +
              std::to_string(requests_after_close_window) + " requests, " +
              std::to_string(successes_after_open) + " successes";
    detail += successes_after_open >= success_threshold
                  ? ", breaker closed)"
                  : ", breaker not yet closed)";
  } else {
    detail += "; no probe traffic observed after the open window";
  }
  result.detail = detail;
  return result;
}

CheckResult AssertionChecker::has_bulkhead(const std::string& src,
                                           const std::string& slow_dst,
                                           double min_rate,
                                           const std::string& id_pattern) const {
  CheckResult result;
  result.name = "HasBulkhead(" + src + ", slow=" + slow_dst + ", rate>=" +
                std::to_string(min_rate) + "/s)";
  if (graph_ == nullptr) {
    result.passed = false;
    result.detail = "no application graph supplied; cannot enumerate the "
                    "other dependents of " + src;
    return result;
  }
  const auto deps = graph_->dependencies(src);
  bool checked_any = false;
  std::string detail;
  bool all_ok = true;
  for (const auto& dep : deps) {
    if (dep == slow_dst) continue;
    checked_any = true;
    // Streaming request_rate: the query filters to requests already.
    struct State {
      size_t count = 0;
      TimePoint first{}, last{};
    } st;
    logstore::Query q;
    q.src = src;
    q.dst = dep;
    q.id_pattern = id_pattern;
    store_->for_each(q, [&st](const LogRecord& r) {
      if (st.count == 0) st.first = r.timestamp;
      st.last = r.timestamp;
      ++st.count;
    });
    const double rate =
        (st.count < 2 || st.last <= st.first)
            ? 0.0
            : static_cast<double>(st.count - 1) / to_seconds(st.last - st.first);
    if (!detail.empty()) detail += "; ";
    detail += dep + ": " + std::to_string(rate) + " req/s";
    if (rate < min_rate) all_ok = false;
  }
  if (!checked_any) {
    result.passed = false;
    result.detail = src + " has no dependents other than " + slow_dst;
    return result;
  }
  result.passed = all_ok;
  result.detail = detail;
  return result;
}

CheckResult AssertionChecker::has_latency_slo(
    const std::string& src, const std::string& dst, double percentile,
    Duration bound, bool with_rule, const std::string& id_pattern) const {
  CheckResult result;
  result.name = "HasLatencySLO(" + fmt_edge(src, dst) + ", p" +
                std::to_string(static_cast<int>(percentile)) + " <= " +
                format_duration(bound) + ")";
  std::vector<Duration> latencies;
  store_->for_each(replies_query(src, dst, id_pattern),
                   [&latencies, with_rule](const LogRecord& r) {
                     if (with_rule) {
                       latencies.push_back(r.latency);
                       return;
                     }
                     if (synthesized_by_gremlin(r)) return;
                     const Duration adjusted = r.latency - r.injected_delay;
                     latencies.push_back(
                         adjusted < kDurationZero ? kDurationZero : adjusted);
                   });
  if (latencies.empty()) {
    result.passed = false;
    result.detail = "no replies observed on " + fmt_edge(src, dst);
    return result;
  }
  std::sort(latencies.begin(), latencies.end());
  size_t rank = static_cast<size_t>(
      percentile / 100.0 * static_cast<double>(latencies.size()));
  if (rank >= latencies.size()) rank = latencies.size() - 1;
  const Duration observed = latencies[rank];
  result.passed = observed <= bound;
  result.detail = "p" + std::to_string(static_cast<int>(percentile)) +
                  " = " + format_duration(observed) + " over " +
                  std::to_string(latencies.size()) + " replies (bound " +
                  format_duration(bound) + ")";
  return result;
}

CheckResult AssertionChecker::error_rate_below(
    const std::string& src, const std::string& dst, double max_fraction,
    const std::string& id_pattern) const {
  CheckResult result;
  result.name = "ErrorRateBelow(" + fmt_edge(src, dst) + ", " +
                std::to_string(max_fraction) + ")";
  size_t failed = 0;
  const size_t replies =
      store_->for_each(replies_query(src, dst, id_pattern),
                       [&failed](const LogRecord& r) {
                         if (r.failed()) ++failed;
                       });
  if (replies == 0) {
    result.passed = false;
    result.detail = "no replies observed on " + fmt_edge(src, dst);
    return result;
  }
  const double rate =
      static_cast<double>(failed) / static_cast<double>(replies);
  result.passed = rate <= max_fraction;
  result.detail = std::to_string(failed) + "/" + std::to_string(replies) +
                  " replies failed (" + std::to_string(rate) + ")";
  return result;
}

CheckResult AssertionChecker::failure_contained(
    const std::string& origin_service, const std::string& id_pattern) const {
  CheckResult result;
  result.name = "FailureContained(" + origin_service + ")";
  logstore::Query q;
  q.id_pattern = id_pattern;
  q.any_kind = true;
  // Trace reconstruction needs the whole flow in hand; this is the one check
  // that genuinely materializes records.
  const RecordList records = store_->query(q);
  const auto traces = trace::build_traces(records);

  size_t originating_flows = 0;
  size_t escaped = 0;
  for (const auto& t : traces) {
    const auto chain = t.failure_chain();
    if (chain.empty()) continue;
    if (t.spans[chain.back()].dst != origin_service) continue;
    ++originating_flows;
    // The chain runs root → origin; containment means the root span (the
    // user-facing call) did not itself fail.
    if (t.spans[chain.front()].failed() &&
        !t.spans[chain.front()].parent.has_value()) {
      ++escaped;
    }
  }
  if (originating_flows == 0) {
    result.passed = false;
    result.detail = "no failures originating at " + origin_service +
                    " observed; cannot verify containment";
    return result;
  }
  result.passed = escaped == 0;
  result.detail = std::to_string(originating_flows) +
                  " flows failed at " + origin_service + "; " +
                  std::to_string(escaped) + " escaped to the user-facing edge";
  return result;
}

std::string failure_signature(const std::vector<CheckResult>& results) {
  // The signature must identify a failure *mode*, not one particular run of
  // it: shrinking compares signatures across runs, and online checking can
  // terminate a run (truncating its log) the moment every verdict is final.
  // Sorting the deduplicated failed-check names makes the signature
  // independent of check order, duplicate checks, and — because verdicts
  // are sticky and truncation-stable — of how much of the log a run kept
  // (tests/online_checker_test.cc pins the exact bytes).
  std::set<std::string> failed;
  for (const auto& r : results) {
    if (!r.passed) failed.insert(r.name);
  }
  std::string out;
  for (const auto& name : failed) {
    if (!out.empty()) out += " + ";
    out += name;
  }
  return out;
}

}  // namespace gremlin::control
