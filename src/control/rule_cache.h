// RuleCache: fault-rule compilation cache for warm-world execution.
//
// Sweep generators repeat the same FailureSpec across many seed
// replications; translating it against the same graph from the same rule-ID
// sequence position produces the same rules every time. The cache keys on
// (FailureSpec::fingerprint, translator sequence position) and replays the
// memoized expansion on a hit, advancing the translator's sequence by the
// cached rule count so rule IDs stay byte-identical to an uncached history.
//
// Graph identity is the cache's scope: one RuleCache serves exactly one
// deployment graph (a campaign::WarmWorld owns one per AppSpec), so the
// graph never appears in the key.
//
// Not thread-safe; each campaign worker owns its worlds and their caches.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "control/translator.h"

namespace gremlin::control {

class RuleCache {
 public:
  // Expands `spec` through `translator`, consulting the cache. Hit or miss,
  // the translator's sequence advances exactly as a direct translate()
  // would. Translation errors are returned uncached (and cost nothing to
  // re-derive).
  Result<std::vector<faults::FaultRule>> translate(
      const RecipeTranslator& translator, const FailureSpec& spec);

  // Like translate(), but borrows the cached expansion instead of copying
  // it. The returned pointer stays valid until the cache is destroyed
  // (entries are never evicted). This is the per-experiment hot path: key
  // building reuses a scratch string and a hit performs no allocation.
  Result<const std::vector<faults::FaultRule>*> lookup(
      const RecipeTranslator& translator, const FailureSpec& spec);

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<std::string, std::vector<faults::FaultRule>> cache_;
  // Reused key buffer for lookup(); capacity settles after the first few
  // experiments, making steady-state key construction allocation-free.
  std::string key_scratch_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace gremlin::control
