// LogCollector: the background log-shipping pipeline.
//
// Section 6 uses logstash to stream agent logs into Elasticsearch
// continuously; TestSession::collect() is the synchronous equivalent for
// simulated runs. This collector covers the real-proxy path: a thread that
// periodically drains every agent in a Deployment into the central
// LogStore, so assertions can run while traffic is still flowing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "logstore/store.h"
#include "topology/deployment.h"

namespace gremlin::control {

class LogCollector {
 public:
  LogCollector(topology::Deployment* deployment, logstore::LogStore* store,
               Duration interval = msec(200))
      : deployment_(deployment), store_(store), interval_(interval) {}

  ~LogCollector() { stop(); }

  LogCollector(const LogCollector&) = delete;
  LogCollector& operator=(const LogCollector&) = delete;

  void start();

  // Stops the thread after a final drain, so no buffered observation is
  // lost.
  void stop();

  // One synchronous drain (also usable without start()).
  VoidResult collect_once();

  uint64_t collections() const { return collections_.load(); }
  uint64_t records_shipped() const { return records_shipped_.load(); }

 private:
  void run();

  topology::Deployment* deployment_;
  logstore::LogStore* store_;
  Duration interval_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> collections_{0};
  std::atomic<uint64_t> records_shipped_{0};
};

}  // namespace gremlin::control
