// LogCollector: the background log-shipping pipeline.
//
// Section 6 uses logstash to stream agent logs into Elasticsearch
// continuously; TestSession::collect() is the synchronous equivalent for
// simulated runs. This collector covers the real-proxy path: a thread that
// periodically drains every agent in a Deployment into the central
// LogStore, so assertions can run while traffic is still flowing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "logstore/store.h"
#include "sim/simulation.h"
#include "topology/deployment.h"

namespace gremlin::control {

class LogCollector {
 public:
  LogCollector(topology::Deployment* deployment, logstore::LogStore* store,
               Duration interval = msec(200))
      : deployment_(deployment), store_(store), interval_(interval) {}

  ~LogCollector() { stop(); }

  LogCollector(const LogCollector&) = delete;
  LogCollector& operator=(const LogCollector&) = delete;

  void start();

  // Stops the thread after a final drain, so no buffered observation is
  // lost.
  void stop();

  // One synchronous drain (also usable without start()).
  VoidResult collect_once();

  uint64_t collections() const { return collections_.load(); }
  uint64_t records_shipped() const { return records_shipped_.load(); }

 private:
  void run();

  topology::Deployment* deployment_;
  logstore::LogStore* store_;
  Duration interval_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> collections_{0};
  std::atomic<uint64_t> records_shipped_{0};
};

// SimStreamCollector: the simulated counterpart of LogCollector, feeding the
// online checker pipeline. Instead of a background thread, it schedules a
// recurring *virtual-time* drain event on the simulation: each drain moves
// every agent's buffered observations out, merges them into one
// chronologically-sorted batch (stable on ties, so agent order breaks them
// deterministically), and ships the batch to the sim's LogStore — whose
// append observer feeds the incremental checks.
//
// The drain cadence adapts to the timeline: the next drain is scheduled at
// max(now + interval, next pending event), so sparse timelines (an hour-long
// Hang horizon with nothing in between) cost one drain per event burst
// instead of hundreds of thousands of empty wakeups. Drains touch no RNG and
// no application state, so a streamed run stays deterministic. The collector
// stops rescheduling once the sim has a stop request or no pending events;
// call drain_now() after the run for the final flush.
class SimStreamCollector {
 public:
  enum class Mode {
    kAppendToStore,  // ship to the LogStore (record-consuming checks)
    kDiscard,        // drop after draining (bounds agent-buffer memory when
                     // only load-based checks are attached)
  };

  SimStreamCollector(sim::Simulation* sim, Mode mode,
                     Duration interval = msec(5))
      : sim_(sim), mode_(mode), interval_(interval) {}

  SimStreamCollector(const SimStreamCollector&) = delete;
  SimStreamCollector& operator=(const SimStreamCollector&) = delete;

  // Schedules the first drain. The collector must outlive the run.
  void start();

  // Synchronous final drain (after run_load returns or stops early).
  void drain_now();

  size_t drains() const { return drains_; }
  size_t records_streamed() const { return records_streamed_; }

 private:
  void drain();
  void arm();

  sim::Simulation* sim_;
  Mode mode_;
  Duration interval_;
  logstore::RecordList batch_;  // reused across drains
  size_t drains_ = 0;
  size_t records_streamed_ = 0;
};

}  // namespace gremlin::control
