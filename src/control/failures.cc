#include "control/failures.h"

#include <charconv>
#include <cstring>

namespace gremlin::control {
namespace {

using faults::FaultRule;

// Rule IDs embed a sequence number so repeated applications of the same
// spec stay distinguishable (FailureOrchestrator removes rules by ID). The
// sequence is caller-owned — NOT a process-global — so that translations
// are deterministic: a campaign worker translating experiment N always
// mints the same IDs regardless of what other threads are doing.
std::string rule_id(uint64_t* seq, const char* scenario,
                    const std::string& src, const std::string& dst,
                    const char* what) {
  return std::string(scenario) + "-" + what + "-" + src + "->" + dst + "-" +
         std::to_string(++*seq);
}

VoidResult require_service(const topology::AppGraph& graph,
                           const std::string& name) {
  if (name == "*" || graph.has_service(name)) return VoidResult::success();
  return Error::not_found("service '" + name +
                          "' is not in the application graph");
}

}  // namespace

FailureSpec FailureSpec::abort_edge(std::string src, std::string dst,
                                    int error, std::string pattern) {
  FailureSpec s;
  s.kind = Kind::kAbort;
  s.a = std::move(src);
  s.b = std::move(dst);
  s.error = error;
  s.pattern = std::move(pattern);
  return s;
}

FailureSpec FailureSpec::delay_edge(std::string src, std::string dst,
                                    Duration interval, std::string pattern) {
  FailureSpec s;
  s.kind = Kind::kDelay;
  s.a = std::move(src);
  s.b = std::move(dst);
  s.delay = interval;
  s.pattern = std::move(pattern);
  return s;
}

FailureSpec FailureSpec::modify_edge(std::string src, std::string dst,
                                     std::string body_pattern,
                                     std::string replace_bytes,
                                     std::string pattern) {
  FailureSpec s;
  s.kind = Kind::kModify;
  s.a = std::move(src);
  s.b = std::move(dst);
  s.body_pattern = std::move(body_pattern);
  s.replace_bytes = std::move(replace_bytes);
  s.pattern = std::move(pattern);
  return s;
}

FailureSpec FailureSpec::disconnect(std::string src, std::string dst,
                                    int error) {
  FailureSpec s;
  s.kind = Kind::kDisconnect;
  s.a = std::move(src);
  s.b = std::move(dst);
  s.error = error;
  return s;
}

FailureSpec FailureSpec::crash(std::string service) {
  FailureSpec s;
  s.kind = Kind::kCrash;
  s.b = std::move(service);
  return s;
}

FailureSpec FailureSpec::hang(std::string service, Duration interval) {
  FailureSpec s;
  s.kind = Kind::kHang;
  s.b = std::move(service);
  s.delay = interval;
  return s;
}

FailureSpec FailureSpec::overload(std::string service, Duration delay,
                                  double abort_fraction) {
  FailureSpec s;
  s.kind = Kind::kOverload;
  s.b = std::move(service);
  s.overload_delay = delay;
  s.overload_abort_fraction = abort_fraction;
  return s;
}

FailureSpec FailureSpec::fake_success(std::string service,
                                      std::string body_pattern,
                                      std::string replace_bytes) {
  FailureSpec s;
  s.kind = Kind::kFakeSuccess;
  s.b = std::move(service);
  s.body_pattern = std::move(body_pattern);
  s.replace_bytes = std::move(replace_bytes);
  return s;
}

FailureSpec FailureSpec::partition(std::set<std::string> group) {
  FailureSpec s;
  s.kind = Kind::kPartition;
  s.group = std::move(group);
  return s;
}

FailureSpec FailureSpec::instance_crash(std::string service, Duration after,
                                        Duration downtime) {
  FailureSpec s;
  s.kind = Kind::kInstanceCrash;
  s.b = std::move(service);
  s.after = after;
  s.window = downtime;
  return s;
}

FailureSpec FailureSpec::rolling_partition(std::set<std::string> group,
                                           Duration after, Duration window,
                                           Duration stagger) {
  FailureSpec s;
  s.kind = Kind::kRollingPartition;
  s.group = std::move(group);
  s.after = after;
  s.window = window;
  s.stagger = stagger;
  return s;
}

FailureSpec FailureSpec::slow_node(std::string service, Duration mean,
                                   Duration after, Duration window) {
  FailureSpec s;
  s.kind = Kind::kSlowNode;
  s.b = std::move(service);
  s.delay_distribution = faults::DelayDistribution::kExponential;
  s.delay_mean = mean;
  s.after = after;
  s.window = window;
  return s;
}

std::string FailureSpec::fingerprint() const {
  std::string out;
  fingerprint_into(&out);
  return out;
}

void FailureSpec::fingerprint_into(std::string* out) const {
  // to_chars into a stack buffer: std::to_string of a 64-bit value exceeds
  // the small-string capacity and would heap-allocate a temporary per field.
  const auto append_num = [out](auto v) {
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out->append(buf, res.ptr);
  };
  const auto append_bits = [&append_num](double v) {
    uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    append_num(u);
  };
  append_num(static_cast<int>(kind));
  *out += '|';
  *out += a;
  *out += '|';
  *out += b;
  *out += '|';
  for (const auto& member : group) {
    *out += member;
    *out += ',';
  }
  *out += '|';
  *out += pattern;
  *out += '|';
  append_bits(probability);
  *out += '|';
  append_num(error);
  *out += '|';
  append_num(delay.count());
  *out += '|';
  append_bits(overload_abort_fraction);
  *out += '|';
  append_num(overload_delay.count());
  *out += '|';
  *out += body_pattern;
  *out += '|';
  *out += replace_bytes;
  *out += '|';
  append_num(static_cast<int>(on));
  *out += '|';
  append_num(max_matches);
  *out += '|';
  append_num(after.count());
  *out += '|';
  append_num(window.count());
  *out += '|';
  append_num(stagger.count());
  *out += '|';
  append_num(static_cast<int>(delay_distribution));
  *out += '|';
  append_num(delay_min.count());
  *out += '|';
  append_num(delay_max.count());
  *out += '|';
  append_num(delay_mean.count());
  *out += '|';
  for (const Duration d : delay_values) {
    append_num(d.count());
    *out += ',';
  }
}

const char* FailureSpec::kind_name() const {
  switch (kind) {
    case Kind::kAbort: return "abort";
    case Kind::kDelay: return "delay";
    case Kind::kModify: return "modify";
    case Kind::kDisconnect: return "disconnect";
    case Kind::kCrash: return "crash";
    case Kind::kHang: return "hang";
    case Kind::kOverload: return "overload";
    case Kind::kFakeSuccess: return "fake_success";
    case Kind::kPartition: return "partition";
    case Kind::kInstanceCrash: return "instance_crash";
    case Kind::kRollingPartition: return "rolling_partition";
    case Kind::kSlowNode: return "slow_node";
  }
  return "unknown";
}

Result<std::vector<FaultRule>> translate_failure(
    const topology::AppGraph& graph, const FailureSpec& spec,
    uint64_t* sequence) {
  uint64_t local_seq = 0;
  uint64_t* seq = sequence != nullptr ? sequence : &local_seq;
  std::vector<FaultRule> rules;

  auto make_abort = [&spec, seq](const std::string& src,
                                 const std::string& dst, int error,
                                 double probability, const char* scenario) {
    FaultRule r;
    r.id = rule_id(seq, scenario, src, dst, "abort");
    r.source = src;
    r.destination = dst;
    r.type = faults::FaultKind::kAbort;
    r.abort_code = error;
    r.pattern = spec.pattern;
    r.probability = probability;
    r.on = logstore::MessageKind::kRequest;
    r.max_matches = spec.max_matches;
    r.after = spec.after;
    r.window_duration = spec.window;
    return r;
  };
  auto make_delay = [&spec, seq](const std::string& src,
                                 const std::string& dst, Duration interval,
                                 double probability, const char* scenario) {
    FaultRule r;
    r.id = rule_id(seq, scenario, src, dst, "delay");
    r.source = src;
    r.destination = dst;
    r.type = faults::FaultKind::kDelay;
    r.delay_interval = interval;
    r.delay_distribution = spec.delay_distribution;
    r.delay_min = spec.delay_min;
    r.delay_max = spec.delay_max;
    r.delay_mean = spec.delay_mean;
    r.delay_values = spec.delay_values;
    r.pattern = spec.pattern;
    r.probability = probability;
    r.on = logstore::MessageKind::kRequest;
    r.max_matches = spec.max_matches;
    r.after = spec.after;
    r.window_duration = spec.window;
    return r;
  };

  switch (spec.kind) {
    case FailureSpec::Kind::kAbort: {
      auto ok = require_service(graph, spec.a);
      if (!ok.ok()) return ok.error();
      ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      FaultRule r = make_abort(spec.a, spec.b, spec.error, spec.probability,
                               "abort");
      r.on = spec.on;
      rules.push_back(std::move(r));
      break;
    }
    case FailureSpec::Kind::kDelay: {
      auto ok = require_service(graph, spec.a);
      if (!ok.ok()) return ok.error();
      ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      FaultRule r = make_delay(spec.a, spec.b, spec.delay, spec.probability,
                               "delay");
      r.on = spec.on;
      rules.push_back(std::move(r));
      break;
    }
    case FailureSpec::Kind::kModify: {
      auto ok = require_service(graph, spec.a);
      if (!ok.ok()) return ok.error();
      ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      FaultRule r;
      r.id = rule_id(seq, "modify", spec.a, spec.b, "modify");
      r.source = spec.a;
      r.destination = spec.b;
      r.type = faults::FaultKind::kModify;
      r.body_pattern = spec.body_pattern;
      r.replace_bytes = spec.replace_bytes;
      r.pattern = spec.pattern;
      r.probability = spec.probability;
      r.on = spec.on;
      r.max_matches = spec.max_matches;
      r.after = spec.after;
      r.window_duration = spec.window;
      rules.push_back(std::move(r));
      break;
    }
    case FailureSpec::Kind::kDisconnect: {
      auto ok = require_service(graph, spec.a);
      if (!ok.ok()) return ok.error();
      ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      rules.push_back(make_abort(spec.a, spec.b, spec.error, 1.0,
                                 "disconnect"));
      break;
    }
    case FailureSpec::Kind::kCrash: {
      auto ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      for (const auto& dep : graph.dependents(spec.b)) {
        rules.push_back(make_abort(dep, spec.b, faults::kTcpReset,
                                   spec.probability, "crash"));
      }
      break;
    }
    case FailureSpec::Kind::kHang: {
      auto ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      for (const auto& dep : graph.dependents(spec.b)) {
        rules.push_back(make_delay(dep, spec.b, spec.delay, 1.0, "hang"));
      }
      break;
    }
    case FailureSpec::Kind::kOverload: {
      auto ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      // Section 5: Abort 25% of requests with an error code, delay the rest.
      // First-match-wins evaluation with a probabilistic fall-through means
      // the delay rule sees exactly the abort rule's declined traffic, so
      // Delay's conditional probability of 1.0 yields the 25/75 split.
      for (const auto& dep : graph.dependents(spec.b)) {
        rules.push_back(make_abort(dep, spec.b, 503,
                                   spec.overload_abort_fraction, "overload"));
        rules.push_back(make_delay(dep, spec.b, spec.overload_delay, 1.0,
                                   "overload"));
      }
      break;
    }
    case FailureSpec::Kind::kFakeSuccess: {
      auto ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      for (const auto& dep : graph.dependents(spec.b)) {
        FaultRule r;
        r.id = rule_id(seq, "fake-success", dep, spec.b, "modify");
        r.source = dep;
        r.destination = spec.b;
        r.type = faults::FaultKind::kModify;
        r.body_pattern = spec.body_pattern;
        r.replace_bytes = spec.replace_bytes;
        r.pattern = spec.pattern;
        r.on = logstore::MessageKind::kResponse;
        rules.push_back(std::move(r));
      }
      break;
    }
    case FailureSpec::Kind::kPartition: {
      for (const auto& svc : spec.group) {
        auto ok = require_service(graph, svc);
        if (!ok.ok()) return ok.error();
      }
      for (const auto& edge : graph.cut(spec.group)) {
        rules.push_back(make_abort(edge.src, edge.dst, faults::kTcpReset,
                                   1.0, "partition"));
      }
      break;
    }
    case FailureSpec::Kind::kInstanceCrash: {
      // Network view of an instance outage: every dependent sees resets
      // while the service is down. The simulator-level down/up hook (the
      // service refusing work it already accepted) is scheduled by
      // TestSession::apply, which owns the Simulation; the rules here make
      // the scenario meaningful on the proxy data plane too.
      auto ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      for (const auto& dep : graph.dependents(spec.b)) {
        rules.push_back(make_abort(dep, spec.b, faults::kTcpReset,
                                   spec.probability, "instance-crash"));
      }
      break;
    }
    case FailureSpec::Kind::kRollingPartition: {
      for (const auto& svc : spec.group) {
        auto ok = require_service(graph, svc);
        if (!ok.ok()) return ok.error();
      }
      // Members are isolated one after another in their (sorted) set order:
      // member i's cut edges reset during [after + i*stagger, +window].
      uint64_t index = 0;
      for (const auto& svc : spec.group) {
        const Duration member_after = spec.after + spec.stagger * index;
        std::set<std::string> lone{svc};
        for (const auto& edge : graph.cut(lone)) {
          FaultRule r = make_abort(edge.src, edge.dst, faults::kTcpReset,
                                   1.0, "rolling-partition");
          r.after = member_after;
          r.window_duration = spec.window;
          rules.push_back(std::move(r));
        }
        ++index;
      }
      break;
    }
    case FailureSpec::Kind::kSlowNode: {
      auto ok = require_service(graph, spec.b);
      if (!ok.ok()) return ok.error();
      for (const auto& dep : graph.dependents(spec.b)) {
        rules.push_back(make_delay(dep, spec.b, spec.delay, spec.probability,
                                   "slow-node"));
      }
      break;
    }
  }
  return rules;
}

}  // namespace gremlin::control
