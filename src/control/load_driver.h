// LoadDriver: a re-bindable test-load injector for prefix-snapshot runs.
//
// TestSession::run_load's closures capture their LoadResult handle directly,
// which ties every scheduled event to one result object. A snapshotted
// prefix needs the opposite: the injection closures live inside saved event
// actions and are re-run by every sibling experiment restored from the
// snapshot, each with its own LoadResult. The driver owns the injection
// logic behind a stable `this` (the SnapshotCache keeps it at a fixed heap
// address for the snapshot's lifetime) and exposes bind() to point the
// in-flight closures at the current sibling's result sink and response
// observer. Scheduling, request construction, and result accounting mirror
// run_load exactly — same events, same times, same order — so a driver-fed
// run is byte-identical to a run_load-fed one.
#pragma once

#include <functional>
#include <string>

#include "common/intern.h"
#include "control/recipe.h"
#include "sim/simulation.h"

namespace gremlin::control {

class LoadDriver {
 public:
  LoadDriver(sim::Simulation* sim, const std::string& client,
             const std::string& target, LoadOptions options);

  LoadDriver(const LoadDriver&) = delete;
  LoadDriver& operator=(const LoadDriver&) = delete;

  // Points the in-flight closures at a new result sink (pre-sized to
  // options().count) and response observer. Call before each run segment;
  // bind(nullptr, {}) detaches after one.
  void bind(LoadResult* result, std::function<void(bool failed)> observer);

  // Schedules the configured requests exactly as run_load would: open loop
  // schedules all arrivals up front, closed loop issues request 0
  // synchronously and chains the rest off responses.
  void schedule_all();

  const LoadOptions& options() const { return options_; }

 private:
  void send(size_t i);
  void on_response(size_t i, TimePoint sent, const sim::SimResponse& resp);

  sim::Simulation* sim_;
  Symbol client_;
  Symbol target_;
  LoadOptions options_;
  LoadResult* result_ = nullptr;
  std::function<void(bool failed)> observer_;
};

}  // namespace gremlin::control
