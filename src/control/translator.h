// RecipeTranslator: the control-plane component that turns a recipe's
// high-level failure scenarios into concrete fault-injection rules using the
// logical application graph (Section 4.2).
#pragma once

#include <vector>

#include "control/failures.h"
#include "topology/graph.h"

namespace gremlin::control {

class RecipeTranslator {
 public:
  explicit RecipeTranslator(topology::AppGraph graph)
      : graph_(std::move(graph)) {}

  const topology::AppGraph& graph() const { return graph_; }

  // Expands one failure scenario. Rule IDs are numbered from a translator-
  // local sequence: deterministic for a given call history, unique across
  // the translator's lifetime (so a session can apply the same spec twice
  // and still remove the two rule sets independently).
  Result<std::vector<faults::FaultRule>> translate(
      const FailureSpec& spec) const {
    return translate_failure(graph_, spec, &seq_);
  }

  // Expands a whole scenario list, concatenating the rules in order (rule
  // order defines match priority on the agents).
  Result<std::vector<faults::FaultRule>> translate_all(
      const std::vector<FailureSpec>& specs) const;

 private:
  topology::AppGraph graph_;
  mutable uint64_t seq_ = 0;
};

}  // namespace gremlin::control
