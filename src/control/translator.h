// RecipeTranslator: the control-plane component that turns a recipe's
// high-level failure scenarios into concrete fault-injection rules using the
// logical application graph (Section 4.2).
#pragma once

#include <memory>
#include <vector>

#include "control/failures.h"
#include "topology/graph.h"

namespace gremlin::control {

class RecipeTranslator {
 public:
  explicit RecipeTranslator(topology::AppGraph graph)
      : owned_(std::make_unique<topology::AppGraph>(std::move(graph))),
        graph_(owned_.get()) {}

  // Borrowing form: `graph` must outlive the translator. Warm-world callers
  // cache one graph per deployment and skip the per-session copy.
  explicit RecipeTranslator(const topology::AppGraph* graph)
      : graph_(graph) {}

  const topology::AppGraph& graph() const { return *graph_; }

  // Expands one failure scenario. Rule IDs are numbered from a translator-
  // local sequence: deterministic for a given call history, unique across
  // the translator's lifetime (so a session can apply the same spec twice
  // and still remove the two rule sets independently).
  Result<std::vector<faults::FaultRule>> translate(
      const FailureSpec& spec) const {
    return translate_failure(*graph_, spec, &seq_);
  }

  // Expands a whole scenario list, concatenating the rules in order (rule
  // order defines match priority on the agents).
  Result<std::vector<faults::FaultRule>> translate_all(
      const std::vector<FailureSpec>& specs) const;

  // Rule-ID sequence introspection for the fault-rule compilation cache: a
  // cache hit must advance the sequence by exactly the cached rule count so
  // rule IDs stay byte-identical to an uncached translation history.
  uint64_t sequence() const { return seq_; }
  void advance_sequence(uint64_t n) const { seq_ += n; }

 private:
  std::unique_ptr<const topology::AppGraph> owned_;  // null when borrowing
  const topology::AppGraph* graph_;
  mutable uint64_t seq_ = 0;
};

}  // namespace gremlin::control
