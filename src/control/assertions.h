// Base assertions and the Combine operator (Section 4.2, Table 3).
//
// Queries return filtered, time-sorted record lists (RecordList). Base
// assertions compute booleans over such lists and can be chained with
// Combine, a state machine in which each satisfied assertion *consumes* the
// prefix of records that triggered it before handing the remainder to the
// next assertion.
//
// The `with_rule` parameter follows Section 4.2: with_rule=true evaluates
// observations as the *caller* experienced them, including Gremlin's own
// interference (injected delays count toward latencies; agent-synthesized
// abort responses count as real replies). with_rule=false recovers the
// untampered behaviour: injected delays are subtracted and records created
// purely by Gremlin actions are excluded.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/duration.h"
#include "logstore/store.h"

namespace gremlin::control {

using logstore::RecordList;

// Assertions and Combine operate on borrowed views of record storage: a
// RecordList converts implicitly, and Combine steps receive subspans of the
// original list instead of per-step copies.
using RecordSpan = std::span<const logstore::LogRecord>;

// True when the record only exists because Gremlin synthesized it (an abort
// response never actually sent by the callee).
bool synthesized_by_gremlin(const logstore::LogRecord& r);

// --- queries / statistics -------------------------------------------------

// Number of request records, optionally limited to `tdelta` from the first
// record in the list.
size_t num_requests(RecordSpan records,
                    std::optional<Duration> tdelta = std::nullopt,
                    bool with_rule = true);

// Per-reply latencies. with_rule=false subtracts the injected delay and
// drops synthesized replies.
std::vector<Duration> reply_latency(RecordSpan records, bool with_rule = true);

// Request rate in requests/second over the list's time span (0 when fewer
// than two requests).
double request_rate(RecordSpan records);

// --- base assertions --------------------------------------------------------

// At most `num` requests within `tdelta` of the list's first record.
bool at_most_requests(RecordSpan records, Duration tdelta, bool with_rule,
                      size_t num);

// At least `num_match` replies carry `status`. status 0 matches
// connection-level failures.
bool check_status(RecordSpan records, int status, size_t num_match,
                  bool with_rule = true);

// --- Combine ---------------------------------------------------------------

// One step of a Combine chain. Receives a view of the records not yet
// consumed and the anchor time (timestamp of the previous step's last
// consumed record). Returns {satisfied, records consumed}.
using CombineStep =
    std::function<std::pair<bool, size_t>(RecordSpan remaining,
                                          TimePoint anchor)>;

class Combine {
 public:
  Combine& then(CombineStep step) {
    steps_.push_back(std::move(step));
    return *this;
  }

  // Evaluates the chain: every step must be satisfied, each consuming its
  // trigger prefix. Steps see subspans of `records`; nothing is copied.
  bool evaluate(RecordSpan records) const;

  // Step factories mirroring the paper's usage.

  // Satisfied once `num_match` replies with `status` are seen; consumes
  // everything up to and including the num_match'th such reply.
  static CombineStep check_status(int status, size_t num_match,
                                  bool with_rule = true);

  // Counts *request* records with timestamps in (anchor, anchor+tdelta];
  // satisfied when the count is <= max. Consumes the counted records.
  static CombineStep at_most_requests(Duration tdelta, bool with_rule,
                                      size_t max);

  // Satisfied when *no* request record falls in (anchor, anchor+tdelta].
  static CombineStep no_requests_for(Duration tdelta);

  // Satisfied when at least `min` requests fall in (anchor, anchor+tdelta].
  static CombineStep at_least_requests(Duration tdelta, bool with_rule,
                                       size_t min);

 private:
  std::vector<CombineStep> steps_;
};

}  // namespace gremlin::control
