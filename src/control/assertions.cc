#include "control/assertions.h"

#include <algorithm>

namespace gremlin::control {

using logstore::FaultKind;
using logstore::LogRecord;
using logstore::MessageKind;

bool synthesized_by_gremlin(const LogRecord& r) {
  // An abort rule on the request side means no message reached the callee;
  // the "reply" the caller saw was fabricated by the agent.
  return r.fault == FaultKind::kAbort;
}

size_t num_requests(RecordSpan records, std::optional<Duration> tdelta,
                    bool with_rule) {
  size_t count = 0;
  std::optional<TimePoint> first_time;
  for (const auto& r : records) {
    if (r.kind != MessageKind::kRequest) continue;
    if (!with_rule && r.fault != FaultKind::kNone) continue;
    if (!first_time) first_time = r.timestamp;
    if (tdelta && r.timestamp - *first_time > *tdelta) break;
    ++count;
  }
  return count;
}

std::vector<Duration> reply_latency(RecordSpan records, bool with_rule) {
  std::vector<Duration> out;
  for (const auto& r : records) {
    if (r.kind != MessageKind::kResponse) continue;
    if (with_rule) {
      out.push_back(r.latency);
    } else {
      if (synthesized_by_gremlin(r)) continue;
      const Duration adjusted = r.latency - r.injected_delay;
      out.push_back(adjusted < kDurationZero ? kDurationZero : adjusted);
    }
  }
  return out;
}

double request_rate(RecordSpan records) {
  std::optional<TimePoint> first, last;
  size_t count = 0;
  for (const auto& r : records) {
    if (r.kind != MessageKind::kRequest) continue;
    if (!first) first = r.timestamp;
    last = r.timestamp;
    ++count;
  }
  if (count < 2 || !first || !last || *last <= *first) return 0.0;
  return static_cast<double>(count - 1) / to_seconds(*last - *first);
}

bool at_most_requests(RecordSpan records, Duration tdelta,
                      bool with_rule, size_t num) {
  return num_requests(records, tdelta, with_rule) <= num;
}

bool check_status(RecordSpan records, int status, size_t num_match,
                  bool with_rule) {
  size_t count = 0;
  for (const auto& r : records) {
    if (r.kind != MessageKind::kResponse) continue;
    if (!with_rule && synthesized_by_gremlin(r)) continue;
    if (r.status == status) {
      if (++count >= num_match) return true;
    }
  }
  return num_match == 0;
}

bool Combine::evaluate(RecordSpan records) const {
  size_t offset = 0;
  TimePoint anchor = records.empty() ? TimePoint{} : records.front().timestamp;
  for (const auto& step : steps_) {
    const auto [ok, consumed] = step(records.subspan(offset), anchor);
    if (!ok) return false;
    if (consumed > 0) {
      const size_t last = std::min(offset + consumed, records.size());
      if (last > 0) anchor = records[last - 1].timestamp;
      offset = last;
    }
  }
  return true;
}

CombineStep Combine::check_status(int status, size_t num_match,
                                  bool with_rule) {
  return [status, num_match, with_rule](RecordSpan remaining,
                                        TimePoint) -> std::pair<bool, size_t> {
    if (num_match == 0) return {true, 0};
    size_t count = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const auto& r = remaining[i];
      if (r.kind != MessageKind::kResponse) continue;
      if (!with_rule && synthesized_by_gremlin(r)) continue;
      if (r.status == status && ++count >= num_match) {
        return {true, i + 1};
      }
    }
    return {false, 0};
  };
}

CombineStep Combine::at_most_requests(Duration tdelta, bool with_rule,
                                      size_t max) {
  return [tdelta, with_rule, max](RecordSpan remaining,
                                  TimePoint anchor) -> std::pair<bool, size_t> {
    size_t count = 0;
    size_t consumed = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const auto& r = remaining[i];
      if (r.timestamp - anchor > tdelta) break;
      consumed = i + 1;
      if (r.kind != MessageKind::kRequest) continue;
      if (!with_rule && r.fault != FaultKind::kNone) continue;
      ++count;
    }
    return {count <= max, consumed};
  };
}

CombineStep Combine::no_requests_for(Duration tdelta) {
  // Exclusive upper bound: a request at exactly anchor+tdelta is legal, so
  // asserting tdelta equal to the app's circuit-breaker open interval works.
  return [tdelta](RecordSpan remaining,
                  TimePoint anchor) -> std::pair<bool, size_t> {
    size_t consumed = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const auto& r = remaining[i];
      if (r.timestamp - anchor >= tdelta) break;
      consumed = i + 1;
      if (r.kind == MessageKind::kRequest) return {false, 0};
    }
    return {true, consumed};
  };
}

CombineStep Combine::at_least_requests(Duration tdelta, bool with_rule,
                                       size_t min) {
  return [tdelta, with_rule, min](RecordSpan remaining,
                                  TimePoint anchor) -> std::pair<bool, size_t> {
    size_t count = 0;
    size_t consumed = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const auto& r = remaining[i];
      if (r.timestamp - anchor > tdelta) break;
      consumed = i + 1;
      if (r.kind != MessageKind::kRequest) continue;
      if (!with_rule && r.fault != FaultKind::kNone) continue;
      ++count;
    }
    return {count >= min, consumed};
  };
}

}  // namespace gremlin::control
