#include "control/online.h"

#include <algorithm>
#include <utility>

#include "common/intern.h"
#include "control/assertions.h"

namespace gremlin::control {

using logstore::LogRecord;
using logstore::MessageKind;

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kUndecided:
      return "undecided";
    case Verdict::kPass:
      return "pass";
    case Verdict::kFail:
      return "fail";
  }
  return "?";
}

namespace {

std::string fmt_edge(const std::string& src, const std::string& dst) {
  return src + " -> " + dst;
}

// A service name resolved lazily against the symbol table (shard-aware:
// on a campaign worker the record symbols come from the worker's shard).
// Checks can be constructed before every service they reference has logged
// (and thus interned) its name; resolution retries until the name exists.
struct LazySymbol {
  std::string name;  // empty = wildcard
  mutable std::optional<Symbol> sym;

  bool matches(Symbol s) const {
    if (name.empty()) return true;
    if (!sym) sym = find_symbol(name);
    return sym.has_value() && *sym == s;
  }
};

// The (src, dst, kind, id) filter every record-consuming check applies;
// mirrors logstore::Query semantics so a check fed the full time-sorted
// stream sees exactly the records its post-hoc query would visit.
struct RecordFilter {
  LazySymbol src;
  LazySymbol dst;
  MessageKind kind = MessageKind::kRequest;
  bool any_kind = false;
  Glob glob;

  RecordFilter(std::string src_name, std::string dst_name, MessageKind k,
               bool any, std::string id_pattern)
      : src{std::move(src_name), std::nullopt},
        dst{std::move(dst_name), std::nullopt},
        kind(k),
        any_kind(any),
        glob(id_pattern.empty() ? "*" : std::move(id_pattern)) {}

  bool matches(const LogRecord& r) const {
    if (!src.matches(r.src)) return false;
    if (!dst.matches(r.dst)) return false;
    if (!any_kind && r.kind != kind) return false;
    if (!glob.match_all() && !glob.matches(r.request_id)) return false;
    return true;
  }
};

// --- HasTimeouts ------------------------------------------------------------

class IncTimeouts final : public IncrementalCheck {
 public:
  IncTimeouts(std::string service, Duration max_latency,
              std::string id_pattern)
      : service_(std::move(service)),
        max_latency_(max_latency),
        filter_("", service_, MessageKind::kRequest, /*any=*/true,
                std::move(id_pattern)) {}

  void offer(const LogRecord& r) override {
    if (!filter_.matches(r)) return;
    ++fed_;
    observation_end_ = r.timestamp;
    if (r.kind == MessageKind::kRequest) {
      pending_[r.src].push_back(r.timestamp);
      return;
    }
    ++replies_;
    auto& queue = pending_[r.src];
    if (!queue.empty()) queue.pop_front();
    const Duration adjusted = r.latency > r.injected_delay
                                  ? r.latency - r.injected_delay
                                  : kDurationZero;
    worst_ = std::max(worst_, adjusted);
    if (adjusted > max_latency_) {
      ++violations_;
      // A reply over the bound stays a violation no matter how many more
      // replies arrive: the full-run verdict is already Fail.
      decide(Verdict::kFail);
    }
  }

  CheckResult finalize(const LoadSummary&) const override {
    CheckResult result;
    result.name = "HasTimeouts(" + service_ + ", " +
                  format_duration(max_latency_) + ")";
    if (fed_ == 0) {
      result.passed = false;
      result.detail = "no traffic into " + service_ +
                      " observed; cannot verify the pattern";
      return result;
    }
    size_t unanswered = 0;
    Duration worst = worst_;
    for (const auto& [src, queue] : pending_) {
      for (const TimePoint sent : queue) {
        if (observation_end_ - sent > max_latency_) {
          ++unanswered;
          worst = std::max(worst, observation_end_ - sent);
        }
      }
    }
    if (replies_ == 0 && unanswered == 0) {
      result.passed = false;
      result.detail = "no replies from " + service_ +
                      " observed; cannot verify the pattern";
      return result;
    }
    result.passed = violations_ == 0 && unanswered == 0;
    result.detail = std::to_string(replies_) + " replies, worst " +
                    format_duration(worst) + ", " +
                    std::to_string(violations_) + " over the " +
                    format_duration(max_latency_) + " bound, " +
                    std::to_string(unanswered) + " requests never answered";
    return result;
  }

 private:
  const std::string service_;
  const Duration max_latency_;
  RecordFilter filter_;
  std::map<Symbol, std::deque<TimePoint>> pending_;
  TimePoint observation_end_{};
  Duration worst_ = kDurationZero;
  size_t violations_ = 0;
  size_t replies_ = 0;
  size_t fed_ = 0;
};

// --- HasBoundedRetries ------------------------------------------------------

class IncBoundedRetries final : public IncrementalCheck {
 public:
  IncBoundedRetries(std::string src, std::string dst, int max_tries,
                    std::string id_pattern)
      : src_(std::move(src)),
        dst_(std::move(dst)),
        max_tries_(max_tries),
        allowed_(static_cast<size_t>(max_tries) + 1),
        filter_(src_, dst_, MessageKind::kRequest, /*any=*/true,
                std::move(id_pattern)) {}

  void offer(const LogRecord& r) override {
    if (!filter_.matches(r)) return;
    ++fed_;
    Flow& f = flows_[r.request_id];
    if (r.kind == MessageKind::kRequest) {
      ++f.attempts;
    } else if (r.failed()) {
      f.saw_failure = true;
    }
    // Attempts only grow and saw_failure is sticky, so a flow over budget
    // is a violation in the full run too.
    if (f.saw_failure && f.attempts > allowed_) decide(Verdict::kFail);
  }

  CheckResult finalize(const LoadSummary&) const override {
    CheckResult result;
    result.name = "HasBoundedRetries(" + fmt_edge(src_, dst_) + ", " +
                  std::to_string(max_tries_) + ")";
    if (fed_ == 0) {
      result.passed = false;
      result.detail = "no traffic observed on " + fmt_edge(src_, dst_);
      return result;
    }
    size_t failed_flows = 0;
    size_t worst_attempts = 0;
    size_t violations = 0;
    for (const auto& [id, f] : flows_) {
      if (!f.saw_failure) continue;
      ++failed_flows;
      worst_attempts = std::max(worst_attempts, f.attempts);
      if (f.attempts > allowed_) ++violations;
    }
    if (failed_flows == 0) {
      result.passed = false;
      result.detail = "no failed calls observed on " + fmt_edge(src_, dst_) +
                      "; cannot verify the pattern";
      return result;
    }
    result.passed = violations == 0;
    result.detail = std::to_string(failed_flows) +
                    " flows saw failures; max " +
                    std::to_string(worst_attempts) + " attempts per flow (" +
                    std::to_string(allowed_) + " allowed); " +
                    std::to_string(violations) + " violations";
    return result;
  }

 private:
  struct Flow {
    size_t attempts = 0;
    bool saw_failure = false;
  };

  const std::string src_;
  const std::string dst_;
  const int max_tries_;
  const size_t allowed_;
  RecordFilter filter_;
  std::map<std::string, Flow, std::less<>> flows_;
  size_t fed_ = 0;
};

// --- HasBoundedRetriesWindowed (Combine chain) ------------------------------

class IncBoundedRetriesWindowed final : public IncrementalCheck {
 public:
  IncBoundedRetriesWindowed(std::string src, std::string dst, int status,
                            size_t threshold_failures, Duration window,
                            size_t max_more, std::string id_pattern)
      : src_(std::move(src)),
        dst_(std::move(dst)),
        status_(status),
        threshold_failures_(threshold_failures),
        window_(window),
        max_more_(max_more),
        filter_(src_, dst_, MessageKind::kRequest, /*any=*/true,
                std::move(id_pattern)) {
    chain_.check_status(status, threshold_failures)
        .at_most_requests(window, /*with_rule=*/true, max_more);
  }

  void offer(const LogRecord& r) override {
    if (!filter_.matches(r)) return;
    ++fed_;
    chain_.feed(r);
    decide(chain_.verdict());
  }

  CheckResult finalize(const LoadSummary&) const override {
    CheckResult result;
    result.name = "HasBoundedRetriesWindowed(" + fmt_edge(src_, dst_) + ")";
    if (fed_ == 0) {
      result.passed = false;
      result.detail = "no traffic observed on " + fmt_edge(src_, dst_);
      return result;
    }
    IncrementalCombine closing = chain_;  // finish() on a copy: finalize is
    result.passed = closing.finish();     // const and may be re-invoked
    result.detail =
        result.passed
            ? "after " + std::to_string(threshold_failures_) + " status-" +
                  std::to_string(status_) + " replies, at most " +
                  std::to_string(max_more_) + " requests followed within " +
                  format_duration(window_)
            : "more than " + std::to_string(max_more_) +
                  " requests within " + format_duration(window_) + " of " +
                  std::to_string(threshold_failures_) +
                  " failures (or failures never occurred)";
    return result;
  }

 private:
  const std::string src_;
  const std::string dst_;
  const int status_;
  const size_t threshold_failures_;
  const Duration window_;
  const size_t max_more_;
  RecordFilter filter_;
  IncrementalCombine chain_;
  size_t fed_ = 0;
};

// --- HasCircuitBreaker ------------------------------------------------------

class IncCircuitBreaker final : public IncrementalCheck {
 public:
  IncCircuitBreaker(std::string src, std::string dst, int threshold,
                    Duration tdelta, int success_threshold,
                    std::string id_pattern)
      : src_(std::move(src)),
        dst_(std::move(dst)),
        threshold_(threshold),
        tdelta_(tdelta),
        success_threshold_(success_threshold),
        filter_(src_, dst_, MessageKind::kRequest, /*any=*/true,
                std::move(id_pattern)) {}

  void offer(const LogRecord& r) override {
    if (!filter_.matches(r)) return;
    ++fed_;
    const bool is_request = r.kind == MessageKind::kRequest;
    if (!tripped_) {
      // Phase 1: find the first run of `threshold` consecutive failed
      // replies (requests don't interrupt a run).
      if (is_request) return;
      if (r.failed()) {
        if (++consecutive_ >= threshold_) {
          tripped_ = true;
          trip_time_ = r.timestamp;
        }
      } else {
        consecutive_ = 0;
      }
      return;
    }
    // Phase 2: the breaker must suppress requests for tdelta after the trip.
    if (is_request) {
      if (r.timestamp - trip_time_ < tdelta_) {
        ++requests_while_open_;
        // One leaked request is already the full-run verdict.
        decide(Verdict::kFail);
      } else {
        if (!first_probe_) first_probe_ = r.timestamp;
        ++requests_after_close_window_;
      }
    } else if (first_probe_ && !r.failed()) {
      ++successes_after_open_;
    }
  }

  CheckResult finalize(const LoadSummary&) const override {
    CheckResult result;
    result.name = "HasCircuitBreaker(" + fmt_edge(src_, dst_) + ", " +
                  std::to_string(threshold_) + ", " +
                  format_duration(tdelta_) + ", " +
                  std::to_string(success_threshold_) + ")";
    if (fed_ == 0) {
      result.passed = false;
      result.detail = "no traffic observed on " + fmt_edge(src_, dst_);
      return result;
    }
    if (!tripped_) {
      result.passed = false;
      result.detail = "never observed " + std::to_string(threshold_) +
                      " consecutive failures; cannot verify the pattern";
      return result;
    }
    if (requests_while_open_ > 0) {
      result.passed = false;
      result.detail = std::to_string(requests_while_open_) +
                      " requests sent within " + format_duration(tdelta_) +
                      " of the trip (breaker missing or leaky)";
      return result;
    }
    result.passed = true;
    std::string detail = "no requests for " + format_duration(tdelta_) +
                         " after " + std::to_string(threshold_) +
                         " consecutive failures";
    if (first_probe_) {
      detail += "; probe traffic resumed (" +
                std::to_string(requests_after_close_window_) + " requests, " +
                std::to_string(successes_after_open_) + " successes";
      detail += successes_after_open_ >= success_threshold_
                    ? ", breaker closed)"
                    : ", breaker not yet closed)";
    } else {
      detail += "; no probe traffic observed after the open window";
    }
    result.detail = detail;
    return result;
  }

 private:
  const std::string src_;
  const std::string dst_;
  const int threshold_;
  const Duration tdelta_;
  const int success_threshold_;
  RecordFilter filter_;
  int consecutive_ = 0;
  bool tripped_ = false;
  TimePoint trip_time_{};
  size_t requests_while_open_ = 0;
  std::optional<TimePoint> first_probe_;
  int successes_after_open_ = 0;
  size_t requests_after_close_window_ = 0;
  size_t fed_ = 0;
};

// --- HasBulkhead ------------------------------------------------------------

class IncBulkhead final : public IncrementalCheck {
 public:
  IncBulkhead(const topology::AppGraph* graph, std::string src,
              std::string slow_dst, double min_rate, std::string id_pattern)
      : src_(std::move(src)),
        slow_dst_(std::move(slow_dst)),
        min_rate_(min_rate),
        have_graph_(graph != nullptr),
        filter_(src_, "", MessageKind::kRequest, /*any=*/false,
                std::move(id_pattern)) {
    if (graph != nullptr) {
      // Capture dependency order now: finalize must render per-dep rates in
      // the same order the post-hoc checker iterates them.
      for (const auto& dep : graph->dependencies(src_)) {
        if (dep == slow_dst_) continue;
        deps_.push_back(DepState{dep, LazySymbol{dep, std::nullopt}});
      }
    }
  }

  void offer(const LogRecord& r) override {
    if (deps_.empty() || !filter_.matches(r)) return;
    for (auto& dep : deps_) {
      if (!dep.sym.matches(r.dst)) continue;
      if (dep.count == 0) dep.first = r.timestamp;
      dep.last = r.timestamp;
      ++dep.count;
      return;
    }
  }

  CheckResult finalize(const LoadSummary&) const override {
    CheckResult result;
    result.name = "HasBulkhead(" + src_ + ", slow=" + slow_dst_ +
                  ", rate>=" + std::to_string(min_rate_) + "/s)";
    if (!have_graph_) {
      result.passed = false;
      result.detail = "no application graph supplied; cannot enumerate the "
                      "other dependents of " + src_;
      return result;
    }
    if (deps_.empty()) {
      result.passed = false;
      result.detail = src_ + " has no dependents other than " + slow_dst_;
      return result;
    }
    std::string detail;
    bool all_ok = true;
    for (const auto& dep : deps_) {
      const double rate = (dep.count < 2 || dep.last <= dep.first)
                              ? 0.0
                              : static_cast<double>(dep.count - 1) /
                                    to_seconds(dep.last - dep.first);
      if (!detail.empty()) detail += "; ";
      detail += dep.name + ": " + std::to_string(rate) + " req/s";
      if (rate < min_rate_) all_ok = false;
    }
    result.passed = all_ok;
    result.detail = detail;
    return result;
  }

 private:
  struct DepState {
    std::string name;
    LazySymbol sym;
    size_t count = 0;
    TimePoint first{}, last{};
  };

  const std::string src_;
  const std::string slow_dst_;
  const double min_rate_;
  const bool have_graph_;
  RecordFilter filter_;
  std::vector<DepState> deps_;
};

// --- HasLatencySLO ----------------------------------------------------------

class IncLatencySlo final : public IncrementalCheck {
 public:
  IncLatencySlo(std::string src, std::string dst, double percentile,
                Duration bound, bool with_rule, std::string id_pattern)
      : src_(std::move(src)),
        dst_(std::move(dst)),
        percentile_(percentile),
        bound_(bound),
        with_rule_(with_rule),
        filter_(src_, dst_, MessageKind::kResponse, /*any=*/false,
                std::move(id_pattern)) {}

  void offer(const LogRecord& r) override {
    if (!filter_.matches(r)) return;
    if (with_rule_) {
      latencies_.push_back(r.latency);
      return;
    }
    if (synthesized_by_gremlin(r)) return;
    const Duration adjusted = r.latency - r.injected_delay;
    latencies_.push_back(adjusted < kDurationZero ? kDurationZero : adjusted);
  }

  CheckResult finalize(const LoadSummary&) const override {
    CheckResult result;
    result.name = "HasLatencySLO(" + fmt_edge(src_, dst_) + ", p" +
                  std::to_string(static_cast<int>(percentile_)) + " <= " +
                  format_duration(bound_) + ")";
    if (latencies_.empty()) {
      result.passed = false;
      result.detail = "no replies observed on " + fmt_edge(src_, dst_);
      return result;
    }
    std::vector<Duration> sorted = latencies_;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(percentile_ / 100.0 *
                                      static_cast<double>(sorted.size()));
    if (rank >= sorted.size()) rank = sorted.size() - 1;
    const Duration observed = sorted[rank];
    result.passed = observed <= bound_;
    result.detail = "p" + std::to_string(static_cast<int>(percentile_)) +
                    " = " + format_duration(observed) + " over " +
                    std::to_string(sorted.size()) + " replies (bound " +
                    format_duration(bound_) + ")";
    return result;
  }

 private:
  const std::string src_;
  const std::string dst_;
  const double percentile_;
  const Duration bound_;
  const bool with_rule_;
  RecordFilter filter_;
  std::vector<Duration> latencies_;
};

// --- ErrorRateBelow ---------------------------------------------------------

class IncErrorRate final : public IncrementalCheck {
 public:
  IncErrorRate(std::string src, std::string dst, double max_fraction,
               std::string id_pattern)
      : src_(std::move(src)),
        dst_(std::move(dst)),
        max_fraction_(max_fraction),
        filter_(src_, dst_, MessageKind::kResponse, /*any=*/false,
                std::move(id_pattern)) {}

  void offer(const LogRecord& r) override {
    if (!filter_.matches(r)) return;
    ++replies_;
    if (r.failed()) ++failed_;
    // The rate can still move either way; no early verdict.
  }

  CheckResult finalize(const LoadSummary&) const override {
    CheckResult result;
    result.name = "ErrorRateBelow(" + fmt_edge(src_, dst_) + ", " +
                  std::to_string(max_fraction_) + ")";
    if (replies_ == 0) {
      result.passed = false;
      result.detail = "no replies observed on " + fmt_edge(src_, dst_);
      return result;
    }
    const double rate =
        static_cast<double>(failed_) / static_cast<double>(replies_);
    result.passed = rate <= max_fraction_;
    result.detail = std::to_string(failed_) + "/" + std::to_string(replies_) +
                    " replies failed (" + std::to_string(rate) + ")";
    return result;
  }

 private:
  const std::string src_;
  const std::string dst_;
  const double max_fraction_;
  RecordFilter filter_;
  size_t failed_ = 0;
  size_t replies_ = 0;
};

// --- MaxUserFailures --------------------------------------------------------

class IncMaxUserFailures final : public IncrementalCheck {
 public:
  IncMaxUserFailures(size_t max_failures, size_t expected_total)
      : max_failures_(max_failures), expected_total_(expected_total) {}

  bool wants_records() const override { return false; }
  void offer(const LogRecord&) override {}

  void on_user_response(bool failed) override {
    ++seen_;
    if (failed) ++failures_;
    if (failures_ > max_failures_) {
      decide(Verdict::kFail);
    } else if (expected_total_ > 0 && seen_ == expected_total_) {
      // Every injected request completed with the failure budget intact; no
      // further user-visible response can arrive.
      decide(Verdict::kPass);
    }
  }

  CheckResult finalize(const LoadSummary& load) const override {
    CheckResult result;
    result.name = "MaxUserFailures(" + std::to_string(max_failures_) + ")";
    result.passed = load.failures <= max_failures_;
    result.detail = std::to_string(load.failures) + "/" +
                    std::to_string(load.total) +
                    " injected requests saw a user-visible failure";
    return result;
  }

 private:
  const size_t max_failures_;
  const size_t expected_total_;
  size_t seen_ = 0;
  size_t failures_ = 0;
};

}  // namespace

// --- IncrementalCombine -----------------------------------------------------

IncrementalCombine& IncrementalCombine::check_status(int status,
                                                     size_t num_match,
                                                     bool with_rule) {
  steps_.push_back({Step::Kind::kCheckStatus, status, num_match, {},
                    with_rule});
  return *this;
}

IncrementalCombine& IncrementalCombine::at_most_requests(Duration tdelta,
                                                         bool with_rule,
                                                         size_t max) {
  steps_.push_back({Step::Kind::kAtMostRequests, 0, max, tdelta, with_rule});
  return *this;
}

IncrementalCombine& IncrementalCombine::no_requests_for(Duration tdelta) {
  steps_.push_back({Step::Kind::kNoRequestsFor, 0, 0, tdelta, true});
  return *this;
}

IncrementalCombine& IncrementalCombine::at_least_requests(Duration tdelta,
                                                          bool with_rule,
                                                          size_t min) {
  steps_.push_back({Step::Kind::kAtLeastRequests, 0, min, tdelta, with_rule});
  return *this;
}

void IncrementalCombine::close_step(bool satisfied) {
  if (!satisfied) {
    verdict_ = Verdict::kFail;
    return;
  }
  // anchor advances only when the step consumed at least one record
  // (Combine::evaluate: `if (consumed > 0)`).
  if (window_consumed_) anchor_ = window_last_;
  window_consumed_ = false;
  count_ = 0;
  ++current_;
  if (current_ >= steps_.size() && verdict_ == Verdict::kUndecided) {
    verdict_ = Verdict::kPass;
  }
}

void IncrementalCombine::feed(const logstore::LogRecord& r) {
  if (verdict_ != Verdict::kUndecided) return;
  if (!have_anchor_) {
    anchor_ = r.timestamp;
    have_anchor_ = true;
  }
  // One record can close several steps (a zero-match status step consumes
  // nothing; a window step closes on the first record beyond its window and
  // hands that record to the next step), so loop until it is consumed.
  while (verdict_ == Verdict::kUndecided && current_ < steps_.size()) {
    const Step& s = steps_[current_];
    switch (s.kind) {
      case Step::Kind::kCheckStatus: {
        if (s.num == 0) {
          close_step(true);  // satisfied immediately, consuming nothing
          continue;
        }
        const bool match = r.kind == MessageKind::kResponse &&
                           (s.with_rule || !synthesized_by_gremlin(r)) &&
                           r.status == s.status;
        if (match && ++count_ >= s.num) {
          // Consumed through the num'th match, inclusive.
          window_consumed_ = true;
          window_last_ = r.timestamp;
          close_step(true);
        }
        return;  // the record was consumed by the scan either way
      }
      case Step::Kind::kAtMostRequests:
      case Step::Kind::kAtLeastRequests: {
        if (r.timestamp - anchor_ > s.tdelta) {
          // Window closed strictly before this record; evaluate, then offer
          // the record to the next step.
          const bool ok = s.kind == Step::Kind::kAtMostRequests
                              ? count_ <= s.num
                              : count_ >= s.num;
          close_step(ok);
          continue;
        }
        window_consumed_ = true;
        window_last_ = r.timestamp;
        if (r.kind == MessageKind::kRequest &&
            (s.with_rule || r.fault == logstore::FaultKind::kNone)) {
          ++count_;
          // An at-most budget, once blown, stays blown for the full run.
          if (s.kind == Step::Kind::kAtMostRequests && count_ > s.num) {
            verdict_ = Verdict::kFail;
          }
        }
        return;
      }
      case Step::Kind::kNoRequestsFor: {
        if (r.timestamp - anchor_ >= s.tdelta) {  // exclusive upper bound
          close_step(true);
          continue;
        }
        window_consumed_ = true;
        window_last_ = r.timestamp;
        if (r.kind == MessageKind::kRequest) verdict_ = Verdict::kFail;
        return;
      }
    }
  }
}

bool IncrementalCombine::finish() {
  if (verdict_ != Verdict::kUndecided) return verdict_ == Verdict::kPass;
  // End of stream: the open step evaluates over what it consumed; steps
  // never reached see an empty remainder (Combine::evaluate on an exhausted
  // span).
  while (current_ < steps_.size()) {
    const Step& s = steps_[current_];
    bool ok = true;
    switch (s.kind) {
      case Step::Kind::kCheckStatus:
        ok = s.num == 0;  // partial scans never satisfy a positive match
        break;
      case Step::Kind::kAtMostRequests:
        ok = count_ <= s.num;
        break;
      case Step::Kind::kNoRequestsFor:
        ok = true;
        break;
      case Step::Kind::kAtLeastRequests:
        ok = count_ >= s.num;
        break;
    }
    close_step(ok);
    if (verdict_ == Verdict::kFail) return false;
  }
  verdict_ = Verdict::kPass;
  return true;
}

// --- factories --------------------------------------------------------------

std::unique_ptr<IncrementalCheck> make_incremental_timeouts(
    std::string service, Duration max_latency, std::string id_pattern) {
  return std::make_unique<IncTimeouts>(std::move(service), max_latency,
                                       std::move(id_pattern));
}

std::unique_ptr<IncrementalCheck> make_incremental_bounded_retries(
    std::string src, std::string dst, int max_tries, std::string id_pattern) {
  return std::make_unique<IncBoundedRetries>(std::move(src), std::move(dst),
                                             max_tries, std::move(id_pattern));
}

std::unique_ptr<IncrementalCheck> make_incremental_bounded_retries_windowed(
    std::string src, std::string dst, int status, size_t threshold_failures,
    Duration window, size_t max_more, std::string id_pattern) {
  return std::make_unique<IncBoundedRetriesWindowed>(
      std::move(src), std::move(dst), status, threshold_failures, window,
      max_more, std::move(id_pattern));
}

std::unique_ptr<IncrementalCheck> make_incremental_circuit_breaker(
    std::string src, std::string dst, int threshold, Duration tdelta,
    int success_threshold, std::string id_pattern) {
  return std::make_unique<IncCircuitBreaker>(std::move(src), std::move(dst),
                                             threshold, tdelta,
                                             success_threshold,
                                             std::move(id_pattern));
}

std::unique_ptr<IncrementalCheck> make_incremental_bulkhead(
    const topology::AppGraph* graph, std::string src, std::string slow_dst,
    double min_rate, std::string id_pattern) {
  return std::make_unique<IncBulkhead>(graph, std::move(src),
                                       std::move(slow_dst), min_rate,
                                       std::move(id_pattern));
}

std::unique_ptr<IncrementalCheck> make_incremental_latency_slo(
    std::string src, std::string dst, double percentile, Duration bound,
    bool with_rule, std::string id_pattern) {
  return std::make_unique<IncLatencySlo>(std::move(src), std::move(dst),
                                         percentile, bound, with_rule,
                                         std::move(id_pattern));
}

std::unique_ptr<IncrementalCheck> make_incremental_error_rate(
    std::string src, std::string dst, double max_fraction,
    std::string id_pattern) {
  return std::make_unique<IncErrorRate>(std::move(src), std::move(dst),
                                        max_fraction, std::move(id_pattern));
}

std::unique_ptr<IncrementalCheck> make_incremental_max_user_failures(
    size_t max_failures, size_t expected_total) {
  return std::make_unique<IncMaxUserFailures>(max_failures, expected_total);
}

// --- OnlineChecker ----------------------------------------------------------

void OnlineChecker::add(std::unique_ptr<IncrementalCheck> check) {
  if (check == nullptr) has_opaque_ = true;
  checks_.push_back(std::move(check));
}

bool OnlineChecker::wants_records() const {
  for (const auto& c : checks_) {
    if (c != nullptr && c->wants_records()) return true;
  }
  return has_opaque_;
}

void OnlineChecker::offer(const logstore::LogRecord& r) {
  for (auto& c : checks_) {
    if (c != nullptr) c->offer(r);
  }
}

void OnlineChecker::on_user_response(bool failed) {
  for (auto& c : checks_) {
    if (c != nullptr) c->on_user_response(failed);
  }
}

bool OnlineChecker::all_decided() const {
  if (has_opaque_ || checks_.empty()) return false;
  for (const auto& c : checks_) {
    if (!c->decided()) return false;
  }
  return true;
}

}  // namespace gremlin::control
