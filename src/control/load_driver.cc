#include "control/load_driver.h"

namespace gremlin::control {

LoadDriver::LoadDriver(sim::Simulation* sim, const std::string& client,
                       const std::string& target, LoadOptions options)
    : sim_(sim),
      client_(client),
      target_(target),
      options_(std::move(options)) {}

void LoadDriver::bind(LoadResult* result,
                      std::function<void(bool failed)> observer) {
  result_ = result;
  observer_ = std::move(observer);
}

void LoadDriver::schedule_all() {
  if (options_.closed_loop) {
    send(0);
    return;
  }
  for (size_t i = 0; i < options_.count; ++i) {
    const TimePoint at = sim_->now() + options_.gap * static_cast<int64_t>(i);
    sim_->schedule_at(at, [this, i] { send(i); });
  }
}

void LoadDriver::send(size_t i) {
  if (i >= options_.count) return;
  sim::SimRequest req;
  req.request_id = options_.id_prefix + std::to_string(i);
  req.uri = options_.uri;
  req.method = options_.method;
  req.body = options_.body;
  const TimePoint sent = sim_->now();
  sim_->inject(client_, target_, std::move(req),
               [this, i, sent](const sim::SimResponse& resp) {
                 on_response(i, sent, resp);
               });
}

void LoadDriver::on_response(size_t i, TimePoint sent,
                             const sim::SimResponse& resp) {
  result_->latencies[i] = sim_->now() - sent;
  result_->statuses[i] =
      resp.connection_reset || resp.timed_out ? 0 : resp.status;
  ++result_->completed;
  if (resp.failed()) ++result_->failures;
  if (observer_) observer_(resp.failed());
  if (options_.closed_loop) {
    // Issue request i+1 only once request i completed (run_load's shape).
    sim_->schedule_timer(options_.gap, [this, i] { send(i + 1); });
  }
}

}  // namespace gremlin::control
