// FailureSpec: the high-level outage vocabulary of Section 5.
//
// A spec names a scenario (Disconnect, Crash, Hang, Overload, FakeSuccess,
// Partition — or a raw Abort/Delay/Modify primitive) and its parameters.
// The Recipe Translator expands a spec against the logical application graph
// into the concrete per-edge fault rules of Table 2:
//
//   Disconnect(A,B)  → Abort(A→B, 503)
//   Crash(S)         → Abort(d→S, TCP reset) for every dependent d of S
//   Hang(S)          → Delay(d→S, 1h) for every dependent d
//   Overload(S)      → Abort(d→S, 503, p=.25) + Delay(d→S, 100ms) per
//                      dependent (conditional probabilities produce the
//                      paper's 25/75 split exactly)
//   FakeSuccess(S)   → Modify(d→S, key→badkey) on responses per dependent
//   Partition(G)     → Abort(TCP reset) on every edge crossing the cut(G)
//
// Infra-level scenario faults lower onto the same primitives plus activation
// windows on the virtual clock (and, for InstanceCrash, a simulator hook
// that marks the service's instances down for the outage — see
// control/recipe):
//
//   InstanceCrash(S, after, down) → Crash rules windowed [after, after+down];
//                                   the service auto-restarts when the
//                                   window closes
//   RollingPartition(G, stagger)  → each member of G isolated in turn:
//                                   reset rules on cut({member}) windowed
//                                   [after + i*stagger, +window]
//   SlowNode(S)                   → distribution-valued Delay(d→S) per
//                                   dependent (default exponential)
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/duration.h"
#include "faults/rule.h"
#include "topology/graph.h"

namespace gremlin::control {

struct FailureSpec {
  enum class Kind {
    kAbort,        // raw primitive on edge a→b
    kDelay,        // raw primitive on edge a→b
    kModify,       // raw primitive on edge a→b
    kDisconnect,   // a→b returns an error code
    kCrash,        // service b appears crashed to all dependents
    kHang,         // service b hangs (very long delays)
    kOverload,     // service b overloaded: mix of errors and delays
    kFakeSuccess,  // service b returns tampered payloads with status 200
    kPartition,    // network partition along cut(group)
    kInstanceCrash,     // service b down for [after, after+window], restarts
    kRollingPartition,  // group members isolated one after another
    kSlowNode,          // service b degraded: distribution-valued delays
  };

  Kind kind = Kind::kAbort;
  std::string a;  // src for edge primitives / disconnect
  std::string b;  // dst / the failing service
  std::set<std::string> group;  // partition only

  std::string pattern = "test-*";  // request-ID flow selector
  double probability = 1.0;
  int error = 503;                  // abort code (kTcpReset for resets)
  Duration delay = msec(100);       // delay / hang interval
  double overload_abort_fraction = 0.25;
  Duration overload_delay = msec(100);
  std::string body_pattern;         // modify / fake-success
  std::string replace_bytes;        // modify / fake-success
  logstore::MessageKind on = logstore::MessageKind::kRequest;
  uint64_t max_matches = faults::kUnlimitedMatches;

  // Activation window (virtual-clock offsets from experiment start),
  // applied to every lowered rule. window == 0 means unbounded; for
  // kInstanceCrash a zero window means the instance never restarts.
  Duration after{};
  Duration window{};
  // kRollingPartition: offset between consecutive members' windows.
  Duration stagger{};

  // Delay distribution for kDelay / kSlowNode lowered delay rules.
  // kFixed draws nothing and uses `delay`.
  faults::DelayDistribution delay_distribution =
      faults::DelayDistribution::kFixed;
  Duration delay_min{};
  Duration delay_max{};
  Duration delay_mean{};
  std::vector<Duration> delay_values;

  // Convenience factories.
  static FailureSpec abort_edge(std::string src, std::string dst,
                                int error = 503,
                                std::string pattern = "test-*");
  static FailureSpec delay_edge(std::string src, std::string dst,
                                Duration interval,
                                std::string pattern = "test-*");
  static FailureSpec modify_edge(std::string src, std::string dst,
                                 std::string body_pattern,
                                 std::string replace_bytes,
                                 std::string pattern = "test-*");
  static FailureSpec disconnect(std::string src, std::string dst,
                                int error = 503);
  static FailureSpec crash(std::string service);
  static FailureSpec hang(std::string service, Duration interval = hours(1));
  static FailureSpec overload(std::string service,
                              Duration delay = msec(100),
                              double abort_fraction = 0.25);
  static FailureSpec fake_success(std::string service,
                                  std::string body_pattern,
                                  std::string replace_bytes);
  static FailureSpec partition(std::set<std::string> group);
  static FailureSpec instance_crash(std::string service, Duration after,
                                    Duration downtime);
  static FailureSpec rolling_partition(std::set<std::string> group,
                                       Duration after, Duration window,
                                       Duration stagger);
  static FailureSpec slow_node(std::string service, Duration mean,
                               Duration after = kDurationZero,
                               Duration window = kDurationZero);

  const char* kind_name() const;

  // Byte-exact digest of every field: equal fingerprints mean translation
  // produces identical rules against a given graph and sequence position.
  // The fault-rule compilation cache keys on this (sweeps repeat the same
  // spec across seed replications). Doubles are serialized by bit pattern,
  // not decimal formatting, so near-equal values never collide.
  std::string fingerprint() const;

  // Appends the digest to `out`. The rule cache keys every per-experiment
  // lookup through a reused scratch string, so the append form keeps the
  // warm path free of string allocations.
  void fingerprint_into(std::string* out) const;
};

// Expands a spec into fault rules using the application graph. Fails when
// the spec references services absent from the graph.
//
// Rule IDs carry a sequence number drawn from `sequence` (incremented per
// rule) so repeated applications stay distinguishable; when null, a fresh
// sequence starting at 0 is used. Either way IDs depend only on the inputs
// — never on global state — so translations are reproducible and safe to
// run from parallel campaign workers.
Result<std::vector<faults::FaultRule>> translate_failure(
    const topology::AppGraph& graph, const FailureSpec& spec,
    uint64_t* sequence = nullptr);

}  // namespace gremlin::control
