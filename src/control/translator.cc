#include "control/translator.h"

namespace gremlin::control {

Result<std::vector<faults::FaultRule>> RecipeTranslator::translate_all(
    const std::vector<FailureSpec>& specs) const {
  std::vector<faults::FaultRule> all;
  for (const auto& spec : specs) {
    auto rules = translate(spec);
    if (!rules.ok()) return rules.error();
    all.insert(all.end(), rules.value().begin(), rules.value().end());
  }
  return all;
}

}  // namespace gremlin::control
