#include "control/rule_cache.h"

namespace gremlin::control {

Result<std::vector<faults::FaultRule>> RuleCache::translate(
    const RecipeTranslator& translator, const FailureSpec& spec) {
  std::string key = spec.fingerprint();
  key += '@';
  key += std::to_string(translator.sequence());

  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    translator.advance_sequence(it->second.size());
    return it->second;
  }

  auto rules = translator.translate(spec);
  if (!rules.ok()) return rules;
  ++misses_;
  cache_.emplace(std::move(key), rules.value());
  return rules;
}

}  // namespace gremlin::control
