#include "control/rule_cache.h"

#include <charconv>

namespace gremlin::control {

Result<const std::vector<faults::FaultRule>*> RuleCache::lookup(
    const RecipeTranslator& translator, const FailureSpec& spec) {
  std::string& key = key_scratch_;
  key.clear();
  spec.fingerprint_into(&key);
  key += '@';
  char buf[24];
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), translator.sequence());
  key.append(buf, res.ptr);

  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    translator.advance_sequence(it->second.size());
    return &it->second;
  }

  auto rules = translator.translate(spec);
  if (!rules.ok()) return rules.error();
  ++misses_;
  const auto inserted = cache_.emplace(key, std::move(rules.value()));
  return &inserted.first->second;
}

Result<std::vector<faults::FaultRule>> RuleCache::translate(
    const RecipeTranslator& translator, const FailureSpec& spec) {
  auto borrowed = lookup(translator, spec);
  if (!borrowed.ok()) return borrowed.error();
  return *borrowed.value();
}

}  // namespace gremlin::control
