#include "control/orchestrator.h"

namespace gremlin::control {

VoidResult FailureOrchestrator::install(
    const std::vector<faults::FaultRule>& rules) {
  // Borrow the deployment's instance list instead of copying it, and hand
  // agents one rule at a time: install runs once per experiment, and the
  // vector copies here used to dominate its steady-state allocations.
  std::vector<std::shared_ptr<topology::AgentHandle>> wildcard;
  for (const auto& rule : rules) {
    const std::vector<std::shared_ptr<topology::AgentHandle>>* targets;
    if (rule.source == "*") {
      wildcard = deployment_->all_agents();
      targets = &wildcard;
    } else {
      targets = &deployment_->instances(rule.source);
    }
    if (targets->empty()) {
      return Error::not_found("no agent instances for source service '" +
                              rule.source + "'");
    }
    for (const auto& agent : *targets) {
      auto res = agent->install_rule(rule);
      if (!res.ok()) return res;
    }
    ++rules_installed_;
  }
  return VoidResult::success();
}

VoidResult FailureOrchestrator::remove(
    const std::vector<faults::FaultRule>& rules) {
  std::vector<std::string> ids;
  ids.reserve(rules.size());
  for (const auto& rule : rules) ids.push_back(rule.id);
  for (const auto& agent : deployment_->all_agents()) {
    auto res = agent->remove_rules(ids);
    if (!res.ok()) return res;
  }
  return VoidResult::success();
}

VoidResult FailureOrchestrator::clear_rules() {
  for (const auto& agent : deployment_->all_agents()) {
    auto res = agent->clear_rules();
    if (!res.ok()) return res;
  }
  return VoidResult::success();
}

VoidResult FailureOrchestrator::collect_logs(logstore::LogStore* store) {
  for (const auto& agent : deployment_->all_agents()) {
    // Zero-copy drain: in-process agents move their buffers out and the
    // store adopts them wholesale.
    auto records = agent->drain_records();
    if (!records.ok()) return records.error();
    store->append_all(std::move(records.value()));
  }
  return VoidResult::success();
}

VoidResult FailureOrchestrator::discard_logs() {
  for (const auto& agent : deployment_->all_agents()) {
    auto cleared = agent->clear_records();
    if (!cleared.ok()) return cleared;
  }
  return VoidResult::success();
}

}  // namespace gremlin::control
