// AssertionChecker: the control-plane component that validates recipes'
// assertions against the collected event logs (Section 4.2, Table 3).
//
// Wraps the central LogStore with the Table 3 queries and the pattern checks
// that validate presence of the resiliency patterns of Section 2.1. Every
// check returns a CheckResult carrying a human-readable explanation — the
// "quick feedback" the paper argues systematic testing must provide.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "control/assertions.h"
#include "logstore/store.h"
#include "topology/graph.h"

namespace gremlin::control {

struct CheckResult {
  bool passed = false;
  std::string name;    // e.g. "HasBoundedRetries(serviceA, serviceB, 5)"
  std::string detail;  // why it passed / failed

  explicit operator bool() const { return passed; }
};

// Stable identity of a verdict set's *failure mode*: the sorted, deduplicated
// names of every failed check, joined with " + " (empty when everything
// passed). Two runs with equal signatures violated the same assertions —
// the equivalence the fault-space shrinker preserves while minimizing a
// failing experiment, so it never "shrinks" one bug into a different one.
std::string failure_signature(const std::vector<CheckResult>& results);

class AssertionChecker {
 public:
  // `graph` is optional; HasBulkhead needs it to enumerate dependents.
  explicit AssertionChecker(const logstore::LogStore* store,
                            const topology::AppGraph* graph = nullptr)
      : store_(store), graph_(graph) {}

  // --- Table 3 queries ---
  RecordList get_requests(const std::string& src, const std::string& dst,
                          const std::string& id_pattern = "*") const;
  RecordList get_replies(const std::string& src, const std::string& dst,
                         const std::string& id_pattern = "*") const;
  // Requests and replies on the edge, merged and time-sorted (the natural
  // input for Combine chains).
  RecordList get_exchanges(const std::string& src, const std::string& dst,
                           const std::string& id_pattern = "*") const;

  // --- pattern checks (Table 3) ---

  // `service` must reply to each of its upstream callers within
  // max_latency. Latencies are evaluated without Gremlin's interference on
  // the measured edge itself (withRule=false), so injected upstream delays
  // don't mask the verdict, while downstream slowness — which a timeout
  // pattern must bound — shows through.
  CheckResult has_timeouts(const std::string& service, Duration max_latency,
                           const std::string& id_pattern = "*") const;

  // Per request flow: after a failed call from src to dst, at most
  // max_tries additional attempts are made for that flow.
  CheckResult has_bounded_retries(const std::string& src,
                                  const std::string& dst, int max_tries,
                                  const std::string& id_pattern = "*") const;

  // The paper's windowed formulation: once `threshold_failures` replies with
  // `status` are observed, at most `max_more` requests follow within
  // `window` (implemented as a Combine chain).
  CheckResult has_bounded_retries_windowed(
      const std::string& src, const std::string& dst, int status,
      size_t threshold_failures, Duration window, size_t max_more,
      const std::string& id_pattern = "*") const;

  // After `threshold` consecutive failed replies on src→dst, src must send
  // no requests for `tdelta` (the breaker's open period). If traffic
  // resumes afterwards, `success_threshold` successful probes should close
  // the breaker (reported in the detail).
  //
  // Caveat (inherent to network-level validation): "no requests after the
  // failures" is vacuously true when the workload ends at the same time as
  // the failure run. For meaningful quiet-period evidence, drive load past
  // the expected open interval.
  CheckResult has_circuit_breaker(const std::string& src,
                                  const std::string& dst, int threshold,
                                  Duration tdelta, int success_threshold,
                                  const std::string& id_pattern = "*") const;

  // While slow_dst degrades, src must keep issuing requests to each of its
  // other dependents at >= min_rate requests/second. Requires the graph.
  CheckResult has_bulkhead(const std::string& src,
                           const std::string& slow_dst, double min_rate,
                           const std::string& id_pattern = "*") const;

  // --- additional service-level checks (extensions beyond Table 3) ---

  // The given percentile (0..100) of observed reply latencies on src→dst
  // stays within `bound`. with_rule=false discounts Gremlin-injected delay.
  CheckResult has_latency_slo(const std::string& src, const std::string& dst,
                              double percentile, Duration bound,
                              bool with_rule = true,
                              const std::string& id_pattern = "*") const;

  // The fraction of failed replies (resets / timeouts / 5xx) on src→dst is
  // at most `max_fraction`.
  CheckResult error_rate_below(const std::string& src,
                               const std::string& dst, double max_fraction,
                               const std::string& id_pattern = "*") const;

  // Failure containment, via flow-trace reconstruction: every flow whose
  // failure *originated* at a call into `origin_service` must have been
  // absorbed before reaching the flow's root (user-facing) span. This is
  // the cascading-failure question behind most of Table 1: "when X fails,
  // does the user notice?"
  CheckResult failure_contained(const std::string& origin_service,
                                const std::string& id_pattern = "*") const;

  const logstore::LogStore& store() const { return *store_; }

 private:
  const logstore::LogStore* store_;
  const topology::AppGraph* graph_;
};

}  // namespace gremlin::control
