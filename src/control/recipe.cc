#include "control/recipe.h"

#include <memory>

namespace gremlin::control {

TestSession::TestSession(sim::Simulation* sim, topology::AppGraph graph)
    : sim_(sim),
      owned_graph_(
          std::make_unique<topology::AppGraph>(std::move(graph))),
      graph_(owned_graph_.get()),
      translator_(graph_),
      orchestrator_(&sim->deployment()) {}

TestSession::TestSession(sim::Simulation* sim,
                         const topology::AppGraph* graph)
    : sim_(sim),
      graph_(graph),
      translator_(graph_),
      orchestrator_(&sim->deployment()) {}

Result<size_t> TestSession::apply(const FailureSpec& spec, RuleCache* cache) {
  if (spec.kind == FailureSpec::Kind::kInstanceCrash) {
    // The network-level rules below make dependents see resets; this hook
    // makes the service itself refuse work it would otherwise accept during
    // the outage (requests already past the dependents' sidecars). Scheduled
    // per-apply, never cached: the rule cache only memoizes translation.
    auto outage =
        sim_->schedule_service_outage(spec.b, spec.after, spec.window);
    if (!outage.ok()) return outage.error();
  }
  if (cache != nullptr) {
    // Borrow the cached expansion: installing reads the rules and copies
    // them into the agents, so no owned vector is needed here.
    auto rules = cache->lookup(translator_, spec);
    if (!rules.ok()) return rules.error();
    auto installed = orchestrator_.install(*rules.value());
    if (!installed.ok()) return installed.error();
    return rules.value()->size();
  }
  auto rules = translator_.translate(spec);
  if (!rules.ok()) return rules.error();
  auto installed = orchestrator_.install(rules.value());
  if (!installed.ok()) return installed.error();
  return rules.value().size();
}

Result<size_t> TestSession::apply_all(const std::vector<FailureSpec>& specs) {
  size_t total = 0;
  for (const auto& spec : specs) {
    auto n = apply(spec);
    if (!n.ok()) return n;
    total += n.value();
  }
  return total;
}

VoidResult TestSession::clear_faults() { return orchestrator_.clear_rules(); }

Result<size_t> TestSession::apply_for(const FailureSpec& spec,
                                      Duration active) {
  auto rules = translator_.translate(spec);
  if (!rules.ok()) return rules.error();
  auto installed = orchestrator_.install(rules.value());
  if (!installed.ok()) return installed.error();
  // Heal: drop exactly these rules when the outage window ends.
  sim_->schedule(active, [this, rules = rules.value()] {
    (void)orchestrator_.remove(rules);
  });
  return rules.value().size();
}

LoadResult TestSession::run_load(const std::string& client,
                                 const std::string& target, size_t count) {
  LoadOptions options;
  options.count = count;
  return run_load(client, target, options);
}

LoadResult TestSession::run_load(const std::string& client,
                                 const std::string& target,
                                 const LoadOptions& options) {
  // Pool-allocated: the shared handle is recycled by the simulation's pool
  // across warm runs instead of costing a control block per experiment.
  auto result = make_pooled<LoadResult>(&sim_->memory());
  result->latencies.resize(options.count);
  result->statuses.resize(options.count);

  // Intern the edge once; every request then routes through the flat
  // service table instead of a per-request string lookup.
  const Symbol client_sym(client);
  const Symbol target_sym(target);

  if (options.closed_loop) {
    // Issue request i+1 only once request i completed.
    auto send = std::make_shared<std::function<void(size_t)>>();
    *send = [this, result, options, client_sym, target_sym, send](size_t i) {
      if (i >= options.count) return;
      sim::SimRequest req;
      req.request_id = options.id_prefix + std::to_string(i);
      req.uri = options.uri;
      req.method = options.method;
      req.body = options.body;
      const TimePoint sent = sim_->now();
      sim_->inject(client_sym, target_sym, std::move(req),
                   [this, result, options, i, sent, send](
                       const sim::SimResponse& resp) {
                     result->latencies[i] = sim_->now() - sent;
                     result->statuses[i] =
                         resp.connection_reset || resp.timed_out ? 0
                                                                 : resp.status;
                     ++result->completed;
                     if (resp.failed()) ++result->failures;
                     if (response_observer_) response_observer_(resp.failed());
                     sim_->schedule_timer(options.gap,
                                          [send, i] { (*send)(i + 1); });
                   });
    };
    (*send)(0);
  } else {
    // Capture the options by pointer: every scheduled event runs (or is
    // cancelled) inside sim_->run() below, while `options` is still alive.
    // Capturing by value would copy four strings per request and spill the
    // event action's inline buffer — a heap allocation per injected request.
    const LoadOptions* opts = &options;
    for (size_t i = 0; i < options.count; ++i) {
      const TimePoint at = sim_->now() + options.gap * static_cast<int64_t>(i);
      sim_->schedule_at(at, [this, result, opts, i, client_sym,
                             target_sym] {
        sim::SimRequest req;
        req.request_id = opts->id_prefix + std::to_string(i);
        req.uri = opts->uri;
        req.method = opts->method;
        req.body = opts->body;
        const TimePoint sent = sim_->now();
        sim_->inject(client_sym, target_sym, std::move(req),
                     [this, result, i, sent](const sim::SimResponse& resp) {
                       result->latencies[i] = sim_->now() - sent;
                       result->statuses[i] = resp.connection_reset ||
                                                     resp.timed_out
                                                 ? 0
                                                 : resp.status;
                       ++result->completed;
                       if (resp.failed()) ++result->failures;
                       if (response_observer_)
                         response_observer_(resp.failed());
                     });
      });
    }
  }
  if (options.horizon > kDurationZero) {
    sim_->run_until(sim_->now() + options.horizon);
  } else {
    sim_->run();
  }
  result->stopped_early = sim_->stop_requested();
  // Move the vectors out instead of copying them; any cancelled events that
  // still hold the shared handle only ever destroy it.
  return std::move(*result);
}

VoidResult TestSession::collect() {
  return orchestrator_.collect_logs(&sim_->log_store());
}

bool TestSession::check(const CheckResult& result) {
  results_.push_back(result);
  return result.passed;
}

bool TestSession::all_passed() const {
  for (const auto& r : results_) {
    if (!r.passed) return false;
  }
  return true;
}

std::string TestSession::report() const {
  std::string out;
  for (const auto& r : results_) {
    out += (r.passed ? "[PASS] " : "[FAIL] ") + r.name + " — " + r.detail +
           "\n";
  }
  return out;
}

}  // namespace gremlin::control
