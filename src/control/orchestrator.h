// FailureOrchestrator: programs the data plane (Section 4.2).
//
// Locates every physical agent instance of a rule's source service in the
// Deployment and installs the rule on each, so that faults apply between
// every pair of instances (Figure 3). Also collects the agents' observation
// logs into the centralized store the Assertion Checker queries.
#pragma once

#include <string>
#include <vector>

#include "faults/rule.h"
#include "logstore/store.h"
#include "topology/deployment.h"

namespace gremlin::control {

class FailureOrchestrator {
 public:
  explicit FailureOrchestrator(topology::Deployment* deployment)
      : deployment_(deployment) {}

  // Installs each rule on all agent instances of its source service
  // (source "*" installs on every agent). Fails on the first rejected rule
  // or when the source service has no instances.
  VoidResult install(const std::vector<faults::FaultRule>& rules);

  // Removes all rules from every agent.
  VoidResult clear_rules();

  // Removes the given rules (by ID) from every agent that may hold them.
  VoidResult remove(const std::vector<faults::FaultRule>& rules);

  // Drains all agents' buffered observations into `store` and clears the
  // agent-side buffers (the logstash → Elasticsearch pipeline of Section 6).
  VoidResult collect_logs(logstore::LogStore* store);

  // Discards agent-side buffers without collecting.
  VoidResult discard_logs();

  size_t rules_installed() const { return rules_installed_; }

 private:
  topology::Deployment* deployment_;
  size_t rules_installed_ = 0;
};

}  // namespace gremlin::control
