#include "control/collector.h"

namespace gremlin::control {

void LogCollector::start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard lock(mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void LogCollector::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  (void)collect_once();  // final drain
}

VoidResult LogCollector::collect_once() {
  for (const auto& agent : deployment_->all_agents()) {
    // drain_records moves in-process buffers out; append_all(&&) moves them
    // into the store — the records themselves are never copied.
    auto records = agent->drain_records();
    if (!records.ok()) return records.error();
    if (!records->empty()) {
      records_shipped_.fetch_add(records->size());
      store_->append_all(std::move(records.value()));
    }
  }
  collections_.fetch_add(1);
  return VoidResult::success();
}

void LogCollector::run() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    lock.unlock();
    (void)collect_once();
    lock.lock();
    cv_.wait_for(lock, interval_, [this] { return stopping_; });
  }
}

}  // namespace gremlin::control
