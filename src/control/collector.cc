#include "control/collector.h"

#include <algorithm>
#include <iterator>

namespace gremlin::control {

void LogCollector::start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard lock(mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void LogCollector::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  (void)collect_once();  // final drain
}

VoidResult LogCollector::collect_once() {
  for (const auto& agent : deployment_->all_agents()) {
    // drain_records moves in-process buffers out; append_all(&&) moves them
    // into the store — the records themselves are never copied.
    auto records = agent->drain_records();
    if (!records.ok()) return records.error();
    if (!records->empty()) {
      records_shipped_.fetch_add(records->size());
      store_->append_all(std::move(records.value()));
    }
  }
  collections_.fetch_add(1);
  return VoidResult::success();
}

void LogCollector::run() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    lock.unlock();
    (void)collect_once();
    lock.lock();
    cv_.wait_for(lock, interval_, [this] { return stopping_; });
  }
}

void SimStreamCollector::start() { arm(); }

void SimStreamCollector::drain() {
  if (mode_ == Mode::kDiscard) {
    // Nobody reads a discarded batch: drop each buffer as it is drained,
    // skipping the concatenate-and-merge entirely.
    for (const auto& agent : sim_->deployment().all_agents()) {
      auto records = agent->drain_records();
      if (records.ok()) records_streamed_ += records->size();
    }
    ++drains_;
    return;
  }
  batch_.clear();
  // Per-agent buffers are individually time-ordered (sidecars stamp
  // sim().now(), which is monotone). Concatenate in the deployment's
  // deterministic agent order, then stable-sort by timestamp: ties keep
  // agent order, so the merged stream is a deterministic total order.
  size_t sorted_prefix = 0;
  for (const auto& agent : sim_->deployment().all_agents()) {
    auto records = agent->drain_records();
    if (!records.ok() || records->empty()) continue;
    batch_.insert(batch_.end(),
                  std::make_move_iterator(records->begin()),
                  std::make_move_iterator(records->end()));
    if (sorted_prefix == 0) sorted_prefix = batch_.size();
  }
  if (batch_.size() > sorted_prefix) {
    std::stable_sort(batch_.begin(), batch_.end(),
                     [](const logstore::LogRecord& a,
                        const logstore::LogRecord& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  ++drains_;
  if (batch_.empty()) return;
  records_streamed_ += batch_.size();
  if (mode_ == Mode::kAppendToStore) {
    sim_->log_store().append_all(std::move(batch_));
    batch_ = logstore::RecordList{};
  }
}

void SimStreamCollector::arm() {
  // Stop rescheduling when the run is over (stop requested) or the timeline
  // has nothing left — a recurring event would otherwise keep run() alive
  // forever. The tail of the stream is flushed by drain_now().
  if (sim_->stop_requested() || !sim_->has_pending_events()) return;
  TimePoint at = sim_->now() + interval_;
  const TimePoint next_event = sim_->next_event_time();
  if (next_event > at) at = next_event;  // skip idle gaps in sparse timelines
  sim_->schedule_at(at, [this] {
    drain();
    arm();
  });
}

void SimStreamCollector::drain_now() { drain(); }

}  // namespace gremlin::control
