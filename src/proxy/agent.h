// GremlinAgentProxy: the real-network Gremlin agent (Section 6).
//
// A sidecar Layer-7 proxy handling a microservice's *outbound* calls: the
// service is configured to send requests for each dependency to a local
// port; the proxy applies fault rules (the same faults::RuleEngine the
// simulator uses), forwards to one of the dependency's real endpoints
// (round-robin), logs every observation with wall-clock timestamps, and
// relays the response. Abort Error=-1 is emulated with a genuine TCP RST.
//
// Implements topology::AgentHandle, so the Failure Orchestrator drives real
// proxies and simulated sidecars through the same interface.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <map>

#include "faults/rule_engine.h"
#include "httpmsg/message.h"
#include "httpserver/pool.h"
#include "logstore/store.h"
#include "net/socket.h"
#include "topology/deployment.h"

namespace gremlin::proxy {

struct Upstream {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

// One local listening port mapped to one dependency (the paper's
// localhost:<port> → list of <remotehost>[:<remoteport>] config entries).
// Leave `endpoints` empty to resolve dynamically through the agent's
// endpoint resolver (e.g. a service registry; Section 6).
struct Route {
  std::string destination;          // logical name of the dependency
  std::vector<Upstream> endpoints;  // physical instances, round-robin
  uint16_t listen_port = 0;         // 0 = pick an ephemeral port
};

// Resolves a destination service to live endpoints at call time.
using EndpointResolver =
    std::function<std::vector<Upstream>(const std::string& destination)>;

class GremlinAgentProxy : public topology::AgentHandle {
 public:
  GremlinAgentProxy(std::string service, std::string instance_id,
                    uint64_t seed = 1);
  ~GremlinAgentProxy() override;

  GremlinAgentProxy(const GremlinAgentProxy&) = delete;
  GremlinAgentProxy& operator=(const GremlinAgentProxy&) = delete;

  // Routes must be added before start().
  void add_route(Route route);

  VoidResult start();
  void stop();

  // Local port serving `destination`, or 0 if unknown / not started.
  uint16_t route_port(const std::string& destination) const;

  // --- AgentHandle ---
  std::string instance_id() const override { return instance_id_; }
  VoidResult install_rules(
      const std::vector<faults::FaultRule>& rules) override;
  VoidResult clear_rules() override;
  VoidResult remove_rules(const std::vector<std::string>& ids) override;
  Result<logstore::RecordList> fetch_records() override;
  VoidResult clear_records() override;

  faults::RuleEngine& engine() { return engine_; }
  const std::string& service() const { return service_; }

  // Upstream fetch timeout (default 5s).
  void set_upstream_timeout(Duration timeout) { upstream_timeout_ = timeout; }

  // Dynamic endpoint resolution for routes with no static endpoints.
  void set_endpoint_resolver(EndpointResolver resolver) {
    resolver_ = std::move(resolver);
  }

  // Upstream keep-alive connection pooling (default on). Disable to force
  // one connection per proxied request.
  void set_connection_pooling(bool enabled) { pooling_ = enabled; }

  // Total requests that entered the data path (any outcome).
  uint64_t requests_proxied() const { return requests_proxied_.load(); }

 private:
  struct ActiveRoute {
    Route route;
    std::unique_ptr<net::TcpListener> listener;
    std::thread accept_thread;
    std::atomic<size_t> next_endpoint{0};
  };

  void accept_loop(ActiveRoute* route);
  void serve_connection(ActiveRoute* route, net::TcpStream stream);
  void log(logstore::LogRecord record);
  static TimePoint wall_clock_now();

  const std::string service_;
  const std::string instance_id_;
  faults::RuleEngine engine_;
  Duration upstream_timeout_ = sec(5);
  EndpointResolver resolver_;
  bool pooling_ = true;
  std::atomic<uint64_t> requests_proxied_{0};
  std::mutex pools_mu_;
  std::map<std::pair<std::string, uint16_t>,
           std::unique_ptr<httpserver::PooledClient>>
      pools_;

  std::vector<std::unique_ptr<ActiveRoute>> routes_;
  // Epoch for rule activation windows: rules measure `after` from proxy
  // start, mirroring the simulator's virtual-clock origin.
  TimePoint started_at_{};
  std::atomic<bool> running_{false};
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  mutable std::mutex records_mu_;
  logstore::RecordList records_;
};

}  // namespace gremlin::proxy
