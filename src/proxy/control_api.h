// REST control API for the real Gremlin agent, plus a client-side
// AgentHandle that drives a remote agent over that API — the out-of-band
// control channel of Section 4.2.
//
//   GET    /gremlin/v1/health   → {"status":"ok","service":...,"instance":...}
//   GET    /gremlin/v1/rules        → installed rules (JSON array)
//   POST   /gremlin/v1/rules        → install rules (array or object)
//   DELETE /gremlin/v1/rules        → remove all rules
//   DELETE /gremlin/v1/rules/<id>   → remove one rule by ID
//   GET    /gremlin/v1/records  → buffered observations (JSON array)
//   DELETE /gremlin/v1/records  → clear the buffer
#pragma once

#include <memory>

#include "httpserver/server.h"
#include "proxy/agent.h"

namespace gremlin::proxy {

class ControlApiServer {
 public:
  explicit ControlApiServer(GremlinAgentProxy* agent);
  ~ControlApiServer();

  Result<uint16_t> start(uint16_t port = 0);
  void stop();
  uint16_t port() const { return server_ ? server_->port() : 0; }

 private:
  httpmsg::Response handle(const httpmsg::Request& request);

  GremlinAgentProxy* agent_;
  std::unique_ptr<httpserver::HttpServer> server_;
};

// Controls a remote agent through its REST API. Lets the same
// FailureOrchestrator program real out-of-process proxies.
class RemoteAgentHandle : public topology::AgentHandle {
 public:
  RemoteAgentHandle(std::string host, uint16_t port, std::string instance_id)
      : host_(std::move(host)),
        port_(port),
        instance_id_(std::move(instance_id)) {}

  std::string instance_id() const override { return instance_id_; }
  VoidResult install_rules(
      const std::vector<faults::FaultRule>& rules) override;
  VoidResult clear_rules() override;
  VoidResult remove_rules(const std::vector<std::string>& ids) override;
  Result<logstore::RecordList> fetch_records() override;
  VoidResult clear_records() override;

  // Health probe; true when the agent answers.
  bool healthy() const;

 private:
  std::string host_;
  uint16_t port_;
  std::string instance_id_;
};

}  // namespace gremlin::proxy
