#include "proxy/agent.h"

#include <chrono>

#include "httpmsg/parser.h"
#include "httpserver/client.h"

namespace gremlin::proxy {

using faults::FaultDecision;
using faults::FaultKind;
using faults::MessageView;
using logstore::LogRecord;
using logstore::MessageKind;

GremlinAgentProxy::GremlinAgentProxy(std::string service,
                                     std::string instance_id, uint64_t seed)
    : service_(std::move(service)),
      instance_id_(std::move(instance_id)),
      engine_(seed, instance_id_) {}

GremlinAgentProxy::~GremlinAgentProxy() { stop(); }

void GremlinAgentProxy::add_route(Route route) {
  auto active = std::make_unique<ActiveRoute>();
  active->route = std::move(route);
  routes_.push_back(std::move(active));
}

VoidResult GremlinAgentProxy::start() {
  for (auto& active : routes_) {
    auto listener = net::TcpListener::bind(active->route.listen_port);
    if (!listener.ok()) return listener.error();
    active->route.listen_port = listener->bound_port();
    active->listener =
        std::make_unique<net::TcpListener>(std::move(listener.value()));
  }
  started_at_ = wall_clock_now();
  running_ = true;
  for (auto& active : routes_) {
    ActiveRoute* raw = active.get();
    raw->accept_thread = std::thread([this, raw] { accept_loop(raw); });
  }
  return VoidResult::success();
}

void GremlinAgentProxy::stop() {
  if (!running_.exchange(false)) return;
  for (auto& active : routes_) {
    if (active->listener) active->listener->close();
  }
  for (auto& active : routes_) {
    if (active->accept_thread.joinable()) active->accept_thread.join();
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

uint16_t GremlinAgentProxy::route_port(const std::string& destination) const {
  for (const auto& active : routes_) {
    if (active->route.destination == destination) {
      return active->route.listen_port;
    }
  }
  return 0;
}

VoidResult GremlinAgentProxy::install_rules(
    const std::vector<faults::FaultRule>& rules) {
  return engine_.add_rules(rules);
}

VoidResult GremlinAgentProxy::clear_rules() {
  engine_.clear();
  return VoidResult::success();
}

VoidResult GremlinAgentProxy::remove_rules(
    const std::vector<std::string>& ids) {
  for (const auto& id : ids) {
    (void)engine_.remove_rule(id);
  }
  return VoidResult::success();
}

Result<logstore::RecordList> GremlinAgentProxy::fetch_records() {
  std::lock_guard lock(records_mu_);
  return records_;
}

VoidResult GremlinAgentProxy::clear_records() {
  std::lock_guard lock(records_mu_);
  records_.clear();
  return VoidResult::success();
}

void GremlinAgentProxy::log(LogRecord record) {
  record.instance = instance_id_;
  std::lock_guard lock(records_mu_);
  records_.push_back(std::move(record));
}

TimePoint GremlinAgentProxy::wall_clock_now() {
  return std::chrono::duration_cast<Duration>(
      std::chrono::system_clock::now().time_since_epoch());
}

void GremlinAgentProxy::accept_loop(ActiveRoute* route) {
  while (running_) {
    auto stream = route->listener->accept();
    if (!stream.ok()) {
      if (!running_) break;
      continue;
    }
    std::lock_guard lock(workers_mu_);
    workers_.emplace_back(
        [this, route, s = std::make_shared<net::TcpStream>(
                          std::move(stream.value()))]() mutable {
          serve_connection(route, std::move(*s));
        });
  }
}

void GremlinAgentProxy::serve_connection(ActiveRoute* route,
                                         net::TcpStream stream) {
  (void)stream.set_read_timeout(sec(10));
  httpmsg::Parser parser(httpmsg::Parser::Kind::kRequest);
  char buffer[8192];
  while (!parser.complete()) {
    auto n = stream.read(buffer, sizeof(buffer));
    if (!n.ok() || n.value() == 0) return;
    auto consumed = parser.feed(std::string_view(buffer, n.value()));
    if (!consumed.ok()) return;
  }
  httpmsg::Request request = parser.request();
  const std::string request_id = request.request_id();
  const std::string& dst = route->route.destination;

  // --- request-side rule evaluation ---
  MessageView view;
  view.kind = MessageKind::kRequest;
  view.src = service_;
  view.dst = dst;
  view.request_id = request_id;
  view.method = request.method;
  view.uri = request.target;
  view.body = request.body;
  view.now = wall_clock_now() - started_at_;
  FaultDecision decision = engine_.evaluate(view);

  const TimePoint sent_at = wall_clock_now();
  LogRecord req_rec;
  req_rec.timestamp = sent_at;
  req_rec.request_id = request_id;
  req_rec.src = service_;
  req_rec.dst = dst;
  req_rec.kind = MessageKind::kRequest;
  req_rec.method = request.method;
  req_rec.uri = request.target;
  req_rec.fault = decision.action;
  req_rec.rule_id = decision.rule_id;
  if (decision.action == FaultKind::kDelay) {
    req_rec.injected_delay = decision.delay;
  }
  log(req_rec);

  Duration injected = kDurationZero;
  switch (decision.action) {
    case FaultKind::kAbort: {
      LogRecord resp_rec = req_rec;
      resp_rec.kind = MessageKind::kResponse;
      resp_rec.injected_delay = kDurationZero;
      if (decision.is_tcp_reset()) {
        resp_rec.status = 0;
        resp_rec.timestamp = wall_clock_now();
        resp_rec.latency = resp_rec.timestamp - sent_at;
        log(resp_rec);
        stream.reset_connection();  // the caller sees a genuine RST
        return;
      }
      httpmsg::Response synthesized =
          httpmsg::make_response(decision.abort_code, "gremlin-abort");
      synthesized.headers.set("Connection", "close");
      resp_rec.status = decision.abort_code;
      resp_rec.timestamp = wall_clock_now();
      resp_rec.latency = resp_rec.timestamp - sent_at;
      log(resp_rec);
      (void)stream.write_all(httpmsg::serialize(synthesized));
      return;
    }
    case FaultKind::kDelay:
      std::this_thread::sleep_for(decision.delay);
      injected = decision.delay;
      break;
    case FaultKind::kModify:
      faults::RuleEngine::apply_modify(decision, &request.body);
      break;
    case FaultKind::kNone:
      break;
  }

  // --- forward to an upstream endpoint (round-robin) ---
  std::vector<Upstream> endpoints = route->route.endpoints;
  if (endpoints.empty() && resolver_) {
    endpoints = resolver_(dst);  // dynamic lookup (service registry)
  }
  if (endpoints.empty()) {
    (void)stream.write_all(httpmsg::serialize(
        httpmsg::make_response(502, "no upstream configured")));
    return;
  }
  const size_t idx = route->next_endpoint.fetch_add(1) % endpoints.size();
  const Upstream& upstream = endpoints[idx];
  requests_proxied_.fetch_add(1);
  httpserver::FetchResult fetched;
  if (pooling_) {
    httpserver::PooledClient* pool = nullptr;
    {
      std::lock_guard lock(pools_mu_);
      auto& slot = pools_[{upstream.host, upstream.port}];
      if (!slot) {
        slot = std::make_unique<httpserver::PooledClient>(
            upstream.host, upstream.port, /*max_idle=*/8, upstream_timeout_);
      }
      pool = slot.get();
    }
    fetched = pool->fetch(request);
  } else {
    fetched = httpserver::HttpClient::fetch(upstream.host, upstream.port,
                                            request, upstream_timeout_);
  }

  // --- response-side rule evaluation ---
  httpmsg::Response response =
      fetched.connection_failed || fetched.timed_out
          ? httpmsg::Response{}
          : fetched.response;
  MessageView resp_view;
  resp_view.kind = MessageKind::kResponse;
  resp_view.src = service_;
  resp_view.dst = dst;
  resp_view.request_id = request_id;
  resp_view.status = fetched.connection_failed || fetched.timed_out
                         ? 0
                         : response.status;
  resp_view.body = response.body;
  resp_view.now = wall_clock_now() - started_at_;
  FaultDecision resp_decision = engine_.evaluate(resp_view);

  bool reset_client = fetched.connection_failed;
  switch (resp_decision.action) {
    case FaultKind::kAbort:
      if (resp_decision.is_tcp_reset()) {
        reset_client = true;
      } else {
        response = httpmsg::make_response(resp_decision.abort_code,
                                          "gremlin-abort");
        reset_client = false;
      }
      break;
    case FaultKind::kDelay:
      std::this_thread::sleep_for(resp_decision.delay);
      injected += resp_decision.delay;
      break;
    case FaultKind::kModify:
      faults::RuleEngine::apply_modify(resp_decision, &response.body);
      break;
    case FaultKind::kNone:
      break;
  }

  LogRecord resp_rec;
  resp_rec.timestamp = wall_clock_now();
  resp_rec.request_id = request_id;
  resp_rec.src = service_;
  resp_rec.dst = dst;
  resp_rec.kind = MessageKind::kResponse;
  resp_rec.uri = request.target;
  resp_rec.latency = resp_rec.timestamp - sent_at;
  resp_rec.injected_delay = injected;
  if (resp_decision.action != FaultKind::kNone) {
    resp_rec.fault = resp_decision.action;
    resp_rec.rule_id = resp_decision.rule_id;
  } else if (decision.action != FaultKind::kNone) {
    resp_rec.fault = decision.action;
    resp_rec.rule_id = decision.rule_id;
  }
  resp_rec.status = reset_client ? 0
                    : (fetched.timed_out ? 0 : response.status);
  log(resp_rec);

  if (reset_client) {
    stream.reset_connection();
    return;
  }
  if (fetched.timed_out) {
    response = httpmsg::make_response(504, "upstream timeout");
  }
  response.headers.set("Connection", "close");
  (void)stream.write_all(httpmsg::serialize(response));
}

}  // namespace gremlin::proxy
