#include "proxy/control_api.h"

#include "common/strings.h"
#include "httpserver/client.h"

namespace gremlin::proxy {
namespace {

httpmsg::Response json_response(int status, const Json& body) {
  httpmsg::Response r = httpmsg::make_response(status, body.dump());
  r.headers.set("Content-Type", "application/json");
  return r;
}

httpmsg::Response error_response(int status, const std::string& message) {
  Json body = Json::object();
  body["error"] = message;
  return json_response(status, body);
}

}  // namespace

ControlApiServer::ControlApiServer(GremlinAgentProxy* agent)
    : agent_(agent) {}

ControlApiServer::~ControlApiServer() { stop(); }

Result<uint16_t> ControlApiServer::start(uint16_t port) {
  server_ = std::make_unique<httpserver::HttpServer>(
      [this](const httpmsg::Request& request) { return handle(request); });
  return server_->start(port);
}

void ControlApiServer::stop() {
  if (server_) server_->stop();
}

httpmsg::Response ControlApiServer::handle(const httpmsg::Request& request) {
  const std::string& path = request.target;
  const std::string& method = request.method;

  if (path == "/gremlin/v1/health" && method == "GET") {
    Json body = Json::object();
    body["status"] = "ok";
    body["service"] = agent_->service();
    body["instance"] = agent_->instance_id();
    body["rules"] = static_cast<int64_t>(agent_->engine().rule_count());
    return json_response(200, body);
  }

  if (path == "/gremlin/v1/stats" && method == "GET") {
    Json body = Json::object();
    body["requests_proxied"] =
        static_cast<int64_t>(agent_->requests_proxied());
    body["rules_installed"] =
        static_cast<int64_t>(agent_->engine().rule_count());
    body["rule_matches"] =
        static_cast<int64_t>(agent_->engine().total_matches());
    auto records = agent_->fetch_records();
    body["records_buffered"] = static_cast<int64_t>(
        records.ok() ? records->size() : 0);
    return json_response(200, body);
  }

  const std::string rule_prefix = "/gremlin/v1/rules/";
  if (starts_with(path, rule_prefix) && method == "DELETE") {
    const std::string id = path.substr(rule_prefix.size());
    (void)agent_->remove_rules({id});
    return json_response(200, Json::object());
  }

  if (path == "/gremlin/v1/rules") {
    if (method == "GET") {
      Json arr = Json::array();
      for (const auto& rule : agent_->engine().rules()) {
        arr.push_back(rule.to_json());
      }
      return json_response(200, arr);
    }
    if (method == "POST" || method == "PUT") {
      auto parsed = Json::parse(request.body);
      if (!parsed.ok()) {
        return error_response(400, parsed.error().message);
      }
      std::vector<faults::FaultRule> rules;
      const Json& j = parsed.value();
      const auto parse_one = [&rules](const Json& item) -> VoidResult {
        auto rule = faults::FaultRule::from_json(item);
        if (!rule.ok()) return rule.error();
        rules.push_back(std::move(rule.value()));
        return VoidResult::success();
      };
      if (j.is_array()) {
        for (const Json& item : j.as_array()) {
          auto ok = parse_one(item);
          if (!ok.ok()) return error_response(400, ok.error().message);
        }
      } else {
        auto ok = parse_one(j);
        if (!ok.ok()) return error_response(400, ok.error().message);
      }
      auto installed = agent_->install_rules(rules);
      if (!installed.ok()) {
        return error_response(409, installed.error().message);
      }
      Json body = Json::object();
      body["installed"] = static_cast<int64_t>(rules.size());
      return json_response(200, body);
    }
    if (method == "DELETE") {
      (void)agent_->clear_rules();
      return json_response(200, Json::object());
    }
    return error_response(405, "unsupported method");
  }

  if (path == "/gremlin/v1/records") {
    if (method == "GET") {
      auto records = agent_->fetch_records();
      if (!records.ok()) return error_response(500, records.error().message);
      Json arr = Json::array();
      for (const auto& rec : records.value()) arr.push_back(rec.to_json());
      return json_response(200, arr);
    }
    if (method == "DELETE") {
      (void)agent_->clear_records();
      return json_response(200, Json::object());
    }
    return error_response(405, "unsupported method");
  }

  return error_response(404, "unknown path '" + path + "'");
}

// ------------------------------------------------------- RemoteAgentHandle

VoidResult RemoteAgentHandle::install_rules(
    const std::vector<faults::FaultRule>& rules) {
  Json arr = Json::array();
  for (const auto& rule : rules) arr.push_back(rule.to_json());
  httpmsg::Request req;
  req.method = "POST";
  req.target = "/gremlin/v1/rules";
  req.body = arr.dump();
  req.headers.set("Content-Type", "application/json");
  auto result = httpserver::HttpClient::fetch(host_, port_, std::move(req));
  if (result.failed()) {
    return Error::unavailable("agent " + instance_id_ +
                              " rejected rule install (status " +
                              std::to_string(result.response.status) + ")");
  }
  return VoidResult::success();
}

VoidResult RemoteAgentHandle::remove_rules(
    const std::vector<std::string>& ids) {
  for (const auto& id : ids) {
    httpmsg::Request req;
    req.method = "DELETE";
    req.target = "/gremlin/v1/rules/" + id;
    auto result = httpserver::HttpClient::fetch(host_, port_, std::move(req));
    if (result.failed()) {
      return Error::unavailable("agent " + instance_id_ + " unreachable");
    }
  }
  return VoidResult::success();
}

VoidResult RemoteAgentHandle::clear_rules() {
  httpmsg::Request req;
  req.method = "DELETE";
  req.target = "/gremlin/v1/rules";
  auto result = httpserver::HttpClient::fetch(host_, port_, std::move(req));
  if (result.failed()) {
    return Error::unavailable("agent " + instance_id_ + " unreachable");
  }
  return VoidResult::success();
}

Result<logstore::RecordList> RemoteAgentHandle::fetch_records() {
  httpmsg::Request req;
  req.target = "/gremlin/v1/records";
  auto result = httpserver::HttpClient::fetch(host_, port_, std::move(req));
  if (result.failed()) {
    return Error::unavailable("agent " + instance_id_ + " unreachable");
  }
  auto parsed = Json::parse(result.response.body);
  if (!parsed.ok()) return parsed.error();
  logstore::RecordList records;
  for (const Json& item : parsed.value().as_array()) {
    auto rec = logstore::LogRecord::from_json(item);
    if (!rec.ok()) return rec.error();
    records.push_back(std::move(rec.value()));
  }
  return records;
}

VoidResult RemoteAgentHandle::clear_records() {
  httpmsg::Request req;
  req.method = "DELETE";
  req.target = "/gremlin/v1/records";
  auto result = httpserver::HttpClient::fetch(host_, port_, std::move(req));
  if (result.failed()) {
    return Error::unavailable("agent " + instance_id_ + " unreachable");
  }
  return VoidResult::success();
}

bool RemoteAgentHandle::healthy() const {
  httpmsg::Request req;
  req.target = "/gremlin/v1/health";
  auto result = httpserver::HttpClient::fetch(host_, port_, req, sec(2));
  return !result.failed() && result.response.status == 200;
}

}  // namespace gremlin::proxy
