// LogStore: the centralized event-log store the Assertion Checker queries.
//
// The paper ships agent logs through logstash into Elasticsearch and issues
// GetRequests/GetReplies as Elasticsearch queries (Section 6). We substitute
// an in-memory store with secondary indexes on (src,dst) and request ID,
// preserving the query semantics: filtered record lists sorted by time.
//
// Thread-safe: the real proxy appends from connection threads while the
// control plane queries concurrently.
//
// Storage is slab-backed: records live in store-owned fixed-size slabs that
// are retained across clear(), so a warm world's per-experiment reset is a
// size rewind (pointer bump) and steady-state appends reuse fully
// constructed LogRecord slots — including their request-ID string capacity
// — instead of reallocating a vector and its strings. Positions index into
// the slabs; bulk walks (indexing, observer notification, full scans,
// serialization) iterate contiguous spans, one slab at a time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/glob.h"
#include "common/inline_function.h"
#include "logstore/record.h"

namespace gremlin::logstore {

using RecordList = std::vector<LogRecord>;

// Filter for queries. Empty string fields mean "any"; the id_pattern is a
// glob (Section 5 uses patterns like "test-*").
struct Query {
  std::string src;                      // logical caller name ("" = any)
  std::string dst;                      // logical callee name ("" = any)
  std::string id_pattern = "*";         // glob over request IDs
  MessageKind kind = MessageKind::kRequest;
  bool any_kind = false;                // true: ignore `kind`
  TimePoint min_time = TimePoint::min();
  TimePoint max_time = TimePoint::max();
};

// Visitor for the zero-copy query path. Invoked under the store lock, in
// (timestamp, arrival order); must not call back into the store.
using RecordVisitor = InlineFunction<void(const LogRecord&), 64>;

// The call graph a test run actually exercised, extracted from the agents'
// observation logs. Edges are logical (src, dst) service names; `paths` is
// the set of *distinct* per-request edge sets (two requests that traversed
// the same edges collapse into one signature). This is the evidence the
// fault-space pruner reasons over: a fault on an edge no request touched is
// a no-op, and two faults whose edges share no request path cannot
// interact (LDFI-style lineage pruning, docs/SEARCH.md).
struct CallGraph {
  using Edge = std::pair<std::string, std::string>;
  using EdgeSet = std::set<Edge>;

  EdgeSet edges;               // every observed (src, dst), lexicographic
  std::vector<EdgeSet> paths;  // distinct per-request signatures, sorted
  size_t requests = 0;         // distinct request IDs observed

  bool observed(const std::string& src, const std::string& dst) const {
    return edges.count({src, dst}) != 0;
  }
};

class LogStore {
 public:
  LogStore() = default;
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  // The const& overload copy-assigns into a recycled slab slot, reusing the
  // slot's request-ID capacity (no string allocation once warm).
  void append(const LogRecord& record);
  void append(LogRecord&& record);
  void append_all(const RecordList& records);
  void append_all(RecordList&& records);

  // Removes all records (start of a new test run).
  void clear();

  size_t size() const;

  // --- online checking hooks ---

  // Append observer, invoked once per appended record (before any retention
  // eviction), under the store lock and in append order. The online checker
  // pipeline hangs off this hook. The observer must not call back into the
  // store. Pass nullptr to remove.
  using AppendObserver = std::function<void(const LogRecord&)>;
  void set_observer(AppendObserver observer);

  // Bounded retention: when the store exceeds `max_records`, the oldest
  // records are evicted down to max_records/2 and the indexes rebuilt
  // (amortized O(1) per append). 0 disables eviction (the default). Only
  // safe when nothing re-reads evicted history — i.e. every attached check
  // is incremental and no caller keeps the log for reports or call-graph
  // extraction.
  void set_retention_limit(size_t max_records);

  // Records evicted by the retention policy since construction/clear().
  size_t dropped() const;

  // Zero-copy query: visits matching records in (timestamp, arrival order)
  // without materializing a RecordList. Returns the number of records
  // visited. This is the assertion checker's hot path; `query` below is a
  // thin copying wrapper over it for external callers.
  size_t for_each(const Query& q, const RecordVisitor& fn) const;

  // Returns matching records sorted by (timestamp, arrival order).
  RecordList query(const Query& q) const;

  // Convenience wrappers mirroring Table 3's queries.
  RecordList get_requests(const std::string& src, const std::string& dst,
                          const std::string& id_pattern = "*") const;
  RecordList get_replies(const std::string& src, const std::string& dst,
                         const std::string& id_pattern = "*") const;

  // Snapshot of everything, time-sorted.
  RecordList all() const;

  // Extracts the observed call graph from the records matching `q` (default:
  // every request record). Deterministic: output ordering is lexicographic
  // on service names, never dependent on symbol-table interning order.
  CallGraph call_graph(const Query& q = {}) const;

  // Serialize the full store (for the proxy's /records endpoint).
  Json to_json() const;
  VoidResult load_json(const Json& j);

 private:
  // Slab-backed record storage. Slots are default-constructed once per slab
  // and then recycled by assignment: clear() rewinds the size but keeps
  // every slab and every slot's string capacity alive, so the next run's
  // appends are assignment-only. Records never move on growth (positions
  // and spans stay stable), unlike a reallocating vector.
  class RecordSlabs {
   public:
    size_t size() const { return size_; }
    LogRecord& operator[](size_t pos) {
      return slabs_[pos >> kSlabBits][pos & (kSlabSize - 1)];
    }
    const LogRecord& operator[](size_t pos) const {
      return slabs_[pos >> kSlabBits][pos & (kSlabSize - 1)];
    }

    // The next slot, ready to be assigned into (grows by one slab when
    // every retained slot is in use).
    LogRecord& append_slot() {
      if (size_ == slabs_.size() * kSlabSize) {
        slabs_.push_back(std::make_unique<LogRecord[]>(kSlabSize));
      }
      LogRecord& slot = (*this)[size_];
      ++size_;
      return slot;
    }

    // Reset = pointer bump: slabs and slot contents are retained for reuse.
    void clear() { size_ = 0; }

    // Retention eviction: shifts the kept suffix to the front (positions
    // change; callers rebuild the indexes).
    void evict_front(size_t drop) {
      for (size_t i = 0; i + drop < size_; ++i) {
        (*this)[i] = std::move((*this)[i + drop]);
      }
      size_ -= drop;
    }

    // Visits records [first, size) as contiguous spans, one per slab:
    // fn(const LogRecord* span, size_t count, size_t first_pos).
    template <typename Fn>
    void spans(size_t first, Fn&& fn) const {
      size_t pos = first;
      while (pos < size_) {
        const size_t off = pos & (kSlabSize - 1);
        const size_t count = std::min(kSlabSize - off, size_ - pos);
        fn(&slabs_[pos >> kSlabBits][off], count, pos);
        pos += count;
      }
    }

   private:
    static constexpr size_t kSlabBits = 9;
    static constexpr size_t kSlabSize = size_t{1} << kSlabBits;

    std::vector<std::unique_ptr<LogRecord[]>> slabs_;
    size_t size_ = 0;
  };

  void index_tail_locked(size_t first);
  void notify_and_retain_locked(size_t first);
  const std::vector<size_t>& collect_locked(const Query& q) const;
  size_t for_each_locked(const Query& q, const RecordVisitor& fn) const;

  mutable std::mutex mu_;
  RecordSlabs records_;                                // insertion order
  AppendObserver observer_;        // per-record append hook (may be empty)
  size_t retention_limit_ = 0;     // 0 = unbounded
  size_t dropped_ = 0;             // evicted by retention
  // Scratch buffer for candidate positions, reused across queries so the
  // indexed fast path allocates nothing once warm. Guarded by mu_.
  mutable std::vector<size_t> scratch_;
  // Secondary index: (src, dst) -> record positions, keyed by interned
  // symbols (id order, not lexicographic — lookups only). Keeps Fig. 7's
  // per-service assertion queries sublinear in total log volume.
  std::map<std::pair<Symbol, Symbol>, std::vector<size_t>> by_edge_;
  // Secondary index: request ID -> record positions. Answers exact-ID
  // lookups (request tracing) with a point query and literal-prefix
  // patterns ("test-*") with an ordered range scan — both without touching
  // records that belong to other flows.
  std::map<std::string, std::vector<size_t>, std::less<>> by_id_;
};

}  // namespace gremlin::logstore
