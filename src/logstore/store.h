// LogStore: the centralized event-log store the Assertion Checker queries.
//
// The paper ships agent logs through logstash into Elasticsearch and issues
// GetRequests/GetReplies as Elasticsearch queries (Section 6). We substitute
// an in-memory store with secondary indexes on (src,dst) and request ID,
// preserving the query semantics: filtered record lists sorted by time.
//
// Thread-safe: the real proxy appends from connection threads while the
// control plane queries concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/glob.h"
#include "common/inline_function.h"
#include "logstore/record.h"

namespace gremlin::logstore {

using RecordList = std::vector<LogRecord>;

// Filter for queries. Empty string fields mean "any"; the id_pattern is a
// glob (Section 5 uses patterns like "test-*").
struct Query {
  std::string src;                      // logical caller name ("" = any)
  std::string dst;                      // logical callee name ("" = any)
  std::string id_pattern = "*";         // glob over request IDs
  MessageKind kind = MessageKind::kRequest;
  bool any_kind = false;                // true: ignore `kind`
  TimePoint min_time = TimePoint::min();
  TimePoint max_time = TimePoint::max();
};

// Visitor for the zero-copy query path. Invoked under the store lock, in
// (timestamp, arrival order); must not call back into the store.
using RecordVisitor = InlineFunction<void(const LogRecord&), 64>;

// The call graph a test run actually exercised, extracted from the agents'
// observation logs. Edges are logical (src, dst) service names; `paths` is
// the set of *distinct* per-request edge sets (two requests that traversed
// the same edges collapse into one signature). This is the evidence the
// fault-space pruner reasons over: a fault on an edge no request touched is
// a no-op, and two faults whose edges share no request path cannot
// interact (LDFI-style lineage pruning, docs/SEARCH.md).
struct CallGraph {
  using Edge = std::pair<std::string, std::string>;
  using EdgeSet = std::set<Edge>;

  EdgeSet edges;               // every observed (src, dst), lexicographic
  std::vector<EdgeSet> paths;  // distinct per-request signatures, sorted
  size_t requests = 0;         // distinct request IDs observed

  bool observed(const std::string& src, const std::string& dst) const {
    return edges.count({src, dst}) != 0;
  }
};

class LogStore {
 public:
  LogStore() = default;
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  void append(const LogRecord& record) { append(LogRecord(record)); }
  void append(LogRecord&& record);
  void append_all(const RecordList& records);
  void append_all(RecordList&& records);

  // Removes all records (start of a new test run).
  void clear();

  size_t size() const;

  // --- online checking hooks ---

  // Append observer, invoked once per appended record (before any retention
  // eviction), under the store lock and in append order. The online checker
  // pipeline hangs off this hook. The observer must not call back into the
  // store. Pass nullptr to remove.
  using AppendObserver = std::function<void(const LogRecord&)>;
  void set_observer(AppendObserver observer);

  // Bounded retention: when the store exceeds `max_records`, the oldest
  // records are evicted down to max_records/2 and the indexes rebuilt
  // (amortized O(1) per append). 0 disables eviction (the default). Only
  // safe when nothing re-reads evicted history — i.e. every attached check
  // is incremental and no caller keeps the log for reports or call-graph
  // extraction.
  void set_retention_limit(size_t max_records);

  // Records evicted by the retention policy since construction/clear().
  size_t dropped() const;

  // Zero-copy query: visits matching records in (timestamp, arrival order)
  // without materializing a RecordList. Returns the number of records
  // visited. This is the assertion checker's hot path; `query` below is a
  // thin copying wrapper over it for external callers.
  size_t for_each(const Query& q, const RecordVisitor& fn) const;

  // Returns matching records sorted by (timestamp, arrival order).
  RecordList query(const Query& q) const;

  // Convenience wrappers mirroring Table 3's queries.
  RecordList get_requests(const std::string& src, const std::string& dst,
                          const std::string& id_pattern = "*") const;
  RecordList get_replies(const std::string& src, const std::string& dst,
                         const std::string& id_pattern = "*") const;

  // Snapshot of everything, time-sorted.
  RecordList all() const;

  // Extracts the observed call graph from the records matching `q` (default:
  // every request record). Deterministic: output ordering is lexicographic
  // on service names, never dependent on symbol-table interning order.
  CallGraph call_graph(const Query& q = {}) const;

  // Serialize the full store (for the proxy's /records endpoint).
  Json to_json() const;
  VoidResult load_json(const Json& j);

 private:
  void index_tail_locked(size_t first);
  void notify_and_retain_locked(size_t first);
  const std::vector<size_t>& collect_locked(const Query& q) const;
  size_t for_each_locked(const Query& q, const RecordVisitor& fn) const;

  mutable std::mutex mu_;
  RecordList records_;                                 // insertion order
  AppendObserver observer_;        // per-record append hook (may be empty)
  size_t retention_limit_ = 0;     // 0 = unbounded
  size_t dropped_ = 0;             // evicted by retention
  // Scratch buffer for candidate positions, reused across queries so the
  // indexed fast path allocates nothing once warm. Guarded by mu_.
  mutable std::vector<size_t> scratch_;
  // Secondary index: (src, dst) -> record positions, keyed by interned
  // symbols (id order, not lexicographic — lookups only). Keeps Fig. 7's
  // per-service assertion queries sublinear in total log volume.
  std::map<std::pair<Symbol, Symbol>, std::vector<size_t>> by_edge_;
  // Secondary index: request ID -> record positions. Answers exact-ID
  // lookups (request tracing) with a point query and literal-prefix
  // patterns ("test-*") with an ordered range scan — both without touching
  // records that belong to other flows.
  std::map<std::string, std::vector<size_t>, std::less<>> by_id_;
};

}  // namespace gremlin::logstore
