#include "logstore/store.h"

#include <algorithm>

namespace gremlin::logstore {
namespace {

// Query with src/dst pre-resolved to symbols (a query whose names were never
// interned cannot match any record and short-circuits before this point).
bool record_matches(const LogRecord& r, const Query& q, Symbol src, Symbol dst,
                    const Glob& glob) {
  if (!q.src.empty() && r.src != src) return false;
  if (!q.dst.empty() && r.dst != dst) return false;
  if (!q.any_kind && r.kind != q.kind) return false;
  if (r.timestamp < q.min_time || r.timestamp > q.max_time) return false;
  if (!glob.match_all() && !glob.matches(r.request_id)) return false;
  return true;
}

void sort_by_time(RecordList* list) {
  std::stable_sort(list->begin(), list->end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
}

}  // namespace

void LogStore::index_tail_locked(size_t first) {
  // Agent buffers arrive grouped: runs of records share an edge and flows
  // interleave over a handful of active IDs, so remembering the last bucket
  // hit turns most index updates into a pointer append instead of a tree
  // walk with string/pair comparisons. Span iteration keeps the walk inside
  // one slab at a time (no per-record slab resolution).
  std::pair<Symbol, Symbol> last_edge{Symbol(), Symbol()};
  std::vector<size_t>* edge_bucket = nullptr;
  const std::string* last_id = nullptr;
  std::vector<size_t>* id_bucket = nullptr;
  records_.spans(first, [&](const LogRecord* span, size_t count,
                            size_t first_pos) {
    for (size_t i = 0; i < count; ++i) {
      const LogRecord& r = span[i];
      const std::pair<Symbol, Symbol> edge{r.src, r.dst};
      if (edge_bucket == nullptr || edge != last_edge) {
        edge_bucket = &by_edge_[edge];
        last_edge = edge;
      }
      edge_bucket->push_back(first_pos + i);
      if (id_bucket == nullptr || r.request_id != *last_id) {
        id_bucket = &by_id_[r.request_id];
        last_id = &r.request_id;
      }
      id_bucket->push_back(first_pos + i);
    }
  });
}

void LogStore::append(const LogRecord& record) {
  std::lock_guard lock(mu_);
  records_.append_slot() = record;  // copy-assign: slot capacity reused
  index_tail_locked(records_.size() - 1);
  notify_and_retain_locked(records_.size() - 1);
}

void LogStore::append(LogRecord&& record) {
  std::lock_guard lock(mu_);
  records_.append_slot() = std::move(record);
  index_tail_locked(records_.size() - 1);
  notify_and_retain_locked(records_.size() - 1);
}

void LogStore::append_all(const RecordList& records) {
  std::lock_guard lock(mu_);
  const size_t first = records_.size();
  for (const LogRecord& r : records) records_.append_slot() = r;
  index_tail_locked(first);
  notify_and_retain_locked(first);
}

void LogStore::append_all(RecordList&& records) {
  std::lock_guard lock(mu_);
  const size_t first = records_.size();
  for (LogRecord& r : records) records_.append_slot() = std::move(r);
  index_tail_locked(first);
  notify_and_retain_locked(first);
}

void LogStore::clear() {
  std::lock_guard lock(mu_);
  records_.clear();  // size rewind; slabs and slot strings retained
  // Keep the index *nodes* and the position vectors' capacity: warm-world
  // runs replay the same bounded vocabulary of edges and request IDs
  // ("test-N"), so the next experiment re-fills these buckets without
  // re-allocating map nodes. An empty bucket yields zero candidates, which
  // is indistinguishable from an absent key for every query path.
  for (auto& [edge, positions] : by_edge_) positions.clear();
  for (auto& [id, positions] : by_id_) positions.clear();
  dropped_ = 0;
}

void LogStore::set_observer(AppendObserver observer) {
  std::lock_guard lock(mu_);
  observer_ = std::move(observer);
}

void LogStore::set_retention_limit(size_t max_records) {
  std::lock_guard lock(mu_);
  retention_limit_ = max_records;
}

size_t LogStore::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void LogStore::notify_and_retain_locked(size_t first) {
  // Every record is observed exactly once, before it can be evicted: the
  // online checks consume observations at append time and never re-read
  // history, which is what makes eviction safe at all.
  if (observer_) {
    for (size_t i = first; i < records_.size(); ++i) observer_(records_[i]);
  }
  if (retention_limit_ == 0 || records_.size() <= retention_limit_) return;
  // Evict down to half the limit (not just below it), so eviction cost is
  // amortized O(1) per appended record instead of O(limit) per append once
  // the store is full. Positions shift, so both indexes rebuild.
  const size_t keep = retention_limit_ / 2;
  const size_t drop = records_.size() - keep;
  records_.evict_front(drop);
  dropped_ += drop;
  by_edge_.clear();
  by_id_.clear();
  index_tail_locked(0);
}

size_t LogStore::size() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

// Fills scratch_ with the positions of matching records, ordered by
// (timestamp, arrival). Returns a reference to scratch_ (valid under mu_).
const std::vector<size_t>& LogStore::collect_locked(const Query& q) const {
  scratch_.clear();
  const Glob glob(q.id_pattern.empty() ? "*" : q.id_pattern);

  // Resolve query names to symbols without interning; a name that was never
  // logged matches nothing. Shard-aware so a campaign worker's queries see
  // the ids its own records were written with.
  Symbol src, dst;
  if (!q.src.empty()) {
    const auto s = find_symbol(q.src);
    if (!s) return scratch_;
    src = *s;
  }
  if (!q.dst.empty()) {
    const auto s = find_symbol(q.dst);
    if (!s) return scratch_;
    dst = *s;
  }

  // Query planning: pick the most selective access path, then let
  // record_matches apply the remaining filters.
  //   1. exact request ID      -> by_id_ point lookup
  //   2. src & dst both fixed  -> by_edge_ point lookup
  //   3. literal-prefix glob   -> by_id_ ordered range scan
  //   4. anything else         -> full scan
  // Point lookups iterate the stored index span directly; only the range
  // scan needs to merge and re-sort candidate positions.
  bool positions_sorted = true;
  if (glob.is_literal()) {
    const auto it = by_id_.find(glob.pattern());
    if (it != by_id_.end()) {
      for (const size_t pos : it->second) {
        if (record_matches(records_[pos], q, src, dst, glob)) {
          scratch_.push_back(pos);
        }
      }
    }
  } else if (!q.src.empty() && !q.dst.empty()) {
    const auto it = by_edge_.find({src, dst});
    if (it != by_edge_.end()) {
      for (const size_t pos : it->second) {
        if (record_matches(records_[pos], q, src, dst, glob)) {
          scratch_.push_back(pos);
        }
      }
    }
  } else if (const auto prefix = glob.literal_prefix();
             prefix.has_value() && !prefix->empty()) {
    for (auto it = by_id_.lower_bound(*prefix);
         it != by_id_.end() &&
         std::string_view(it->first).substr(0, prefix->size()) == *prefix;
         ++it) {
      for (const size_t pos : it->second) {
        if (record_matches(records_[pos], q, src, dst, glob)) {
          scratch_.push_back(pos);
        }
      }
    }
    // Range scans visit IDs lexicographically; restore arrival order so the
    // time ordering below stays stable across access paths.
    positions_sorted = false;
  } else {
    for (size_t pos = 0; pos < records_.size(); ++pos) {
      if (record_matches(records_[pos], q, src, dst, glob)) {
        scratch_.push_back(pos);
      }
    }
  }
  if (!positions_sorted) std::sort(scratch_.begin(), scratch_.end());

  // Most access paths yield timestamps already nondecreasing (per-agent
  // buffers arrive time-ordered); detect that and skip the sort.
  bool time_sorted = true;
  for (size_t i = 1; i < scratch_.size(); ++i) {
    if (records_[scratch_[i]].timestamp < records_[scratch_[i - 1]].timestamp) {
      time_sorted = false;
      break;
    }
  }
  if (!time_sorted) {
    // (timestamp, position) is a total order, so plain sort is stable here.
    std::sort(scratch_.begin(), scratch_.end(),
              [this](size_t a, size_t b) {
                const TimePoint ta = records_[a].timestamp;
                const TimePoint tb = records_[b].timestamp;
                if (ta != tb) return ta < tb;
                return a < b;
              });
  }
  return scratch_;
}

size_t LogStore::for_each(const Query& q, const RecordVisitor& fn) const {
  std::lock_guard lock(mu_);
  return for_each_locked(q, fn);
}

size_t LogStore::for_each_locked(const Query& q,
                                 const RecordVisitor& fn) const {
  const std::vector<size_t>& positions = collect_locked(q);
  for (const size_t pos : positions) fn(records_[pos]);
  return positions.size();
}

RecordList LogStore::query(const Query& q) const {
  std::lock_guard lock(mu_);
  const std::vector<size_t>& positions = collect_locked(q);
  RecordList out;
  out.reserve(positions.size());
  for (const size_t pos : positions) out.push_back(records_[pos]);
  return out;
}

RecordList LogStore::get_requests(const std::string& src,
                                  const std::string& dst,
                                  const std::string& id_pattern) const {
  Query q;
  q.src = src;
  q.dst = dst;
  q.id_pattern = id_pattern;
  q.kind = MessageKind::kRequest;
  return query(q);
}

RecordList LogStore::get_replies(const std::string& src,
                                 const std::string& dst,
                                 const std::string& id_pattern) const {
  Query q;
  q.src = src;
  q.dst = dst;
  q.id_pattern = id_pattern;
  q.kind = MessageKind::kResponse;
  return query(q);
}

CallGraph LogStore::call_graph(const Query& q) const {
  std::lock_guard lock(mu_);
  const std::vector<size_t>& positions = collect_locked(q);

  // Group edges by request ID (symbol pairs while grouping — cheap integer
  // keys — stringified once per distinct edge at the end).
  std::map<std::string, std::set<std::pair<Symbol, Symbol>>, std::less<>>
      by_request;
  for (const size_t pos : positions) {
    const LogRecord& r = records_[pos];
    by_request[r.request_id].insert({r.src, r.dst});
  }

  CallGraph out;
  out.requests = by_request.size();
  std::set<CallGraph::EdgeSet> distinct;
  for (const auto& [id, edges] : by_request) {
    CallGraph::EdgeSet path;
    for (const auto& [src, dst] : edges) path.insert({src.str(), dst.str()});
    out.edges.insert(path.begin(), path.end());
    distinct.insert(std::move(path));
  }
  out.paths.assign(distinct.begin(), distinct.end());
  return out;
}

RecordList LogStore::all() const {
  std::lock_guard lock(mu_);
  RecordList out;
  out.reserve(records_.size());
  records_.spans(0, [&out](const LogRecord* span, size_t count, size_t) {
    out.insert(out.end(), span, span + count);
  });
  sort_by_time(&out);
  return out;
}

Json LogStore::to_json() const {
  std::lock_guard lock(mu_);
  Json arr = Json::array();
  records_.spans(0, [&arr](const LogRecord* span, size_t count, size_t) {
    for (size_t i = 0; i < count; ++i) arr.push_back(span[i].to_json());
  });
  return arr;
}

VoidResult LogStore::load_json(const Json& j) {
  if (!j.is_array()) return Error::parse("log dump must be an array");
  RecordList parsed;
  parsed.reserve(j.size());
  for (const Json& item : j.as_array()) {
    auto rec = LogRecord::from_json(item);
    if (!rec.ok()) return rec.error();
    parsed.push_back(std::move(rec.value()));
  }
  append_all(std::move(parsed));
  return VoidResult::success();
}

}  // namespace gremlin::logstore
