#include "logstore/store.h"

#include <algorithm>

namespace gremlin::logstore {
namespace {

bool record_matches(const LogRecord& r, const Query& q, const Glob& glob) {
  if (!q.src.empty() && r.src != q.src) return false;
  if (!q.dst.empty() && r.dst != q.dst) return false;
  if (!q.any_kind && r.kind != q.kind) return false;
  if (r.timestamp < q.min_time || r.timestamp > q.max_time) return false;
  if (!glob.match_all() && !glob.matches(r.request_id)) return false;
  return true;
}

void sort_by_time(RecordList* list) {
  std::stable_sort(list->begin(), list->end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
}

}  // namespace

void LogStore::append(LogRecord record) {
  std::lock_guard lock(mu_);
  by_edge_[{record.src, record.dst}].push_back(records_.size());
  by_id_[record.request_id].push_back(records_.size());
  records_.push_back(std::move(record));
}

void LogStore::append_all(const RecordList& records) {
  std::lock_guard lock(mu_);
  for (const auto& r : records) {
    by_edge_[{r.src, r.dst}].push_back(records_.size());
    by_id_[r.request_id].push_back(records_.size());
    records_.push_back(r);
  }
}

void LogStore::clear() {
  std::lock_guard lock(mu_);
  records_.clear();
  by_edge_.clear();
  by_id_.clear();
}

size_t LogStore::size() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

RecordList LogStore::query_locked(const Query& q) const {
  const Glob glob(q.id_pattern.empty() ? "*" : q.id_pattern);
  RecordList out;

  // Query planning: pick the most selective access path, then let
  // record_matches apply the remaining filters.
  //   1. exact request ID      -> by_id_ point lookup
  //   2. src & dst both fixed  -> by_edge_ point lookup
  //   3. literal-prefix glob   -> by_id_ ordered range scan
  //   4. anything else         -> full scan
  std::vector<size_t> candidates;
  bool indexed = false;
  if (glob.is_literal()) {
    indexed = true;
    const auto it = by_id_.find(glob.pattern());
    if (it != by_id_.end()) candidates = it->second;
  } else if (!q.src.empty() && !q.dst.empty()) {
    indexed = true;
    const auto it = by_edge_.find({q.src, q.dst});
    if (it != by_edge_.end()) candidates = it->second;
  } else if (const auto prefix = glob.literal_prefix();
             prefix.has_value() && !prefix->empty()) {
    indexed = true;
    for (auto it = by_id_.lower_bound(*prefix);
         it != by_id_.end() &&
         std::string_view(it->first).substr(0, prefix->size()) == *prefix;
         ++it) {
      candidates.insert(candidates.end(), it->second.begin(),
                        it->second.end());
    }
    // Range scans visit IDs lexicographically; restore arrival order so the
    // time sort below stays stable across access paths.
    std::sort(candidates.begin(), candidates.end());
  }

  if (indexed) {
    for (const size_t idx : candidates) {
      const LogRecord& r = records_[idx];
      if (record_matches(r, q, glob)) out.push_back(r);
    }
  } else {
    for (const LogRecord& r : records_) {
      if (record_matches(r, q, glob)) out.push_back(r);
    }
  }
  sort_by_time(&out);
  return out;
}

RecordList LogStore::query(const Query& q) const {
  std::lock_guard lock(mu_);
  return query_locked(q);
}

RecordList LogStore::get_requests(const std::string& src,
                                  const std::string& dst,
                                  const std::string& id_pattern) const {
  Query q;
  q.src = src;
  q.dst = dst;
  q.id_pattern = id_pattern;
  q.kind = MessageKind::kRequest;
  return query(q);
}

RecordList LogStore::get_replies(const std::string& src,
                                 const std::string& dst,
                                 const std::string& id_pattern) const {
  Query q;
  q.src = src;
  q.dst = dst;
  q.id_pattern = id_pattern;
  q.kind = MessageKind::kResponse;
  return query(q);
}

RecordList LogStore::all() const {
  std::lock_guard lock(mu_);
  RecordList out = records_;
  sort_by_time(&out);
  return out;
}

Json LogStore::to_json() const {
  std::lock_guard lock(mu_);
  Json arr = Json::array();
  for (const auto& r : records_) arr.push_back(r.to_json());
  return arr;
}

VoidResult LogStore::load_json(const Json& j) {
  if (!j.is_array()) return Error::parse("log dump must be an array");
  RecordList parsed;
  parsed.reserve(j.size());
  for (const Json& item : j.as_array()) {
    auto rec = LogRecord::from_json(item);
    if (!rec.ok()) return rec.error();
    parsed.push_back(std::move(rec.value()));
  }
  append_all(parsed);
  return VoidResult::success();
}

}  // namespace gremlin::logstore
