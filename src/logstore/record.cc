#include "logstore/record.h"

namespace gremlin::logstore {

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRequest: return "request";
    case MessageKind::kResponse: return "response";
  }
  return "unknown";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kAbort: return "abort";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kModify: return "modify";
  }
  return "unknown";
}

Json LogRecord::to_json() const {
  Json j = Json::object();
  j["ts_us"] = timestamp.count();
  j["request_id"] = request_id;
  j["src"] = src.str();
  j["dst"] = dst.str();
  j["instance"] = instance.str();
  j["kind"] = to_string(kind);
  j["method"] = method.str();
  j["uri"] = uri.str();
  j["status"] = status;
  j["latency_us"] = latency.count();
  j["fault"] = to_string(fault);
  j["rule_id"] = rule_id.str();
  j["injected_delay_us"] = injected_delay.count();
  return j;
}

Result<LogRecord> LogRecord::from_json(const Json& j) {
  if (!j.is_object()) return Error::parse("log record must be an object");
  LogRecord r;
  r.timestamp = Duration(j["ts_us"].as_int());
  r.request_id = j["request_id"].as_string();
  r.src = j["src"].as_string();
  r.dst = j["dst"].as_string();
  r.instance = j["instance"].as_string();
  const std::string& kind = j["kind"].as_string();
  if (kind == "request") {
    r.kind = MessageKind::kRequest;
  } else if (kind == "response") {
    r.kind = MessageKind::kResponse;
  } else {
    return Error::parse("bad message kind '" + kind + "'");
  }
  r.method = j["method"].as_string();
  r.uri = j["uri"].as_string();
  r.status = static_cast<int>(j["status"].as_int());
  r.latency = Duration(j["latency_us"].as_int());
  const std::string& fault = j["fault"].as_string();
  if (fault == "none" || fault.empty()) {
    r.fault = FaultKind::kNone;
  } else if (fault == "abort") {
    r.fault = FaultKind::kAbort;
  } else if (fault == "delay") {
    r.fault = FaultKind::kDelay;
  } else if (fault == "modify") {
    r.fault = FaultKind::kModify;
  } else {
    return Error::parse("bad fault kind '" + fault + "'");
  }
  r.rule_id = j["rule_id"].as_string();
  r.injected_delay = Duration(j["injected_delay_us"].as_int());
  return r;
}

}  // namespace gremlin::logstore
