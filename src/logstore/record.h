// LogRecord: one observation reported by a Gremlin agent.
//
// Section 4.1: during a test, agents log every API call they see — message
// timestamp and request ID, parts of the message (status code, request URI),
// and any fault action applied. The Assertion Checker consumes these records.
//
// Records additionally carry the injected delay so that assertion queries can
// be evaluated either *with* Gremlin's interference (withRule=true: latencies
// as the caller observed them) or *without* it (withRule=false: the callee's
// untampered behaviour), per Section 4.2.
#pragma once

#include <string>

#include "common/duration.h"
#include "common/intern.h"
#include "common/json.h"

namespace gremlin::logstore {

// Which half of an exchange a record (or a fault rule) refers to.
enum class MessageKind { kRequest, kResponse };

// The fault primitive applied to the message, if any (Table 2).
enum class FaultKind { kNone, kAbort, kDelay, kModify };

const char* to_string(MessageKind kind);
const char* to_string(FaultKind kind);

// Identity fields are interned Symbols: service names, instance ids,
// methods, URIs and rule ids form a small per-test-run vocabulary, so a
// record carries 4-byte handles and copying one never allocates for them.
// The request ID is the exception — one per flow, unbounded cardinality —
// and stays an owning string (short IDs sit in the SSO buffer anyway).
struct LogRecord {
  TimePoint timestamp{};        // when the agent observed the message
  std::string request_id;       // end-to-end flow ID (X-Gremlin-ID)
  Symbol src;                   // calling service (logical name)
  Symbol dst;                   // called service (logical name)
  Symbol instance;              // physical agent instance that logged this
  MessageKind kind = MessageKind::kRequest;
  Symbol method;                // requests: HTTP method
  Symbol uri;                   // requests: request URI
  int status = 0;               // responses: HTTP status (0 = conn reset)
  Duration latency{};           // responses: observed round-trip at caller
  FaultKind fault = FaultKind::kNone;
  Symbol rule_id;               // rule that fired, if any
  Duration injected_delay{};    // delay added by the agent itself

  // True when this response failed from the caller's point of view:
  // connection-level failure (status 0) or HTTP 5xx.
  bool failed() const { return kind == MessageKind::kResponse &&
                               (status == 0 || status >= 500); }

  Json to_json() const;
  static Result<LogRecord> from_json(const Json& j);
};

}  // namespace gremlin::logstore
