// LogRecord: one observation reported by a Gremlin agent.
//
// Section 4.1: during a test, agents log every API call they see — message
// timestamp and request ID, parts of the message (status code, request URI),
// and any fault action applied. The Assertion Checker consumes these records.
//
// Records additionally carry the injected delay so that assertion queries can
// be evaluated either *with* Gremlin's interference (withRule=true: latencies
// as the caller observed them) or *without* it (withRule=false: the callee's
// untampered behaviour), per Section 4.2.
#pragma once

#include <string>

#include "common/duration.h"
#include "common/json.h"

namespace gremlin::logstore {

// Which half of an exchange a record (or a fault rule) refers to.
enum class MessageKind { kRequest, kResponse };

// The fault primitive applied to the message, if any (Table 2).
enum class FaultKind { kNone, kAbort, kDelay, kModify };

const char* to_string(MessageKind kind);
const char* to_string(FaultKind kind);

struct LogRecord {
  TimePoint timestamp{};        // when the agent observed the message
  std::string request_id;       // end-to-end flow ID (X-Gremlin-ID)
  std::string src;              // calling service (logical name)
  std::string dst;              // called service (logical name)
  std::string instance;         // physical agent instance that logged this
  MessageKind kind = MessageKind::kRequest;
  std::string method;           // requests: HTTP method
  std::string uri;              // requests: request URI
  int status = 0;               // responses: HTTP status (0 = conn reset)
  Duration latency{};           // responses: observed round-trip at caller
  FaultKind fault = FaultKind::kNone;
  std::string rule_id;          // rule that fired, if any
  Duration injected_delay{};    // delay added by the agent itself

  // True when this response failed from the caller's point of view:
  // connection-level failure (status 0) or HTTP 5xx.
  bool failed() const { return kind == MessageKind::kResponse &&
                               (status == 0 || status >= 500); }

  Json to_json() const;
  static Result<LogRecord> from_json(const Json& j);
};

}  // namespace gremlin::logstore
