// Persistent HTTP/1.1 connections and a per-upstream connection pool.
//
// HttpClient opens one TCP connection per request (simple, always correct).
// The proxy's hot path benefits from keep-alive: PooledClient keeps
// connections to an upstream open across requests and reuses them,
// transparently reconnecting when the server closed in between. Responses
// must be Content-Length or chunked delimited (read-until-close cannot be
// reused); such responses close the connection after use.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "httpserver/client.h"
#include "net/socket.h"

namespace gremlin::httpserver {

class PooledClient {
 public:
  // `max_idle`: connections kept open per upstream after use.
  PooledClient(std::string host, uint16_t port, size_t max_idle = 4,
               Duration timeout = sec(5))
      : host_(std::move(host)),
        port_(port),
        max_idle_(max_idle),
        timeout_(timeout) {}

  // Sends one request, reusing an idle connection when possible. Requests
  // are sent with "Connection: keep-alive"; the connection returns to the
  // pool unless the response forbids reuse.
  FetchResult fetch(httpmsg::Request request);

  size_t idle_connections() const;
  uint64_t connections_opened() const { return connections_opened_; }
  uint64_t reuses() const { return reuses_; }

 private:
  struct Conn {
    net::TcpStream stream;
  };

  std::unique_ptr<Conn> take_idle();
  void give_back(std::unique_ptr<Conn> conn);

  // One attempt over a given connection. Sets *io_failed when the failure
  // was connection-level (worth retrying on a fresh connection if the
  // connection came from the idle pool).
  FetchResult fetch_on(Conn* conn, const httpmsg::Request& request,
                       bool* reusable);

  const std::string host_;
  const uint16_t port_;
  const size_t max_idle_;
  const Duration timeout_;

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<Conn>> idle_;
  uint64_t connections_opened_ = 0;
  uint64_t reuses_ = 0;
};

}  // namespace gremlin::httpserver
