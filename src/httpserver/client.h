// HttpClient: a minimal blocking HTTP/1.1 client (one request per
// connection). Distinguishes connection-level failures from HTTP errors so
// callers can observe "reset" vs "5xx" — the distinction the Unirest case
// study hinges on.
#pragma once

#include <string>

#include "common/duration.h"
#include "common/result.h"
#include "httpmsg/message.h"

namespace gremlin::httpserver {

struct FetchResult {
  httpmsg::Response response;
  bool connection_failed = false;  // reset / refused / premature close
  bool timed_out = false;

  bool failed() const {
    return connection_failed || timed_out || response.status >= 500;
  }
};

class HttpClient {
 public:
  // Sends `request` to host:port and reads one response. Never throws;
  // connection-level problems are reported in the FetchResult flags.
  static FetchResult fetch(const std::string& host, uint16_t port,
                           httpmsg::Request request,
                           Duration timeout = sec(5));
};

}  // namespace gremlin::httpserver
