#include "httpserver/server.h"

#include "common/strings.h"
#include "httpmsg/parser.h"

namespace gremlin::httpserver {

Result<uint16_t> HttpServer::start(uint16_t port) {
  auto listener = net::TcpListener::bind(port);
  if (!listener.ok()) return listener.error();
  listener_ =
      std::make_unique<net::TcpListener>(std::move(listener.value()));
  port_ = listener_->bound_port();
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  if (listener_) listener_->close();  // unblocks accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mu_);
    workers.swap(workers_);
    // Wake any worker parked in read() on an idle keep-alive connection.
    for (const auto& conn : connections_) conn->shutdown_both();
    connections_.clear();
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void HttpServer::accept_loop() {
  while (running_) {
    auto stream = listener_->accept();
    if (!stream.ok()) {
      if (!running_) break;
      continue;  // transient accept failure
    }
    connections_accepted_.fetch_add(1);
    auto conn = std::make_shared<net::TcpStream>(std::move(stream.value()));
    std::lock_guard lock(workers_mu_);
    connections_.push_back(conn);
    workers_.emplace_back([this, conn] {
      serve_connection(conn.get());
      conn->close();  // the tracked handle must not hold the socket open
    });
  }
}

void HttpServer::serve_connection(net::TcpStream* stream_ptr) {
  net::TcpStream& stream = *stream_ptr;
  (void)stream.set_read_timeout(sec(10));
  char buffer[8192];
  httpmsg::Parser parser(httpmsg::Parser::Kind::kRequest);
  std::string pending;

  while (running_) {
    // Feed any bytes left over from the previous message first.
    if (!pending.empty()) {
      auto consumed = parser.feed(pending);
      if (!consumed.ok()) return;  // malformed: drop the connection
      pending.erase(0, consumed.value());
    }
    while (!parser.complete()) {
      auto n = stream.read(buffer, sizeof(buffer));
      if (!n.ok() || n.value() == 0) return;  // closed or timed out
      std::string_view data(buffer, n.value());
      auto consumed = parser.feed(data);
      if (!consumed.ok()) return;
      if (consumed.value() < data.size()) {
        pending.append(data.substr(consumed.value()));
      }
    }

    const httpmsg::Request& request = parser.request();
    httpmsg::Response response = handler_(request);
    requests_served_.fetch_add(1);
    const bool close_requested =
        iequals(request.headers.get_or("Connection", ""), "close") ||
        iequals(response.headers.get_or("Connection", ""), "close");
    if (!stream.write_all(httpmsg::serialize(response)).ok()) return;
    if (close_requested) return;
    parser.reset();
  }
}

}  // namespace gremlin::httpserver
