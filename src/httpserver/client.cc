#include "httpserver/client.h"

#include "httpmsg/parser.h"
#include "net/socket.h"

namespace gremlin::httpserver {

FetchResult HttpClient::fetch(const std::string& host, uint16_t port,
                              httpmsg::Request request, Duration timeout) {
  FetchResult result;
  auto stream = net::TcpStream::connect(host, port, timeout);
  if (!stream.ok()) {
    result.connection_failed = true;
    return result;
  }
  if (!request.headers.has("Host")) {
    request.headers.set("Host", host + ":" + std::to_string(port));
  }
  request.headers.set("Connection", "close");
  if (!stream->write_all(httpmsg::serialize(request)).ok()) {
    result.connection_failed = true;
    return result;
  }
  (void)stream->set_read_timeout(timeout);

  httpmsg::Parser parser(httpmsg::Parser::Kind::kResponse);
  char buffer[8192];
  while (!parser.complete()) {
    auto n = stream->read(buffer, sizeof(buffer));
    if (!n.ok()) {
      if (n.error().code == Error::Code::kUnavailable) {
        result.timed_out = true;
      } else {
        result.connection_failed = true;
      }
      return result;
    }
    if (n.value() == 0) {
      parser.finish_eof();
      if (!parser.complete()) result.connection_failed = true;
      break;
    }
    auto consumed = parser.feed(std::string_view(buffer, n.value()));
    if (!consumed.ok()) {
      result.connection_failed = true;
      return result;
    }
  }
  if (parser.complete()) result.response = parser.response();
  return result;
}

}  // namespace gremlin::httpserver
