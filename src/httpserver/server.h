// HttpServer: a minimal threaded HTTP/1.1 server.
//
// Used to build origin microservices for proxy integration tests and
// examples, and to host the proxy's REST control API. Thread-per-connection
// with keep-alive support; handlers run on connection threads and must be
// thread-safe. Thread/connection bookkeeping grows with the total number of
// connections accepted — sized for test/demo workloads, not for production
// serving.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "httpmsg/message.h"
#include "net/socket.h"

namespace gremlin::httpserver {

class HttpServer {
 public:
  using Handler = std::function<httpmsg::Response(const httpmsg::Request&)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer() { stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:port (0 = ephemeral) and starts the accept loop.
  Result<uint16_t> start(uint16_t port = 0);

  // Stops accepting and joins all threads.
  void stop();

  uint16_t port() const { return port_; }
  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }

 private:
  void accept_loop();
  void serve_connection(net::TcpStream* stream);

  Handler handler_;
  std::unique_ptr<net::TcpListener> listener_;
  std::thread accept_thread_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  // Live connection streams; shut down on stop() so workers blocked in
  // read() (idle keep-alive peers) exit promptly.
  std::vector<std::shared_ptr<net::TcpStream>> connections_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  uint16_t port_ = 0;
};

}  // namespace gremlin::httpserver
