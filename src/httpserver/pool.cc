#include "httpserver/pool.h"

#include "common/strings.h"
#include "httpmsg/parser.h"

namespace gremlin::httpserver {

std::unique_ptr<PooledClient::Conn> PooledClient::take_idle() {
  std::lock_guard lock(mu_);
  if (idle_.empty()) return nullptr;
  auto conn = std::move(idle_.front());
  idle_.pop_front();
  return conn;
}

void PooledClient::give_back(std::unique_ptr<Conn> conn) {
  std::lock_guard lock(mu_);
  if (idle_.size() < max_idle_) {
    idle_.push_back(std::move(conn));
  }
  // else: dropped, socket closes via RAII
}

size_t PooledClient::idle_connections() const {
  std::lock_guard lock(mu_);
  return idle_.size();
}

FetchResult PooledClient::fetch_on(Conn* conn,
                                   const httpmsg::Request& request,
                                   bool* reusable) {
  *reusable = false;
  FetchResult result;
  httpmsg::Request req = request;
  if (!req.headers.has("Host")) {
    req.headers.set("Host", host_ + ":" + std::to_string(port_));
  }
  req.headers.set("Connection", "keep-alive");
  if (!conn->stream.write_all(httpmsg::serialize(req)).ok()) {
    result.connection_failed = true;
    return result;
  }
  (void)conn->stream.set_read_timeout(timeout_);

  httpmsg::Parser parser(httpmsg::Parser::Kind::kResponse);
  char buffer[8192];
  while (!parser.complete()) {
    auto n = conn->stream.read(buffer, sizeof(buffer));
    if (!n.ok()) {
      if (n.error().code == Error::Code::kUnavailable) {
        result.timed_out = true;
      } else {
        result.connection_failed = true;
      }
      return result;
    }
    if (n.value() == 0) {
      parser.finish_eof();
      if (!parser.complete()) result.connection_failed = true;
      break;
    }
    auto consumed = parser.feed(std::string_view(buffer, n.value()));
    if (!consumed.ok()) {
      result.connection_failed = true;
      return result;
    }
  }
  if (!parser.complete()) return result;
  result.response = parser.response();
  // Reusable only when the message had a definite end and the server did
  // not ask to close.
  const bool delimited =
      result.response.headers.content_length().has_value() ||
      to_lower(result.response.headers.get_or("Transfer-Encoding", ""))
              .find("chunked") != std::string::npos;
  const bool close_requested = iequals(
      result.response.headers.get_or("Connection", "keep-alive"), "close");
  *reusable = delimited && !close_requested;
  return result;
}

FetchResult PooledClient::fetch(httpmsg::Request request) {
  // Try an idle connection first; a stale one (server closed it while
  // pooled) shows up as a connection-level failure and is retried once on
  // a fresh connection.
  if (auto conn = take_idle()) {
    bool reusable = false;
    FetchResult result = fetch_on(conn.get(), request, &reusable);
    if (!result.connection_failed) {
      ++reuses_;
      if (reusable) give_back(std::move(conn));
      return result;
    }
    // fall through: reconnect
  }
  auto stream = net::TcpStream::connect(host_, port_, timeout_);
  if (!stream.ok()) {
    FetchResult failed;
    failed.connection_failed = true;
    return failed;
  }
  ++connections_opened_;
  auto conn = std::make_unique<Conn>();
  conn->stream = std::move(stream.value());
  bool reusable = false;
  FetchResult result = fetch_on(conn.get(), request, &reusable);
  if (!result.connection_failed && !result.timed_out && reusable) {
    give_back(std::move(conn));
  }
  return result;
}

}  // namespace gremlin::httpserver
