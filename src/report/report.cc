#include "report/report.h"

namespace gremlin::report {

Json TestReport::to_json() const {
  Json j = Json::object();
  j["title"] = title;
  j["seed"] = static_cast<int64_t>(seed);
  j["passed"] = passed();
  Json checks_json = Json::array();
  for (const auto& c : checks) {
    Json cj = Json::object();
    cj["name"] = c.name;
    cj["passed"] = c.passed;
    cj["detail"] = c.detail;
    checks_json.push_back(std::move(cj));
  }
  j["checks"] = checks_json;
  j["checks_passed"] = static_cast<int64_t>(checks_passed);
  j["flows_observed"] = static_cast<int64_t>(flows_observed);
  j["flows_failed"] = static_cast<int64_t>(flows_failed);
  Json diag_json = Json::array();
  for (const auto& d : diagnoses) {
    Json dj = Json::object();
    dj["request_id"] = d.request_id;
    dj["origin_edge"] = d.origin_edge;
    dj["origin_fault"] = d.origin_fault;
    dj["trace"] = d.rendered;
    diag_json.push_back(std::move(dj));
  }
  j["diagnoses"] = diag_json;
  return j;
}

std::string TestReport::to_markdown() const {
  std::string out = "# Gremlin test report — " + title + "\n\n";
  out += passed() ? "**Result: PASS**" : "**Result: FAIL**";
  out += " (" + std::to_string(checks_passed) + "/" +
         std::to_string(checks.size()) + " assertions, " +
         std::to_string(flows_failed) + "/" +
         std::to_string(flows_observed) + " flows failed; seed " +
         std::to_string(seed) + ")\n\n";
  out += "## Assertions\n\n";
  for (const auto& c : checks) {
    out += std::string(c.passed ? "- ✅ " : "- ❌ ") + "`" + c.name +
           "` — " + c.detail + "\n";
  }
  if (!diagnoses.empty()) {
    out += "\n## Failed flows\n";
    for (const auto& d : diagnoses) {
      out += "\n**" + d.request_id + "** — failure originated at `" +
             d.origin_edge + "`";
      if (!d.origin_fault.empty()) {
        out += " (" + d.origin_fault + ")";
      }
      out += "\n\n```\n" + d.rendered + "```\n";
    }
  }
  return out;
}

TestReport build_report(control::TestSession* session, std::string title,
                        size_t max_diagnoses) {
  TestReport report;
  report.title = std::move(title);
  report.seed = session->sim().config().seed;
  report.checks = session->results();
  for (const auto& c : report.checks) {
    if (c.passed) ++report.checks_passed;
  }

  const auto traces =
      trace::build_traces(session->sim().log_store().all());
  report.flows_observed = traces.size();
  for (const auto& t : traces) {
    if (t.failed_spans() == 0) continue;
    ++report.flows_failed;
    if (report.diagnoses.size() >= max_diagnoses) continue;
    FailureDiagnosis d;
    d.request_id = t.request_id;
    const auto chain = t.failure_chain();
    if (!chain.empty()) {
      const trace::Span& origin = t.spans[chain.back()];
      d.origin_edge = origin.src + " -> " + origin.dst;
      if (origin.fault != logstore::FaultKind::kNone) {
        d.origin_fault = std::string(logstore::to_string(origin.fault)) +
                         " rule " + origin.rule_id;
      }
    }
    d.rendered = t.format_tree();
    report.diagnoses.push_back(std::move(d));
  }
  return report;
}

}  // namespace gremlin::report
