// SearchReport: the operator-facing output of `gremlin search`.
//
// A campaign report answers "which scenarios break the app"; a search
// report answers the harder question "which *minimal combinations* break
// it, and how much of the space did we really have to run". It renders the
// search funnel (generated → pruned → run → failed), the baseline evidence
// the pruner relied on, and each minimal reproducer with its replay seed.
// Exportable as JSON (schema in docs/SEARCH.md) or Markdown.
#pragma once

#include <string>

#include "common/json.h"
#include "search/search.h"

namespace gremlin::report {

struct SearchReport {
  std::string title;
  search::SearchOutcome outcome;

  // True when the search ran end to end and found no fault combination
  // that violates the checks.
  bool clean() const { return outcome.ok && outcome.findings.empty(); }

  Json to_json() const;
  std::string to_markdown() const;
};

SearchReport build_search_report(search::SearchOutcome outcome,
                                 std::string title);

}  // namespace gremlin::report
