#include "report/search_report.h"

#include <cstdio>

#include "search/combinations.h"

namespace gremlin::report {

namespace {

std::string fmt_ms(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fms", to_millis(d));
  return buf;
}

std::string pct(size_t part, size_t whole) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                       static_cast<double>(whole));
  return buf;
}

}  // namespace

Json SearchReport::to_json() const {
  const search::SearchOutcome& o = outcome;
  Json j = Json::object();
  j["title"] = title;
  j["app"] = o.app;
  j["seed"] = static_cast<int64_t>(o.seed);
  j["ok"] = o.ok;
  if (!o.error.empty()) j["error"] = o.error;
  j["threads"] = static_cast<int64_t>(o.threads);
  j["procs"] = static_cast<int64_t>(o.procs);
  j["wall_clock_us"] = o.wall_clock.count();

  Json baseline = Json::object();
  baseline["passed"] = o.baseline_passed;
  baseline["requests"] = static_cast<int64_t>(o.baseline_requests);
  baseline["observed_edges"] = static_cast<int64_t>(o.observed_edges);
  baseline["distinct_paths"] = static_cast<int64_t>(o.observed_paths);
  j["baseline"] = baseline;

  Json space = Json::object();
  space["fault_points"] = static_cast<int64_t>(o.fault_points);
  space["generated"] = static_cast<int64_t>(o.generated);
  space["truncated"] = static_cast<int64_t>(o.truncated);
  space["pruned"] = static_cast<int64_t>(o.pruned);
  space["pruned_unreachable"] = static_cast<int64_t>(o.pruned_unreachable);
  space["pruned_no_shared_path"] =
      static_cast<int64_t>(o.pruned_no_shared_path);
  space["run"] = static_cast<int64_t>(o.ran);
  space["passed"] = static_cast<int64_t>(o.passed);
  space["failed"] = static_cast<int64_t>(o.failed);
  space["errors"] = static_cast<int64_t>(o.errors);
  space["shrink_runs"] = static_cast<int64_t>(o.shrink_runs);
  j["space"] = space;

  Json findings = Json::array();
  for (const auto& f : o.findings) {
    Json fj = Json::object();
    fj["combination"] = f.combination;
    fj["minimal"] = f.minimal;
    Json faults = Json::array();
    for (const auto& spec : f.faults) faults.push_back(search::describe(spec));
    fj["faults"] = faults;
    fj["seed"] = static_cast<int64_t>(f.seed);
    fj["load_count"] = static_cast<int64_t>(f.load_count);
    fj["signature"] = f.signature;
    fj["flaky"] = f.flaky;
    fj["shrink_runs"] = static_cast<int64_t>(f.shrink_runs);
    fj["faults_before"] = static_cast<int64_t>(f.faults_before);
    fj["occurrences"] = static_cast<int64_t>(f.occurrences);
    findings.push_back(std::move(fj));
  }
  j["findings"] = findings;

  Json combos = Json::array();
  for (const auto& row : o.combos) {
    Json cj = Json::object();
    cj["label"] = row.label;
    cj["k"] = static_cast<int64_t>(row.k);
    cj["verdict"] = row.ran
                        ? (row.error ? "error"
                                     : (row.passed ? "passed" : "failed"))
                        : to_string(row.verdict);
    if (!row.prune_detail.empty()) cj["detail"] = row.prune_detail;
    combos.push_back(std::move(cj));
  }
  j["combinations"] = combos;
  return j;
}

std::string SearchReport::to_markdown() const {
  const search::SearchOutcome& o = outcome;
  std::string out = "# Gremlin fault-space search — " + title + "\n\n";
  if (!o.ok) {
    out += "**Result: ERROR** — " + o.error + "\n";
    return out;
  }
  out += o.findings.empty() ? "**Result: CLEAN**" : "**Result: FAILURES**";
  out += " (" + std::to_string(o.findings.size()) +
         " distinct minimal reproducers; seed " + std::to_string(o.seed) +
         ", " + std::to_string(o.threads) + " threads, " +
         fmt_ms(o.wall_clock) + " wall clock)\n\n";

  out += "## Search funnel\n\n";
  out += "| stage | count |\n|---|---|\n";
  out += "| fault points | " + std::to_string(o.fault_points) + " |\n";
  out += "| combinations generated | " + std::to_string(o.generated) + " |\n";
  if (o.truncated > 0) {
    out += "| dropped by budget cap | " + std::to_string(o.truncated) + " |\n";
  }
  out += "| pruned via observed call graph | " + std::to_string(o.pruned) +
         " (" + pct(o.pruned, o.generated) + "; " +
         std::to_string(o.pruned_unreachable) + " unreachable, " +
         std::to_string(o.pruned_no_shared_path) + " no shared path) |\n";
  out += "| run | " + std::to_string(o.ran) + " |\n";
  out += "| failed | " + std::to_string(o.failed) + " |\n";
  if (o.errors > 0) out += "| errors | " + std::to_string(o.errors) + " |\n";
  out += "\n";

  out += "Baseline: " + std::to_string(o.baseline_requests) +
         " requests observed " + std::to_string(o.observed_edges) +
         " call edges across " + std::to_string(o.observed_paths) +
         " distinct request paths.\n\n";

  if (!o.findings.empty()) {
    out += "## Minimal reproducers\n\n";
    for (const auto& f : o.findings) {
      out += "- **" + f.minimal + "**";
      if (f.flaky) out += " — FLAKY (did not reproduce on re-run)";
      out += "\n";
      out += "  - violates: `" + f.signature + "`\n";
      out += "  - replay: seed " + std::to_string(f.seed) + ", " +
             std::to_string(f.load_count) + " requests\n";
      out += "  - shrunk from " + std::to_string(f.faults_before) +
             " fault(s) (`" + f.combination + "`), " +
             std::to_string(f.occurrences) +
             " failing combination(s) collapse onto this reproducer\n";
    }
    out += "\n";
  }
  return out;
}

SearchReport build_search_report(search::SearchOutcome outcome,
                                 std::string title) {
  SearchReport report;
  report.title = std::move(title);
  report.outcome = std::move(outcome);
  return report;
}

}  // namespace gremlin::report
