#include "report/campaign_report.h"

#include <cstdio>

#include "common/rng.h"

namespace gremlin::report {

namespace {

std::string fmt_ms(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fms", to_millis(d));
  return buf;
}

}  // namespace

Json CampaignReport::to_json() const {
  Json j = Json::object();
  j["title"] = title;
  j["total"] = static_cast<int64_t>(total);
  j["passed"] = static_cast<int64_t>(passed);
  j["failed"] = static_cast<int64_t>(failed);
  j["errors"] = static_cast<int64_t>(errors);
  j["threads"] = static_cast<int64_t>(threads);
  j["procs"] = static_cast<int64_t>(procs);
  j["wall_clock_us"] = wall_clock.count();
  j["early_terminated"] = static_cast<int64_t>(early_terminated);
  j["snapshot_hits"] = static_cast<int64_t>(snapshot_hits);
  j["snapshot_misses"] = static_cast<int64_t>(snapshot_misses);
  j["prefix_events_skipped"] = static_cast<int64_t>(prefix_events_skipped);
  if (latency.count > 0) {
    j["latency_p50_us"] = latency.p50.count();
    j["latency_p90_us"] = latency.p90.count();
    j["latency_p99_us"] = latency.p99.count();
  }
  j["verdict_fingerprint"] = verdict_fingerprint;
  j["result_fingerprint"] = result_fingerprint;
  Json rows_json = Json::array();
  for (const auto& row : rows) {
    Json rj = Json::object();
    rj["id"] = row.id;
    rj["seed"] = static_cast<int64_t>(row.seed);
    rj["ok"] = row.ok;
    rj["passed"] = row.passed;
    if (!row.error.empty()) rj["error"] = row.error;
    rj["checks_passed"] = static_cast<int64_t>(row.checks_passed);
    rj["checks_total"] = static_cast<int64_t>(row.checks_total);
    rj["requests"] = static_cast<int64_t>(row.requests);
    rj["failures"] = static_cast<int64_t>(row.failures);
    if (row.latency.count > 0) {
      rj["latency_p50_us"] = row.latency.p50.count();
      rj["latency_p99_us"] = row.latency.p99.count();
      rj["latency_max_us"] = row.latency.max.count();
    }
    if (!row.failed_checks.empty()) {
      Json checks_json = Json::array();
      for (const auto& c : row.failed_checks) {
        Json cj = Json::object();
        cj["name"] = c.name;
        cj["detail"] = c.detail;
        checks_json.push_back(std::move(cj));
      }
      rj["failed_checks"] = checks_json;
    }
    rows_json.push_back(std::move(rj));
  }
  j["experiments"] = rows_json;
  return j;
}

std::string CampaignReport::to_markdown() const {
  std::string out = "# Gremlin campaign — " + title + "\n\n";
  out += all_passed() ? "**Result: PASS**" : "**Result: FAIL**";
  out += " (" + std::to_string(passed) + "/" + std::to_string(total) +
         " experiments passed";
  if (errors > 0) out += ", " + std::to_string(errors) + " errored";
  out += "; ";
  if (procs > 1) out += std::to_string(procs) + " procs × ";
  out += std::to_string(threads) + " threads, " + fmt_ms(wall_clock) +
         " wall clock)\n\n";
  if (snapshot_hits + snapshot_misses > 0) {
    out += "snapshots: " + std::to_string(snapshot_hits) + " hits / " +
           std::to_string(snapshot_misses) + " misses, " +
           std::to_string(prefix_events_skipped) +
           " prefix events skipped\n\n";
  }

  // Failures first — the reason the campaign ran.
  if (failed > 0 || errors > 0) {
    out += "## Failing experiments\n\n";
    for (const auto& row : rows) {
      if (row.passed) continue;
      out += "- ❌ `" + row.id + "` (seed " + std::to_string(row.seed) + ")";
      if (!row.ok) {
        out += " — error: " + row.error + "\n";
        continue;
      }
      out += " — " + std::to_string(row.failures) + "/" +
             std::to_string(row.requests) + " user-visible failures\n";
      for (const auto& c : row.failed_checks) {
        out += "  - `" + c.name + "` — " + c.detail + "\n";
      }
    }
    out += "\n";
  }

  out += "## All experiments\n\n";
  out += "| experiment | seed | verdict | checks | failures | p50 | p99 |\n";
  out += "|---|---|---|---|---|---|---|\n";
  for (const auto& row : rows) {
    out += "| `" + row.id + "` | " + std::to_string(row.seed) + " | " +
           (row.passed ? "PASS" : (row.ok ? "FAIL" : "ERROR")) + " | " +
           std::to_string(row.checks_passed) + "/" +
           std::to_string(row.checks_total) + " | " +
           std::to_string(row.failures) + "/" + std::to_string(row.requests);
    if (row.latency.count > 0) {
      out += " | " + fmt_ms(row.latency.p50) + " | " + fmt_ms(row.latency.p99);
    } else {
      out += " | — | —";
    }
    out += " |\n";
  }
  return out;
}

CampaignReport build_campaign_report(const campaign::CampaignResult& result,
                                     std::string title) {
  CampaignReport report;
  report.title = std::move(title);
  report.total = result.experiments.size();
  report.passed = result.passed();
  report.failed = result.failed();
  report.errors = result.errors();
  report.threads = result.threads;
  report.procs = result.procs;
  report.wall_clock = result.wall_clock;
  report.verdict_fingerprint = result.verdict_fingerprint();
  {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      hash64(result.fingerprint())));
    report.result_fingerprint = buf;
  }
  report.rows.reserve(report.total);
  workload::StreamingSummary campaign_latency;
  for (const auto& e : result.experiments) {
    if (e.early_terminated) ++report.early_terminated;
    if (e.snapshot_path == 1) ++report.snapshot_misses;
    if (e.snapshot_path == 2) ++report.snapshot_hits;
    report.prefix_events_skipped += e.prefix_events_skipped;
    for (const Duration d : e.latencies) campaign_latency.add(d);
    ExperimentRow row;
    row.id = e.id;
    row.seed = e.seed;
    row.ok = e.ok;
    row.passed = e.passed();
    row.error = e.error;
    row.checks_passed = e.checks_passed;
    row.checks_total = e.checks.size();
    row.requests = e.requests;
    row.failures = e.failures;
    if (!e.latencies.empty()) row.latency = workload::summarize(e.latencies);
    for (const auto& c : e.checks) {
      if (!c.passed) row.failed_checks.push_back(c);
    }
    report.rows.push_back(std::move(row));
  }
  report.latency = campaign_latency.summary();
  return report;
}

}  // namespace gremlin::report
