// Test reports: the operator-facing artifact of a resiliency-test run.
//
// Section 1 argues systematic testing wins because of the feedback loop —
// "obtain quick feedback about how and why the application failed to
// recover as expected". A TestReport bundles that feedback: assertion
// verdicts with details, workload health, and the flow traces + failure
// origins of requests that failed, exportable as JSON (for dashboards/CI)
// or Markdown (for humans and postmortems).
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "control/recipe.h"
#include "trace/trace.h"

namespace gremlin::report {

struct FailureDiagnosis {
  std::string request_id;
  std::string origin_edge;   // "frontend -> backend"
  std::string origin_fault;  // "abort rule crash-..." or "" when organic
  std::string rendered;      // ASCII trace tree
};

struct TestReport {
  std::string title;
  uint64_t seed = 0;

  std::vector<control::CheckResult> checks;
  size_t checks_passed = 0;

  size_t flows_observed = 0;
  size_t flows_failed = 0;

  std::vector<FailureDiagnosis> diagnoses;  // capped (see max_diagnoses)

  bool passed() const { return checks_passed == checks.size(); }

  Json to_json() const;
  std::string to_markdown() const;
};

// Builds a report from a finished session: its recorded assertion outcomes
// plus flow traces reconstructed from the central log store. At most
// `max_diagnoses` failed flows are rendered in full.
TestReport build_report(control::TestSession* session, std::string title,
                        size_t max_diagnoses = 5);

}  // namespace gremlin::report
