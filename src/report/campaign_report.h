// CampaignReport: the operator-facing aggregate of a campaign run.
//
// Where a TestReport explains one test, a CampaignReport summarizes
// hundreds: per-experiment verdicts with latency statistics, the failing
// subset up front (the "which scenarios break the app" answer a sweep
// exists to produce), and campaign-level throughput numbers. Exportable as
// JSON (dashboards/CI) or Markdown (humans).
#pragma once

#include <string>
#include <vector>

#include "campaign/runner.h"
#include "common/json.h"
#include "workload/stats.h"

namespace gremlin::report {

struct ExperimentRow {
  std::string id;
  uint64_t seed = 0;
  bool ok = false;
  bool passed = false;
  std::string error;
  size_t checks_passed = 0;
  size_t checks_total = 0;
  size_t requests = 0;
  size_t failures = 0;
  workload::Summary latency;  // empty when latencies were dropped
  std::vector<control::CheckResult> failed_checks;
};

struct CampaignReport {
  std::string title;
  size_t total = 0;
  size_t passed = 0;
  size_t failed = 0;  // ran, but at least one check failed
  size_t errors = 0;  // infrastructure error (translate/install/collect)
  size_t early_terminated = 0;  // stopped early by online checking

  // Prefix-snapshot cache effectiveness (campaign/snapshot_exec.h):
  // experiments that restored a shared fault-free prefix (hits), built one
  // (misses), and the total prefix events hits did not re-simulate.
  size_t snapshot_hits = 0;
  size_t snapshot_misses = 0;
  uint64_t prefix_events_skipped = 0;

  // Campaign-level per-request latency quantiles, streamed (P² estimators)
  // over every request of every experiment that kept latencies; count == 0
  // when latencies were dropped.
  workload::Summary latency;

  int threads = 1;
  int procs = 1;  // worker processes (multi-process sharding)
  Duration wall_clock{};

  // Verdict-only digest of the whole campaign (see
  // campaign::ExperimentResult::verdict_fingerprint): identical between
  // early-exit and full runs, so CI can diff the two modes.
  std::string verdict_fingerprint;

  // FNV-1a hex digest of CampaignResult::fingerprint() — the byte-exact
  // everything-digest (counters, latencies, statuses included). Stable
  // across threads × procs combinations; the CI multiproc-differential job
  // diffs it between --procs 1 and --procs 2.
  std::string result_fingerprint;

  std::vector<ExperimentRow> rows;  // campaign order

  bool all_passed() const { return passed == total; }

  Json to_json() const;
  std::string to_markdown() const;
};

CampaignReport build_campaign_report(const campaign::CampaignResult& result,
                                     std::string title);

}  // namespace gremlin::report
