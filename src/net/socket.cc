#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gremlin::net {
namespace {

Error errno_error(const std::string& what) {
  return Error::io(what + ": " + std::strerror(errno));
}

VoidResult set_timeout_option(int fd, int option, Duration timeout) {
  timeval tv{};
  tv.tv_sec = timeout.count() / 1000000;
  tv.tv_usec = timeout.count() % 1000000;
  if (setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return errno_error("setsockopt(timeout)");
  }
  return VoidResult::success();
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
              std::memory_order_release);
  }
  return *this;
}

void Socket::close() {
  // exchange() makes concurrent close() calls race-free: exactly one
  // caller observes the live fd and releases it.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Result<TcpStream> TcpStream::connect(const std::string& host, uint16_t port,
                                     Duration timeout) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_error("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Error::invalid_argument("bad IPv4 address '" + host + "'");
  }
  // Bound the connect itself via SO_SNDTIMEO (Linux honors it for connect).
  auto timed = set_timeout_option(sock.fd(), SO_SNDTIMEO, timeout);
  if (!timed.ok()) return timed.error();
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return errno_error("connect to " + host + ":" + std::to_string(port));
  }
  int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(std::move(sock));
}

Result<size_t> TcpStream::read(char* buffer, size_t size) {
  for (;;) {
    const ssize_t n = ::recv(socket_.fd(), buffer, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Error::unavailable("read timed out");
    }
    return errno_error("recv");
  }
}

VoidResult TcpStream::write_all(std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket_.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    sent += static_cast<size_t>(n);
  }
  return VoidResult::success();
}

VoidResult TcpStream::set_read_timeout(Duration timeout) {
  return set_timeout_option(socket_.fd(), SO_RCVTIMEO, timeout);
}

void TcpStream::shutdown_both() {
  if (socket_.valid()) {
    ::shutdown(socket_.fd(), SHUT_RDWR);
  }
}

void TcpStream::reset_connection() {
  if (!socket_.valid()) return;
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;  // RST on close
  setsockopt(socket_.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  socket_.close();
}

Result<TcpListener> TcpListener::bind(uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_error("socket");
  int one = 1;
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return errno_error("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(sock.fd(), 64) != 0) return errno_error("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return errno_error("getsockname");
  }
  return TcpListener(std::move(sock), ntohs(bound.sin_port));
}

void TcpListener::close() {
  if (socket_.valid()) {
    ::shutdown(socket_.fd(), SHUT_RDWR);
  }
  socket_.close();
}

Result<TcpStream> TcpListener::accept() {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return errno_error("accept");
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(Socket(fd));
}

}  // namespace gremlin::net
