// Thin RAII wrappers over POSIX TCP sockets (loopback-oriented).
//
// Blocking I/O with optional receive timeouts; the HTTP server and the
// Gremlin proxy use thread-per-connection, which is plenty for the
// loopback-scale integration tests and examples this library ships.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/duration.h"
#include "common/result.h"

namespace gremlin::net {

// Owns a socket file descriptor.
//
// The fd is atomic because close() may legitimately race with another
// thread blocked in read()/accept() on the same socket — that cross-thread
// close is how listeners and pooled connections are shut down.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }
  int fd() const { return fd_.load(std::memory_order_acquire); }
  void close();

 private:
  std::atomic<int> fd_{-1};
};

// A connected TCP stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Socket socket) : socket_(std::move(socket)) {}

  static Result<TcpStream> connect(const std::string& host, uint16_t port,
                                   Duration timeout = sec(5));

  bool valid() const { return socket_.valid(); }

  // Reads up to buffer size; returns bytes read (0 = orderly close).
  Result<size_t> read(char* buffer, size_t size);

  // Writes the whole buffer or fails.
  VoidResult write_all(std::string_view data);

  // Receive timeout for subsequent reads (zero disables).
  VoidResult set_read_timeout(Duration timeout);

  // Abortive close: send RST instead of FIN (SO_LINGER 0). This is how the
  // real proxy emulates Abort Error=-1 — the peer observes a connection
  // reset, not a clean close.
  void reset_connection();

  // Half-close both directions without releasing the fd: wakes a thread
  // blocked in read() on this stream (read returns 0).
  void shutdown_both();

  void close() { socket_.close(); }

 private:
  Socket socket_;
};

// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  // port 0 picks an ephemeral port; bound_port() reports it.
  static Result<TcpListener> bind(uint16_t port);

  Result<TcpStream> accept();
  uint16_t bound_port() const { return port_; }
  bool valid() const { return socket_.valid(); }

  // Unblocks a pending accept() and closes the socket. (A bare ::close()
  // does NOT reliably wake a thread blocked in accept(); the socket must be
  // shut down first.)
  void close();

 private:
  TcpListener(Socket socket, uint16_t port)
      : socket_(std::move(socket)), port_(port) {}

  Socket socket_;
  uint16_t port_ = 0;
};

}  // namespace gremlin::net
