// Simulation: the deterministic discrete-event "deployment" that stands in
// for the paper's containerized testbed.
//
// Owns the virtual clock, the event queue, the latency model, every service
// (with its instances and sidecar agents), the physical Deployment view the
// control plane programs, and the central LogStore assertions query.
// A given (topology, workload, recipe, seed) tuple always produces the same
// logs and latencies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/intern.h"
#include "common/rng.h"
#include "logstore/store.h"
#include "sim/event_queue.h"
#include "sim/instance_table.h"
#include "sim/network.h"
#include "sim/service.h"
#include "topology/deployment.h"
#include "topology/graph.h"

namespace gremlin::sim {

struct SimulationConfig {
  uint64_t seed = 42;
  Duration default_network_latency = usec(500);

  // Routes one-shot events through the queue's hierarchical timer wheel.
  // Pop order (and therefore every fingerprint) is byte-identical either
  // way; disabling exists for heap-only baseline benchmarks and the
  // wheel/heap differential tests.
  bool use_timer_wheel = true;

  // Worker-context resources (campaign::ExecutionContext): when non-null
  // they must outlive the Simulation and may only be shared among
  // simulations driven by the same thread (a worker's warm worlds run one
  // at a time). Null means the simulation owns private ones.
  EventPool* event_pool = nullptr;
  MemoryPool* memory = nullptr;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config = {});

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // --- clock & scheduling ---
  TimePoint now() const { return now_; }
  void schedule(Duration delay, EventQueue::Action action);
  void schedule_at(TimePoint at, EventQueue::Action action);
  // Like schedule(), but marks the event as a fixed-delay timer so the
  // queue can keep it on an O(1) FIFO lane (see EventQueue). Identical
  // firing order, cheaper for long-lived timers like call timeouts.
  void schedule_timer(Duration delay, EventQueue::Action action);

  // Runs events until the queue drains; returns the number processed.
  size_t run();
  // Runs events with timestamps <= `deadline`; the clock advances to
  // `deadline` even if the queue drains earlier.
  size_t run_until(TimePoint deadline);

  // --- early termination (online assertion checking) ---
  // Asks the run loop to stop before the next event. Callable from inside
  // an event action (the online checker requests a stop the moment every
  // attached check holds a final verdict). Sticky until clear_stop() or
  // cancel_pending().
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }
  void clear_stop() { stop_requested_ = false; }

  // Drops every pending event and clears the stop flag, returning the
  // number cancelled. Restores the sim to a quiescent, reusable state after
  // an early-terminated run; the event pool's free list reabsorbs every
  // cancelled slot (tests/event_pool_test.cc).
  size_t cancel_pending();

  bool has_pending_events() const { return !queue_.empty(); }
  // Timestamp of the earliest pending event; undefined when none pending.
  TimePoint next_event_time() const { return queue_.next_time(); }
  // Pool introspection for tests (leak checks after early termination).
  const EventQueue& event_queue() const { return queue_; }

  Rng& rng() { return rng_; }
  // The pool backing the data plane's transient objects (outbound calls,
  // request contexts, queue buffers). Worker-shared when the config
  // supplied one, private otherwise; only touched from the driving thread.
  MemoryPool& memory() { return *memory_; }
  SimNetwork& network() { return network_; }
  logstore::LogStore& log_store() { return log_store_; }
  topology::Deployment& deployment() { return deployment_; }
  const SimulationConfig& config() const { return config_; }

  // Deep reset to the state of a freshly constructed Simulation with
  // `seed`, without destroying the deployment: virtual clock to zero, event
  // queue cleared (pool retained), RNG reseeded, LogStore cleared (interned
  // symbols and index capacity retained), every service's mutable state
  // reset (round-robin cursors, breaker/bulkhead/queue state, agent rule
  // engines + RNG streams). Services inject() created lazily (edge clients)
  // are reset in place and reused by the next experiment. The warm-world
  // contract: a run after reset(seed) is byte-identical to the same run on
  // a cold Simulation built with `seed`.
  void reset(uint64_t seed);

  // Flips observation capture on every sidecar agent (current and lazily
  // added later). Off means the data plane never builds or buffers
  // LogRecords; fault injection is untouched. The runner uses this when no
  // assertion of the run reads records. reset() restores capture to on.
  void set_recording(bool on);

  // --- topology ---
  // Creates a service (and its instances + sidecar agents); the service is
  // registered in the Deployment so the orchestrator can program it.
  SimService* add_service(ServiceConfig config);
  SimService* find_service(const std::string& name);
  // Symbol-keyed lookup: a flat-table index, no string hashing. The string
  // overloads resolve through the symbol table without interning unknown
  // names; the const char* form disambiguates string literals (which
  // convert equally well to std::string and Symbol).
  SimService* find_service(Symbol name);
  SimService* find_service(const char* name) {
    return find_service(std::string_view(name));
  }

  // Index-addressed service resolution for the per-hop path: dep caches
  // store the dense service index (resolved once via service_index) and
  // every later hop costs two array loads, no map or symbol-table traffic.
  // Indices are stable — services are never removed from a Simulation.
  int32_t service_index(Symbol name) const {
    const uint32_t id = name.id();
    return id < by_symbol_.size() ? by_symbol_[id] : -1;
  }
  SimService* service_by_index(int32_t index) {
    return services_[static_cast<size_t>(index)].get();
  }
  size_t service_count() const { return services_.size(); }

  // SoA hot scalars for every deployed instance (see sim/instance_table.h);
  // instances address their row by the dense slot assigned at deployment.
  InstanceTable& instances() { return instance_table_; }

  // Instantiates one single-instance service per graph node. `make` may
  // customize the config; its `name` field is overwritten with the node
  // name and `dependencies` with the node's callees.
  void add_services_from_graph(
      const topology::AppGraph& graph,
      const std::function<ServiceConfig(const std::string&)>& make);

  // Round-robin instance selection for calls targeting `service`;
  // nullptr when the service does not exist (caller observes a reset).
  ServiceInstance* pick_instance(const std::string& service);
  ServiceInstance* pick_instance(Symbol service);
  ServiceInstance* pick_instance(const char* service) {
    return pick_instance_view(std::string_view(service));
  }

  // --- workload entry ---
  // Sends a request from edge client `client` (a registered service; created
  // on first use with a naive policy if missing) to `target`. The call flows
  // through the client's sidecar, so edge behaviour is logged and fault
  // rules apply to it (Section 6, test input generation).
  void inject(const std::string& client, const std::string& target,
              SimRequest request, ResponseCallback cb);
  // Pre-interned form for load generators that inject many requests along
  // the same edge (skips the per-request symbol-table lookup).
  void inject(Symbol client, Symbol target, SimRequest request,
              ResponseCallback cb);
  void inject(const char* client, const char* target, SimRequest request,
              ResponseCallback cb) {
    inject(Symbol(client), Symbol(target), std::move(request),
           std::move(cb));
  }

  // --- infra faults ---
  // Schedules an instance outage: every instance of `service` goes down
  // (refusing new work with connection resets) at virtual time `after` and
  // comes back up at `after + downtime`. Zero downtime means the service
  // stays down for the rest of the run. The outage is ordinary scheduled
  // events, so it participates in determinism, early termination, and
  // warm-world reset like any other simulated behaviour.
  VoidResult schedule_service_outage(const std::string& service,
                                     Duration after, Duration downtime);

  // Number of simulation events processed so far.
  uint64_t events_processed() const { return events_processed_; }

  // --- snapshot / restore (sim/snapshot.h) ---
  // Captures the complete mutable world state; restore(snap) rebuilds it so
  // a restored run is byte-identical to a cold run reaching the same
  // instant. Transient request-path objects (outbound calls, request
  // contexts) constructed while snapshot_capture() is on register
  // themselves as participants; begin_snapshot_capture() detaches leftovers
  // from any earlier capture first.
  void begin_snapshot_capture();
  void end_snapshot_capture();
  bool snapshot_capture() const { return snapshot_capture_; }
  void attach_participant(SnapshotParticipant* p);
  SimSnapshot snapshot();
  void restore(const SimSnapshot& snap);

  ~Simulation();

 private:
  SimService* find_service(std::string_view name);
  ServiceInstance* pick_instance_view(std::string_view service);

  SimulationConfig config_;
  TimePoint now_{};
  std::unique_ptr<MemoryPool> own_memory_;  // when no context pool supplied
  MemoryPool* memory_;
  EventQueue queue_;
  Rng rng_;
  SimNetwork network_;
  logstore::LogStore log_store_;
  topology::Deployment deployment_;
  // Services in insertion order (owning), plus a Symbol-id-indexed flat
  // table resolving to the dense service index for the per-message routing
  // path. The table is sized to the largest service-name symbol id this
  // simulation hosts; symbol ids are process-global but the vocabulary is
  // bounded (service names), so the table stays small.
  std::vector<std::unique_ptr<SimService>> services_;
  std::vector<int32_t> by_symbol_;  // symbol id → services_ index, -1 absent
  InstanceTable instance_table_;
  bool recording_ = true;
  uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  // Intrusive list of live SnapshotParticipants (see sim/snapshot.h);
  // populated only while snapshot_capture_ is on.
  SnapshotParticipant* participants_ = nullptr;
  bool snapshot_capture_ = false;
};

}  // namespace gremlin::sim
