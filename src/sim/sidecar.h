// SimAgent: the simulator's sidecar Gremlin agent.
//
// One agent is attached to every service *instance* (the sidecar model of
// Section 6: a service proxy handling the instance's outbound calls). It
// embeds the same faults::RuleEngine the real TCP proxy uses, buffers its
// observations locally, and exposes the topology::AgentHandle control
// interface so the Failure Orchestrator can program it exactly like a
// remote agent.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "faults/rule_engine.h"
#include "logstore/record.h"
#include "logstore/store.h"
#include "topology/deployment.h"

namespace gremlin::sim {

class SimAgent : public topology::AgentHandle {
 public:
  SimAgent(std::string service, std::string instance_id, uint64_t seed);

  // --- AgentHandle (control plane interface) ---
  std::string instance_id() const override { return instance_id_; }
  VoidResult install_rules(
      const std::vector<faults::FaultRule>& rules) override;
  VoidResult clear_rules() override;
  VoidResult remove_rules(const std::vector<std::string>& ids) override;
  Result<logstore::RecordList> fetch_records() override;
  VoidResult clear_records() override;
  // Moves the buffer out instead of copying (collector hot path).
  Result<logstore::RecordList> drain_records() override;

  // --- data plane (used by the request path) ---
  faults::RuleEngine& engine() { return engine_; }
  void log(logstore::LogRecord record);
  const std::string& service() const { return service_; }
  // Interned names, resolved once at construction for the logging hot path.
  Symbol service_symbol() const { return service_sym_; }
  Symbol instance_symbol() const { return instance_sym_; }
  size_t buffered_records() const;

 private:
  const std::string service_;
  const std::string instance_id_;
  const Symbol service_sym_;
  const Symbol instance_sym_;
  faults::RuleEngine engine_;
  mutable std::mutex mu_;
  logstore::RecordList records_;
};

}  // namespace gremlin::sim
