// SimAgent: the simulator's sidecar Gremlin agent.
//
// One agent is attached to every service *instance* (the sidecar model of
// Section 6: a service proxy handling the instance's outbound calls). It
// embeds the same faults::RuleEngine the real TCP proxy uses, buffers its
// observations locally, and exposes the topology::AgentHandle control
// interface so the Failure Orchestrator can program it exactly like a
// remote agent.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "faults/rule_engine.h"
#include "logstore/record.h"
#include "logstore/store.h"
#include "topology/deployment.h"

namespace gremlin::sim {

class SimAgent : public topology::AgentHandle {
 public:
  SimAgent(std::string service, std::string instance_id, uint64_t seed);

  // --- AgentHandle (control plane interface) ---
  std::string instance_id() const override { return instance_id_; }
  VoidResult install_rules(
      const std::vector<faults::FaultRule>& rules) override;
  VoidResult install_rule(const faults::FaultRule& rule) override;
  VoidResult clear_rules() override;
  VoidResult remove_rules(const std::vector<std::string>& ids) override;
  Result<logstore::RecordList> fetch_records() override;
  VoidResult clear_records() override;
  // Moves the buffer out instead of copying (collector hot path).
  Result<logstore::RecordList> drain_records() override;

  // --- data plane (used by the request path) ---
  faults::RuleEngine& engine() { return engine_; }
  void log(logstore::LogRecord record);
  const std::string& service() const { return service_; }
  // Interned names, resolved once at construction for the logging hot path.
  Symbol service_symbol() const { return service_sym_; }
  Symbol instance_symbol() const { return instance_sym_; }
  size_t buffered_records() const;

  // Observation capture switch. When no consumer will ever read the records
  // of a run (load-only assertions with the log store bypassed), the runner
  // turns capture off so the data plane skips building and buffering
  // LogRecords entirely. Fault injection is unaffected — rules still
  // evaluate; only the observation side is suppressed. Restored to on by
  // reset() so a warm world always starts a run in the cold-start state.
  void set_recording(bool on) { recording_ = on; }
  bool recording() const { return recording_; }

  // Restores the pristine post-construction state for `seed`: rules gone,
  // observation buffer empty, rule-engine RNG reseeded exactly as a fresh
  // agent's would be (warm-world reuse).
  void reset(uint64_t seed);

  // Snapshot support (sim/snapshot.h). A prefix run installs no rules, so
  // reset(seed) + restore_records() reproduces the agent exactly: the rule
  // engine is pristine both cold and restored, and only the observation
  // buffer and capture switch carry state.
  logstore::RecordList snapshot_records() const {
    std::lock_guard lock(mu_);
    return records_;
  }
  void restore_records(logstore::RecordList records, bool recording) {
    recording_ = recording;
    std::lock_guard lock(mu_);
    records_ = std::move(records);
  }

 private:
  const std::string service_;
  const std::string instance_id_;
  const Symbol service_sym_;
  const Symbol instance_sym_;
  faults::RuleEngine engine_;
  bool recording_ = true;
  mutable std::mutex mu_;
  logstore::RecordList records_;
};

}  // namespace gremlin::sim
