// EventQueue: the discrete-event scheduler at the heart of the simulator.
//
// Events execute in (time, insertion-sequence) order, so two events scheduled
// for the same virtual instant run in the order they were scheduled — this
// tie-break keeps whole-application runs deterministic.
//
// Storage is a slab-allocated event pool plus a 4-ary min-heap. Heap entries
// carry their (time, seq) sort key inline, so sift operations walk one
// contiguous array instead of chasing a slab pointer per comparison; the pool
// index only resolves to a node when an event is actually popped. Popped
// events return to a free list, so steady-state scheduling performs zero heap
// allocations: the pool grows to the peak number of in-flight events and is
// recycled from then on. Actions are stored in an InlineFunction with a
// simulator-sized inline buffer, so typical closures never touch the heap
// either (std::function would allocate for any capture larger than two
// pointers).
//
// The pool (EventPool) is a standalone object so a campaign worker's
// ExecutionContext can own one and lend it to every warm world it drives:
// the worlds run strictly one at a time on that worker, so they can share
// slabs and the free list — one pool sized to the worker's peak instead of
// one per world. A queue constructed without a pool owns a private one.
// Node indices never influence event order (order is (time, seq) alone), so
// sharing is invisible to the schedule.
//
// Timer events (fixed relative delay from a monotone "now", e.g. the
// per-attempt call timeouts) bypass the heap: for a given delay they are
// scheduled in fire-time order, so each distinct delay gets an O(1) FIFO
// lane. This matters beyond the O(log n) saved on the timers themselves:
// call timeouts outlive their (fast) calls by design, so in the heap they
// accumulate for the whole run and deepen every sift for the transient
// events doing the real work. pop order stays the exact global (time, seq)
// order — the pop compares the heap top against each lane front — so runs
// are byte-identical to an all-heap schedule. Lane FIFOs are ring buffers
// (not deques) and clear() retains both their capacity and the lane table
// storage, re-assigning lanes in first-use order, so warm-world resets take
// byte-identical scheduling paths with zero allocation.
//
// Near-future one-shot events (the dense mass an open-loop arrival process
// plus its per-hop network/processing events produce at mega-topology
// scale) take a hierarchical timer wheel instead of the heap. Level 0 is a
// ring of 4096 one-tick slots covering the current 4096-tick window; since
// a slot spans exactly one tick, every entry in it shares a timestamp and
// FIFO order within the slot IS (time, seq) order. Level 1 is a ring of 64
// slots, each covering one future 4096-tick window (~260ms of horizon at
// the microsecond tick); when the wheel advances into a window, that
// window's level-1 slot cascades down into level-0 slots. Cascade happens
// strictly before any event of the window can pop and before any new event
// can be scheduled into the window (scheduling into a window requires it to
// be current), so within every level-0 slot cascaded entries (older seqs)
// precede direct ones (newer seqs) and FIFO order is exact. Everything
// beyond the wheel horizon — or behind the cursor — overflows into the
// heap, which pop compares against the wheel and the lanes, so the global
// pop order is byte-identical to an all-heap schedule (the differential
// fuzz in tests/event_wheel_test.cc pins this over mixed wheel/overflow
// deadlines). Slot vectors and occupancy bitmaps are retained by clear(),
// so warm-world resets schedule through the wheel with zero allocations
// once rings reach the run's peak. set_wheel_enabled(false) routes every
// one-shot to the heap — the baseline the mega-topology bench compares
// against.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/duration.h"
#include "common/inline_function.h"

namespace gremlin::sim {

// Slab-allocated storage for scheduled actions, recycled through a LIFO
// free list. Shareable between queues that run on one thread (see file
// comment); not thread-safe.
class EventPool {
 public:
  // Sized for the request-path closures in sim/service.cc (self handle +
  // generation + timestamps + a response); see tests/event_pool_test.cc.
  using Action = InlineFunction<void(), 128>;

  static constexpr uint32_t kNil = 0xffffffffu;

  uint32_t acquire() {
    if (free_head_ != kNil) {
      const uint32_t idx = free_head_;
      free_head_ = node(idx).next_free;
      return idx;
    }
    return grow();
  }

  void release(uint32_t idx) {
    Node& n = node(idx);
    n.action = nullptr;  // drop captures eagerly (they may pin resources)
    n.next_free = free_head_;
    free_head_ = idx;
  }

  Action& action(uint32_t idx) { return node(idx).action; }
  const Action& action(uint32_t idx) const { return node(idx).action; }

  size_t capacity() const { return slabs_.size() * kSlabSize; }

  // Actual free-list walk (O(free nodes)); see EventQueue::free_list_length.
  size_t free_list_length() const {
    size_t n = 0;
    for (uint32_t idx = free_head_; idx != kNil; idx = node(idx).next_free) {
      ++n;
    }
    return n;
  }

 private:
  static constexpr size_t kSlabBits = 8;
  static constexpr size_t kSlabSize = size_t{1} << kSlabBits;  // nodes/slab

  struct Node {
    Action action;
    uint32_t next_free = kNil;
  };

  Node& node(uint32_t idx) {
    return slabs_[idx >> kSlabBits][idx & (kSlabSize - 1)];
  }
  const Node& node(uint32_t idx) const {
    return slabs_[idx >> kSlabBits][idx & (kSlabSize - 1)];
  }

  uint32_t grow();

  std::vector<std::unique_ptr<Node[]>> slabs_;  // stable slab-allocated pool
  uint32_t free_head_ = kNil;                   // LIFO free list
};

class EventQueue {
 public:
  using Action = EventPool::Action;

  // A null pool means the queue owns a private one; a non-null pool must
  // outlive the queue and only be shared with queues on the same thread.
  explicit EventQueue(EventPool* pool = nullptr)
      : pool_(pool != nullptr ? pool : &own_pool_) {}

  // pool_ may alias own_pool_, so the queue is pinned in place.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  void schedule_at(TimePoint at, Action action);

  // Schedules a timer event: `at` must be `delay` after the caller's
  // monotone clock, so same-delay timers are born in fire-time order and
  // append to an O(1) FIFO lane instead of the heap. A non-monotone insert
  // or an exotic delay (lane table full) falls back to schedule_at — the
  // lane is an optimization, never a semantic.
  void schedule_timer(TimePoint at, Duration delay, Action action);

  bool empty() const {
    return heap_.empty() && lanes_pending_ == 0 && wheel_pending_ == 0;
  }
  size_t size() const { return heap_.size() + lanes_pending_ + wheel_pending_; }

  // Time of the earliest pending event; undefined when empty.
  TimePoint next_time() const { return best_entry()->at; }

  // Removes and runs the earliest event; returns its timestamp. The event's
  // pool slot is recycled before the action runs, so actions that schedule
  // follow-up events reuse it immediately. When `clock` is non-null it
  // receives the event's timestamp *before* the action runs — the
  // simulator's clock update — so the run loop pays one best-entry scan per
  // event instead of a separate next_time() peek plus the pop's own scan.
  TimePoint pop_and_run(TimePoint* clock = nullptr);

  // Drops all pending events and resets the insertion sequence, so
  // back-to-back runs on a reused queue produce identical event orderings.
  // The pool, the lane table, every lane's ring capacity, and the wheel's
  // node arena / slot rings are retained.
  void clear();

  // Routes one-shot events through the hierarchical timer wheel (default)
  // or forces them all onto the heap. Pop order is byte-identical either
  // way; the heap-only mode exists as the baseline for benchmarks and the
  // differential fuzz test. Takes effect for subsequent scheduling; events
  // already in the wheel still drain through it.
  void set_wheel_enabled(bool on) { wheel_enabled_ = on; }
  bool wheel_enabled() const { return wheel_enabled_; }

  // Events currently resident in the wheel (tests / benchmarks).
  size_t wheel_size() const { return wheel_pending_; }

  // --- snapshot support (sim/snapshot.h) ---
  // One pending event, flattened out of whichever structure held it. The
  // action is a value copy: EventPool::Action is copyable, and the copy
  // shares the shared_ptr-held request objects the original captured.
  struct SavedEvent {
    TimePoint at{};
    uint64_t seq = 0;
    Action action;
  };

  // Copies every pending event (heap + lanes + wheel) into `out`, leaving
  // the queue untouched. Order within `out` is unspecified; the (at, seq)
  // keys carry the schedule.
  void save_events(std::vector<SavedEvent>* out) const;

  // Replaces the queue's contents with `events` (all into the heap — the
  // wheel cursor and lane table restart cold, and placement never affects
  // the (at, seq) pop order) and sets the insertion sequence, so events
  // scheduled after the restore get the same seqs a cold run would assign.
  void restore_events(const std::vector<SavedEvent>& events,
                      uint64_t next_seq);

  uint64_t next_seq() const { return next_seq_; }

  // --- pool introspection (tests / benchmarks) ---
  size_t pool_capacity() const { return pool_->capacity(); }
  size_t free_count() const { return pool_capacity() - size(); }

  // Actual free-list walk (O(free nodes)), as opposed to the arithmetic
  // free_count(). After clear() — including an early-terminated run's
  // cancel_pending() — every pool node must be on the free list; a shorter
  // walk means leaked slab nodes (tests/event_pool_test.cc).
  size_t free_list_length() const { return pool_->free_list_length(); }

 private:
  static constexpr uint32_t kNil = EventPool::kNil;

  // One heap slot: sort key plus the pool index of the action.
  struct Entry {
    TimePoint at{};
    uint64_t seq = 0;
    uint32_t idx = 0;

    bool before(const Entry& other) const {
      if (at != other.at) return at < other.at;
      return seq < other.seq;
    }
  };

  // Fixed-purpose FIFO ring: push_back/pop_front with retained power-of-two
  // capacity, so a warm world's timer traffic stops allocating once the
  // ring reaches the run's peak (a deque would churn block allocations).
  struct Ring {
    std::vector<Entry> buf;  // power-of-two size; empty until first push
    size_t head = 0;
    size_t count = 0;

    bool empty() const { return count == 0; }
    size_t size() const { return count; }
    const Entry& front() const { return buf[head]; }
    const Entry& back() const { return buf[(head + count - 1) & (buf.size() - 1)]; }
    const Entry& at(size_t i) const {
      return buf[(head + i) & (buf.size() - 1)];
    }
    void push_back(const Entry& e) {
      if (count == buf.size()) grow();
      buf[(head + count) & (buf.size() - 1)] = e;
      ++count;
    }
    void pop_front() {
      head = (head + 1) & (buf.size() - 1);
      --count;
    }
    void clear() {
      head = 0;
      count = 0;
    }
    void grow();
  };

  // One FIFO of same-delay timers, sorted by (at, seq) by construction.
  struct Lane {
    Duration delay{};
    Ring fifo;
  };
  static constexpr size_t kMaxLanes = 8;

  // --- hierarchical timer wheel (see file comment) ---
  //
  // Level 0: 4096 one-tick slots covering the current window
  // [cur_window_ << 12, (cur_window_ + 1) << 12). Level 1: 64 slots, one
  // per future window; live L1 windows are restricted to a delta of
  // [1, kL1Span] windows ahead, so window residues mod 64 are unique and
  // slots need no window tag. Entries live in a free-listed node arena
  // (wnodes_); slots are intrusive FIFO lists, so cascading a window from
  // L1 to L0 relinks nodes without copying or allocating.
  static constexpr size_t kL0Bits = 12;
  static constexpr size_t kL0Slots = size_t{1} << kL0Bits;  // 4096 ticks
  static constexpr uint64_t kL0Mask = kL0Slots - 1;
  static constexpr size_t kL1Slots = 64;
  static constexpr uint64_t kL1Mask = kL1Slots - 1;
  static constexpr uint64_t kL1Span = kL1Slots - 2;  // max live window delta

  struct WheelNode {
    Entry entry;
    uint32_t next = kNil;
  };
  struct L0Slot {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };
  struct L1Slot {
    uint32_t head = kNil;
    uint32_t tail = kNil;
    Entry min{};  // cached (at, seq) minimum of the slot's list
  };

  // Sources best_entry() can report: lanes are >= 0.
  static constexpr int kSrcHeap = -1;
  static constexpr int kSrcWheel = -2;

  void sift_up(size_t pos);
  void sift_down(size_t pos);
  // Global (time, seq) minimum across the heap top, the lane fronts, and
  // the wheel; null when the queue is empty. `src` (when non-null)
  // receives the winning lane index, kSrcHeap, or kSrcWheel.
  const Entry* best_entry(int* src = nullptr) const;

  // Wheel internals (event_queue.cc). try_wheel places an entry if its
  // time lands in the wheel's span; advance_to moves the cursor to the
  // global-min time about to pop (every slot it skips is provably empty);
  // cascade redistributes one L1 window into L0 slots.
  bool try_wheel(const Entry& e);
  const Entry* l0_first() const;
  const Entry* wheel_best() const;
  void advance_to(TimePoint t);
  void cascade(size_t l1);
  void pop_wheel(const Entry& e);
  uint32_t wacquire(const Entry& e);
  void wrelease(uint32_t idx) {
    wnodes_[idx].next = wfree_;
    wfree_ = idx;
  }
  void release_wheel_entries();

  EventPool own_pool_;  // used only when no external pool was supplied
  EventPool* pool_;
  std::vector<Entry> heap_;  // 4-ary min-heap
  std::vector<Lane> lanes_;  // timer FIFOs, one per delay; storage retained
  size_t lanes_used_ = 0;    // lanes live this run (first-use order)
  size_t lanes_pending_ = 0;  // events across all live lanes

  bool wheel_enabled_ = true;
  std::vector<WheelNode> wnodes_;  // wheel node arena; grows to peak, kept
  uint32_t wfree_ = kNil;          // LIFO free list through wnodes_
  std::vector<L0Slot> l0_;         // kL0Slots entries, allocated on first use
  std::array<L1Slot, kL1Slots> l1_{};
  std::array<uint64_t, kL0Slots / 64> l0_bits_{};  // L0 occupancy
  uint64_t l0_summary_ = 0;  // bit w set iff l0_bits_[w] != 0
  uint64_t l1_bits_ = 0;     // L1 occupancy
  uint64_t cur_window_ = 0;  // window the L0 ring currently covers
  size_t l0_cursor_ = 0;     // first possibly-occupied L0 slot
  size_t wheel_pending_ = 0;  // events across L0 + L1

  uint64_t next_seq_ = 0;
};

}  // namespace gremlin::sim
