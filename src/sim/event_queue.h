// EventQueue: the discrete-event scheduler at the heart of the simulator.
//
// Events execute in (time, insertion-sequence) order, so two events scheduled
// for the same virtual instant run in the order they were scheduled — this
// tie-break keeps whole-application runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/duration.h"

namespace gremlin::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  void schedule_at(TimePoint at, Action action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; undefined when empty.
  TimePoint next_time() const { return heap_.top().at; }

  // Removes and runs the earliest event; returns its timestamp.
  TimePoint pop_and_run();

  void clear();

 private:
  struct Event {
    TimePoint at;
    uint64_t seq;
    // Shared ptr keeps Event copyable for priority_queue while avoiding
    // copying potentially large closures on heap sift operations.
    std::shared_ptr<Action> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace gremlin::sim
