// SimNetwork: latency model for inter-service links.
//
// Default latency applies to every edge; per-edge overrides let scenarios
// model slow links (e.g. a WAN hop to a third-party API). Latencies are
// deterministic unless jitter is configured, in which case they draw from
// the simulation's seeded RNG.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/duration.h"
#include "common/rng.h"

namespace gremlin::sim {

class SimNetwork {
 public:
  explicit SimNetwork(Duration default_latency = usec(500))
      : default_latency_(default_latency) {}

  void set_default_latency(Duration latency) { default_latency_ = latency; }

  // One-way latency override for src → dst messages (applies to the reverse
  // response path of that edge as well).
  void set_edge_latency(const std::string& src, const std::string& dst,
                        Duration latency);

  // Uniform jitter fraction in [0, 1): actual = base * (1 ± jitter).
  void set_jitter(double fraction) { jitter_ = fraction; }

  // Views so the per-hop path (which holds interned names) never
  // materializes std::string temporaries; the override lookup — the only
  // place needing owning keys — builds them on its rare slow path.
  Duration latency(std::string_view src, std::string_view dst,
                   Rng* rng) const;

 private:
  Duration default_latency_;
  double jitter_ = 0.0;
  std::map<std::pair<std::string, std::string>, Duration> overrides_;
};

}  // namespace gremlin::sim
