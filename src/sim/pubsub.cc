#include "sim/pubsub.h"

#include "common/strings.h"

namespace gremlin::sim {

PubSubBroker::PubSubBroker(Simulation* sim, Options options)
    : sim_(sim), options_(std::move(options)) {
  ServiceConfig cfg;
  cfg.name = options_.name;
  cfg.instances = options_.instances;
  cfg.processing_time = options_.processing_time;
  cfg.default_policy = options_.delivery_policy;
  cfg.handler = [this](std::shared_ptr<RequestContext> ctx) {
    const std::string uri = ctx->request().uri.str();
    const std::string prefix = "/publish/";
    if (!starts_with(uri, prefix)) {
      ctx->respond(404, "unknown broker endpoint: " + uri);
      return;
    }
    handle_publish(ctx, uri.substr(prefix.size()), /*wait_rounds=*/0);
  };
  service_ = sim->add_service(cfg);
}

void PubSubBroker::subscribe(const std::string& topic,
                             const std::string& service) {
  topics_[topic].subscribers.push_back(service);
}

void PubSubBroker::handle_publish(std::shared_ptr<RequestContext> ctx,
                                  const std::string& topic, int wait_rounds) {
  if (try_enqueue(topic, Item{ctx->request().body,
                              ctx->request().request_id})) {
    ++published_;
    ctx->respond(202, "queued");
    return;
  }
  if (options_.on_full == Options::FullPolicy::kReject) {
    ++rejected_;
    ctx->respond(503, "queue-full");
    return;
  }
  // Block the publisher: hold the request open and re-check periodically —
  // the outage mechanism of Table 1's message-bus incidents.
  ctx->defer(options_.block_poll, [this, ctx, topic, wait_rounds] {
    handle_publish(ctx, topic, wait_rounds + 1);
  });
}

bool PubSubBroker::try_enqueue(const std::string& topic, Item item) {
  Topic& t = topics_[topic];
  if (options_.queue_capacity > 0 &&
      t.queue.size() >= options_.queue_capacity) {
    return false;
  }
  t.queue.push_back(std::move(item));
  t.peak = std::max(t.peak, t.queue.size());
  pump(topic);
  return true;
}

void PubSubBroker::publish(const std::string& topic, std::string payload,
                           std::string request_id) {
  if (try_enqueue(topic, Item{std::move(payload), std::move(request_id)})) {
    ++published_;
  } else {
    ++rejected_;
  }
}

void PubSubBroker::pump(const std::string& topic) {
  Topic& t = topics_[topic];
  if (t.dispatching || t.queue.empty()) return;
  if (t.subscribers.empty()) {
    // No consumers: drain to nowhere (drop) so queues don't grow forever in
    // misconfigured tests.
    dropped_ += t.queue.size();
    t.queue.clear();
    return;
  }
  t.dispatching = true;
  deliver_head(topic, 0, 1);
}

void PubSubBroker::deliver_head(const std::string& topic,
                                size_t subscriber_index, int attempt) {
  Topic& t = topics_[topic];
  if (t.queue.empty()) {
    t.dispatching = false;
    return;
  }
  if (subscriber_index >= t.subscribers.size()) {
    // Delivered to every subscriber: pop and continue with the next item.
    t.queue.pop_front();
    ++delivered_;
    if (t.queue.empty()) {
      t.dispatching = false;
    } else {
      deliver_head(topic, 0, 1);
    }
    return;
  }

  SimRequest req;
  req.method = "POST";
  req.uri = "/deliver/" + topic;
  // The delivery keeps the publish's request ID, so flow-scoped fault rules
  // ("test-*") follow the message through the bus and traces stay whole.
  req.request_id = t.queue.front().request_id;
  req.body = t.queue.front().payload;
  const std::string subscriber = t.subscribers[subscriber_index];
  // Delivery goes out through the broker's own sidecar, so fault rules on
  // the broker→subscriber edge apply.
  service_->instance(0).call_dependency(
      subscriber, req,
      [this, topic, subscriber_index, attempt](const SimResponse& resp) {
        if (!resp.failed()) {
          deliver_head(topic, subscriber_index + 1, 1);
          return;
        }
        ++delivery_failures_;
        if (options_.max_delivery_attempts > 0 &&
            attempt >= options_.max_delivery_attempts) {
          ++dropped_;
          deliver_head(topic, subscriber_index + 1, 1);  // give up this hop
          return;
        }
        // Head-of-line retry after a backoff.
        sim_->schedule(options_.delivery_retry,
                       [this, topic, subscriber_index, attempt] {
                         deliver_head(topic, subscriber_index, attempt + 1);
                       });
      });
}

size_t PubSubBroker::queue_depth(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.queue.size();
}

size_t PubSubBroker::queue_peak(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.peak;
}

}  // namespace gremlin::sim
