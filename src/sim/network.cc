#include "sim/network.h"

#include <algorithm>

namespace gremlin::sim {

void SimNetwork::set_edge_latency(const std::string& src,
                                  const std::string& dst, Duration latency) {
  overrides_[{src, dst}] = latency;
}

Duration SimNetwork::latency(std::string_view src, std::string_view dst,
                             Rng* rng) const {
  Duration base = default_latency_;
  // Fast path: no overrides means no pair<string,string> temporaries and no
  // tree walks — this runs once per simulated message delivery.
  if (!overrides_.empty()) {
    auto it = overrides_.find({std::string(src), std::string(dst)});
    if (it == overrides_.end()) {
      // Response path of an overridden edge: look up the forward direction.
      it = overrides_.find({std::string(dst), std::string(src)});
    }
    if (it != overrides_.end()) base = it->second;
  }
  if (jitter_ > 0.0 && rng != nullptr) {
    const double scale = 1.0 + jitter_ * (2.0 * rng->next_double() - 1.0);
    base = Duration(static_cast<int64_t>(
        std::max(0.0, static_cast<double>(base.count()) * scale)));
  }
  return base;
}

}  // namespace gremlin::sim
