#include "sim/service.h"

#include <cassert>
#include <utility>

#include "sim/simulation.h"

namespace gremlin::sim {
namespace {

using faults::FaultDecision;
using faults::FaultKind;
using faults::MessageView;
using logstore::LogRecord;
using logstore::MessageKind;

// OutboundCall: one logical dependency call from a service instance,
// implementing the caller-side failure-handling pipeline:
//
//   bulkhead admission → [per attempt: circuit-breaker check → sidecar rule
//   evaluation (Abort/Delay/Modify) → network → callee → network → response-
//   side rules → timeout race] → retry loop → fallback.
//
// The sidecar logs a request record when the message leaves the caller and a
// response record when a response (real or synthesized by an Abort) is
// observed, with the Gremlin-injected delay accounted separately so the
// Assertion Checker can evaluate latencies with or without interference.
class OutboundCall : public std::enable_shared_from_this<OutboundCall>,
                     public SnapshotParticipant {
 public:
  OutboundCall(ServiceInstance* caller, ServiceInstance::DepInfo& info,
               SimRequest request, ResponseCallback cb)
      : caller_(caller),
        info_(info),
        dependency_(info.symbol.view()),
        request_(std::move(request)),
        cb_(std::move(cb)),
        policy_(*info.policy),
        src_sym_(caller->agent()->service_symbol()),
        dst_sym_(info.symbol) {
    // Saved event actions copy the shared_ptrs capturing this call, so a
    // restored sibling re-runs them against this same object: register so
    // the snapshot reloads the mutable fields below for each sibling.
    if (caller_->sim().snapshot_capture()) {
      caller_->sim().attach_participant(this);
    }
  }

  void start() {
    if (policy_.has_bulkhead()) {
      // Isolated per-dependency pool: admission is immediate or rejected.
      auto& bulkhead = caller_->bulkhead_for(info_);
      if (!bulkhead.try_acquire()) {
        policy_failure(SimResponse::error(503, "bulkhead-saturated"));
        return;
      }
      holding_bulkhead_ = true;
      start_attempt();
      return;
    }
    if (caller_->shared_pool_enabled()) {
      // Shared pool: the call waits for a free slot, so one slow dependency
      // can starve every other outbound call of this instance.
      auto self = shared_from_this();
      holding_shared_ = true;
      caller_->acquire_shared_slot([self] { self->start_attempt(); });
      return;
    }
    start_attempt();
  }

 private:
  Simulation& sim() { return caller_->sim(); }
  const std::string& caller_name() const {
    return caller_->service().name();
  }

  void start_attempt() {
    if (policy_.has_circuit_breaker()) {
      auto& breaker = caller_->breaker_for(info_);
      if (!breaker.allow_request(sim().now())) {
        policy_failure(SimResponse::error(503, "circuit-open"));
        return;
      }
    }
    const uint64_t gen = ++generation_;
    const TimePoint attempt_start = sim().now();
    if (policy_.has_timeout()) {
      auto self = shared_from_this();
      sim().schedule_timer(policy_.timeout, [self, gen, attempt_start] {
        if (gen != self->generation_) return;  // a response won the race
        // The caller gave up: its sidecar observes the client closing the
        // connection and records the exchange as concluded with no
        // response (status 0) — which is how a timeout becomes visible to
        // the Assertion Checker from the network alone.
        self->log_response(SimResponse::timeout(), attempt_start,
                           kDurationZero, FaultKind::kNone, Symbol());
        self->on_attempt_result(gen, SimResponse::timeout());
      });
    }
    send_attempt(gen, attempt_start);
  }

  void send_attempt(uint64_t gen, TimePoint attempt_start) {
    // armed() gates the MessageView build and the engine mutex off the
    // fault-free hot path (the common case for baseline runs and for every
    // sidecar a faulted experiment doesn't target).
    FaultDecision decision;
    if (faults::RuleEngine& engine = caller_->agent()->engine();
        engine.armed()) {
      MessageView view;
      view.kind = MessageKind::kRequest;
      view.src = caller_name();
      view.dst = dependency_;
      view.request_id = request_.request_id;
      view.method = request_.method.view();
      view.uri = request_.uri.view();
      view.body = request_.body;
      view.now = sim().now();
      decision = engine.evaluate(view);
    }

    if (caller_->agent()->recording()) {
      LogRecord rec;
      rec.timestamp = sim().now();
      rec.request_id = request_.request_id;
      rec.src = src_sym_;
      rec.dst = dst_sym_;
      rec.kind = MessageKind::kRequest;
      rec.method = request_.method;
      rec.uri = request_.uri;
      rec.fault = decision.action;
      rec.rule_id = decision.rule_id;
      if (decision.action == FaultKind::kDelay) {
        rec.injected_delay = decision.delay;
      }
      caller_->agent()->log(std::move(rec));
    }

    switch (decision.action) {
      case FaultKind::kAbort: {
        SimResponse resp =
            decision.is_tcp_reset()
                ? SimResponse::reset()
                : SimResponse::error(decision.abort_code, "gremlin-abort");
        log_response(resp, attempt_start, kDurationZero, FaultKind::kAbort,
                     decision.rule_id);
        // Moved into the capture (a const member would make the closure
        // copy-only and spill it to the heap per aborted attempt).
        sim().schedule_timer(kDurationZero,
                             [self = shared_from_this(), gen,
                              resp = std::move(resp)] {
                               self->on_attempt_result(gen, resp);
                             });
        return;
      }
      case FaultKind::kDelay: {
        const Duration injected = decision.delay;
        // Rule-injected delays are constant per rule, so they lane well.
        sim().schedule_timer(decision.delay,
                             [self = shared_from_this(), gen, attempt_start,
                              injected] {
                               self->forward(gen, attempt_start, nullptr,
                                             injected);
                             });
        return;
      }
      case FaultKind::kModify: {
        // Modify is the one fault that rewrites the message: only then does
        // the attempt pay for a private copy of the request.
        auto modified = std::make_shared<SimRequest>(request_);
        faults::RuleEngine::apply_modify(decision, &modified->body);
        forward(gen, attempt_start, std::move(modified), kDurationZero);
        return;
      }
      case FaultKind::kNone:
        // The untampered request is forwarded as-is; the closures below
        // reference the immutable request_ through `self` instead of
        // copying four strings per attempt.
        forward(gen, attempt_start, nullptr, kDurationZero);
        return;
    }
  }

  void forward(uint64_t gen, TimePoint attempt_start,
               std::shared_ptr<const SimRequest> modified, Duration injected) {
    const Duration out_latency =
        sim().network().latency(caller_name(), dependency_, &sim().rng());
    ServiceInstance* target = caller_->pick_dep_instance(info_);
    if (target == nullptr) {
      // No such service: the connection cannot be established. The caller
      // observes a reset after the network round trip would have failed.
      sim().schedule(out_latency, [self = shared_from_this(), gen,
                                   attempt_start, injected] {
        self->receive_wire_response(gen, attempt_start, SimResponse::reset(),
                                    injected);
      });
      return;
    }
    sim().schedule(out_latency, [self = shared_from_this(), gen,
                                 attempt_start, injected, target,
                                 modified = std::move(modified)] {
      const SimRequest& req = modified ? *modified : self->request_;
      target->handle_request(req, [self, gen, attempt_start, injected](
                                      const SimResponse& response) {
        const Duration back_latency = self->sim().network().latency(
            self->caller_name(), self->dependency_, &self->sim().rng());
        // Init-capture keeps the closure member non-const: a `const
        // SimResponse` member has no usable move constructor, which fails
        // InlineFunction's nothrow-move test and heap-allocates the closure
        // on every hop.
        self->sim().schedule(back_latency,
                             [self, gen, attempt_start, resp = response,
                              injected] {
                               self->receive_wire_response(
                                   gen, attempt_start, resp, injected);
                             });
      });
    });
  }

  // A response arrived at the caller's sidecar over the (simulated) wire:
  // apply response-side rules, log the observation, race with the timeout.
  void receive_wire_response(uint64_t gen, TimePoint attempt_start,
                             SimResponse resp, Duration injected) {
    FaultDecision decision;
    if (faults::RuleEngine& engine = caller_->agent()->engine();
        engine.armed()) {
      MessageView view;
      view.kind = MessageKind::kResponse;
      view.src = caller_name();
      view.dst = dependency_;
      view.request_id = request_.request_id;
      view.status = resp.status;
      view.body = resp.body;
      view.now = sim().now();
      decision = engine.evaluate(view);
    }

    switch (decision.action) {
      case FaultKind::kAbort: {
        const SimResponse replaced =
            decision.is_tcp_reset()
                ? SimResponse::reset()
                : SimResponse::error(decision.abort_code, "gremlin-abort");
        log_response(replaced, attempt_start, injected, FaultKind::kAbort,
                     decision.rule_id);
        on_attempt_result(gen, replaced);
        return;
      }
      case FaultKind::kDelay: {
        const Duration total_injected = injected + decision.delay;
        const Symbol rule_id = decision.rule_id;
        auto self = shared_from_this();
        sim().schedule_timer(decision.delay, [self, gen, attempt_start, resp,
                                              total_injected, rule_id] {
          self->log_response(resp, attempt_start, total_injected,
                             FaultKind::kDelay, rule_id);
          self->on_attempt_result(gen, resp);
        });
        return;
      }
      case FaultKind::kModify: {
        faults::RuleEngine::apply_modify(decision, &resp.body);
        log_response(resp, attempt_start, injected, FaultKind::kModify,
                     decision.rule_id);
        on_attempt_result(gen, resp);
        return;
      }
      case FaultKind::kNone: {
        // Request-side injected delay still annotates the observation.
        const FaultKind fault = injected > kDurationZero ? FaultKind::kDelay
                                                         : FaultKind::kNone;
        log_response(resp, attempt_start, injected, fault, Symbol());
        on_attempt_result(gen, resp);
        return;
      }
    }
  }

  void log_response(const SimResponse& resp, TimePoint attempt_start,
                    Duration injected, FaultKind fault, Symbol rule_id) {
    if (!caller_->agent()->recording()) return;
    LogRecord rec;
    rec.timestamp = sim().now();
    rec.request_id = request_.request_id;
    rec.src = src_sym_;
    rec.dst = dst_sym_;
    rec.kind = MessageKind::kResponse;
    rec.uri = request_.uri;
    rec.status = resp.connection_reset ? 0 : resp.status;
    rec.latency = sim().now() - attempt_start;
    rec.fault = fault;
    rec.rule_id = rule_id;
    rec.injected_delay = injected;
    caller_->agent()->log(std::move(rec));
  }

  void on_attempt_result(uint64_t gen, const SimResponse& resp) {
    if (gen != generation_) return;  // a rival outcome already settled it
    ++generation_;                   // invalidate the losing outcome
    ++completed_attempts_;

    const bool failed = resp.failed();
    if (policy_.has_circuit_breaker()) {
      auto& breaker = caller_->breaker_for(info_);
      if (failed) {
        breaker.record_failure(sim().now());
      } else {
        breaker.record_success(sim().now());
      }
    }
    if (!failed) {
      finish(resp);
      return;
    }
    if (policy_.has_retries() &&
        completed_attempts_ <= policy_.retry.max_retries) {
      const Duration backoff =
          policy_.retry.backoff_before(completed_attempts_);
      auto self = shared_from_this();
      sim().schedule_timer(backoff, [self] { self->start_attempt(); });
      return;
    }
    policy_failure(resp);
  }

  // All attempts exhausted / admission denied: serve the fallback if the
  // policy has one, otherwise surface the failure to the caller's handler.
  void policy_failure(const SimResponse& resp) {
    if (policy_.fallback.has_value()) {
      finish(SimResponse{policy_.fallback->status, policy_.fallback->body,
                         false, false});
      return;
    }
    finish(resp);
  }

  void finish(const SimResponse& resp) {
    if (finished_) return;
    finished_ = true;
    if (holding_bulkhead_) {
      caller_->bulkhead_for(info_).release();
      holding_bulkhead_ = false;
    }
    if (holding_shared_) {
      caller_->release_shared_slot();
      holding_shared_ = false;
    }
    if (cb_) cb_(resp);
  }

  // SnapshotParticipant: generation_ in bits 0-31, completed_attempts_ in
  // bits 32-47, the three flags in bits 48-50. cb_ is never nulled (finish
  // invokes it in place), so a reloaded call can finish again.
  std::shared_ptr<void> snapshot_pin() override { return shared_from_this(); }
  uint64_t snapshot_state() const override {
    uint64_t state = generation_ & 0xffffffffULL;
    state |= (static_cast<uint64_t>(completed_attempts_) & 0xffffULL) << 32;
    if (holding_bulkhead_) state |= 1ULL << 48;
    if (holding_shared_) state |= 1ULL << 49;
    if (finished_) state |= 1ULL << 50;
    return state;
  }
  void snapshot_load(uint64_t state) override {
    generation_ = state & 0xffffffffULL;
    completed_attempts_ = static_cast<int>((state >> 32) & 0xffffULL);
    holding_bulkhead_ = (state & (1ULL << 48)) != 0;
    holding_shared_ = (state & (1ULL << 49)) != 0;
    finished_ = (state & (1ULL << 50)) != 0;
  }

  ServiceInstance* caller_;
  // Per-dependency cache slot, resolved by the caller before construction;
  // every policy decision (breaker admission/reporting, bulkhead, instance
  // pick) indexes through it instead of re-finding the dependency by name.
  // The slot outlives the call: dep_slots_ entries are never erased.
  ServiceInstance::DepInfo& info_;
  // View of the interned dependency name (stable for process lifetime) —
  // no per-call string copy.
  const std::string_view dependency_;
  SimRequest request_;
  ResponseCallback cb_;
  // Reference into the service config (stable for the simulation's
  // lifetime); copying would clone the fallback/breaker payloads per call.
  const resilience::CallPolicy& policy_;
  // Resolved from caches at construction; every log record then copies
  // 4-byte handles (request_.method/.uri are already symbols).
  const Symbol src_sym_;
  const Symbol dst_sym_;
  uint64_t generation_ = 0;
  int completed_attempts_ = 0;
  bool holding_bulkhead_ = false;
  bool holding_shared_ = false;
  bool finished_ = false;
};

}  // namespace

// ---------------------------------------------------------------- Context

RequestContext::RequestContext(ServiceInstance* instance, SimRequest request,
                               ResponseCallback reply)
    : instance_(instance),
      request_(std::move(request)),
      reply_(std::move(reply)) {
  if (instance_->sim().snapshot_capture()) {
    instance_->sim().attach_participant(this);
  }
}

TimePoint RequestContext::now() const { return instance_->sim().now(); }

Simulation& RequestContext::sim() { return instance_->sim(); }

const std::string& RequestContext::service_name() const {
  return instance_->service().name();
}

void RequestContext::call(const std::string& dependency, SimRequest req,
                          ResponseCallback cb) {
  if (req.request_id.empty()) req.request_id = request_.request_id;
  instance_->call_dependency(dependency, std::move(req), std::move(cb));
}

void RequestContext::call(const std::string& dependency,
                          ResponseCallback cb) {
  SimRequest req;
  req.request_id = request_.request_id;
  req.uri = request_.uri;
  call(dependency, std::move(req), std::move(cb));
}

void RequestContext::defer(Duration delay, std::function<void()> fn) {
  auto self = shared_from_this();
  instance_->sim().schedule(delay, [self, fn = std::move(fn)] { fn(); });
}

void RequestContext::respond(SimResponse response) {
  if (responded_) return;
  responded_ = true;
  instance_->finish_processing();
  if (reply_) reply_(response);
}

void RequestContext::respond(int status, std::string body) {
  respond(SimResponse{status, std::move(body), false, false});
}

// --------------------------------------------------------------- Instance

ServiceInstance::ServiceInstance(Simulation* sim, SimService* service,
                                 int index)
    : sim_(sim),
      service_(service),
      instance_id_(service->name() + "/" + std::to_string(index)),
      slot_(sim->instances().add_instance()),
      agent_(std::make_shared<SimAgent>(service->name(), instance_id_,
                                        sim->config().seed)) {
  // Resolve every declared dependency (and every policy-only entry) to a
  // dep slot once, at deployment: the default handler then calls by index
  // and the hop path never walks the name map.
  const ServiceConfig& cfg = service->config();
  declared_.reserve(cfg.dependencies.size());
  for (const auto& dep : cfg.dependencies) {
    dep_info(dep);
    declared_.push_back(dep_index_.find(dep)->second);
  }
  for (const auto& [dep, policy] : cfg.policies) dep_info(dep);
}

void ServiceInstance::handle_request(const SimRequest& request,
                                     ResponseCallback reply) {
  InstanceTable& table = sim_->instances();
  if (table.down(slot_)) {
    // Crashed process: the connection is refused. A fresh event so the
    // caller's stack unwinds before it sees the reset, matching every other
    // response path.
    sim_->schedule_timer(kDurationZero, [reply = std::move(reply)]() mutable {
      reply(SimResponse::reset());
    });
    return;
  }
  ++table.requests_handled(slot_);
  const int cap = service_->config().max_concurrent_requests;
  if (cap > 0 && table.server_in_flight(slot_) >= cap) {
    // Server saturated: queue FIFO until a worker frees up.
    server_queue_.push_back(
        [this, request, reply = std::move(reply)]() mutable {
          begin_processing(request, std::move(reply));
        });
    table.server_queue_peak(slot_) =
        std::max(table.server_queue_peak(slot_),
                 static_cast<uint32_t>(server_queue_.size()));
    return;
  }
  begin_processing(request, std::move(reply));
}

void ServiceInstance::begin_processing(const SimRequest& request,
                                       ResponseCallback reply) {
  ++sim_->instances().server_in_flight(slot_);
  const ServiceConfig& cfg = service_->config();
  Duration processing = cfg.processing_time;
  if (cfg.processing_jitter > 0.0) {
    const double scale =
        1.0 + cfg.processing_jitter * (2.0 * sim_->rng().next_double() - 1.0);
    processing = Duration(static_cast<int64_t>(
        std::max(0.0, static_cast<double>(processing.count()) * scale)));
  }
  // The context releases the worker slot in respond(); wrapping the reply
  // here would spill the ResponseCallback inline buffer (the wrapper is
  // larger than the callback it wraps) and heap-allocate per request.
  // Contexts come from the simulation's pool: a warm world recycles them
  // instead of paying a shared_ptr control block per request per hop.
  auto ctx = make_pooled<RequestContext>(&sim_->memory(), this, request,
                                         std::move(reply));
  // Constant per service config (or per slowdown rule when scaled), so the
  // queue lanes it instead of paying heap sifts per request.
  sim_->schedule_timer(processing, [this, ctx = std::move(ctx)] {
    if (service_->config().handler) {
      service_->config().handler(ctx);
    } else {
      run_default_handler(ctx, 0);
    }
  });
}

void ServiceInstance::finish_processing() {
  int32_t& in_flight = sim_->instances().server_in_flight(slot_);
  if (in_flight > 0) --in_flight;
  if (!server_queue_.empty()) {
    auto next = std::move(server_queue_.front());
    server_queue_.pop_front();
    // Fresh event so the completing request's stack unwinds first.
    sim_->schedule_timer(kDurationZero, std::move(next));
  }
}

void ServiceInstance::run_default_handler(std::shared_ptr<RequestContext> ctx,
                                          size_t next_dep) {
  const auto& deps = service_->config().dependencies;
  if (next_dep >= deps.size()) {
    ctx->respond(200, service_->ok_body());
    return;
  }
  // The dep slot was resolved at deployment, so the hop path indexes
  // straight into it — no name lookup. Capture the dependency by index,
  // not by string: the callback then fits the ResponseCallback inline
  // buffer instead of spilling to the heap on every hop. The body strings
  // are kept short enough for SSO — response bodies are copied at each
  // level of the callback chain, so a heap-backed body would allocate
  // several times per failed request.
  SimRequest req;
  req.request_id = ctx->request().request_id;
  req.uri = ctx->request().uri;
  call_dependency(declared_dep(next_dep), std::move(req),
                  [this, ctx, next_dep](const SimResponse& resp) {
    if (resp.failed()) {
      // Naive propagation: a failed dependency (that the CallPolicy did not
      // absorb) fails the whole request.
      ctx->respond(500,
                   "dep-fail:" + service_->config().dependencies[next_dep]);
      return;
    }
    run_default_handler(ctx, next_dep + 1);
  });
}

void ServiceInstance::call_dependency(Symbol dependency, SimRequest request,
                                      ResponseCallback cb) {
  call_dependency(dep_info(dependency), std::move(request), std::move(cb));
}

void ServiceInstance::call_dependency(DepInfo& info, SimRequest request,
                                      ResponseCallback cb) {
  // Pool-allocated: one recycled granule per call instead of a fresh
  // control block + object on every dependency hop.
  auto call = make_pooled<OutboundCall>(&sim_->memory(), this, info,
                                        std::move(request), std::move(cb));
  call->start();
}

const resilience::CallPolicy& ServiceInstance::policy_for(
    const std::string& dep) const {
  const auto& cfg = service_->config();
  const auto it = cfg.policies.find(dep);
  return it != cfg.policies.end() ? it->second : cfg.default_policy;
}

resilience::CircuitBreaker& ServiceInstance::breaker_for(DepInfo& info) {
  if (info.breaker_index < 0) {
    const auto config = info.policy->circuit_breaker.value_or(
        resilience::CircuitBreakerConfig{});
    info.breaker_index = static_cast<int32_t>(breakers_.size());
    breakers_.emplace_back(config);
  }
  return breakers_[static_cast<size_t>(info.breaker_index)];
}

bool ServiceInstance::shared_pool_enabled() const {
  return service_->config().shared_client_pool > 0;
}

int ServiceInstance::shared_pool_in_flight() const {
  return sim_->instances().shared_in_flight(slot_);
}

void ServiceInstance::set_down(bool down) {
  sim_->instances().set_down(slot_, down);
}

bool ServiceInstance::down() const { return sim_->instances().down(slot_); }

uint64_t ServiceInstance::requests_handled() const {
  return sim_->instances().requests_handled(slot_);
}

int ServiceInstance::server_in_flight() const {
  return sim_->instances().server_in_flight(slot_);
}

size_t ServiceInstance::server_queue_peak() const {
  return sim_->instances().server_queue_peak(slot_);
}

void ServiceInstance::acquire_shared_slot(std::function<void()> fn) {
  const int cap = service_->config().shared_client_pool;
  int32_t& in_flight = sim_->instances().shared_in_flight(slot_);
  if (cap <= 0 || in_flight < cap) {
    ++in_flight;
    fn();
    return;
  }
  shared_waiters_.push_back(std::move(fn));
}

void ServiceInstance::release_shared_slot() {
  int32_t& in_flight = sim_->instances().shared_in_flight(slot_);
  if (in_flight > 0) --in_flight;
  if (!shared_waiters_.empty()) {
    auto fn = std::move(shared_waiters_.front());
    shared_waiters_.pop_front();
    ++in_flight;
    // Run on a fresh event so the releasing call's stack unwinds first.
    sim_->schedule_timer(kDurationZero, std::move(fn));
  }
}

ServiceInstance::DepInfo& ServiceInstance::dep_info(const std::string& dep) {
  const auto it = dep_index_.find(dep);
  if (it != dep_index_.end()) return dep_slots_[static_cast<size_t>(it->second)];
  DepInfo info;
  info.symbol = Symbol(dep);
  info.policy = &policy_for(dep);
  const int32_t index = static_cast<int32_t>(dep_slots_.size());
  dep_slots_.push_back(info);
  dep_index_.emplace(dep, index);
  return dep_slots_[static_cast<size_t>(index)];
}

ServiceInstance::DepInfo& ServiceInstance::dep_info(Symbol dep) {
  // Heterogeneous find on the interned text: no std::string materialised on
  // the per-inject path. Slot creation (the cold miss) reuses the string
  // form.
  const auto it = dep_index_.find(dep.view());
  if (it != dep_index_.end()) return dep_slots_[static_cast<size_t>(it->second)];
  return dep_info(dep.str());
}

ServiceInstance* ServiceInstance::pick_dep_instance(DepInfo& info) {
  if (info.service_index < 0) {
    // Resolve through the cached symbol — a flat-table index, not a string
    // lookup (and no symbol-table traffic: the symbol was interned when the
    // dep slot was built).
    info.service_index = sim_->service_index(info.symbol);
    if (info.service_index < 0) return nullptr;
  }
  return sim_->service_by_index(info.service_index)->next_instance();
}

bool ServiceInstance::pristine() const {
  for (const auto& breaker : breakers_) {
    if (breaker.state() != resilience::CircuitBreaker::State::kClosed ||
        breaker.consecutive_failures() != 0 ||
        breaker.half_open_successes() != 0 || breaker.times_opened() != 0) {
      return false;
    }
  }
  for (const auto& bulkhead : bulkheads_) {
    if (bulkhead->in_flight() != 0 || bulkhead->rejected() != 0) return false;
  }
  const InstanceTable& table = sim_->instances();
  return table.requests_handled(slot_) == 0 && !table.down(slot_) &&
         table.shared_in_flight(slot_) == 0 && shared_waiters_.empty() &&
         table.server_in_flight(slot_) == 0 && server_queue_.empty() &&
         table.server_queue_peak(slot_) == 0;
}

void ServiceInstance::reset(uint64_t seed) {
  agent_->reset(seed);
  // Breakers/bulkheads stay allocated (their config is derived from the
  // immutable policy) and return to the closed/idle state a cold build's
  // lazily created ones would start in.
  for (auto& breaker : breakers_) breaker.reset();
  for (auto& bulkhead : bulkheads_) bulkhead->reset();
  for (auto& info : dep_slots_) info.service_index = -1;
  sim_->instances().reset_slot(slot_);
  shared_waiters_.clear();
  server_queue_.clear();
}

InstanceSnapshot ServiceInstance::capture_snapshot() const {
  InstanceSnapshot snap;
  snap.breakers = breakers_;  // plain copyable values
  snap.bulkheads.reserve(bulkheads_.size());
  for (const auto& bulkhead : bulkheads_) {
    snap.bulkheads.push_back(bulkhead->capture());
  }
  snap.shared_waiters = shared_waiters_;
  snap.server_queue = server_queue_;
  snap.agent_records = agent_->snapshot_records();
  snap.agent_recording = agent_->recording();
  return snap;
}

void ServiceInstance::restore_snapshot(const InstanceSnapshot& snap,
                                       uint64_t seed) {
  // reset() reproduces the pristine post-construction state (the prefix
  // installed no rules, so the agent's rule engine is pristine both cold
  // and restored); the snapshot then overlays what the prefix mutated.
  agent_->reset(seed);
  agent_->restore_records(snap.agent_records, snap.agent_recording);
  // Breakers/bulkheads created after the snapshot (lazily, by a later
  // sibling) reset to the pristine state a cold run's lazily created ones
  // would start in; the first-N restore in place. Never shrink: DepInfo
  // indices held by in-flight calls stay valid.
  for (size_t i = 0; i < breakers_.size(); ++i) {
    if (i < snap.breakers.size()) {
      breakers_[i] = snap.breakers[i];
    } else {
      breakers_[i].reset();
    }
  }
  for (size_t i = 0; i < bulkheads_.size(); ++i) {
    if (i < snap.bulkheads.size()) {
      bulkheads_[i]->restore(snap.bulkheads[i]);
    } else {
      bulkheads_[i]->reset();
    }
  }
  for (auto& info : dep_slots_) info.service_index = -1;
  shared_waiters_ = snap.shared_waiters;
  server_queue_ = snap.server_queue;
}

resilience::Bulkhead& ServiceInstance::bulkhead_for(DepInfo& info) {
  if (info.bulkhead_index < 0) {
    info.bulkhead_index = static_cast<int32_t>(bulkheads_.size());
    bulkheads_.push_back(std::make_unique<resilience::Bulkhead>(
        info.policy->bulkhead_max_concurrent));
  }
  return *bulkheads_[static_cast<size_t>(info.bulkhead_index)];
}

// ---------------------------------------------------------------- Service

SimService::SimService(Simulation* sim, ServiceConfig config)
    : config_(std::move(config)),
      symbol_(config_.name),
      ok_body_("ok:" + config_.name) {
  const int count = config_.instances < 1 ? 1 : config_.instances;
  instances_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    instances_.push_back(std::make_unique<ServiceInstance>(sim, this, i));
  }
}

}  // namespace gremlin::sim
