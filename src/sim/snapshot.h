// SimSnapshot: a value capturing the complete mutable state of a running
// Simulation, and the participant registry that extends the capture to the
// transient request-path objects (outbound calls, request contexts) pinned
// by pending event closures.
//
// A campaign sweep over activation windows replays the same fault-free
// prefix for every experiment: rules with `after > 0` are provably inert
// before their window (pre-window matching touches no counters and no RNG),
// so the world at `after - 1 tick` is byte-identical whether the rules are
// armed or absent. Simulation::snapshot() freezes that world — virtual
// clock, every pending event (heap, lanes, and wheel flatten into one
// (time, seq)-keyed list; storage placement never affects pop order), the
// RNG stream, the SoA instance table, per-instance breaker/bulkhead/queue
// state, sidecar record buffers and rule-engine streams (pristine by
// construction: no rules are installed during a prefix), and the packed
// mutable fields of every live call object. Simulation::restore() rebuilds
// it so a restored run is byte-identical — fingerprint() and
// verdict_fingerprint() both — to a cold run reaching the same instant.
//
// Event actions are copied by value (EventPool::Action is a copyable
// InlineFunction); copies share the shared_ptr-held objects the originals
// captured, which is why those objects register as SnapshotParticipants
// during capture: each restore re-loads their mutable fields, so a second
// sibling starts from the same object states the first one did.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/duration.h"
#include "common/rng.h"
#include "logstore/store.h"
#include "resilience/bulkhead.h"
#include "resilience/circuit_breaker.h"
#include "sim/event_queue.h"
#include "sim/instance_table.h"

namespace gremlin::sim {

class Simulation;

// Mixin for request-path objects whose mutable state a snapshot must cover.
// Objects link themselves onto the owning Simulation's intrusive list when
// constructed during a capture window (Simulation::snapshot_capture());
// snapshot() walks the list, pinning each object (so it outlives the
// snapshot) and recording its state as one packed word; restore() loads the
// word back. The list is doubly linked through a pointer-to-pointer, so
// unlinking from the destructor is O(1) and needs no list head.
class SnapshotParticipant {
 public:
  virtual ~SnapshotParticipant() { unlink(); }

  SnapshotParticipant(const SnapshotParticipant&) = delete;
  SnapshotParticipant& operator=(const SnapshotParticipant&) = delete;

 protected:
  SnapshotParticipant() = default;

 private:
  friend class Simulation;

  // A shared_ptr keeping the object alive for the snapshot's lifetime.
  virtual std::shared_ptr<void> snapshot_pin() = 0;
  // Mutable fields packed into one word; layout is private to the subclass.
  virtual uint64_t snapshot_state() const = 0;
  virtual void snapshot_load(uint64_t state) = 0;

  void unlink() {
    if (pprev_ == nullptr) return;
    *pprev_ = next_;
    if (next_ != nullptr) next_->pprev_ = pprev_;
    pprev_ = nullptr;
    next_ = nullptr;
  }

  SnapshotParticipant** pprev_ = nullptr;
  SnapshotParticipant* next_ = nullptr;
};

// Per-instance mutable state (the cold fields living on ServiceInstance;
// the hot SoA scalars ride in SimSnapshot::table).
struct InstanceSnapshot {
  std::vector<resilience::CircuitBreaker> breakers;
  std::vector<resilience::Bulkhead::State> bulkheads;
  std::deque<std::function<void()>> shared_waiters;
  std::deque<std::function<void()>> server_queue;
  logstore::RecordList agent_records;
  bool agent_recording = true;
};

struct ServiceSnapshot {
  size_t rr_next = 0;  // round-robin instance cursor
  std::vector<InstanceSnapshot> instances;
};

struct ParticipantState {
  std::shared_ptr<void> pin;  // keeps `participant` alive
  SnapshotParticipant* participant = nullptr;
  uint64_t state = 0;
};

struct SimSnapshot {
  uint64_t seed = 0;
  TimePoint now{};
  uint64_t events_processed = 0;
  Rng rng{0};

  // Every pending event as (time, seq, copied action); restore reinserts
  // them into the heap — wheel/lane placement is storage, never order.
  std::vector<EventQueue::SavedEvent> events;
  uint64_t next_seq = 0;

  InstanceTable table;  // SoA hot scalars, copied wholesale
  std::vector<ServiceSnapshot> services;
  std::vector<ParticipantState> participants;
};

}  // namespace gremlin::sim
