// SimService / ServiceInstance: simulated microservices.
//
// A logical service runs as one or more instances (Figure 3). Each instance
// owns a sidecar SimAgent, and per-dependency circuit-breaker and bulkhead
// state. A service's behaviour is either the default handler — call every
// declared dependency in order, fail upstream if any call fails, else reply
// 200 — or a custom Handler function, which is how the case-study apps
// (WordPress fallback logic, the enterprise app's buggy client) are modelled.
//
// All outbound calls flow through the caller's sidecar, where fault rules
// are evaluated and observations logged — Gremlin's observation O1: touch
// the network, not the app.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/duration.h"
#include "common/inline_function.h"
#include "common/intern.h"
#include "resilience/bulkhead.h"
#include "resilience/circuit_breaker.h"
#include "resilience/policy.h"
#include "sim/sidecar.h"
#include "sim/snapshot.h"

namespace gremlin::sim {

class Simulation;
class SimService;
class ServiceInstance;
class RequestContext;

// Pre-interned defaults so constructing a SimRequest never takes the symbol
// table lock (requests are constructed once per simulated call).
inline Symbol default_method() {
  static const Symbol s("GET");
  return s;
}
inline Symbol default_uri() {
  static const Symbol s("/");
  return s;
}

struct SimRequest {
  Symbol method = default_method();
  Symbol uri = default_uri();
  std::string request_id;
  std::string body;
};

struct SimResponse {
  int status = 200;
  std::string body;
  bool connection_reset = false;  // TCP-level termination observed
  bool timed_out = false;         // caller-side timeout fired (no message)

  // Failure from the caller's perspective: timeout, reset, or server error.
  bool failed() const {
    return timed_out || connection_reset || status == 0 || status >= 500;
  }

  static SimResponse ok(std::string body = "ok") {
    return SimResponse{200, std::move(body), false, false};
  }
  static SimResponse error(int status, std::string body = "") {
    return SimResponse{status, std::move(body), false, false};
  }
  static SimResponse reset() { return SimResponse{0, "", true, false}; }
  static SimResponse timeout() { return SimResponse{0, "", false, true}; }
};

// Response callbacks ride the per-call hot path; the inline buffer is sized
// for the retry/forwarding continuations in service.cc so steady-state calls
// allocate nothing for them (std::function would malloc per callback).
using ResponseCallback = InlineFunction<void(const SimResponse&), 64>;
using Handler = std::function<void(std::shared_ptr<RequestContext>)>;

struct ServiceConfig {
  std::string name;
  int instances = 1;
  Duration processing_time = msec(1);  // local work before the handler logic
  double processing_jitter = 0.0;      // uniform fraction of processing_time

  // Dependencies called by the default handler, in order.
  std::vector<std::string> dependencies;

  // Per-dependency failure-handling policy; falls back to default_policy.
  std::map<std::string, resilience::CallPolicy> policies;
  resilience::CallPolicy default_policy;  // naive by default

  // Maximum requests an instance processes concurrently (0 = unlimited).
  // Excess arrivals queue FIFO, so a slow dependency (or an injected Delay)
  // backs the whole instance up — the mechanism behind the overload
  // cascades of Table 1.
  int max_concurrent_requests = 0;

  // Size of the instance's *shared* outbound client pool (0 = unlimited).
  // Models the shared thread pool of Section 2.1: calls to any dependency
  // occupy a slot for their full duration and excess calls queue FIFO — so
  // one slow dependency starves calls to every other one. Dependencies
  // whose CallPolicy declares a bulkhead bypass the shared pool (they have
  // their own isolated pool), which is exactly the mitigation the bulkhead
  // pattern provides.
  int shared_client_pool = 0;

  // Optional custom behaviour; overrides the default handler.
  Handler handler;
};

// Context handed to service handlers; keeps the in-flight request alive
// across asynchronous dependency calls. During a snapshot capture window
// it registers as a SnapshotParticipant: event closures hold shared_ptrs
// to the same context across restores, so the responded flag must be
// reloaded per restore.
class RequestContext : public std::enable_shared_from_this<RequestContext>,
                       public SnapshotParticipant {
 public:
  RequestContext(ServiceInstance* instance, SimRequest request,
                 ResponseCallback reply);

  const SimRequest& request() const { return request_; }
  TimePoint now() const;
  Simulation& sim();
  const std::string& service_name() const;
  ServiceInstance& instance() { return *instance_; }

  // Asynchronously calls `dependency` through the sidecar, applying this
  // service's CallPolicy for that dependency. The request inherits this
  // context's request ID unless `req` carries one.
  void call(const std::string& dependency, SimRequest req,
            ResponseCallback cb);
  void call(const std::string& dependency, ResponseCallback cb);

  // Schedules follow-up work on the virtual clock (extra local processing).
  void defer(Duration delay, std::function<void()> fn);

  // Completes the request. Only the first respond() takes effect. The
  // instance's worker slot is released here — every context is born in
  // begin_processing, so respond() is exactly where the response leaves
  // the instance (no per-request wrapper callback needed).
  void respond(SimResponse response);
  void respond(int status, std::string body = "");
  bool responded() const { return responded_; }

 private:
  // SnapshotParticipant: bit 0 = responded_.
  std::shared_ptr<void> snapshot_pin() override { return shared_from_this(); }
  uint64_t snapshot_state() const override { return responded_ ? 1u : 0u; }
  void snapshot_load(uint64_t state) override {
    responded_ = (state & 1u) != 0;
  }

  ServiceInstance* instance_;
  SimRequest request_;
  ResponseCallback reply_;
  bool responded_ = false;
};

class ServiceInstance {
 public:
  ServiceInstance(Simulation* sim, SimService* service, int index);

  // Entry point for requests arriving over the simulated network.
  void handle_request(const SimRequest& request, ResponseCallback reply);

  const std::string& instance_id() const { return instance_id_; }
  Simulation& sim() { return *sim_; }
  SimService& service() { return *service_; }
  const std::shared_ptr<SimAgent>& agent() { return agent_; }
  // Dense slot in the simulation's InstanceTable (SoA hot scalars).
  uint32_t slot() const { return slot_; }

  const resilience::CallPolicy& policy_for(const std::string& dep) const;

  // Per-dependency call-path cache, one slot per (instance, dep) name,
  // handed to every outbound call: interned name, call policy, and
  // index-addressed breaker/bulkhead/target-service resolution — so the
  // per-call hot path costs one array index total instead of a map find
  // per policy decision (symbol, policy, breaker admission, breaker
  // reporting, bulkhead, instance pick). Indices, not pointers: the
  // backing vectors may reallocate as lazily-discovered dependencies are
  // added, and the target service table belongs to the Simulation.
  struct DepInfo {
    Symbol symbol;
    const resilience::CallPolicy* policy = nullptr;  // immutable config
    int32_t service_index = -1;   // Simulation service table; -1 unresolved
    int32_t breaker_index = -1;   // breakers_; -1 until first use
    int32_t bulkhead_index = -1;  // bulkheads_; -1 until first use
  };
  // Stable reference: dependencies declared in the config get slots at
  // construction; names discovered at runtime (custom handlers) append to
  // a deque, and slots are never erased (reset() only clears the
  // re-resolvable service index).
  DepInfo& dep_info(const std::string& dep);
  // Pre-interned form: resolves the slot through the symbol's text without
  // materialising a std::string (load generators inject through this).
  DepInfo& dep_info(Symbol dep);
  // O(1) slot for the i-th declared dependency (the default handler's
  // call order) — no name lookup on the hop path.
  DepInfo& declared_dep(size_t i) { return dep_slots_[declared_[i]]; }

  // Issues an outbound call from this instance (used by RequestContext and
  // by Simulation::inject for edge clients). The Symbol form resolves the
  // dependency slot first (strings and literals convert implicitly —
  // dependency names are a bounded vocabulary, safe to intern); the
  // DepInfo form is the hot path.
  void call_dependency(Symbol dependency, SimRequest request,
                       ResponseCallback cb);
  void call_dependency(DepInfo& info, SimRequest request, ResponseCallback cb);

  resilience::CircuitBreaker& breaker_for(DepInfo& info);
  resilience::Bulkhead& bulkhead_for(DepInfo& info);

  // Round-robin target instance for the dependency. A missing service is
  // re-resolved every attempt (it may be registered later), but the common
  // path skips the simulation-wide service map.
  ServiceInstance* pick_dep_instance(DepInfo& info);

  // Shared outbound pool (see ServiceConfig::shared_client_pool). `fn` runs
  // immediately when a slot is free, otherwise queues FIFO.
  void acquire_shared_slot(std::function<void()> fn);
  void release_shared_slot();
  bool shared_pool_enabled() const;
  int shared_pool_in_flight() const;
  size_t shared_pool_queued() const { return shared_waiters_.size(); }

  // Infra-fault hook: a down instance refuses new work with a connection
  // reset (the network-level view of a crashed process). In-flight work
  // completes; Simulation::schedule_service_outage flips this on the
  // virtual clock and reset() restores the instance to up.
  void set_down(bool down);
  bool down() const;

  // Stats for tests.
  uint64_t requests_handled() const;
  int server_in_flight() const;
  size_t server_queue_depth() const { return server_queue_.size(); }
  size_t server_queue_peak() const;

  // Resilience-state introspection for reset-hygiene tests: true when every
  // breaker is closed with zero counters and every bulkhead/pool/queue is
  // idle — the state a freshly built instance starts in.
  bool pristine() const;

  // Warm-world reuse: restores the pristine post-construction state for
  // `seed`. Breakers/bulkheads are reset in place (their configuration is
  // immutable), queues and counters cleared, the sidecar agent's rules and
  // RNG stream re-derived from `seed`, and cached dependency pointers
  // dropped (the target service may have been removed).
  void reset(uint64_t seed);

  // Snapshot support (sim/snapshot.h): the cold per-instance state — the
  // hot SoA scalars live in the simulation's InstanceTable snapshot.
  InstanceSnapshot capture_snapshot() const;
  void restore_snapshot(const InstanceSnapshot& snap, uint64_t seed);

 private:
  friend class RequestContext;

  void run_default_handler(std::shared_ptr<RequestContext> ctx, size_t next_dep);
  void begin_processing(const SimRequest& request, ResponseCallback reply);
  void finish_processing();

  Simulation* sim_;
  SimService* service_;
  std::string instance_id_;
  uint32_t slot_;  // dense index into the simulation's InstanceTable
  std::shared_ptr<SimAgent> agent_;
  // Dependency call-path slots: declared dependencies (config order, then
  // policy-only entries) are resolved once at construction; runtime
  // discoveries append. A deque so DepInfo references held by in-flight
  // calls survive growth.
  std::deque<DepInfo> dep_slots_;
  std::vector<int32_t> declared_;  // dep_slots_ index per declared dep
  std::map<std::string, int32_t, std::less<>> dep_index_;  // name → slot
  // Resilience state, index-addressed from DepInfo. Breakers are plain
  // movable values; bulkheads hold a mutex (shared with the live proxy
  // path), so they get stable unique_ptr storage.
  std::vector<resilience::CircuitBreaker> breakers_;
  std::vector<std::unique_ptr<resilience::Bulkhead>> bulkheads_;
  std::deque<std::function<void()>> shared_waiters_;
  std::deque<std::function<void()>> server_queue_;
};

class SimService {
 public:
  SimService(Simulation* sim, ServiceConfig config);

  const std::string& name() const { return config_.name; }
  // Interned name, resolved once at construction (flat-table routing key).
  Symbol symbol() const { return symbol_; }
  // "ok:<name>", cached so the default handler's terminal response copies
  // an SSO string instead of concatenating one per request.
  const std::string& ok_body() const { return ok_body_; }
  const ServiceConfig& config() const { return config_; }
  ServiceConfig& mutable_config() { return config_; }

  size_t instance_count() const { return instances_.size(); }
  ServiceInstance& instance(size_t i) { return *instances_[i]; }

  // Round-robin instance selection (the service-local counter replaces a
  // per-call string-keyed map lookup); nullptr when there are no instances.
  ServiceInstance* next_instance() {
    if (instances_.empty()) return nullptr;
    return instances_[rr_next_++ % instances_.size()].get();
  }

  // Warm-world reuse: round-robin cursor back to zero, every instance reset.
  void reset(uint64_t seed) {
    rr_next_ = 0;
    for (auto& instance : instances_) instance->reset(seed);
  }

  // Snapshot support (sim/snapshot.h).
  ServiceSnapshot capture_snapshot() const {
    ServiceSnapshot snap;
    snap.rr_next = rr_next_;
    snap.instances.reserve(instances_.size());
    for (const auto& instance : instances_) {
      snap.instances.push_back(instance->capture_snapshot());
    }
    return snap;
  }
  void restore_snapshot(const ServiceSnapshot& snap, uint64_t seed) {
    rr_next_ = snap.rr_next;
    for (size_t i = 0; i < instances_.size(); ++i) {
      if (i < snap.instances.size()) {
        instances_[i]->restore_snapshot(snap.instances[i], seed);
      } else {
        instances_[i]->reset(seed);
      }
    }
  }

 private:
  ServiceConfig config_;
  Symbol symbol_;
  std::string ok_body_;
  std::vector<std::unique_ptr<ServiceInstance>> instances_;
  size_t rr_next_ = 0;
};

}  // namespace gremlin::sim
