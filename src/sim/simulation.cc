#include "sim/simulation.h"

#include <cassert>

namespace gremlin::sim {

Simulation::Simulation(SimulationConfig config)
    : config_(config),
      own_memory_(config.memory == nullptr ? std::make_unique<MemoryPool>()
                                           : nullptr),
      memory_(config.memory != nullptr ? config.memory : own_memory_.get()),
      queue_(config.event_pool),
      rng_(config.seed),
      network_(config.default_network_latency) {
  queue_.set_wheel_enabled(config.use_timer_wheel);
}

void Simulation::schedule(Duration delay, EventQueue::Action action) {
  schedule_at(now_ + (delay < kDurationZero ? kDurationZero : delay),
              std::move(action));
}

void Simulation::schedule_at(TimePoint at, EventQueue::Action action) {
  queue_.schedule_at(at < now_ ? now_ : at, std::move(action));
}

void Simulation::schedule_timer(Duration delay, EventQueue::Action action) {
  if (delay < kDurationZero) delay = kDurationZero;
  // now_ is monotone, so same-delay timers are born in fire-time order —
  // exactly the lane invariant schedule_timer needs.
  queue_.schedule_timer(now_ + delay, delay, std::move(action));
}

size_t Simulation::run() {
  size_t processed = 0;
  while (!stop_requested_ && !queue_.empty()) {
    // The queue writes now_ from the popped entry before running its
    // action: one best-entry scan per event, not a peek plus a pop.
    queue_.pop_and_run(&now_);
    ++processed;
    ++events_processed_;
  }
  return processed;
}

size_t Simulation::run_until(TimePoint deadline) {
  size_t processed = 0;
  while (!stop_requested_ && !queue_.empty() &&
         queue_.next_time() <= deadline) {
    queue_.pop_and_run(&now_);
    ++processed;
    ++events_processed_;
  }
  // A stop request abandons the run mid-flight; only a run that exhausted
  // its window advances the clock to the deadline.
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
  return processed;
}

size_t Simulation::cancel_pending() {
  const size_t cancelled = queue_.size();
  queue_.clear();
  stop_requested_ = false;
  return cancelled;
}

SimService* Simulation::add_service(ServiceConfig config) {
  assert(!config.name.empty() && "service requires a name");
  auto service = std::make_unique<SimService>(this, std::move(config));
  SimService* raw = service.get();
  const std::string& name = raw->name();
  const uint32_t id = raw->symbol().id();
  if (by_symbol_.size() <= id) by_symbol_.resize(id + 1, -1);
  assert(by_symbol_[id] < 0 && "duplicate service name");
  for (size_t i = 0; i < raw->instance_count(); ++i) {
    raw->instance(i).agent()->set_recording(recording_);
    deployment_.add_instance(name, raw->instance(i).agent());
  }
  by_symbol_[id] = static_cast<int32_t>(services_.size());
  services_.push_back(std::move(service));
  return raw;
}

SimService* Simulation::find_service(const std::string& name) {
  return find_service(std::string_view(name));
}

SimService* Simulation::find_service(std::string_view name) {
  // find_symbol() (not Symbol construction): lookups of unknown names must
  // not grow the symbol table, and a campaign worker must resolve through
  // its own shard so ids match the ones its services registered with.
  const auto sym = find_symbol(name);
  return sym ? find_service(*sym) : nullptr;
}

SimService* Simulation::find_service(Symbol name) {
  const int32_t index = service_index(name);
  return index < 0 ? nullptr : services_[static_cast<size_t>(index)].get();
}

void Simulation::reset(uint64_t seed) {
  queue_.clear();
  stop_requested_ = false;
  now_ = TimePoint{};
  events_processed_ = 0;
  config_.seed = seed;
  rng_ = Rng(seed);
  log_store_.set_observer(nullptr);
  log_store_.set_retention_limit(0);
  log_store_.clear();
  // Services added after the baseline (inject()'s lazily created edge
  // clients) are kept and reset in place rather than dropped. A retained
  // idle client is invisible to results — it schedules no events, its agent
  // records nothing after reset, and fingerprints carry no symbol ids — so
  // warm runs stay byte-identical to cold ones (the warm-cold differential
  // in CI gates this), while re-creating the client per experiment cost
  // ~11 heap allocations: the SimService, its instance vector, the agent,
  // and the deployment + dependency-cache map nodes.
  for (auto& service : services_) service->reset(seed);
  recording_ = true;  // SimAgent::reset already restored the agents
}

void Simulation::set_recording(bool on) {
  recording_ = on;
  for (auto& service : services_) {
    for (size_t i = 0; i < service->instance_count(); ++i) {
      service->instance(i).agent()->set_recording(on);
    }
  }
}

VoidResult Simulation::schedule_service_outage(const std::string& service,
                                               Duration after,
                                               Duration downtime) {
  SimService* svc = find_service(service);
  if (svc == nullptr) {
    return Error::not_found("service '" + service +
                            "' is not in the simulation");
  }
  const auto set_all = [svc](bool down) {
    for (size_t i = 0; i < svc->instance_count(); ++i) {
      svc->instance(i).set_down(down);
    }
  };
  schedule(after, [set_all] { set_all(true); });
  if (downtime > kDurationZero) {
    schedule(after + downtime, [set_all] { set_all(false); });
  }
  return VoidResult::success();
}

void Simulation::add_services_from_graph(
    const topology::AppGraph& graph,
    const std::function<ServiceConfig(const std::string&)>& make) {
  for (const auto& name : graph.services()) {
    ServiceConfig cfg = make ? make(name) : ServiceConfig{};
    cfg.name = name;
    cfg.dependencies = graph.dependencies(name);
    add_service(std::move(cfg));
  }
}

ServiceInstance* Simulation::pick_instance(const std::string& service) {
  return pick_instance_view(service);
}

ServiceInstance* Simulation::pick_instance_view(std::string_view service) {
  SimService* svc = find_service(service);
  if (svc == nullptr) return nullptr;
  return svc->next_instance();
}

ServiceInstance* Simulation::pick_instance(Symbol service) {
  SimService* svc = find_service(service);
  if (svc == nullptr) return nullptr;
  return svc->next_instance();
}

void Simulation::inject(const std::string& client, const std::string& target,
                        SimRequest request, ResponseCallback cb) {
  // Edge clients and load targets are service names — a bounded vocabulary,
  // safe to intern.
  inject(Symbol(client), Symbol(target), std::move(request), std::move(cb));
}

void Simulation::inject(Symbol client, Symbol target, SimRequest request,
                        ResponseCallback cb) {
  SimService* svc = find_service(client);
  if (svc == nullptr) {
    ServiceConfig cfg;
    cfg.name = client.str();
    cfg.instances = 1;
    cfg.processing_time = kDurationZero;
    svc = add_service(std::move(cfg));
  }
  svc->instance(0).call_dependency(target, std::move(request),
                                   std::move(cb));
}

}  // namespace gremlin::sim
