#include "sim/simulation.h"

#include <cassert>

namespace gremlin::sim {

Simulation::Simulation(SimulationConfig config)
    : config_(config),
      rng_(config.seed),
      network_(config.default_network_latency) {}

void Simulation::schedule(Duration delay, EventQueue::Action action) {
  schedule_at(now_ + (delay < kDurationZero ? kDurationZero : delay),
              std::move(action));
}

void Simulation::schedule_at(TimePoint at, EventQueue::Action action) {
  queue_.schedule_at(at < now_ ? now_ : at, std::move(action));
}

size_t Simulation::run() {
  size_t processed = 0;
  while (!stop_requested_ && !queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++processed;
    ++events_processed_;
  }
  return processed;
}

size_t Simulation::run_until(TimePoint deadline) {
  size_t processed = 0;
  while (!stop_requested_ && !queue_.empty() &&
         queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++processed;
    ++events_processed_;
  }
  // A stop request abandons the run mid-flight; only a run that exhausted
  // its window advances the clock to the deadline.
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
  return processed;
}

size_t Simulation::cancel_pending() {
  const size_t cancelled = queue_.size();
  queue_.clear();
  stop_requested_ = false;
  return cancelled;
}

SimService* Simulation::add_service(ServiceConfig config) {
  assert(!config.name.empty() && "service requires a name");
  auto service = std::make_unique<SimService>(this, std::move(config));
  SimService* raw = service.get();
  const std::string name = raw->name();
  assert(services_.count(name) == 0 && "duplicate service name");
  for (size_t i = 0; i < raw->instance_count(); ++i) {
    deployment_.add_instance(name, raw->instance(i).agent());
  }
  services_[name] = std::move(service);
  return raw;
}

SimService* Simulation::find_service(const std::string& name) {
  const auto it = services_.find(name);
  return it == services_.end() ? nullptr : it->second.get();
}

void Simulation::add_services_from_graph(
    const topology::AppGraph& graph,
    const std::function<ServiceConfig(const std::string&)>& make) {
  for (const auto& name : graph.services()) {
    ServiceConfig cfg = make ? make(name) : ServiceConfig{};
    cfg.name = name;
    cfg.dependencies = graph.dependencies(name);
    add_service(std::move(cfg));
  }
}

ServiceInstance* Simulation::pick_instance(const std::string& service) {
  SimService* svc = find_service(service);
  if (svc == nullptr) return nullptr;
  return svc->next_instance();
}

void Simulation::inject(const std::string& client, const std::string& target,
                        SimRequest request, ResponseCallback cb) {
  SimService* svc = find_service(client);
  if (svc == nullptr) {
    ServiceConfig cfg;
    cfg.name = client;
    cfg.instances = 1;
    cfg.processing_time = kDurationZero;
    svc = add_service(std::move(cfg));
  }
  svc->instance(0).call_dependency(target, std::move(request), std::move(cb));
}

}  // namespace gremlin::sim
