// Simulation snapshot/restore (see sim/snapshot.h for the theory).
#include "sim/snapshot.h"

#include "sim/simulation.h"

namespace gremlin::sim {

void Simulation::begin_snapshot_capture() {
  // Detach leftovers from any earlier capture: a stale participant's state
  // belongs to a different prefix and must not leak into this snapshot.
  while (participants_ != nullptr) participants_->unlink();
  snapshot_capture_ = true;
}

void Simulation::end_snapshot_capture() { snapshot_capture_ = false; }

void Simulation::attach_participant(SnapshotParticipant* p) {
  p->next_ = participants_;
  p->pprev_ = &participants_;
  if (participants_ != nullptr) participants_->pprev_ = &p->next_;
  participants_ = p;
}

Simulation::~Simulation() {
  // Participants may outlive the simulation (pinned by a SnapshotCache
  // entry); make sure none of them still points at our list head.
  while (participants_ != nullptr) participants_->unlink();
}

SimSnapshot Simulation::snapshot() {
  SimSnapshot snap;
  snap.seed = config_.seed;
  snap.now = now_;
  snap.events_processed = events_processed_;
  snap.rng = rng_;
  queue_.save_events(&snap.events);
  snap.next_seq = queue_.next_seq();
  snap.table = instance_table_;
  snap.services.reserve(services_.size());
  for (const auto& service : services_) {
    snap.services.push_back(service->capture_snapshot());
  }
  for (SnapshotParticipant* p = participants_; p != nullptr; p = p->next_) {
    snap.participants.push_back(
        ParticipantState{p->snapshot_pin(), p, p->snapshot_state()});
  }
  return snap;
}

void Simulation::restore(const SimSnapshot& snap) {
  queue_.restore_events(snap.events, snap.next_seq);
  stop_requested_ = false;
  now_ = snap.now;
  events_processed_ = snap.events_processed;
  config_.seed = snap.seed;
  rng_ = snap.rng;
  // The store starts a restored run exactly as a cold run starts it: no
  // observer, no retention cap, empty. A prefix run never appends to the
  // store (the collector only drains at the end of a run), so attaching an
  // observer post-restore is equivalent to attaching it at t=0.
  log_store_.set_observer(nullptr);
  log_store_.set_retention_limit(0);
  log_store_.clear();
  instance_table_.restore_from(snap.table);
  for (size_t i = 0; i < services_.size(); ++i) {
    if (i < snap.services.size()) {
      services_[i]->restore_snapshot(snap.services[i], snap.seed);
    } else {
      // Service added after the snapshot (a later sibling's lazily created
      // edge client): reset to the pristine state it would cold-start in.
      services_[i]->reset(snap.seed);
    }
  }
  recording_ = true;  // restore_snapshot reloaded the per-agent switches
  // Reload the mutable fields of every pinned request-path object: saved
  // event actions reference these same objects across every sibling.
  for (const ParticipantState& ps : snap.participants) {
    ps.participant->snapshot_load(ps.state);
  }
}

}  // namespace gremlin::sim
