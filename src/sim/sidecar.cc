#include "sim/sidecar.h"

namespace gremlin::sim {

SimAgent::SimAgent(std::string service, std::string instance_id,
                   uint64_t seed)
    : service_(std::move(service)),
      instance_id_(std::move(instance_id)),
      service_sym_(service_),
      instance_sym_(instance_id_),
      engine_(seed, instance_id_) {}

VoidResult SimAgent::install_rules(
    const std::vector<faults::FaultRule>& rules) {
  return engine_.add_rules(rules);
}

VoidResult SimAgent::install_rule(const faults::FaultRule& rule) {
  return engine_.add_rule(rule);
}

VoidResult SimAgent::clear_rules() {
  engine_.clear();
  return VoidResult::success();
}

VoidResult SimAgent::remove_rules(const std::vector<std::string>& ids) {
  for (const auto& id : ids) {
    (void)engine_.remove_rule(id);
  }
  return VoidResult::success();
}

Result<logstore::RecordList> SimAgent::fetch_records() {
  std::lock_guard lock(mu_);
  return records_;
}

VoidResult SimAgent::clear_records() {
  std::lock_guard lock(mu_);
  records_.clear();
  return VoidResult::success();
}

Result<logstore::RecordList> SimAgent::drain_records() {
  std::lock_guard lock(mu_);
  logstore::RecordList out;
  out.swap(records_);
  return out;
}

void SimAgent::log(logstore::LogRecord record) {
  if (!recording_) return;
  std::lock_guard lock(mu_);
  record.instance = instance_sym_;
  records_.push_back(std::move(record));
}

size_t SimAgent::buffered_records() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

void SimAgent::reset(uint64_t seed) {
  engine_.reset(seed, instance_id_);
  recording_ = true;
  std::lock_guard lock(mu_);
  records_.clear();
}

}  // namespace gremlin::sim
