#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace gremlin::sim {

uint32_t EventPool::grow() {
  // Pool exhausted: grow by one slab and thread the new nodes onto the free
  // list (highest index first, so allocation order is ascending).
  const uint32_t base = static_cast<uint32_t>(capacity());
  slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
  for (size_t i = kSlabSize; i-- > 1;) {
    node(base + static_cast<uint32_t>(i)).next_free = free_head_;
    free_head_ = base + static_cast<uint32_t>(i);
  }
  return base;
}

void EventQueue::Ring::grow() {
  const size_t new_size = std::max<size_t>(16, buf.size() * 2);
  std::vector<Entry> fresh(new_size);
  for (size_t i = 0; i < count; ++i) fresh[i] = at(i);
  buf = std::move(fresh);
  head = 0;
}

void EventQueue::sift_up(size_t pos) {
  const Entry entry = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) >> 2;
    if (!entry.before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = entry;
}

void EventQueue::sift_down(size_t pos) {
  const size_t n = heap_.size();
  const Entry entry = heap_[pos];
  for (;;) {
    const size_t first_child = (pos << 2) + 1;
    if (first_child >= n) break;
    // Smallest of up to four children.
    size_t best = first_child;
    const size_t last_child = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(entry)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = entry;
}

void EventQueue::schedule_at(TimePoint at, Action action) {
  const uint32_t idx = pool_->acquire();
  pool_->action(idx) = std::move(action);
  const Entry e{at, next_seq_++, idx};
  if (wheel_enabled_ && try_wheel(e)) return;
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

uint32_t EventQueue::wacquire(const Entry& e) {
  uint32_t idx;
  if (wfree_ != kNil) {
    idx = wfree_;
    wfree_ = wnodes_[idx].next;
  } else {
    idx = static_cast<uint32_t>(wnodes_.size());
    wnodes_.emplace_back();
  }
  wnodes_[idx].entry = e;
  wnodes_[idx].next = kNil;
  return idx;
}

bool EventQueue::try_wheel(const Entry& e) {
  // The wheel indexes by unsigned tick; negative times (legal for the
  // queue, if odd) and anything behind the cursor or beyond the level-1
  // span take the heap, which accepts any time.
  if (e.at.count() < 0) return false;
  const uint64_t tick = static_cast<uint64_t>(e.at.count());
  const uint64_t w = tick >> kL0Bits;
  if (w < cur_window_ || w - cur_window_ > kL1Span) return false;
  if (w == cur_window_) {
    const size_t slot = static_cast<size_t>(tick & kL0Mask);
    if (slot < l0_cursor_) return false;  // current window, already passed
    if (l0_.empty()) l0_.resize(kL0Slots);
    const uint32_t n = wacquire(e);
    L0Slot& s = l0_[slot];
    if (s.tail == kNil) {
      s.head = n;
      l0_bits_[slot >> 6] |= uint64_t{1} << (slot & 63);
      l0_summary_ |= uint64_t{1} << (slot >> 6);
    } else {
      wnodes_[s.tail].next = n;
    }
    s.tail = n;
    ++wheel_pending_;
    return true;
  }
  // Future window within span: append to its level-1 slot. Window deltas
  // are capped at kL1Span (= 62), so at most 63 consecutive windows are
  // ever live and two live windows can never share a residue mod 64.
  if (l0_.empty()) l0_.resize(kL0Slots);
  const size_t l1 = static_cast<size_t>(w & kL1Mask);
  const uint32_t n = wacquire(e);
  L1Slot& s = l1_[l1];
  if (s.tail == kNil) {
    s.head = n;
    s.min = e;
    l1_bits_ |= uint64_t{1} << l1;
  } else {
    wnodes_[s.tail].next = n;
    if (e.before(s.min)) s.min = e;
  }
  s.tail = n;
  ++wheel_pending_;
  return true;
}

const EventQueue::Entry* EventQueue::l0_first() const {
  size_t word = l0_cursor_ >> 6;
  uint64_t bits = l0_bits_[word] & (~uint64_t{0} << (l0_cursor_ & 63));
  if (bits == 0) {
    // Words strictly after the cursor's. (2 << 63 wraps to 0, so the mask
    // correctly degenerates to "no later words" when word == 63.)
    const uint64_t later = l0_summary_ & ~((uint64_t{2} << word) - 1);
    if (later == 0) return nullptr;
    word = static_cast<size_t>(std::countr_zero(later));
    bits = l0_bits_[word];
  }
  const size_t slot = (word << 6) | static_cast<size_t>(std::countr_zero(bits));
  return &wnodes_[l0_[slot].head].entry;
}

const EventQueue::Entry* EventQueue::wheel_best() const {
  if (wheel_pending_ == 0) return nullptr;
  // Anything in the current window beats every future window.
  if (const Entry* e = l0_first()) return e;
  if (l1_bits_ == 0) return nullptr;
  // Earliest live window = smallest residue distance from the window after
  // the current one; windows are disjoint and ascending, so its cached min
  // is the wheel's minimum.
  const int base = static_cast<int>((cur_window_ + 1) & kL1Mask);
  const uint64_t rotated = std::rotr(l1_bits_, base);
  const size_t l1 =
      (static_cast<size_t>(base) + static_cast<size_t>(std::countr_zero(rotated))) &
      kL1Mask;
  return &l1_[l1].min;
}

void EventQueue::cascade(size_t l1) {
  // Relink the window's level-1 list into level-0 slots. The list is in
  // insertion order (ascending seq), every entry in one L0 slot shares its
  // one-tick timestamp, and any later direct insert into this window
  // appends behind with a larger seq — so slot FIFO order is exact
  // (time, seq) order.
  L1Slot& s = l1_[l1];
  uint32_t n = s.head;
  s.head = kNil;
  s.tail = kNil;
  l1_bits_ &= ~(uint64_t{1} << l1);
  while (n != kNil) {
    const uint32_t next = wnodes_[n].next;
    const size_t slot = static_cast<size_t>(
        static_cast<uint64_t>(wnodes_[n].entry.at.count()) & kL0Mask);
    wnodes_[n].next = kNil;
    L0Slot& d = l0_[slot];
    if (d.tail == kNil) {
      d.head = n;
      l0_bits_[slot >> 6] |= uint64_t{1} << (slot & 63);
      l0_summary_ |= uint64_t{1} << (slot >> 6);
    } else {
      wnodes_[d.tail].next = n;
    }
    d.tail = n;
    n = next;
  }
}

void EventQueue::advance_to(TimePoint t) {
  // Called with the global-min time about to pop. Any wheel entry in a
  // slot or window this advance skips would be earlier than that minimum —
  // a contradiction — so skipped slots are empty and the cursor can jump
  // straight to t. The cursor never moves backward: the heap holds any
  // entries behind it.
  if (t.count() < 0) return;
  const uint64_t tick = static_cast<uint64_t>(t.count());
  const uint64_t w = tick >> kL0Bits;
  if (w < cur_window_) return;
  const size_t slot = static_cast<size_t>(tick & kL0Mask);
  if (w == cur_window_) {
    if (slot > l0_cursor_) l0_cursor_ = slot;
    return;
  }
  cur_window_ = w;
  l0_cursor_ = slot;
  // The only level-1 slot that can be occupied at w's residue is w itself
  // (intermediate windows are empty by the minimality argument, and no
  // live window aliases another mod 64). Entries cascade before any event
  // of the window pops or any new event schedules into it.
  const size_t l1 = static_cast<size_t>(w & kL1Mask);
  if ((l1_bits_ >> l1) & 1) cascade(l1);
}

void EventQueue::pop_wheel(const Entry& e) {
  const size_t slot = static_cast<size_t>(
      static_cast<uint64_t>(e.at.count()) & kL0Mask);
  L0Slot& s = l0_[slot];
  const uint32_t n = s.head;
  assert(n != kNil && wnodes_[n].entry.seq == e.seq);
  s.head = wnodes_[n].next;
  if (s.head == kNil) {
    s.tail = kNil;
    l0_bits_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
    if (l0_bits_[slot >> 6] == 0) l0_summary_ &= ~(uint64_t{1} << (slot >> 6));
  }
  wrelease(n);
  --wheel_pending_;
}

void EventQueue::schedule_timer(TimePoint at, Duration delay, Action action) {
  Lane* lane = nullptr;
  for (size_t i = 0; i < lanes_used_; ++i) {
    if (lanes_[i].delay == delay) {
      lane = &lanes_[i];
      break;
    }
  }
  if (lane == nullptr) {
    if (lanes_used_ >= kMaxLanes) {
      schedule_at(at, std::move(action));
      return;
    }
    // Re-activate a retained lane slot when one exists (its ring keeps the
    // capacity from earlier runs); first-use order matches a fresh queue.
    if (lanes_used_ < lanes_.size()) {
      lane = &lanes_[lanes_used_];
      lane->delay = delay;
    } else {
      lanes_.push_back(Lane{delay, {}});
      lane = &lanes_.back();
    }
    ++lanes_used_;
  }
  if (!lane->fifo.empty() && at < lane->fifo.back().at) {
    // Out-of-order birth (caller's clock was not monotone): the lane
    // invariant would break, so this timer takes the ordinary heap path.
    schedule_at(at, std::move(action));
    return;
  }
  const uint32_t idx = pool_->acquire();
  pool_->action(idx) = std::move(action);
  lane->fifo.push_back(Entry{at, next_seq_++, idx});
  ++lanes_pending_;
}

const EventQueue::Entry* EventQueue::best_entry(int* src) const {
  if (src != nullptr) *src = kSrcHeap;
  const Entry* best = heap_.empty() ? nullptr : &heap_[0];
  if (const Entry* w = wheel_best()) {
    if (best == nullptr || w->before(*best)) {
      best = w;
      if (src != nullptr) *src = kSrcWheel;
    }
  }
  for (size_t i = 0; i < lanes_used_; ++i) {
    if (lanes_[i].fifo.empty()) continue;
    const Entry& front = lanes_[i].fifo.front();
    if (best == nullptr || front.before(*best)) {
      best = &front;
      if (src != nullptr) *src = static_cast<int>(i);
    }
  }
  return best;
}

TimePoint EventQueue::pop_and_run(TimePoint* clock) {
  int src = kSrcHeap;
  const Entry top = *best_entry(&src);
  if (clock != nullptr) *clock = top.at;
  // Advance the wheel to the time about to pop (cascading the window it
  // lands in, if pending) before touching slot lists — if `top` is a
  // level-1 cached min, this is what moves it into its level-0 slot.
  advance_to(top.at);
  Action action = std::move(pool_->action(top.idx));
  if (src == kSrcWheel) {
    pop_wheel(top);
  } else if (src == kSrcHeap) {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  } else {
    lanes_[static_cast<size_t>(src)].fifo.pop_front();
    --lanes_pending_;
  }
  // Recycle before running: the action may schedule follow-up events, which
  // then reuse this very slot instead of growing the pool.
  pool_->release(top.idx);
  action();
  return top.at;
}

void EventQueue::release_wheel_entries() {
  uint64_t summary = l0_summary_;
  while (summary != 0) {
    const size_t word = static_cast<size_t>(std::countr_zero(summary));
    summary &= summary - 1;
    uint64_t bits = l0_bits_[word];
    while (bits != 0) {
      const size_t slot = (word << 6) | static_cast<size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      for (uint32_t n = l0_[slot].head; n != kNil;) {
        const uint32_t next = wnodes_[n].next;
        pool_->release(wnodes_[n].entry.idx);
        wrelease(n);
        n = next;
      }
      l0_[slot] = L0Slot{};
    }
    l0_bits_[word] = 0;
  }
  l0_summary_ = 0;
  uint64_t live = l1_bits_;
  while (live != 0) {
    const size_t l1 = static_cast<size_t>(std::countr_zero(live));
    live &= live - 1;
    for (uint32_t n = l1_[l1].head; n != kNil;) {
      const uint32_t next = wnodes_[n].next;
      pool_->release(wnodes_[n].entry.idx);
      wrelease(n);
      n = next;
    }
    l1_[l1] = L1Slot{};
  }
  l1_bits_ = 0;
  wheel_pending_ = 0;
}

void EventQueue::save_events(std::vector<SavedEvent>* out) const {
  out->clear();
  out->reserve(size());
  for (const Entry& e : heap_) {
    out->push_back(SavedEvent{e.at, e.seq, pool_->action(e.idx)});
  }
  for (size_t i = 0; i < lanes_used_; ++i) {
    const Ring& fifo = lanes_[i].fifo;
    for (size_t j = 0; j < fifo.size(); ++j) {
      const Entry& e = fifo.at(j);
      out->push_back(SavedEvent{e.at, e.seq, pool_->action(e.idx)});
    }
  }
  // Wheel walk: occupied L0 slots via the summary bitmap, then live L1
  // windows — the release_wheel_entries traversal, copying instead of
  // releasing.
  uint64_t summary = l0_summary_;
  while (summary != 0) {
    const size_t word = static_cast<size_t>(std::countr_zero(summary));
    summary &= summary - 1;
    uint64_t bits = l0_bits_[word];
    while (bits != 0) {
      const size_t slot =
          (word << 6) | static_cast<size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      for (uint32_t n = l0_[slot].head; n != kNil; n = wnodes_[n].next) {
        const Entry& e = wnodes_[n].entry;
        out->push_back(SavedEvent{e.at, e.seq, pool_->action(e.idx)});
      }
    }
  }
  uint64_t live = l1_bits_;
  while (live != 0) {
    const size_t l1 = static_cast<size_t>(std::countr_zero(live));
    live &= live - 1;
    for (uint32_t n = l1_[l1].head; n != kNil; n = wnodes_[n].next) {
      const Entry& e = wnodes_[n].entry;
      out->push_back(SavedEvent{e.at, e.seq, pool_->action(e.idx)});
    }
  }
}

void EventQueue::restore_events(const std::vector<SavedEvent>& events,
                                uint64_t next_seq) {
  clear();
  heap_.reserve(events.size());
  for (const SavedEvent& ev : events) {
    const uint32_t idx = pool_->acquire();
    pool_->action(idx) = ev.action;
    heap_.push_back(Entry{ev.at, ev.seq, idx});
    sift_up(heap_.size() - 1);
  }
  // The wheel cursor restarted at window 0 (clear); the first pop's
  // advance_to jumps it to the popping time, and every event scheduled from
  // then on routes exactly as a cold run would.
  next_seq_ = next_seq;
}

void EventQueue::clear() {
  for (const Entry& e : heap_) pool_->release(e.idx);
  heap_.clear();
  for (size_t i = 0; i < lanes_used_; ++i) {
    Ring& fifo = lanes_[i].fifo;
    for (size_t j = 0; j < fifo.size(); ++j) pool_->release(fifo.at(j).idx);
    fifo.clear();
  }
  // Deactivate (but retain) the lane table: a reused queue must rebuild
  // lanes in the same order a fresh queue would, so warm runs take
  // byte-identical scheduling paths (including the table-full fallback) —
  // while every ring keeps its capacity.
  lanes_used_ = 0;
  lanes_pending_ = 0;
  // Rewind the wheel to window 0 with the node arena and L0 slot table
  // retained, so a warm run schedules through the wheel exactly like a
  // cold one without allocating.
  if (wheel_pending_ != 0) release_wheel_entries();
  cur_window_ = 0;
  l0_cursor_ = 0;
  next_seq_ = 0;
}

}  // namespace gremlin::sim
