#include "sim/event_queue.h"

#include <memory>
#include <utility>

namespace gremlin::sim {

void EventQueue::schedule_at(TimePoint at, Action action) {
  heap_.push(Event{at, next_seq_++,
                   std::make_shared<Action>(std::move(action))});
}

TimePoint EventQueue::pop_and_run() {
  Event ev = heap_.top();
  heap_.pop();
  (*ev.action)();
  return ev.at;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace gremlin::sim
