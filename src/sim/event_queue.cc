#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace gremlin::sim {

uint32_t EventQueue::acquire_node() {
  if (free_head_ != kNil) {
    const uint32_t idx = free_head_;
    free_head_ = node(idx).next_free;
    return idx;
  }
  // Pool exhausted: grow by one slab and thread the new nodes onto the free
  // list (highest index first, so allocation order is ascending).
  const uint32_t base = static_cast<uint32_t>(pool_capacity());
  slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
  for (size_t i = kSlabSize; i-- > 1;) {
    node(base + static_cast<uint32_t>(i)).next_free = free_head_;
    free_head_ = base + static_cast<uint32_t>(i);
  }
  return base;
}

void EventQueue::release_node(uint32_t idx) {
  Node& n = node(idx);
  n.action = nullptr;  // drop captures eagerly (they may pin resources)
  n.next_free = free_head_;
  free_head_ = idx;
}

void EventQueue::sift_up(size_t pos) {
  const Entry entry = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) >> 2;
    if (!entry.before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = entry;
}

void EventQueue::sift_down(size_t pos) {
  const size_t n = heap_.size();
  const Entry entry = heap_[pos];
  for (;;) {
    const size_t first_child = (pos << 2) + 1;
    if (first_child >= n) break;
    // Smallest of up to four children.
    size_t best = first_child;
    const size_t last_child = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(entry)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = entry;
}

void EventQueue::schedule_at(TimePoint at, Action action) {
  const uint32_t idx = acquire_node();
  node(idx).action = std::move(action);
  heap_.push_back(Entry{at, next_seq_++, idx});
  sift_up(heap_.size() - 1);
}

void EventQueue::schedule_timer(TimePoint at, Duration delay, Action action) {
  Lane* lane = nullptr;
  for (Lane& l : lanes_) {
    if (l.delay == delay) {
      lane = &l;
      break;
    }
  }
  if (lane == nullptr) {
    if (lanes_.size() >= kMaxLanes) {
      schedule_at(at, std::move(action));
      return;
    }
    lanes_.push_back(Lane{delay, {}});
    lane = &lanes_.back();
  }
  if (!lane->fifo.empty() && at < lane->fifo.back().at) {
    // Out-of-order birth (caller's clock was not monotone): the lane
    // invariant would break, so this timer takes the ordinary heap path.
    schedule_at(at, std::move(action));
    return;
  }
  const uint32_t idx = acquire_node();
  node(idx).action = std::move(action);
  lane->fifo.push_back(Entry{at, next_seq_++, idx});
  ++lanes_pending_;
}

const EventQueue::Entry* EventQueue::best_entry(int* lane) const {
  if (lane != nullptr) *lane = -1;
  const Entry* best = heap_.empty() ? nullptr : &heap_[0];
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].fifo.empty()) continue;
    const Entry& front = lanes_[i].fifo.front();
    if (best == nullptr || front.before(*best)) {
      best = &front;
      if (lane != nullptr) *lane = static_cast<int>(i);
    }
  }
  return best;
}

TimePoint EventQueue::pop_and_run() {
  int lane = -1;
  const Entry top = *best_entry(&lane);
  Action action = std::move(node(top.idx).action);
  if (lane < 0) {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  } else {
    lanes_[static_cast<size_t>(lane)].fifo.pop_front();
    --lanes_pending_;
  }
  // Recycle before running: the action may schedule follow-up events, which
  // then reuse this very slot instead of growing the pool.
  release_node(top.idx);
  action();
  return top.at;
}

void EventQueue::clear() {
  for (const Entry& e : heap_) release_node(e.idx);
  heap_.clear();
  for (Lane& lane : lanes_) {
    for (const Entry& e : lane.fifo) release_node(e.idx);
  }
  // Drop the lane table itself: a reused queue must rebuild lanes in the
  // same order a fresh queue would, so warm runs take byte-identical
  // scheduling paths (including the lane-table-full heap fallback).
  lanes_.clear();
  lanes_pending_ = 0;
  next_seq_ = 0;
}

size_t EventQueue::free_list_length() const {
  size_t n = 0;
  for (uint32_t idx = free_head_; idx != kNil; idx = node(idx).next_free) {
    ++n;
  }
  return n;
}

}  // namespace gremlin::sim
