#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace gremlin::sim {

uint32_t EventPool::grow() {
  // Pool exhausted: grow by one slab and thread the new nodes onto the free
  // list (highest index first, so allocation order is ascending).
  const uint32_t base = static_cast<uint32_t>(capacity());
  slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
  for (size_t i = kSlabSize; i-- > 1;) {
    node(base + static_cast<uint32_t>(i)).next_free = free_head_;
    free_head_ = base + static_cast<uint32_t>(i);
  }
  return base;
}

void EventQueue::Ring::grow() {
  const size_t new_size = std::max<size_t>(16, buf.size() * 2);
  std::vector<Entry> fresh(new_size);
  for (size_t i = 0; i < count; ++i) fresh[i] = at(i);
  buf = std::move(fresh);
  head = 0;
}

void EventQueue::sift_up(size_t pos) {
  const Entry entry = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) >> 2;
    if (!entry.before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = entry;
}

void EventQueue::sift_down(size_t pos) {
  const size_t n = heap_.size();
  const Entry entry = heap_[pos];
  for (;;) {
    const size_t first_child = (pos << 2) + 1;
    if (first_child >= n) break;
    // Smallest of up to four children.
    size_t best = first_child;
    const size_t last_child = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(entry)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = entry;
}

void EventQueue::schedule_at(TimePoint at, Action action) {
  const uint32_t idx = pool_->acquire();
  pool_->action(idx) = std::move(action);
  heap_.push_back(Entry{at, next_seq_++, idx});
  sift_up(heap_.size() - 1);
}

void EventQueue::schedule_timer(TimePoint at, Duration delay, Action action) {
  Lane* lane = nullptr;
  for (size_t i = 0; i < lanes_used_; ++i) {
    if (lanes_[i].delay == delay) {
      lane = &lanes_[i];
      break;
    }
  }
  if (lane == nullptr) {
    if (lanes_used_ >= kMaxLanes) {
      schedule_at(at, std::move(action));
      return;
    }
    // Re-activate a retained lane slot when one exists (its ring keeps the
    // capacity from earlier runs); first-use order matches a fresh queue.
    if (lanes_used_ < lanes_.size()) {
      lane = &lanes_[lanes_used_];
      lane->delay = delay;
    } else {
      lanes_.push_back(Lane{delay, {}});
      lane = &lanes_.back();
    }
    ++lanes_used_;
  }
  if (!lane->fifo.empty() && at < lane->fifo.back().at) {
    // Out-of-order birth (caller's clock was not monotone): the lane
    // invariant would break, so this timer takes the ordinary heap path.
    schedule_at(at, std::move(action));
    return;
  }
  const uint32_t idx = pool_->acquire();
  pool_->action(idx) = std::move(action);
  lane->fifo.push_back(Entry{at, next_seq_++, idx});
  ++lanes_pending_;
}

const EventQueue::Entry* EventQueue::best_entry(int* lane) const {
  if (lane != nullptr) *lane = -1;
  const Entry* best = heap_.empty() ? nullptr : &heap_[0];
  for (size_t i = 0; i < lanes_used_; ++i) {
    if (lanes_[i].fifo.empty()) continue;
    const Entry& front = lanes_[i].fifo.front();
    if (best == nullptr || front.before(*best)) {
      best = &front;
      if (lane != nullptr) *lane = static_cast<int>(i);
    }
  }
  return best;
}

TimePoint EventQueue::pop_and_run() {
  int lane = -1;
  const Entry top = *best_entry(&lane);
  Action action = std::move(pool_->action(top.idx));
  if (lane < 0) {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  } else {
    lanes_[static_cast<size_t>(lane)].fifo.pop_front();
    --lanes_pending_;
  }
  // Recycle before running: the action may schedule follow-up events, which
  // then reuse this very slot instead of growing the pool.
  pool_->release(top.idx);
  action();
  return top.at;
}

void EventQueue::clear() {
  for (const Entry& e : heap_) pool_->release(e.idx);
  heap_.clear();
  for (size_t i = 0; i < lanes_used_; ++i) {
    Ring& fifo = lanes_[i].fifo;
    for (size_t j = 0; j < fifo.size(); ++j) pool_->release(fifo.at(j).idx);
    fifo.clear();
  }
  // Deactivate (but retain) the lane table: a reused queue must rebuild
  // lanes in the same order a fresh queue would, so warm runs take
  // byte-identical scheduling paths (including the table-full fallback) —
  // while every ring keeps its capacity.
  lanes_used_ = 0;
  lanes_pending_ = 0;
  next_seq_ = 0;
}

}  // namespace gremlin::sim
