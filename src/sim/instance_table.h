// InstanceTable: structure-of-arrays storage for the per-instance hot
// scalars of every ServiceInstance in a Simulation.
//
// At mega-topology scale (hundreds of services, each with instances), the
// per-hop data path touches a handful of tiny counters on whichever
// instance a message lands on: is it down, how many requests are in
// flight, how deep is the queue. Keeping those inside each heap-allocated
// ServiceInstance spreads them across the heap one cache line per
// instance; flattening them into index-addressed parallel arrays — one
// dense slot per instance, assigned at deployment — packs the whole
// deployment's hot state into a few contiguous vectors, so request
// routing, outage flips, pristine checks, and warm-world resets walk
// arrays instead of chasing pointers.
//
// Slots are assigned once per deployed instance and never reused; the
// vectors only grow (topology is append-only within a Simulation). Cold
// state — queues of pending closures, the sidecar agent, dependency
// caches — stays on the ServiceInstance.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace gremlin::sim {

class InstanceTable {
 public:
  // Registers one instance; returns its dense slot id.
  uint32_t add_instance() {
    down_.push_back(0);
    server_in_flight_.push_back(0);
    shared_in_flight_.push_back(0);
    requests_handled_.push_back(0);
    server_queue_peak_.push_back(0);
    return static_cast<uint32_t>(down_.size() - 1);
  }

  size_t size() const { return down_.size(); }

  // Hot per-instance scalars, index-addressed by slot.
  bool down(uint32_t slot) const { return down_[slot] != 0; }
  void set_down(uint32_t slot, bool v) { down_[slot] = v ? 1 : 0; }

  int32_t& server_in_flight(uint32_t slot) { return server_in_flight_[slot]; }
  int32_t server_in_flight(uint32_t slot) const {
    return server_in_flight_[slot];
  }

  int32_t& shared_in_flight(uint32_t slot) { return shared_in_flight_[slot]; }
  int32_t shared_in_flight(uint32_t slot) const {
    return shared_in_flight_[slot];
  }

  uint64_t& requests_handled(uint32_t slot) {
    return requests_handled_[slot];
  }
  uint64_t requests_handled(uint32_t slot) const {
    return requests_handled_[slot];
  }

  uint32_t& server_queue_peak(uint32_t slot) {
    return server_queue_peak_[slot];
  }
  uint32_t server_queue_peak(uint32_t slot) const {
    return server_queue_peak_[slot];
  }

  // Snapshot support: copies the first snap.size() slots wholesale and
  // zeroes any slots added after the snapshot was taken (topology is
  // append-only, so slot assignments never shift).
  void restore_from(const InstanceTable& snap) {
    const size_t n = snap.size();
    std::copy_n(snap.down_.begin(), n, down_.begin());
    std::copy_n(snap.server_in_flight_.begin(), n, server_in_flight_.begin());
    std::copy_n(snap.shared_in_flight_.begin(), n, shared_in_flight_.begin());
    std::copy_n(snap.requests_handled_.begin(), n, requests_handled_.begin());
    std::copy_n(snap.server_queue_peak_.begin(), n,
                server_queue_peak_.begin());
    for (size_t slot = n; slot < down_.size(); ++slot) {
      reset_slot(static_cast<uint32_t>(slot));
    }
  }

  // Warm-world reuse: zeroes one instance's scalars (the table keeps its
  // capacity; slot assignments are stable across resets).
  void reset_slot(uint32_t slot) {
    down_[slot] = 0;
    server_in_flight_[slot] = 0;
    shared_in_flight_[slot] = 0;
    requests_handled_[slot] = 0;
    server_queue_peak_[slot] = 0;
  }

 private:
  std::vector<uint8_t> down_;
  std::vector<int32_t> server_in_flight_;
  std::vector<int32_t> shared_in_flight_;
  std::vector<uint64_t> requests_handled_;
  std::vector<uint32_t> server_queue_peak_;
};

}  // namespace gremlin::sim
