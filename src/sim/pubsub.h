// PubSubBroker: a publish-subscribe message bus for simulated applications.
//
// Observation O2 names request-response AND publish-subscribe as the
// standard interaction patterns Gremlin manipulates. This broker models the
// latter: services publish to topics (`POST /publish/<topic>`), the broker
// enqueues per-topic and dispatches to subscribers in order, retrying
// failed deliveries (head-of-line blocking, like a partitioned log).
//
// Queues are bounded. When a topic queue is full the broker either rejects
// the publish (503) or — the configuration behind the Parse.ly
// "Kafkapocalypse" and Stackdriver outages of Table 1 — *blocks* the
// publisher until space frees up. A crashed subscriber therefore backs the
// queue up and stalls every publisher, exactly the cascade the postmortems
// describe.
//
// All broker→subscriber deliveries flow through the broker's sidecar agent,
// so Gremlin rules on those edges (Crash, Delay, ...) apply unmodified.
//
// NOTE: under a *permanent* subscriber failure the broker's at-least-once
// retry loop (and any blocked publishers) keep scheduling events forever,
// so the simulation never quiesces — drive such scenarios with
// Simulation::run_until(deadline), not run(). This mirrors reality: the
// outage persists until an operator intervenes.
#pragma once

#include <deque>
#include <map>
#include <string>

#include "sim/simulation.h"

namespace gremlin::sim {

class PubSubBroker {
 public:
  struct Options {
    std::string name = "messagebus";
    int instances = 1;
    Duration processing_time = msec(1);
    size_t queue_capacity = 64;          // per topic
    enum class FullPolicy { kBlock, kReject } on_full = FullPolicy::kBlock;
    Duration block_poll = msec(50);      // blocked publisher re-check cadence
    Duration delivery_retry = msec(100); // backoff after a failed delivery
    int max_delivery_attempts = 0;       // 0 = retry forever (at-least-once)
    resilience::CallPolicy delivery_policy;  // broker → subscriber calls
  };

  PubSubBroker(Simulation* sim, Options options);

  PubSubBroker(const PubSubBroker&) = delete;
  PubSubBroker& operator=(const PubSubBroker&) = delete;

  const std::string& name() const { return options_.name; }

  // Routes every message published to `topic` to `service` (fan-out when
  // called for several services). Must be set up before traffic flows.
  void subscribe(const std::string& topic, const std::string& service);

  // Publishes programmatically (the usual path is an HTTP-style publish
  // from another service: POST /publish/<topic> through its sidecar).
  void publish(const std::string& topic, std::string payload,
               std::string request_id = "");

  // --- stats ---
  size_t queue_depth(const std::string& topic) const;
  size_t queue_peak(const std::string& topic) const;
  uint64_t published() const { return published_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t delivery_failures() const { return delivery_failures_; }
  uint64_t dropped() const { return dropped_; }

 private:
  struct Item {
    std::string payload;
    std::string request_id;  // propagated from the publish (flow tracing)
  };

  struct Topic {
    std::deque<Item> queue;  // pending messages
    std::vector<std::string> subscribers;
    bool dispatching = false;
    size_t peak = 0;
  };

  void handle_publish(std::shared_ptr<RequestContext> ctx,
                      const std::string& topic, int wait_rounds);
  bool try_enqueue(const std::string& topic, Item item);
  void pump(const std::string& topic);
  void deliver_head(const std::string& topic, size_t subscriber_index,
                    int attempt);

  Simulation* sim_;
  Options options_;
  SimService* service_ = nullptr;
  std::map<std::string, Topic> topics_;
  uint64_t published_ = 0;
  uint64_t delivered_ = 0;
  uint64_t rejected_ = 0;
  uint64_t delivery_failures_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace gremlin::sim
