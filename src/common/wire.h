// Wire: the compact binary serialization used at process boundaries.
//
// Multi-process campaign sharding (src/campaign/process_pool) streams
// ExperimentResults from forked workers back to the parent over pipes.
// The format is byte-exact by construction — unsigned integers are LEB128
// varints, signed integers are zigzag varints, strings are length-prefixed
// raw bytes — so a decode(encode(x)) round trip reproduces every field
// bit-for-bit and fingerprints computed on either side of the boundary are
// identical (tests/wire_test.cc fuzzes this).
//
// Framing: a stream is a sequence of frames, each a little-endian u32
// payload length followed by the payload bytes. Frames are written with
// one write_all call so readers never see an interleaved frame from a
// well-behaved writer; FrameBuffer reassembles frames from arbitrarily
// chunked reads (pipes deliver whatever they feel like).
//
// Symbols never cross this boundary: everything is stringified before
// encoding (ExperimentResult carries plain strings produced by the stable
// stringification of the shard interner), so shard-local Symbol ids cannot
// leak between processes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gremlin::wire {

// Append-only encoder over an owned byte buffer.
class Writer {
 public:
  void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  // LEB128 varint: 7 bits per byte, high bit = continuation.
  void u64(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }
  void u32(uint32_t v) { u64(v); }

  // Zigzag-mapped varint: small magnitudes of either sign stay short.
  void i64(int64_t v) {
    u64((static_cast<uint64_t>(v) << 1) ^
        static_cast<uint64_t>(v >> 63));
  }
  void i32(int32_t v) { i64(v); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  // Length-prefixed raw bytes (no terminator, arbitrary content).
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

// Decoder over a borrowed byte span. Every accessor returns a value and
// never throws; after any malformed read ok() turns false and all further
// reads return zero values. Callers check ok() once at the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  uint8_t u8() {
    if (pos_ >= data_.size()) return fail8();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint64_t u64() {
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= data_.size() || shift > 63) return fail64();
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }
  uint32_t u32() {
    const uint64_t v = u64();
    if (v > UINT32_MAX) return static_cast<uint32_t>(fail64());
    return static_cast<uint32_t>(v);
  }

  int64_t i64() {
    const uint64_t z = u64();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  int32_t i32() {
    const int64_t v = i64();
    if (v < INT32_MIN || v > INT32_MAX) return static_cast<int32_t>(fail64());
    return static_cast<int32_t>(v);
  }

  bool boolean() { return u8() != 0; }

  std::string str() {
    const uint64_t len = u64();
    if (!ok_ || len > data_.size() - pos_) {
      ok_ = false;
      return {};
    }
    std::string out(data_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  uint8_t fail8() {
    ok_ = false;
    return 0;
  }
  uint64_t fail64() {
    ok_ = false;
    return 0;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Writes all n bytes to fd, retrying on EINTR / short writes. False on any
// other error (e.g. EPIPE after the reader died).
bool write_all(int fd, const void* data, size_t n);

// One frame: little-endian u32 payload length, then the payload, shipped
// as a single write_all so concurrent writers holding a mutex per frame
// never interleave bytes.
bool write_frame(int fd, std::string_view payload);

// Frames larger than this are treated as stream corruption.
constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

// Reassembles frames from a chunked byte stream (append whatever read(2)
// returned; next() pops complete frames in order).
class FrameBuffer {
 public:
  void append(const char* data, size_t n) { buf_.append(data, n); }

  // Pops the next complete frame payload into *payload. Returns false when
  // no complete frame is buffered. Sets corrupt() on an oversized length
  // prefix, after which no further frames are produced.
  bool next(std::string* payload);

  bool corrupt() const { return corrupt_; }
  // Bytes buffered but not yet consumed (a partially received frame).
  size_t pending() const { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  size_t consumed_ = 0;
  bool corrupt_ = false;
};

}  // namespace gremlin::wire
