// Duration: microsecond-resolution time spans with the paper's recipe
// string syntax ("100ms", "1s", "1min", "1h").
//
// The simulator's virtual clock and all fault-rule intervals are expressed
// in Duration; TimePoint is a Duration offset from simulation start (or from
// the UNIX epoch for the real proxy path).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace gremlin {

using Duration = std::chrono::microseconds;
using TimePoint = Duration;  // offset from an origin; see header comment

constexpr Duration kDurationZero = Duration::zero();

constexpr Duration usec(int64_t n) { return Duration(n); }
constexpr Duration msec(int64_t n) { return Duration(n * 1000); }
constexpr Duration sec(int64_t n) { return Duration(n * 1000 * 1000); }
constexpr Duration minutes(int64_t n) { return sec(n * 60); }
constexpr Duration hours(int64_t n) { return sec(n * 3600); }

inline double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}
inline double to_millis(Duration d) {
  return static_cast<double>(d.count()) / 1e3;
}

// Parses a recipe-style duration: decimal number + unit suffix.
// Supported units: us, ms, s, sec, m, min, h, hour(s).
// Examples: "100ms", "1s", "1.5s", "1min", "1h".
Result<Duration> parse_duration(std::string_view text);

// Formats using the largest unit that represents the value exactly enough:
// "1h", "1min", "3s", "100ms", "250us".
std::string format_duration(Duration d);

}  // namespace gremlin
