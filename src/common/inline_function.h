// InlineFunction: a std::function replacement with a configurable small-
// object buffer, built for the simulator's hot path.
//
// std::function on libstdc++ spills any capture larger than two pointers to
// the heap, which makes every scheduled event and response callback a malloc.
// InlineFunction stores callables up to `InlineBytes` in place (with a heap
// fallback for oversized ones), so the steady-state simulate loop performs
// zero allocations per event. Copyable iff used with copyable callables,
// exactly like std::function, so it is a drop-in replacement for the
// EventQueue::Action and ResponseCallback aliases.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gremlin {

template <typename Signature, size_t InlineBytes = 64>
class InlineFunction;

template <typename R, typename... Args, size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace<std::decay_t<F>>(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction(const InlineFunction& other) { copy_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction& operator=(const InlineFunction& other) {
    if (this != &other) {
      InlineFunction tmp(other);  // strong guarantee
      reset();
      move_from(tmp);
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  ~InlineFunction() { reset(); }

  R operator()(Args... args) const {
    return ops_->invoke(storage(), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  // True when the current target lives in the inline buffer (test hook; a
  // false answer for a hot-path callable means its captures outgrew
  // InlineBytes and every construction pays a heap allocation).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

 private:
  struct Ops {
    R (*invoke)(void* target, Args&&... args);
    // Move-construct `*target` into raw storage `dst`, destroying the source.
    void (*relocate)(void* target, void* dst) noexcept;
    void (*copy)(const void* target, void* dst);
    void (*destroy)(void* target) noexcept;
    bool inline_stored;
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= InlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F, typename... CtorArgs>
  void emplace(CtorArgs&&... ctor_args) {
    if constexpr (fits_inline<F>()) {
      static const Ops ops = {
          [](void* t, Args&&... args) -> R {
            return (*static_cast<F*>(t))(std::forward<Args>(args)...);
          },
          [](void* t, void* dst) noexcept {
            ::new (dst) F(std::move(*static_cast<F*>(t)));
            static_cast<F*>(t)->~F();
          },
          [](const void* t, void* dst) {
            ::new (dst) F(*static_cast<const F*>(t));
          },
          [](void* t) noexcept { static_cast<F*>(t)->~F(); },
          /*inline_stored=*/true,
      };
      ::new (buf_) F(std::forward<CtorArgs>(ctor_args)...);
      ops_ = &ops;
    } else {
      // Oversized callable: one owning pointer in the buffer, heap target.
      static const Ops ops = {
          [](void* t, Args&&... args) -> R {
            return (**static_cast<F**>(t))(std::forward<Args>(args)...);
          },
          [](void* t, void* dst) noexcept {
            ::new (dst) F*(*static_cast<F**>(t));
          },
          [](const void* t, void* dst) {
            ::new (dst) F*(new F(**static_cast<F* const*>(t)));
          },
          [](void* t) noexcept { delete *static_cast<F**>(t); },
          /*inline_stored=*/false,
      };
      ::new (buf_) F*(new F(std::forward<CtorArgs>(ctor_args)...));
      ops_ = &ops;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.ops_ == nullptr) return;
    other.ops_->relocate(other.storage(), buf_);
    ops_ = other.ops_;
    other.ops_ = nullptr;
  }

  void copy_from(const InlineFunction& other) {
    if (other.ops_ == nullptr) return;
    other.ops_->copy(other.storage(), buf_);
    ops_ = other.ops_;
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  void* storage() const { return const_cast<unsigned char*>(buf_); }

  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace gremlin
