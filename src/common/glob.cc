#include "common/glob.h"

namespace gremlin {
namespace {

// Matches a character class starting at pattern[pi] (pattern[pi-1] == '[').
// On success sets `next` to the index one past the closing ']'.
bool match_class(std::string_view pattern, size_t pi, char c, size_t* next) {
  bool negate = false;
  size_t i = pi;
  if (i < pattern.size() && (pattern[i] == '!' || pattern[i] == '^')) {
    negate = true;
    ++i;
  }
  bool matched = false;
  bool first = true;
  while (i < pattern.size() && (pattern[i] != ']' || first)) {
    first = false;
    char lo = pattern[i];
    if (lo == '\\' && i + 1 < pattern.size()) {
      lo = pattern[++i];
    }
    char hi = lo;
    if (i + 2 < pattern.size() && pattern[i + 1] == '-' &&
        pattern[i + 2] != ']') {
      hi = pattern[i + 2];
      if (hi == '\\' && i + 3 < pattern.size()) {
        hi = pattern[i + 3];
        i += 1;
      }
      i += 2;
    }
    if (lo <= c && c <= hi) matched = true;
    ++i;
  }
  if (i >= pattern.size()) return false;  // unterminated class: no match
  *next = i + 1;                          // skip ']'
  return matched != negate;
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view text) {
  size_t pi = 0, ti = 0;
  size_t star_pi = std::string_view::npos;  // pattern index after last '*'
  size_t star_ti = 0;                       // text index at last '*' match

  while (ti < text.size()) {
    bool advanced = false;
    if (pi < pattern.size()) {
      const char pc = pattern[pi];
      if (pc == '*') {
        star_pi = ++pi;
        star_ti = ti;
        continue;
      }
      if (pc == '?') {
        ++pi;
        ++ti;
        advanced = true;
      } else if (pc == '[') {
        size_t next = 0;
        if (match_class(pattern, pi + 1, text[ti], &next)) {
          pi = next;
          ++ti;
          advanced = true;
        }
      } else if (pc == '\\' && pi + 1 < pattern.size()) {
        if (pattern[pi + 1] == text[ti]) {
          pi += 2;
          ++ti;
          advanced = true;
        }
      } else if (pc == text[ti]) {
        ++pi;
        ++ti;
        advanced = true;
      }
    }
    if (!advanced) {
      if (star_pi == std::string_view::npos) return false;
      // Backtrack: let the last '*' absorb one more character.
      pi = star_pi;
      ti = ++star_ti;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '*') ++pi;
  return pi == pattern.size();
}

bool Glob::matches(std::string_view text) const {
  return glob_match(pattern_, text);
}

namespace {

bool has_meta(std::string_view s) {
  return s.find_first_of("*?[\\") != std::string_view::npos;
}

}  // namespace

bool Glob::is_literal() const { return !has_meta(pattern_); }

std::optional<std::string_view> Glob::literal_prefix() const {
  if (pattern_.empty() || pattern_.back() != '*') return std::nullopt;
  const std::string_view prefix(pattern_.data(), pattern_.size() - 1);
  if (has_meta(prefix)) return std::nullopt;
  return prefix;
}

}  // namespace gremlin
